# Empty dependencies file for phy_medium_test.
# This may be replaced when dependencies are built.
