file(REMOVE_RECURSE
  "CMakeFiles/phy_medium_test.dir/phy/medium_test.cpp.o"
  "CMakeFiles/phy_medium_test.dir/phy/medium_test.cpp.o.d"
  "phy_medium_test"
  "phy_medium_test.pdb"
  "phy_medium_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phy_medium_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
