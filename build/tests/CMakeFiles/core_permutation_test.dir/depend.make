# Empty dependencies file for core_permutation_test.
# This may be replaced when dependencies are built.
