file(REMOVE_RECURSE
  "CMakeFiles/core_permutation_test.dir/core/permutation_test.cpp.o"
  "CMakeFiles/core_permutation_test.dir/core/permutation_test.cpp.o.d"
  "core_permutation_test"
  "core_permutation_test.pdb"
  "core_permutation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_permutation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
