# Empty compiler generated dependencies file for analysis_evaluator_test.
# This may be replaced when dependencies are built.
