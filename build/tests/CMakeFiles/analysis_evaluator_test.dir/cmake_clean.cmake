file(REMOVE_RECURSE
  "CMakeFiles/analysis_evaluator_test.dir/analysis/priority_evaluator_test.cpp.o"
  "CMakeFiles/analysis_evaluator_test.dir/analysis/priority_evaluator_test.cpp.o.d"
  "analysis_evaluator_test"
  "analysis_evaluator_test.pdb"
  "analysis_evaluator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
