# Empty dependencies file for analysis_region_test.
# This may be replaced when dependencies are built.
