file(REMOVE_RECURSE
  "CMakeFiles/analysis_region_test.dir/analysis/region_test.cpp.o"
  "CMakeFiles/analysis_region_test.dir/analysis/region_test.cpp.o.d"
  "analysis_region_test"
  "analysis_region_test.pdb"
  "analysis_region_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
