file(REMOVE_RECURSE
  "CMakeFiles/core_requirements_test.dir/core/requirements_test.cpp.o"
  "CMakeFiles/core_requirements_test.dir/core/requirements_test.cpp.o.d"
  "core_requirements_test"
  "core_requirements_test.pdb"
  "core_requirements_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_requirements_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
