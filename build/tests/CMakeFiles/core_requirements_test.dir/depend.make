# Empty dependencies file for core_requirements_test.
# This may be replaced when dependencies are built.
