# Empty compiler generated dependencies file for mac_backoff_test.
# This may be replaced when dependencies are built.
