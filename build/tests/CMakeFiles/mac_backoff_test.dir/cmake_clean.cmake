file(REMOVE_RECURSE
  "CMakeFiles/mac_backoff_test.dir/mac/backoff_engine_test.cpp.o"
  "CMakeFiles/mac_backoff_test.dir/mac/backoff_engine_test.cpp.o.d"
  "mac_backoff_test"
  "mac_backoff_test.pdb"
  "mac_backoff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_backoff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
