# Empty dependencies file for core_debt_test.
# This may be replaced when dependencies are built.
