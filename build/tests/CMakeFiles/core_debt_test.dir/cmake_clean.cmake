file(REMOVE_RECURSE
  "CMakeFiles/core_debt_test.dir/core/debt_test.cpp.o"
  "CMakeFiles/core_debt_test.dir/core/debt_test.cpp.o.d"
  "core_debt_test"
  "core_debt_test.pdb"
  "core_debt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_debt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
