file(REMOVE_RECURSE
  "CMakeFiles/mac_fcsma_test.dir/mac/fcsma_test.cpp.o"
  "CMakeFiles/mac_fcsma_test.dir/mac/fcsma_test.cpp.o.d"
  "mac_fcsma_test"
  "mac_fcsma_test.pdb"
  "mac_fcsma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_fcsma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
