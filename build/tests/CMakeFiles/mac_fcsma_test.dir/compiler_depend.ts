# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mac_fcsma_test.
