# Empty compiler generated dependencies file for mac_fcsma_test.
# This may be replaced when dependencies are built.
