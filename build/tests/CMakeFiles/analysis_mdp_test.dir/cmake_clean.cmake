file(REMOVE_RECURSE
  "CMakeFiles/analysis_mdp_test.dir/analysis/interval_mdp_test.cpp.o"
  "CMakeFiles/analysis_mdp_test.dir/analysis/interval_mdp_test.cpp.o.d"
  "analysis_mdp_test"
  "analysis_mdp_test.pdb"
  "analysis_mdp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_mdp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
