# Empty compiler generated dependencies file for analysis_mdp_test.
# This may be replaced when dependencies are built.
