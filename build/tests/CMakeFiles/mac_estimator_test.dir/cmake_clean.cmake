file(REMOVE_RECURSE
  "CMakeFiles/mac_estimator_test.dir/mac/reliability_estimator_test.cpp.o"
  "CMakeFiles/mac_estimator_test.dir/mac/reliability_estimator_test.cpp.o.d"
  "mac_estimator_test"
  "mac_estimator_test.pdb"
  "mac_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
