# Empty dependencies file for mac_estimator_test.
# This may be replaced when dependencies are built.
