# Empty compiler generated dependencies file for phy_channel_model_test.
# This may be replaced when dependencies are built.
