file(REMOVE_RECURSE
  "CMakeFiles/phy_channel_model_test.dir/phy/channel_model_test.cpp.o"
  "CMakeFiles/phy_channel_model_test.dir/phy/channel_model_test.cpp.o.d"
  "phy_channel_model_test"
  "phy_channel_model_test.pdb"
  "phy_channel_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phy_channel_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
