# Empty dependencies file for mac_multipair_test.
# This may be replaced when dependencies are built.
