file(REMOVE_RECURSE
  "CMakeFiles/mac_multipair_test.dir/mac/multipair_test.cpp.o"
  "CMakeFiles/mac_multipair_test.dir/mac/multipair_test.cpp.o.d"
  "mac_multipair_test"
  "mac_multipair_test.pdb"
  "mac_multipair_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_multipair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
