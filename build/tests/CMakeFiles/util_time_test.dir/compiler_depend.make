# Empty compiler generated dependencies file for util_time_test.
# This may be replaced when dependencies are built.
