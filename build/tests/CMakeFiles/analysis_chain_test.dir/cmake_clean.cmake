file(REMOVE_RECURSE
  "CMakeFiles/analysis_chain_test.dir/analysis/priority_chain_test.cpp.o"
  "CMakeFiles/analysis_chain_test.dir/analysis/priority_chain_test.cpp.o.d"
  "analysis_chain_test"
  "analysis_chain_test.pdb"
  "analysis_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
