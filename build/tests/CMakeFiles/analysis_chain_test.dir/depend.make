# Empty dependencies file for analysis_chain_test.
# This may be replaced when dependencies are built.
