file(REMOVE_RECURSE
  "CMakeFiles/expfw_test.dir/expfw/expfw_test.cpp.o"
  "CMakeFiles/expfw_test.dir/expfw/expfw_test.cpp.o.d"
  "expfw_test"
  "expfw_test.pdb"
  "expfw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expfw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
