# Empty dependencies file for expfw_test.
# This may be replaced when dependencies are built.
