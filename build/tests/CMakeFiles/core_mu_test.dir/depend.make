# Empty dependencies file for core_mu_test.
# This may be replaced when dependencies are built.
