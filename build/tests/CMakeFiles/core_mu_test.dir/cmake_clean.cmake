file(REMOVE_RECURSE
  "CMakeFiles/core_mu_test.dir/core/mu_test.cpp.o"
  "CMakeFiles/core_mu_test.dir/core/mu_test.cpp.o.d"
  "core_mu_test"
  "core_mu_test.pdb"
  "core_mu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_mu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
