file(REMOVE_RECURSE
  "CMakeFiles/stats_latency_test.dir/stats/latency_test.cpp.o"
  "CMakeFiles/stats_latency_test.dir/stats/latency_test.cpp.o.d"
  "stats_latency_test"
  "stats_latency_test.pdb"
  "stats_latency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_latency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
