file(REMOVE_RECURSE
  "CMakeFiles/traffic_joint_test.dir/traffic/joint_arrivals_test.cpp.o"
  "CMakeFiles/traffic_joint_test.dir/traffic/joint_arrivals_test.cpp.o.d"
  "traffic_joint_test"
  "traffic_joint_test.pdb"
  "traffic_joint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_joint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
