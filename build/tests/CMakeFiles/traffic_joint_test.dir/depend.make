# Empty dependencies file for traffic_joint_test.
# This may be replaced when dependencies are built.
