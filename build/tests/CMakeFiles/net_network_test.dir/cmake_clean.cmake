file(REMOVE_RECURSE
  "CMakeFiles/net_network_test.dir/net/network_test.cpp.o"
  "CMakeFiles/net_network_test.dir/net/network_test.cpp.o.d"
  "net_network_test"
  "net_network_test.pdb"
  "net_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
