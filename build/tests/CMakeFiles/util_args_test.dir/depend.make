# Empty dependencies file for util_args_test.
# This may be replaced when dependencies are built.
