file(REMOVE_RECURSE
  "CMakeFiles/util_args_test.dir/util/args_test.cpp.o"
  "CMakeFiles/util_args_test.dir/util/args_test.cpp.o.d"
  "util_args_test"
  "util_args_test.pdb"
  "util_args_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_args_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
