# Empty dependencies file for phy_params_test.
# This may be replaced when dependencies are built.
