file(REMOVE_RECURSE
  "CMakeFiles/phy_params_test.dir/phy/phy_params_test.cpp.o"
  "CMakeFiles/phy_params_test.dir/phy/phy_params_test.cpp.o.d"
  "phy_params_test"
  "phy_params_test.pdb"
  "phy_params_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phy_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
