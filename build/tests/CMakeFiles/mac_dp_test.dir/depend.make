# Empty dependencies file for mac_dp_test.
# This may be replaced when dependencies are built.
