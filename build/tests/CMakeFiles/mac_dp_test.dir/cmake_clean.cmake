file(REMOVE_RECURSE
  "CMakeFiles/mac_dp_test.dir/mac/dp_protocol_test.cpp.o"
  "CMakeFiles/mac_dp_test.dir/mac/dp_protocol_test.cpp.o.d"
  "mac_dp_test"
  "mac_dp_test.pdb"
  "mac_dp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_dp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
