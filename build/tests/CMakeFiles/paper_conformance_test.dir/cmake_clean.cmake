file(REMOVE_RECURSE
  "CMakeFiles/paper_conformance_test.dir/integration/paper_conformance_test.cpp.o"
  "CMakeFiles/paper_conformance_test.dir/integration/paper_conformance_test.cpp.o.d"
  "paper_conformance_test"
  "paper_conformance_test.pdb"
  "paper_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
