# Empty compiler generated dependencies file for paper_conformance_test.
# This may be replaced when dependencies are built.
