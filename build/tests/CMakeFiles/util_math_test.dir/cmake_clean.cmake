file(REMOVE_RECURSE
  "CMakeFiles/util_math_test.dir/util/math_test.cpp.o"
  "CMakeFiles/util_math_test.dir/util/math_test.cpp.o.d"
  "util_math_test"
  "util_math_test.pdb"
  "util_math_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
