# Empty compiler generated dependencies file for util_math_test.
# This may be replaced when dependencies are built.
