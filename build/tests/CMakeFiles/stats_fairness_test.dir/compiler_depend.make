# Empty compiler generated dependencies file for stats_fairness_test.
# This may be replaced when dependencies are built.
