file(REMOVE_RECURSE
  "CMakeFiles/stats_fairness_test.dir/stats/fairness_test.cpp.o"
  "CMakeFiles/stats_fairness_test.dir/stats/fairness_test.cpp.o.d"
  "stats_fairness_test"
  "stats_fairness_test.pdb"
  "stats_fairness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_fairness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
