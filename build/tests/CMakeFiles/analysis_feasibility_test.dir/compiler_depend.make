# Empty compiler generated dependencies file for analysis_feasibility_test.
# This may be replaced when dependencies are built.
