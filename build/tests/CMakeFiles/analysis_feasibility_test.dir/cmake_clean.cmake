file(REMOVE_RECURSE
  "CMakeFiles/analysis_feasibility_test.dir/analysis/feasibility_test.cpp.o"
  "CMakeFiles/analysis_feasibility_test.dir/analysis/feasibility_test.cpp.o.d"
  "analysis_feasibility_test"
  "analysis_feasibility_test.pdb"
  "analysis_feasibility_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_feasibility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
