# Empty dependencies file for mac_centralized_test.
# This may be replaced when dependencies are built.
