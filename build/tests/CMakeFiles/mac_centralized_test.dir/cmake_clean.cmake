file(REMOVE_RECURSE
  "CMakeFiles/mac_centralized_test.dir/mac/centralized_test.cpp.o"
  "CMakeFiles/mac_centralized_test.dir/mac/centralized_test.cpp.o.d"
  "mac_centralized_test"
  "mac_centralized_test.pdb"
  "mac_centralized_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_centralized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
