file(REMOVE_RECURSE
  "CMakeFiles/core_influence_test.dir/core/influence_test.cpp.o"
  "CMakeFiles/core_influence_test.dir/core/influence_test.cpp.o.d"
  "core_influence_test"
  "core_influence_test.pdb"
  "core_influence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_influence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
