# Empty dependencies file for core_influence_test.
# This may be replaced when dependencies are built.
