# Empty dependencies file for rtmac.
# This may be replaced when dependencies are built.
