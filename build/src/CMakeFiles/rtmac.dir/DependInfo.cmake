
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/feasibility.cpp" "src/CMakeFiles/rtmac.dir/analysis/feasibility.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/analysis/feasibility.cpp.o.d"
  "/root/repo/src/analysis/interval_mdp.cpp" "src/CMakeFiles/rtmac.dir/analysis/interval_mdp.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/analysis/interval_mdp.cpp.o.d"
  "/root/repo/src/analysis/priority_chain.cpp" "src/CMakeFiles/rtmac.dir/analysis/priority_chain.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/analysis/priority_chain.cpp.o.d"
  "/root/repo/src/analysis/priority_evaluator.cpp" "src/CMakeFiles/rtmac.dir/analysis/priority_evaluator.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/analysis/priority_evaluator.cpp.o.d"
  "/root/repo/src/analysis/region.cpp" "src/CMakeFiles/rtmac.dir/analysis/region.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/analysis/region.cpp.o.d"
  "/root/repo/src/core/debt.cpp" "src/CMakeFiles/rtmac.dir/core/debt.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/core/debt.cpp.o.d"
  "/root/repo/src/core/influence.cpp" "src/CMakeFiles/rtmac.dir/core/influence.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/core/influence.cpp.o.d"
  "/root/repo/src/core/mu.cpp" "src/CMakeFiles/rtmac.dir/core/mu.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/core/mu.cpp.o.d"
  "/root/repo/src/core/permutation.cpp" "src/CMakeFiles/rtmac.dir/core/permutation.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/core/permutation.cpp.o.d"
  "/root/repo/src/core/requirements.cpp" "src/CMakeFiles/rtmac.dir/core/requirements.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/core/requirements.cpp.o.d"
  "/root/repo/src/expfw/report.cpp" "src/CMakeFiles/rtmac.dir/expfw/report.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/expfw/report.cpp.o.d"
  "/root/repo/src/expfw/runner.cpp" "src/CMakeFiles/rtmac.dir/expfw/runner.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/expfw/runner.cpp.o.d"
  "/root/repo/src/expfw/scenarios.cpp" "src/CMakeFiles/rtmac.dir/expfw/scenarios.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/expfw/scenarios.cpp.o.d"
  "/root/repo/src/mac/backoff_engine.cpp" "src/CMakeFiles/rtmac.dir/mac/backoff_engine.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/mac/backoff_engine.cpp.o.d"
  "/root/repo/src/mac/centralized_scheduler.cpp" "src/CMakeFiles/rtmac.dir/mac/centralized_scheduler.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/mac/centralized_scheduler.cpp.o.d"
  "/root/repo/src/mac/dcf_mac.cpp" "src/CMakeFiles/rtmac.dir/mac/dcf_mac.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/mac/dcf_mac.cpp.o.d"
  "/root/repo/src/mac/dp_link_mac.cpp" "src/CMakeFiles/rtmac.dir/mac/dp_link_mac.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/mac/dp_link_mac.cpp.o.d"
  "/root/repo/src/mac/fcsma_mac.cpp" "src/CMakeFiles/rtmac.dir/mac/fcsma_mac.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/mac/fcsma_mac.cpp.o.d"
  "/root/repo/src/mac/link_mac.cpp" "src/CMakeFiles/rtmac.dir/mac/link_mac.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/mac/link_mac.cpp.o.d"
  "/root/repo/src/mac/priority_provider.cpp" "src/CMakeFiles/rtmac.dir/mac/priority_provider.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/mac/priority_provider.cpp.o.d"
  "/root/repo/src/mac/reliability_estimator.cpp" "src/CMakeFiles/rtmac.dir/mac/reliability_estimator.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/mac/reliability_estimator.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/rtmac.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/net/network.cpp.o.d"
  "/root/repo/src/net/network_config.cpp" "src/CMakeFiles/rtmac.dir/net/network_config.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/net/network_config.cpp.o.d"
  "/root/repo/src/phy/channel_model.cpp" "src/CMakeFiles/rtmac.dir/phy/channel_model.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/phy/channel_model.cpp.o.d"
  "/root/repo/src/phy/medium.cpp" "src/CMakeFiles/rtmac.dir/phy/medium.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/phy/medium.cpp.o.d"
  "/root/repo/src/phy/phy_params.cpp" "src/CMakeFiles/rtmac.dir/phy/phy_params.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/phy/phy_params.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/rtmac.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/rtmac.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/rtmac.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/sim/trace.cpp.o.d"
  "/root/repo/src/stats/deficiency.cpp" "src/CMakeFiles/rtmac.dir/stats/deficiency.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/stats/deficiency.cpp.o.d"
  "/root/repo/src/stats/fairness.cpp" "src/CMakeFiles/rtmac.dir/stats/fairness.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/stats/fairness.cpp.o.d"
  "/root/repo/src/stats/latency.cpp" "src/CMakeFiles/rtmac.dir/stats/latency.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/stats/latency.cpp.o.d"
  "/root/repo/src/stats/link_stats.cpp" "src/CMakeFiles/rtmac.dir/stats/link_stats.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/stats/link_stats.cpp.o.d"
  "/root/repo/src/stats/time_series.cpp" "src/CMakeFiles/rtmac.dir/stats/time_series.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/stats/time_series.cpp.o.d"
  "/root/repo/src/traffic/arrival_process.cpp" "src/CMakeFiles/rtmac.dir/traffic/arrival_process.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/traffic/arrival_process.cpp.o.d"
  "/root/repo/src/traffic/joint_arrivals.cpp" "src/CMakeFiles/rtmac.dir/traffic/joint_arrivals.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/traffic/joint_arrivals.cpp.o.d"
  "/root/repo/src/util/args.cpp" "src/CMakeFiles/rtmac.dir/util/args.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/util/args.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/rtmac.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/math.cpp" "src/CMakeFiles/rtmac.dir/util/math.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/util/math.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/rtmac.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/rtmac.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/util/table.cpp.o.d"
  "/root/repo/src/util/time.cpp" "src/CMakeFiles/rtmac.dir/util/time.cpp.o" "gcc" "src/CMakeFiles/rtmac.dir/util/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
