file(REMOVE_RECURSE
  "librtmac.a"
)
