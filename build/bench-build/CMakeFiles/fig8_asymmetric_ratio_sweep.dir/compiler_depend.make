# Empty compiler generated dependencies file for fig8_asymmetric_ratio_sweep.
# This may be replaced when dependencies are built.
