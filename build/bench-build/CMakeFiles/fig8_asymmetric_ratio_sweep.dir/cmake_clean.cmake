file(REMOVE_RECURSE
  "../bench/fig8_asymmetric_ratio_sweep"
  "../bench/fig8_asymmetric_ratio_sweep.pdb"
  "CMakeFiles/fig8_asymmetric_ratio_sweep.dir/fig8_asymmetric_ratio_sweep.cpp.o"
  "CMakeFiles/fig8_asymmetric_ratio_sweep.dir/fig8_asymmetric_ratio_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_asymmetric_ratio_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
