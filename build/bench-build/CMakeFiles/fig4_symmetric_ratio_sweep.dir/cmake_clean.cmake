file(REMOVE_RECURSE
  "../bench/fig4_symmetric_ratio_sweep"
  "../bench/fig4_symmetric_ratio_sweep.pdb"
  "CMakeFiles/fig4_symmetric_ratio_sweep.dir/fig4_symmetric_ratio_sweep.cpp.o"
  "CMakeFiles/fig4_symmetric_ratio_sweep.dir/fig4_symmetric_ratio_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_symmetric_ratio_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
