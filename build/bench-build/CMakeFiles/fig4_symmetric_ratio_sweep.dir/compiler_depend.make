# Empty compiler generated dependencies file for fig4_symmetric_ratio_sweep.
# This may be replaced when dependencies are built.
