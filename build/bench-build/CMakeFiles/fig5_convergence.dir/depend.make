# Empty dependencies file for fig5_convergence.
# This may be replaced when dependencies are built.
