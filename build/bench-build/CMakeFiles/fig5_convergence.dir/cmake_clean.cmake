file(REMOVE_RECURSE
  "../bench/fig5_convergence"
  "../bench/fig5_convergence.pdb"
  "CMakeFiles/fig5_convergence.dir/fig5_convergence.cpp.o"
  "CMakeFiles/fig5_convergence.dir/fig5_convergence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
