# Empty dependencies file for fig7_asymmetric_arrival_sweep.
# This may be replaced when dependencies are built.
