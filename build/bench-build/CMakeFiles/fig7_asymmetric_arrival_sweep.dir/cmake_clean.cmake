file(REMOVE_RECURSE
  "../bench/fig7_asymmetric_arrival_sweep"
  "../bench/fig7_asymmetric_arrival_sweep.pdb"
  "CMakeFiles/fig7_asymmetric_arrival_sweep.dir/fig7_asymmetric_arrival_sweep.cpp.o"
  "CMakeFiles/fig7_asymmetric_arrival_sweep.dir/fig7_asymmetric_arrival_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_asymmetric_arrival_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
