file(REMOVE_RECURSE
  "../bench/ablation_learned_p"
  "../bench/ablation_learned_p.pdb"
  "CMakeFiles/ablation_learned_p.dir/ablation_learned_p.cpp.o"
  "CMakeFiles/ablation_learned_p.dir/ablation_learned_p.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_learned_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
