# Empty compiler generated dependencies file for ablation_learned_p.
# This may be replaced when dependencies are built.
