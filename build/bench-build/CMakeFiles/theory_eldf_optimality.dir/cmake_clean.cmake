file(REMOVE_RECURSE
  "../bench/theory_eldf_optimality"
  "../bench/theory_eldf_optimality.pdb"
  "CMakeFiles/theory_eldf_optimality.dir/theory_eldf_optimality.cpp.o"
  "CMakeFiles/theory_eldf_optimality.dir/theory_eldf_optimality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_eldf_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
