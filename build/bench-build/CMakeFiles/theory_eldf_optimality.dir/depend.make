# Empty dependencies file for theory_eldf_optimality.
# This may be replaced when dependencies are built.
