file(REMOVE_RECURSE
  "../bench/micro_engine_benchmark"
  "../bench/micro_engine_benchmark.pdb"
  "CMakeFiles/micro_engine_benchmark.dir/micro_engine_benchmark.cpp.o"
  "CMakeFiles/micro_engine_benchmark.dir/micro_engine_benchmark.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_engine_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
