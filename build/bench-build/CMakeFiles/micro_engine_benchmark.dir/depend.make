# Empty dependencies file for micro_engine_benchmark.
# This may be replaced when dependencies are built.
