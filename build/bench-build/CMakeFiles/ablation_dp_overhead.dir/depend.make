# Empty dependencies file for ablation_dp_overhead.
# This may be replaced when dependencies are built.
