file(REMOVE_RECURSE
  "../bench/ablation_dp_overhead"
  "../bench/ablation_dp_overhead.pdb"
  "CMakeFiles/ablation_dp_overhead.dir/ablation_dp_overhead.cpp.o"
  "CMakeFiles/ablation_dp_overhead.dir/ablation_dp_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dp_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
