# Empty dependencies file for ablation_multipair.
# This may be replaced when dependencies are built.
