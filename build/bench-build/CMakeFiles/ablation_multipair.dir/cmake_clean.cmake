file(REMOVE_RECURSE
  "../bench/ablation_multipair"
  "../bench/ablation_multipair.pdb"
  "CMakeFiles/ablation_multipair.dir/ablation_multipair.cpp.o"
  "CMakeFiles/ablation_multipair.dir/ablation_multipair.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multipair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
