# Empty compiler generated dependencies file for fig9_control_arrival_sweep.
# This may be replaced when dependencies are built.
