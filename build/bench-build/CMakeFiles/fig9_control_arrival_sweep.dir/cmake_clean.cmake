file(REMOVE_RECURSE
  "../bench/fig9_control_arrival_sweep"
  "../bench/fig9_control_arrival_sweep.pdb"
  "CMakeFiles/fig9_control_arrival_sweep.dir/fig9_control_arrival_sweep.cpp.o"
  "CMakeFiles/fig9_control_arrival_sweep.dir/fig9_control_arrival_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_control_arrival_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
