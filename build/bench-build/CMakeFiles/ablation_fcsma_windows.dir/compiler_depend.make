# Empty compiler generated dependencies file for ablation_fcsma_windows.
# This may be replaced when dependencies are built.
