file(REMOVE_RECURSE
  "../bench/ablation_fcsma_windows"
  "../bench/ablation_fcsma_windows.pdb"
  "CMakeFiles/ablation_fcsma_windows.dir/ablation_fcsma_windows.cpp.o"
  "CMakeFiles/ablation_fcsma_windows.dir/ablation_fcsma_windows.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fcsma_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
