file(REMOVE_RECURSE
  "../bench/theory_stationary_distribution"
  "../bench/theory_stationary_distribution.pdb"
  "CMakeFiles/theory_stationary_distribution.dir/theory_stationary_distribution.cpp.o"
  "CMakeFiles/theory_stationary_distribution.dir/theory_stationary_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_stationary_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
