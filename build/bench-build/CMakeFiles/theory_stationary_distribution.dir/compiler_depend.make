# Empty compiler generated dependencies file for theory_stationary_distribution.
# This may be replaced when dependencies are built.
