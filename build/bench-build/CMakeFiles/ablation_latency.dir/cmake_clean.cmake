file(REMOVE_RECURSE
  "../bench/ablation_latency"
  "../bench/ablation_latency.pdb"
  "CMakeFiles/ablation_latency.dir/ablation_latency.cpp.o"
  "CMakeFiles/ablation_latency.dir/ablation_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
