file(REMOVE_RECURSE
  "../bench/ablation_influence_functions"
  "../bench/ablation_influence_functions.pdb"
  "CMakeFiles/ablation_influence_functions.dir/ablation_influence_functions.cpp.o"
  "CMakeFiles/ablation_influence_functions.dir/ablation_influence_functions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_influence_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
