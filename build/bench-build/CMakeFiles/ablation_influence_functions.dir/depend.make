# Empty dependencies file for ablation_influence_functions.
# This may be replaced when dependencies are built.
