file(REMOVE_RECURSE
  "../bench/ablation_robustness"
  "../bench/ablation_robustness.pdb"
  "CMakeFiles/ablation_robustness.dir/ablation_robustness.cpp.o"
  "CMakeFiles/ablation_robustness.dir/ablation_robustness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
