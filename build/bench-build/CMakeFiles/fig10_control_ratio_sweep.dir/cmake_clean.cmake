file(REMOVE_RECURSE
  "../bench/fig10_control_ratio_sweep"
  "../bench/fig10_control_ratio_sweep.pdb"
  "CMakeFiles/fig10_control_ratio_sweep.dir/fig10_control_ratio_sweep.cpp.o"
  "CMakeFiles/fig10_control_ratio_sweep.dir/fig10_control_ratio_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_control_ratio_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
