# Empty compiler generated dependencies file for fig10_control_ratio_sweep.
# This may be replaced when dependencies are built.
