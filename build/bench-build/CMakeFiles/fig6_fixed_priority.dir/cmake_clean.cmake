file(REMOVE_RECURSE
  "../bench/fig6_fixed_priority"
  "../bench/fig6_fixed_priority.pdb"
  "CMakeFiles/fig6_fixed_priority.dir/fig6_fixed_priority.cpp.o"
  "CMakeFiles/fig6_fixed_priority.dir/fig6_fixed_priority.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_fixed_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
