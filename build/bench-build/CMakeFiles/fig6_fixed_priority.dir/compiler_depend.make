# Empty compiler generated dependencies file for fig6_fixed_priority.
# This may be replaced when dependencies are built.
