file(REMOVE_RECURSE
  "../bench/fig3_symmetric_arrival_sweep"
  "../bench/fig3_symmetric_arrival_sweep.pdb"
  "CMakeFiles/fig3_symmetric_arrival_sweep.dir/fig3_symmetric_arrival_sweep.cpp.o"
  "CMakeFiles/fig3_symmetric_arrival_sweep.dir/fig3_symmetric_arrival_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_symmetric_arrival_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
