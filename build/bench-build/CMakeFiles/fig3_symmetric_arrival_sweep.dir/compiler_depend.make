# Empty compiler generated dependencies file for fig3_symmetric_arrival_sweep.
# This may be replaced when dependencies are built.
