file(REMOVE_RECURSE
  "../bench/region_two_link"
  "../bench/region_two_link.pdb"
  "CMakeFiles/region_two_link.dir/region_two_link.cpp.o"
  "CMakeFiles/region_two_link.dir/region_two_link.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_two_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
