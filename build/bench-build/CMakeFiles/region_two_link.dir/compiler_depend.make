# Empty compiler generated dependencies file for region_two_link.
# This may be replaced when dependencies are built.
