# Empty compiler generated dependencies file for priority_swap_trace.
# This may be replaced when dependencies are built.
