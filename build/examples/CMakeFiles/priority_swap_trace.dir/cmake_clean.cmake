file(REMOVE_RECURSE
  "CMakeFiles/priority_swap_trace.dir/priority_swap_trace.cpp.o"
  "CMakeFiles/priority_swap_trace.dir/priority_swap_trace.cpp.o.d"
  "priority_swap_trace"
  "priority_swap_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_swap_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
