file(REMOVE_RECURSE
  "CMakeFiles/low_latency_control.dir/low_latency_control.cpp.o"
  "CMakeFiles/low_latency_control.dir/low_latency_control.cpp.o.d"
  "low_latency_control"
  "low_latency_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/low_latency_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
