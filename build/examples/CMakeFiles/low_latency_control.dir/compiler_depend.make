# Empty compiler generated dependencies file for low_latency_control.
# This may be replaced when dependencies are built.
