# Empty compiler generated dependencies file for video_delivery.
# This may be replaced when dependencies are built.
