file(REMOVE_RECURSE
  "CMakeFiles/video_delivery.dir/video_delivery.cpp.o"
  "CMakeFiles/video_delivery.dir/video_delivery.cpp.o.d"
  "video_delivery"
  "video_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
