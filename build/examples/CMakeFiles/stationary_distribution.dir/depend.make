# Empty dependencies file for stationary_distribution.
# This may be replaced when dependencies are built.
