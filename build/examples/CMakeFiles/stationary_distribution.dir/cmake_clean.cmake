file(REMOVE_RECURSE
  "CMakeFiles/stationary_distribution.dir/stationary_distribution.cpp.o"
  "CMakeFiles/stationary_distribution.dir/stationary_distribution.cpp.o.d"
  "stationary_distribution"
  "stationary_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stationary_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
