file(REMOVE_RECURSE
  "CMakeFiles/rtmac_sim.dir/rtmac_sim.cpp.o"
  "CMakeFiles/rtmac_sim.dir/rtmac_sim.cpp.o.d"
  "rtmac_sim"
  "rtmac_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtmac_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
