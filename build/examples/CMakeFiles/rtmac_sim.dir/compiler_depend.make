# Empty compiler generated dependencies file for rtmac_sim.
# This may be replaced when dependencies are built.
