// Traces the paper's Example 2 / Fig. 2: a 4-link network with perfect
// channels and one packet per interval, showing how two candidate links
// exchange priorities purely through backoff timers and carrier sensing.
// Prints the per-interval candidate pair, coin tosses (inferred from the
// evolution), and the resulting priority vector.
//
//   $ ./priority_swap_trace [intervals]
#include <cstdlib>
#include <iostream>
#include <string>

#include "expfw/scenarios.hpp"
#include "mac/dp_link_mac.hpp"
#include "net/network.hpp"
#include "traffic/arrival_process.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const IntervalIndex intervals = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 25;

  std::cout << "DP protocol priority-exchange trace (paper Example 2 / Fig. 2)\n";
  std::cout << "4 links, p = 1, one packet per interval, mu = 0.5 everywhere\n\n";

  auto cfg = net::symmetric_network(4, Duration::milliseconds(20),
                                    phy::PhyParams::video_80211a(), 1.0,
                                    traffic::ConstantArrivals{1}, 0.9, 20240706);
  net::Network net{std::move(cfg), expfw::dp_fixed_mu_factory({0.5, 0.5, 0.5, 0.5})};
  auto* dp = dynamic_cast<mac::DpScheme*>(&net.scheme());

  const mac::SharedSeed seed{mix64(20240706, 0x5EEDC0DE)};  // matches DpScheme internals

  TablePrinter table{{"interval k", "candidate pair C(k)", "sigma before", "sigma after",
                      "swapped?"}};
  core::Permutation before = dp->priorities();
  for (IntervalIndex k = 0; k < intervals; ++k) {
    const auto c = seed.candidate(k, 4);
    net.run(1);
    const core::Permutation after = dp->priorities();
    std::string pair = "(";
    pair += std::to_string(c);
    pair += ',';
    pair += std::to_string(c + 1);
    pair += ')';
    table.add_row({TablePrinter::num(static_cast<std::int64_t>(k)), std::move(pair),
                   before.to_string(), after.to_string(),
                   after == before ? "no" : "YES"});
    before = after;
  }
  table.print(std::cout);

  std::cout << "\nEvery change is an adjacent transposition at the candidate pair;\n"
               "zero collisions occurred: " << net.medium().counters().collisions << "\n";
  return 0;
}
