// rtmac_sim — configurable command-line front end to the whole library.
//
//   $ ./rtmac_sim --scheme dbdp --links 20 --profile video --alpha 0.55
//                 --rho 0.9 --p 0.7 --intervals 2000 --seed 1 [--pairs 4]
//                 [--learned-p] [--csv out.csv] [--metrics-out DIR]
//                 [--trace-out trace.json]             (one line in the shell)
//
// Profiles: video (bursty U{1..6}, 20 ms deadline) | control (Bernoulli,
// 2 ms deadline). Schemes: dbdp | ldf | eldf | fcsma | dcf | static.
// Prints the run summary (deficiency, per-link stats, channel accounting)
// and optionally a per-link CSV. --trace-out writes a Chrome trace-event
// timeline of the whole run (open it at https://ui.perfetto.dev);
// --metrics-out writes JSONL metrics + an engine profile under DIR.
#include <fstream>
#include <iostream>
#include <memory>

#include "expfw/observe.hpp"
#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "stats/deficiency.hpp"
#include "stats/fairness.hpp"
#include "traffic/arrival_process.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

void usage() {
  std::cout <<
      "usage: rtmac_sim [--scheme dbdp|ldf|eldf|fcsma|dcf|static]\n"
      "                 [--profile video|control] [--links N] [--alpha A | --lambda L]\n"
      "                 [--rho R] [--p P] [--intervals K] [--seed S]\n"
      "                 [--pairs k] [--learned-p] [--csv FILE]\n"
      "                 [--metrics-out DIR] [--trace-out FILE]\n"
      "                 [--metrics-stream FILE] [--stream-every N]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rtmac;
  const ArgParser args{argc, argv};
  const std::vector<std::string> known{"scheme",    "profile", "links", "alpha",
                                       "lambda",    "rho",     "p",     "intervals",
                                       "seed",      "pairs",   "learned-p", "csv",
                                       "metrics-out", "trace-out", "metrics-stream",
                                       "stream-every", "help"};
  if (args.has("help")) {
    usage();
    return 0;
  }
  for (const auto& f : args.unknown_flags(known)) {
    std::cerr << "unknown flag --" << f << "\n";
    usage();
    return 2;
  }

  const std::string scheme_name = args.get("scheme", std::string{"dbdp"});
  const std::string profile = args.get("profile", std::string{"video"});
  const auto links = static_cast<std::size_t>(args.get("links", std::int64_t{20}));
  const double rho = args.get("rho", 0.9);
  const double p = args.get("p", 0.7);
  const auto intervals = static_cast<IntervalIndex>(args.get("intervals", std::int64_t{2000}));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{1}));
  const auto pairs = static_cast<int>(args.get("pairs", std::int64_t{1}));

  net::NetworkConfig cfg;
  if (profile == "video") {
    const double alpha = args.get("alpha", 0.55);
    cfg = net::symmetric_network(links, Duration::milliseconds(20),
                                 phy::PhyParams::video_80211a(), p,
                                 traffic::UniformBurstyArrivals{alpha}, rho, seed);
  } else if (profile == "control") {
    const double lambda = args.get("lambda", 0.78);
    cfg = net::symmetric_network(links, Duration::milliseconds(2),
                                 phy::PhyParams::control_80211a(), p,
                                 traffic::BernoulliArrivals{lambda}, rho, seed);
  } else {
    std::cerr << "unknown profile '" << profile << "'\n";
    return 2;
  }

  mac::SchemeFactory factory;
  if (scheme_name == "dbdp") {
    factory = args.has("learned-p") ? expfw::dbdp_estimated_p_factory()
              : pairs > 1           ? expfw::dbdp_multipair_factory(pairs)
                                    : expfw::dbdp_factory();
  } else if (scheme_name == "ldf") {
    factory = expfw::ldf_factory();
  } else if (scheme_name == "eldf") {
    factory = expfw::eldf_factory(expfw::paper_influence());
  } else if (scheme_name == "fcsma") {
    factory = expfw::fcsma_factory();
  } else if (scheme_name == "dcf") {
    factory = expfw::dcf_factory();
  } else if (scheme_name == "static") {
    factory = expfw::dp_static_priority_factory();
  } else {
    std::cerr << "unknown scheme '" << scheme_name << "'\n";
    return 2;
  }

  net::Network network{std::move(cfg), factory};
  expfw::RunObserver observer{
      args.get("metrics-out", std::string{}), args.get("trace-out", std::string{}),
      args.get("metrics-stream", std::string{}),
      static_cast<std::uint64_t>(args.get("stream-every", std::int64_t{10}))};
  observer.attach(network, scheme_name);
  network.run(intervals);
  if (!observer.finish()) return 1;

  const auto q = network.config().requirements.q();
  const auto& counters = network.medium().counters();
  const auto tputs = network.stats().timely_throughputs();

  std::cout << "scheme: " << network.scheme().name() << "  links: " << links
            << "  profile: " << profile << "  intervals: " << intervals << " ("
            << network.simulator().now().seconds_f() << " s simulated)\n\n";
  std::cout << "total timely-throughput deficiency: " << network.total_deficiency() << "\n";
  std::cout << "Jain fairness (timely-throughput):  " << stats::jain_index(tputs) << "\n";
  std::cout << "channel: " << counters.data_tx << " data tx, " << counters.empty_tx
            << " claim tx, " << counters.collisions << " collisions, "
            << counters.channel_losses << " channel losses, busy "
            << 100.0 * counters.busy_time.seconds_f() /
                   network.simulator().now().seconds_f()
            << "%\n\n";

  TablePrinter table{{"link", "q_n", "timely tput", "delivery ratio", "airtime share"}};
  const double sim_seconds = network.simulator().now().seconds_f();
  for (LinkId n = 0; n < links; ++n) {
    table.add_row({TablePrinter::num(static_cast<std::int64_t>(n)),
                   TablePrinter::num(q[n]), TablePrinter::num(tputs[n]),
                   TablePrinter::num(network.stats().delivery_ratio(n)),
                   TablePrinter::num(
                       network.medium().link_counters(n).airtime.seconds_f() / sim_seconds)});
  }
  table.print(std::cout);

  if (args.has("csv")) {
    const std::string path = args.get("csv", std::string{});
    std::ofstream file{path};
    if (!file) {
      std::cerr << "cannot open " << path << "\n";
      return 1;
    }
    CsvWriter csv{file};
    csv.header({"link", "q", "timely_throughput", "delivery_ratio"});
    for (LinkId n = 0; n < links; ++n) {
      csv.field(static_cast<std::int64_t>(n))
          .field(q[n])
          .field(tputs[n])
          .field(network.stats().delivery_ratio(n));
      csv.end_row();
    }
    std::cout << "\nper-link CSV written to " << path << "\n";
  }
  return 0;
}
