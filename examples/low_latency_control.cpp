// Ultra-low-latency control messaging scenario (paper Section VI-B):
// 10 sensor/actuator links exchange 100 B control packets under a 2 ms
// per-packet deadline with a 99% delivery-ratio requirement — the
// industrial-control regime that motivates decentralized operation.
//
//   $ ./low_latency_control [lambda] [intervals]
#include <cstdlib>
#include <iostream>

#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const double lambda = argc > 1 ? std::atof(argv[1]) : 0.78;
  const IntervalIndex intervals = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10000;

  std::cout << "Ultra-low-latency control: 10 links, Bernoulli(" << lambda
            << ") arrivals, 2 ms deadline, rho = 0.99, " << intervals << " intervals ("
            << intervals * 2 / 1000 << " s)\n";
  std::cout << "16 transmission opportunities per interval; DB-DP loses 1-2 to "
               "backoff + priority claims\n\n";

  TablePrinter table{{"scheme", "total deficiency", "mean delivery ratio",
                      "empty packets/interval", "collisions"}};
  for (const auto& factory :
       {expfw::ldf_factory(), expfw::dbdp_factory(), expfw::fcsma_factory()}) {
    net::Network net{expfw::control_symmetric(lambda, 0.99, 77), factory};
    net.run(intervals);
    double mean_ratio = 0.0;
    for (LinkId n = 0; n < 10; ++n) mean_ratio += net.stats().delivery_ratio(n) / 10.0;
    table.add_row(
        {net.scheme().name(), TablePrinter::num(net.total_deficiency()),
         TablePrinter::num(mean_ratio),
         TablePrinter::num(static_cast<double>(net.medium().counters().empty_tx) /
                           static_cast<double>(intervals)),
         TablePrinter::num(static_cast<std::int64_t>(net.medium().counters().collisions))});
  }
  table.print(std::cout);

  std::cout << "\nEven at a 2 ms deadline the DB-DP overhead (at most N+1 backoff slots\n"
               "of 9 us plus two 70 us empty packets per interval) stays small enough\n"
               "to track the centralized optimum.\n";
  return 0;
}
