// Demonstrates the theory API: builds the exact priority Markov chain for a
// 4-link network with fixed coin biases, prints the analytic stationary law
// (eq. 10) next to the numeric fixed point, and shows how the DB-DP law
// (eq. 15) concentrates on the ELDF ordering as debts grow.
#include <iostream>

#include "analysis/priority_chain.hpp"
#include "core/influence.hpp"
#include "core/mu.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main() {
  using namespace rtmac;

  std::cout << "Exact stationary analysis of the DP priority chain\n\n";

  const std::vector<double> mu{0.2, 0.4, 0.6, 0.8};
  const analysis::PriorityChain chain{mu};
  const auto analytic = chain.stationary_analytic();
  const auto numeric = chain.stationary_numeric();

  std::cout << "fixed coin biases mu = {0.2, 0.4, 0.6, 0.8} (link 3 climbs hardest)\n";
  TablePrinter table{{"sigma (link->priority)", "pi* analytic", "pi* numeric"}};
  // Show the five most likely states.
  std::vector<std::size_t> idx(chain.num_states());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return analytic[a] > analytic[b]; });
  for (std::size_t i = 0; i < 5; ++i) {
    table.add_row({chain.states()[idx[i]].to_string(),
                   TablePrinter::num(analytic[idx[i]], 5),
                   TablePrinter::num(numeric[idx[i]], 5)});
  }
  table.print(std::cout);
  std::cout << "most likely state gives link 3 priority 1, link 0 priority 4\n";
  std::cout << "detailed-balance residual: " << chain.detailed_balance_residual(analytic)
            << "\n\n";

  std::cout << "DB-DP law (eq. 15) as debts scale up — concentration on ELDF ordering:\n";
  const core::DebtMu formula{core::Influence::identity(), 10.0};
  const ProbabilityVector p{1.0, 1.0, 1.0, 1.0};
  TablePrinter table2{{"debt scale", "P(sigma = ELDF ordering)"}};
  for (double scale : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const std::vector<double> debts{4.0 * scale, 3.0 * scale, 2.0 * scale, 1.0 * scale};
    const auto pi = analysis::dbdp_stationary_law(formula, debts, p);
    // ELDF ordering = identity (debts sorted descending by link id).
    table2.add_row({TablePrinter::num(scale, 1),
                    TablePrinter::num(pi[core::Permutation::identity(4).rank()], 6)});
  }
  table2.print(std::cout);
  std::cout << "\nas ||d|| grows the chain behaves like the centralized ELDF schedule —\n"
               "the mechanism behind Proposition 4 / Theorem 1.\n";
  return 0;
}
