// Real-time video delivery scenario (paper Section VI-A): 20 collocated
// links stream bursty video (U{1..6} packets per 20 ms interval with
// probability alpha) for machine vision / process surveillance. Compares
// the three schemes at one operating point and reports per-group detail.
//
//   $ ./video_delivery [alpha] [rho] [intervals]
#include <cstdlib>
#include <iostream>

#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const double alpha = argc > 1 ? std::atof(argv[1]) : 0.55;
  const double rho = argc > 2 ? std::atof(argv[2]) : 0.9;
  const IntervalIndex intervals = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2000;

  std::cout << "Real-time video delivery: 20 links, alpha* = " << alpha << ", rho = " << rho
            << ", " << intervals << " intervals (" << intervals * 20 / 1000 << " s)\n\n";

  TablePrinter table{{"scheme", "total deficiency", "worst-link ratio", "collisions",
                      "channel busy share"}};
  for (const auto& factory :
       {expfw::ldf_factory(), expfw::dbdp_factory(), expfw::fcsma_factory(),
        expfw::dcf_factory()}) {
    net::Network net{expfw::video_symmetric(alpha, rho, 42), factory};
    net.run(intervals);
    double worst_ratio = 1.0;
    for (LinkId n = 0; n < 20; ++n) {
      worst_ratio = std::min(worst_ratio, net.stats().delivery_ratio(n));
    }
    const double busy = net.medium().counters().busy_time.seconds_f() /
                        (net.simulator().now() - TimePoint::origin()).seconds_f();
    table.add_row({net.scheme().name(), TablePrinter::num(net.total_deficiency()),
                   TablePrinter::num(worst_ratio),
                   TablePrinter::num(static_cast<std::int64_t>(
                       net.medium().counters().collisions)),
                   TablePrinter::num(busy)});
  }
  table.print(std::cout);

  std::cout << "\nDB-DP should match LDF (zero collisions); FCSMA and DCF lose capacity\n"
               "to collisions and random-backoff overhead.\n";
  return 0;
}
