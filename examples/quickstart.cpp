// Quickstart: build a small real-time wireless network, run the
// decentralized DB-DP protocol against the centralized LDF genie, and print
// the headline metric (total timely-throughput deficiency, Definition 1).
//
//   $ ./quickstart
//
// Walks through the whole public API surface: PhyParams -> NetworkConfig ->
// scheme factory -> Network -> stats.
#include <iostream>

#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "traffic/arrival_process.hpp"

int main() {
  using namespace rtmac;

  // 1. A network of 8 fully-interfering links. Each link delivers 1500 B
  //    video packets (330 us airtime incl. ACK) under a 20 ms per-packet
  //    deadline, succeeds with probability 0.7 per clean transmission, and
  //    must achieve a 90% on-time delivery ratio.
  auto config = net::symmetric_network(
      /*num_links=*/8,
      /*interval_length=*/Duration::milliseconds(20), phy::PhyParams::video_80211a(),
      /*p=*/0.7, traffic::UniformBurstyArrivals{/*alpha=*/0.5},
      /*rho=*/0.9, /*seed=*/2024);

  std::cout << "rtmac quickstart: 8 links, 20 ms deadline, p = 0.7, rho = 0.9\n";
  std::cout << "workload utilization (necessary bound): "
            << core::workload_utilization(config.requirements.q(), config.success_prob,
                                          config.phy.transmissions_per_interval(
                                              config.interval_length))
            << " (must be < 1 to be feasible)\n\n";

  // 2. Run the decentralized protocol for 2000 deadline intervals (40 s of
  //    virtual air time).
  net::Network dbdp{config.clone(), expfw::dbdp_factory()};
  dbdp.run(2000);

  // 3. Compare against the centralized feasibility-optimal genie.
  net::Network ldf{config.clone(), expfw::ldf_factory()};
  ldf.run(2000);

  std::cout << "after 2000 intervals:\n";
  std::cout << "  DB-DP total deficiency: " << dbdp.total_deficiency()
            << "   (collisions: " << dbdp.medium().counters().collisions << ")\n";
  std::cout << "  LDF   total deficiency: " << ldf.total_deficiency() << "\n\n";

  std::cout << "per-link timely-throughput under DB-DP (target q = "
            << config.requirements.q()[0] << "):\n";
  for (LinkId n = 0; n < config.num_links(); ++n) {
    std::cout << "  link " << n << ": " << dbdp.stats().timely_throughput(n) << "\n";
  }

  std::cout << "\nThe decentralized protocol fulfills the requirement without any\n"
               "controller, control packets, or collisions — only carrier sensing\n"
               "and priority-indexed backoff.\n";
  return 0;
}
