// Regenerates Fig. 10: deficiency of the control network at fixed
// lambda* = 0.78, sweeping the required delivery ratio. Paper shape:
// DB-DP close to LDF all the way to rho ~ 0.99; FCSMA deficient from much
// lower ratios.
#include <iostream>

#include "expfw/bench_cli.hpp"
#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 4000);

  expfw::print_figure_banner(
      std::cout, "Fig. 10",
      "control network, lambda* = 0.78, deficiency vs delivery ratio",
      "DB-DP ~ LDF up to rho ~ 0.99; FCSMA deficiency grows across the sweep");

  const auto grid = expfw::linspace(0.80, 1.00, args.grid_points(9));
  const auto config_at = [](double rho) { return expfw::control_symmetric(0.78, rho, 1010); };

  const auto results = expfw::run_sweeps(
      {{"LDF", expfw::ldf_factory()},
       {"DB-DP", expfw::dbdp_factory()},
       {"FCSMA", expfw::fcsma_factory()}},
      config_at, grid, args.intervals, expfw::total_deficiency_metric(), {"deficiency"},
      args.sweep);

  expfw::print_sweep_table(std::cout, "rho", results);
  expfw::write_sweep_csv(expfw::bench_output_dir() + "/fig10.csv", "rho", results);
  std::cout << "\n(" << args.intervals << " intervals/point; paper used 20000)\n";
  return 0;
}
