// Regenerates Fig. 10: deficiency of the control network at fixed
// lambda* = 0.78, sweeping the required delivery ratio. Paper shape:
// DB-DP close to LDF all the way to rho ~ 0.99; FCSMA deficient from much
// lower ratios.
#include <iostream>

#include "expfw/figure_bench.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 4000);

  const expfw::FigureSpec spec{
      .figure_id = "Fig. 10",
      .description = "control network, lambda* = 0.78, deficiency vs delivery ratio",
      .expected_shape =
          "DB-DP ~ LDF up to rho ~ 0.99; FCSMA deficiency grows across the sweep",
      .x_label = "rho",
      .csv_column = "rho",
      .csv_basename = "fig10.csv",
      .schemes = expfw::paper_scheme_table(),
      .metric = expfw::total_deficiency_metric(),
      .metric_names = {"deficiency"},
      .paper_intervals = 20000,
  };

  const auto grid = expfw::linspace(0.80, 1.00, args.grid_points(9));
  const auto config_at = [](double rho) { return expfw::control_symmetric(0.78, rho, 1010); };

  (void)expfw::run_figure_sweep(std::cout, spec, config_at, grid, args);
  return 0;
}
