// Regenerates Fig. 4: deficiency of the symmetric video network at fixed
// alpha* = 0.55, sweeping the required delivery ratio rho. Paper shape:
// DB-DP and LDF support nearly the same maximum ratio (~0.95+); FCSMA's
// deficiency grows steeply across the whole range.
#include <iostream>

#include "expfw/bench_cli.hpp"
#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 1000);

  expfw::print_figure_banner(
      std::cout, "Fig. 4",
      "symmetric video network, alpha* = 0.55, deficiency vs delivery ratio",
      "DB-DP ~ LDF up to rho ~ 0.95; FCSMA deficient everywhere above rho ~ 0.6");

  const auto grid = expfw::linspace(0.60, 1.00, args.grid_points(9));
  const auto config_at = [](double rho) { return expfw::video_symmetric(0.55, rho, 1002); };

  const auto results = expfw::run_sweeps(
      {{"LDF", expfw::ldf_factory()},
       {"DB-DP", expfw::dbdp_factory()},
       {"FCSMA", expfw::fcsma_factory()}},
      config_at, grid, args.intervals, expfw::total_deficiency_metric(), {"deficiency"},
      args.sweep);

  expfw::print_sweep_table(std::cout, "rho", results);
  expfw::write_sweep_csv(expfw::bench_output_dir() + "/fig4.csv", "rho", results);
  std::cout << "\n(" << args.intervals << " intervals/point; paper used 5000)\n";
  return 0;
}
