// Regenerates Fig. 4: deficiency of the symmetric video network at fixed
// alpha* = 0.55, sweeping the required delivery ratio rho. Paper shape:
// DB-DP and LDF support nearly the same maximum ratio (~0.95+); FCSMA's
// deficiency grows steeply across the whole range.
#include <cstdlib>
#include <iostream>

#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const IntervalIndex intervals = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;

  expfw::print_figure_banner(
      std::cout, "Fig. 4",
      "symmetric video network, alpha* = 0.55, deficiency vs delivery ratio",
      "DB-DP ~ LDF up to rho ~ 0.95; FCSMA deficient everywhere above rho ~ 0.6");

  const auto grid = expfw::linspace(0.60, 1.00, 9);
  const auto config_at = [](double rho) { return expfw::video_symmetric(0.55, rho, 1002); };
  const auto metric = expfw::total_deficiency_metric();

  std::vector<expfw::SweepResult> results;
  results.push_back(expfw::run_sweep("LDF", expfw::ldf_factory(), config_at, grid, intervals,
                                     metric, {"deficiency"}));
  results.push_back(expfw::run_sweep("DB-DP", expfw::dbdp_factory(), config_at, grid,
                                     intervals, metric, {"deficiency"}));
  results.push_back(expfw::run_sweep("FCSMA", expfw::fcsma_factory(), config_at, grid,
                                     intervals, metric, {"deficiency"}));

  expfw::print_sweep_table(std::cout, "rho", results);
  expfw::write_sweep_csv(expfw::bench_output_dir() + "/fig4.csv", "rho", results);
  std::cout << "\n(" << intervals << " intervals/point; paper used 5000)\n";
  return 0;
}
