// Regenerates Fig. 4: deficiency of the symmetric video network at fixed
// alpha* = 0.55, sweeping the required delivery ratio rho. Paper shape:
// DB-DP and LDF support nearly the same maximum ratio (~0.95+); FCSMA's
// deficiency grows steeply across the whole range.
#include <iostream>

#include "expfw/figure_bench.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 1000);

  const expfw::FigureSpec spec{
      .figure_id = "Fig. 4",
      .description = "symmetric video network, alpha* = 0.55, deficiency vs delivery ratio",
      .expected_shape =
          "DB-DP ~ LDF up to rho ~ 0.95; FCSMA deficient everywhere above rho ~ 0.6",
      .x_label = "rho",
      .csv_column = "rho",
      .csv_basename = "fig4.csv",
      .schemes = expfw::paper_scheme_table(),
      .metric = expfw::total_deficiency_metric(),
      .metric_names = {"deficiency"},
      .paper_intervals = 5000,
  };

  const auto grid = expfw::linspace(0.60, 1.00, args.grid_points(9));
  const auto config_at = [](double rho) { return expfw::video_symmetric(0.55, rho, 1002); };

  (void)expfw::run_figure_sweep(std::cout, spec, config_at, grid, args);
  return 0;
}
