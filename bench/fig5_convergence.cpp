// Regenerates Fig. 5: convergence of the timely-throughput of the link that
// starts at the LOWEST priority, under DB-DP vs LDF, at alpha* = 0.55 and
// 93% delivery ratio. Paper shape: both converge to the requirement
// q = 3.5 * 0.55 * 0.93 ~ 1.79 within a comparable number of intervals
// (DB-DP within the same order as LDF; no starvation).
//
// A time-series bench, not a sweep: --reps/--jobs are accepted (standard
// CLI) but the three runs execute sequentially. --metrics-out/--trace-out
// observe the DB-DP run (the one the figure is about).
#include <iostream>

#include "expfw/bench_cli.hpp"
#include "expfw/observe.hpp"
#include "expfw/report.hpp"
#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "stats/time_series.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 3000, 100);
  const IntervalIndex intervals = args.intervals;
  constexpr LinkId kWatched = 19;  // lowest initial priority (identity start)
  const double q = 3.5 * 0.55 * 0.93;

  expfw::print_figure_banner(
      std::cout, "Fig. 5",
      "cumulative timely-throughput of the initially-lowest-priority link, "
      "alpha* = 0.55, rho = 0.93",
      "both schemes converge to q ~ 1.79; DB-DP convergence comparable to LDF");

  expfw::RunObserver observer{args.sweep.metrics_dir, args.sweep.trace_out,
                              args.sweep.stream_path, args.sweep.stream_every};
  auto run_series = [&](const mac::SchemeFactory& factory, bool observe) {
    net::Network net{expfw::video_symmetric(0.55, 0.93, 1005), factory};
    if (observe) observer.attach(net, "dbdp");
    stats::TimeSeries series;
    net.add_observer([&](IntervalIndex, std::span<const int>,
                         std::span<const int> delivered) {
      series.push(static_cast<double>(delivered[kWatched]));
    });
    net.run(intervals);
    if (observe) observer.finish();
    return series;
  };

  const auto ldf = run_series(expfw::ldf_factory(), false);
  const auto dbdp = run_series(expfw::dbdp_factory(), true);
  // Remark 6 extension: multiple swap pairs accelerate exactly this metric.
  const auto dbdp4 = run_series(expfw::dbdp_multipair_factory(4), false);
  const auto ldf_mean = ldf.cumulative_mean();
  const auto dbdp_mean = dbdp.cumulative_mean();
  const auto dbdp4_mean = dbdp4.cumulative_mean();

  TablePrinter table{{"interval", "LDF", "DB-DP", "DB-DP(x4 pairs)", "target q"}};
  const std::size_t first_row = std::min<std::size_t>(50, ldf_mean.size());
  for (std::size_t k = first_row; k <= ldf_mean.size(); k = k < 500 ? k + 50 : k + 500) {
    table.add_row({TablePrinter::num(static_cast<std::int64_t>(k)),
                   TablePrinter::num(ldf_mean[k - 1]), TablePrinter::num(dbdp_mean[k - 1]),
                   TablePrinter::num(dbdp4_mean[k - 1]), TablePrinter::num(q)});
  }
  table.print(std::cout);

  auto report = [&](const char* name, const stats::TimeSeries& series, double tol) {
    const auto conv = stats::convergence_interval(series, q, tol);
    std::cout << "  " << name << ": "
              << (conv ? std::to_string(*conv) + " intervals" : "not settled");
  };
  std::cout << "\nconvergence to within 5% of q:";
  report("LDF", ldf, 0.05);
  report("DB-DP", dbdp, 0.05);
  report("DB-DP(x4)", dbdp4, 0.05);
  std::cout << "\nconvergence to within 1% of q:";
  report("LDF", ldf, 0.01);
  report("DB-DP", dbdp, 0.01);
  report("DB-DP(x4)", dbdp4, 0.01);
  std::cout << "\n";
  return 0;
}
