// Theory validation (Proposition 2 / eq. 10): runs the real DP protocol
// with fixed coin biases on the event-driven simulator and compares the
// empirical distribution over priority permutations against the analytic
// product-form stationary law. Also prints the detailed-balance residual
// and the mixing profile of the exact chain.
//
// --intervals sets the SAMPLE length (burn-in scales with it).
#include <iostream>

#include "analysis/priority_chain.hpp"
#include "expfw/bench_cli.hpp"
#include "expfw/scenarios.hpp"
#include "mac/dp_link_mac.hpp"
#include "net/network.hpp"
#include "traffic/arrival_process.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 40000, 1000);
  const IntervalIndex sample = args.intervals;
  const IntervalIndex burn_in = std::max<IntervalIndex>(sample / 20, 50);

  std::cout << "\n=== Theory: stationary law of the priority chain (eq. 10) ===\n";
  const std::vector<double> mu{0.3, 0.5, 0.7};
  const std::size_t n = mu.size();

  auto cfg = net::symmetric_network(n, Duration::milliseconds(2),
                                    phy::PhyParams::control_80211a(), 0.9,
                                    traffic::BernoulliArrivals{0.3}, 0.5, 77);
  net::Network network{std::move(cfg), expfw::dp_fixed_mu_factory(mu)};
  auto* dp = dynamic_cast<mac::DpScheme*>(&network.scheme());

  network.run(burn_in);
  std::vector<double> counts(6, 0.0);
  network.add_observer([&](IntervalIndex, std::span<const int>, std::span<const int>) {
    counts[dp->priorities().rank()] += 1.0;
  });
  network.run(sample);
  normalize(counts);

  const analysis::PriorityChain chain{mu};
  const auto pi = chain.stationary_analytic();

  TablePrinter table{{"sigma", "analytic pi* (eq. 10)", "empirical (DP on simulator)"}};
  for (std::size_t a = 0; a < chain.num_states(); ++a) {
    table.add_row({chain.states()[a].to_string(), TablePrinter::num(pi[a], 5),
                   TablePrinter::num(counts[a], 5)});
  }
  table.print(std::cout);

  std::cout << "\nTV(empirical, analytic)      = " << total_variation(counts, pi) << "\n";
  std::cout << "detailed-balance residual    = " << chain.detailed_balance_residual(pi)
            << "\n";
  std::cout << "TV to stationarity (exact chain) after 10/50/200 steps: "
            << chain.tv_from_start(core::Permutation::identity(n), 10) << " / "
            << chain.tv_from_start(core::Permutation::identity(n), 50) << " / "
            << chain.tv_from_start(core::Permutation::identity(n), 200) << "\n";
  return 0;
}
