// Disconnected-cells extension experiment: 24 links in six independent
// collision domains of 4 (expfw::disconnected_cells_topology). This is the
// canonical sharded-engine benchmark — the partitioner recovers the cells
// exactly, the cut sets are empty, and results are byte-identical for any
// --shards / --shard-jobs value. CI diffs this bench's CSV across
// (--jobs 1/4) x (--shards 1/4) to enforce that contract end to end.
//
// Expected: deficiency falls as load drops, and with six independent cells
// of 4 the contention inside each cell is far below the complete graph's,
// so every scheme clears loads the single-domain network cannot.
#include <cstdlib>
#include <iostream>

#include "expfw/figure_bench.hpp"
#include "expfw/scenarios.hpp"
#include "net/network_config.hpp"
#include "traffic/arrival_process.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 2000);

  constexpr std::size_t kNumLinks = 24;
  constexpr std::size_t kCellSize = 4;

  const expfw::MetricFn metric = [](const net::Network& network) {
    // Facade accessors only — this bench must run on either engine.
    const auto c = network.medium_counters();
    const auto attempts = std::max<std::uint64_t>(1, c.data_tx + c.empty_tx);
    return std::vector<double>{network.total_deficiency(),
                               static_cast<double>(c.collisions) / attempts};
  };
  // LDF/ELDF are centralized (not shardable); the lineup is the three
  // decentralized schemes the sharded engine supports.
  const std::vector<expfw::SchemeSpec> schemes{{"DB-DP", expfw::dbdp_factory()},
                                               {"FCSMA", expfw::fcsma_factory()},
                                               {"DCF", expfw::dcf_factory()}};
  const auto grid = expfw::linspace(0.60, 1.00, args.grid_points(9));

  const expfw::FigureSpec spec{
      .figure_id = "Topology C (disconnected cells)",
      .description = "24 links in 6 independent cells of 4, control traffic, rho = 0.99",
      .expected_shape = "per-cell contention only; identical output for any --shards",
      .x_label = "lambda*",
      .csv_column = "lambda",
      .csv_basename = "topology_cells.csv",
      .schemes = schemes,
      .metric = metric,
      .metric_names = {"deficiency", "coll_rate"},
      .paper_intervals = 20000,
  };
  const auto results = expfw::run_figure_sweep(
      std::cout, spec,
      [&](double l) {
        auto cfg = net::symmetric_network(kNumLinks, Duration::milliseconds(2),
                                          phy::PhyParams::control_80211a(), 0.7,
                                          traffic::BernoulliArrivals{l}, 0.99, 2311);
        cfg.topology = expfw::disconnected_cells_topology(kNumLinks, kCellSize);
        return cfg;
      },
      grid, args);

  // Sanity: the sweep must have produced every (scheme, grid) sample.
  for (const auto& r : results) {
    if (r.xs.size() != grid.size()) {
      std::cout << "FAIL: incomplete sweep for " << r.scheme << "\n";
      return 1;
    }
  }
  return 0;
}
