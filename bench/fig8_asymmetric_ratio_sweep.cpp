// Regenerates Fig. 8: group-wide deficiency of the asymmetric network at
// fixed alpha* = 0.7, sweeping the delivery ratio. Paper shape: as Fig. 7 —
// DB-DP ~ LDF; FCSMA group 1 dominated by deficiency.
#include <cstdlib>
#include <iostream>

#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const IntervalIndex intervals = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;

  expfw::print_figure_banner(
      std::cout, "Fig. 8",
      "asymmetric network (two groups), alpha* = 0.7, group deficiency vs rho",
      "DB-DP ~ LDF in both groups across rho; FCSMA group 1 much worse than group 2");

  const auto grid = expfw::linspace(0.60, 1.00, 9);
  const auto config_at = [](double rho) { return expfw::video_asymmetric(0.7, rho, 1008); };
  const auto metric =
      expfw::group_deficiency_metric({expfw::asymmetric_group(1), expfw::asymmetric_group(2)});
  const std::vector<std::string> names{"grp1", "grp2"};

  std::vector<expfw::SweepResult> results;
  results.push_back(expfw::run_sweep("LDF", expfw::ldf_factory(), config_at, grid, intervals,
                                     metric, names));
  results.push_back(expfw::run_sweep("DB-DP", expfw::dbdp_factory(), config_at, grid,
                                     intervals, metric, names));
  results.push_back(expfw::run_sweep("FCSMA", expfw::fcsma_factory(), config_at, grid,
                                     intervals, metric, names));

  expfw::print_sweep_table(std::cout, "rho", results);
  expfw::write_sweep_csv(expfw::bench_output_dir() + "/fig8.csv", "rho", results);
  std::cout << "\n(" << intervals << " intervals/point; paper used 5000)\n";
  return 0;
}
