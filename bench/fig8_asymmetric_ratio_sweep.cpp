// Regenerates Fig. 8: group-wide deficiency of the asymmetric network at
// fixed alpha* = 0.7, sweeping the delivery ratio. Paper shape: as Fig. 7 —
// DB-DP ~ LDF; FCSMA group 1 dominated by deficiency.
#include <iostream>

#include "expfw/figure_bench.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 1000);

  const expfw::FigureSpec spec{
      .figure_id = "Fig. 8",
      .description = "asymmetric network (two groups), alpha* = 0.7, group deficiency vs rho",
      .expected_shape =
          "DB-DP ~ LDF in both groups across rho; FCSMA group 1 much worse than group 2",
      .x_label = "rho",
      .csv_column = "rho",
      .csv_basename = "fig8.csv",
      .schemes = expfw::paper_scheme_table(),
      .metric = expfw::group_deficiency_metric(
          {expfw::asymmetric_group(1), expfw::asymmetric_group(2)}),
      .metric_names = {"grp1", "grp2"},
      .paper_intervals = 5000,
  };

  const auto grid = expfw::linspace(0.60, 1.00, args.grid_points(9));
  const auto config_at = [](double rho) { return expfw::video_asymmetric(0.7, rho, 1008); };

  (void)expfw::run_figure_sweep(std::cout, spec, config_at, grid, args);
  return 0;
}
