// Regenerates Fig. 8: group-wide deficiency of the asymmetric network at
// fixed alpha* = 0.7, sweeping the delivery ratio. Paper shape: as Fig. 7 —
// DB-DP ~ LDF; FCSMA group 1 dominated by deficiency.
#include <iostream>

#include "expfw/bench_cli.hpp"
#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 1000);

  expfw::print_figure_banner(
      std::cout, "Fig. 8",
      "asymmetric network (two groups), alpha* = 0.7, group deficiency vs rho",
      "DB-DP ~ LDF in both groups across rho; FCSMA group 1 much worse than group 2");

  const auto grid = expfw::linspace(0.60, 1.00, args.grid_points(9));
  const auto config_at = [](double rho) { return expfw::video_asymmetric(0.7, rho, 1008); };
  const auto metric =
      expfw::group_deficiency_metric({expfw::asymmetric_group(1), expfw::asymmetric_group(2)});

  const auto results = expfw::run_sweeps(
      {{"LDF", expfw::ldf_factory()},
       {"DB-DP", expfw::dbdp_factory()},
       {"FCSMA", expfw::fcsma_factory()}},
      config_at, grid, args.intervals, metric, {"grp1", "grp2"}, args.sweep);

  expfw::print_sweep_table(std::cout, "rho", results);
  expfw::write_sweep_csv(expfw::bench_output_dir() + "/fig8.csv", "rho", results);
  std::cout << "\n(" << args.intervals << " intervals/point; paper used 5000)\n";
  return 0;
}
