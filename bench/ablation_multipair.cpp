// Ablation for the Remark 6 extension: convergence speed and steady
// deficiency of DB-DP as the number of simultaneous candidate pairs grows.
// One pair is the base Algorithm 2; more pairs mix the priority chain
// faster at the cost of up to 2 extra backoff slots per pair.
#include <cstdlib>
#include <iostream>

#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "stats/time_series.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const IntervalIndex intervals = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3000;

  std::cout << "\n=== Ablation: multi-pair randomized reordering (Remark 6) ===\n";
  std::cout << "symmetric video network, alpha* = 0.55, rho = 0.9\n\n";

  TablePrinter table{{"swap pairs", "deficiency @500", "deficiency @1500",
                      "deficiency @" + std::to_string(intervals), "collisions"}};
  for (int pairs : {1, 2, 4, 8}) {
    net::Network net{expfw::video_symmetric(0.55, 0.9, 1016),
                     pairs == 1 ? expfw::dbdp_factory()
                                : expfw::dbdp_multipair_factory(pairs)};
    net.run(500);
    const double d500 = net.total_deficiency();
    net.run(1000);
    const double d1500 = net.total_deficiency();
    net.run(intervals - 1500);
    table.add_row({TablePrinter::num(static_cast<std::int64_t>(pairs)),
                   TablePrinter::num(d500), TablePrinter::num(d1500),
                   TablePrinter::num(net.total_deficiency()),
                   TablePrinter::num(static_cast<std::int64_t>(
                       net.medium().counters().collisions))});
  }
  table.print(std::cout);
  std::cout << "\nmore pairs converge faster with zero collisions throughout\n";
  return 0;
}
