// Ablation for the Remark 6 extension: convergence speed and steady
// deficiency of DB-DP as the number of simultaneous candidate pairs grows.
// One pair is the base Algorithm 2; more pairs mix the priority chain
// faster at the cost of up to 2 extra backoff slots per pair.
#include <iostream>
#include <string>

#include "expfw/bench_cli.hpp"
#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 3000, 60);
  // Milestones scale with the horizon so --smoke stays consistent.
  const IntervalIndex m1 = args.intervals / 6;
  const IntervalIndex m2 = args.intervals / 2;

  std::cout << "\n=== Ablation: multi-pair randomized reordering (Remark 6) ===\n";
  std::cout << "symmetric video network, alpha* = 0.55, rho = 0.9\n\n";

  TablePrinter table{{"swap pairs", "deficiency @" + std::to_string(m1),
                      "deficiency @" + std::to_string(m2),
                      "deficiency @" + std::to_string(args.intervals), "collisions"}};
  for (int pairs : {1, 2, 4, 8}) {
    net::Network net{expfw::video_symmetric(0.55, 0.9, 1016),
                     pairs == 1 ? expfw::dbdp_factory()
                                : expfw::dbdp_multipair_factory(pairs)};
    net.run(m1);
    const double d1 = net.total_deficiency();
    net.run(m2 - m1);
    const double d2 = net.total_deficiency();
    net.run(args.intervals - m2);
    table.add_row({TablePrinter::num(static_cast<std::int64_t>(pairs)),
                   TablePrinter::num(d1), TablePrinter::num(d2),
                   TablePrinter::num(net.total_deficiency()),
                   TablePrinter::num(static_cast<std::int64_t>(
                       net.medium().counters().collisions))});
  }
  table.print(std::cout);
  std::cout << "\nmore pairs converge faster with zero collisions throughout\n";
  return 0;
}
