// Ablation: within-deadline delivery-latency distribution per scheme.
//
// Not a paper figure (the paper reports timely-throughput only), but a
// natural question for the real-time setting: among packets that DO meet
// the deadline, how early do they arrive? The centralized genie serves
// back-to-back from the interval start; DP pays a few 9 us backoff slots;
// FCSMA/DCF pay random backoff plus collision retries.
#include <iostream>

#include "expfw/bench_cli.hpp"
#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "stats/latency.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 300, 25);

  std::cout << "\n=== Ablation: delivery-latency distribution (video, alpha*=0.55) ===\n";
  std::cout << "latency = delivery instant minus interval start; deadline = 20 ms\n\n";

  TablePrinter table{{"scheme", "deliveries", "p50", "p90", "p99", "max", "mean"}};
  for (const auto& factory : {expfw::ldf_factory(), expfw::dbdp_factory(),
                              expfw::fcsma_factory(), expfw::dcf_factory()}) {
    net::Network net{expfw::video_symmetric(0.55, 0.9, 1017), factory};
    sim::Tracer tracer{1u << 22};
    net.attach_tracer(&tracer);
    net.run(args.intervals);
    const auto lat = stats::delivery_latencies(tracer, Duration::milliseconds(20));
    table.add_row({net.scheme().name(),
                   TablePrinter::num(static_cast<std::int64_t>(lat.count())),
                   lat.quantile(0.5).to_string(), lat.quantile(0.9).to_string(),
                   lat.quantile(0.99).to_string(), lat.max().to_string(),
                   lat.mean().to_string()});
  }
  table.print(std::cout);
  std::cout << "\nall latencies bounded by the 20 ms deadline by construction;\n"
               "the tails show the cost of contention.\n";
  return 0;
}
