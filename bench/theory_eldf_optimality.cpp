// Theory validation (Lemma 3): the ELDF ordering maximizes the weighted
// expected deliveries sum f(d^+) E[S] over ALL N! priority orderings.
// Exhaustively evaluated with the exact PriorityEvaluator for N = 5 over
// random debt/reliability draws, and reports the optimality gap of the
// best non-ELDF ordering.
//
// --intervals sets the number of random trials (the bench's horizon knob).
#include <iostream>

#include "analysis/priority_evaluator.hpp"
#include "core/influence.hpp"
#include "core/permutation.hpp"
#include "expfw/bench_cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 20, 3);
  const int trials = static_cast<int>(args.intervals);

  std::cout << "\n=== Theory: ELDF optimality among priority orderings (Lemma 3) ===\n";

  const core::Influence f = core::Influence::paper_log();
  Rng rng{2025};
  constexpr std::size_t kN = 5;
  constexpr int kSlots = 12;

  TablePrinter table{{"trial", "ELDF objective", "best objective", "ELDF optimal?",
                      "runner-up gap"}};
  int optimal_count = 0;
  for (int trial = 0; trial < trials; ++trial) {
    ProbabilityVector p(kN);
    std::vector<double> debts(kN);
    std::vector<std::vector<double>> pmfs(kN);
    for (std::size_t n = 0; n < kN; ++n) {
      p[n] = rng.uniform_real(0.3, 1.0);
      debts[n] = rng.uniform_real(0.0, 8.0);
      const double a0 = rng.uniform_real(0.1, 0.6);
      pmfs[n] = {a0, (1.0 - a0) * 0.5, (1.0 - a0) * 0.5};
    }
    std::vector<double> weights(kN);
    for (std::size_t n = 0; n < kN; ++n) weights[n] = f(debts[n]);

    analysis::PriorityEvaluator eval{p, kSlots};
    const auto eldf = eval.eldf_ordering(weights);
    const double eldf_obj =
        analysis::PriorityEvaluator::objective(eval.evaluate(eldf, pmfs), weights);

    double best = -1.0;
    double second = -1.0;
    for (const auto& perm : core::Permutation::all(kN)) {
      const double obj =
          analysis::PriorityEvaluator::objective(eval.evaluate(perm.ordering(), pmfs), weights);
      if (obj > best) {
        second = best;
        best = obj;
      } else if (obj > second) {
        second = obj;
      }
    }
    const bool optimal = eldf_obj >= best - 1e-9;
    optimal_count += optimal ? 1 : 0;
    table.add_row({TablePrinter::num(static_cast<std::int64_t>(trial)),
                   TablePrinter::num(eldf_obj, 6), TablePrinter::num(best, 6),
                   optimal ? "yes" : "NO", TablePrinter::num(best - second, 6)});
  }
  table.print(std::cout);
  std::cout << "\nELDF optimal in " << optimal_count << "/" << trials << " trials over all "
            << 120 << " orderings each\n";
  return optimal_count == trials ? 0 : 1;
}
