// Ablation: DB-DP with online-learned reliability vs the oracle p_n.
//
// Section II-A allows p_n to be "learned from the empirical results of past
// transmissions"; this bench quantifies the cost of doing so. Each link
// starts from an uninformative prior and updates a Beta posterior from its
// own ACKs; the coin bias of eq. (14) consumes the posterior mean.
#include <iostream>

#include "expfw/bench_cli.hpp"
#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 1500);

  std::cout << "\n=== Ablation: oracle p_n vs online-learned p_n (eq. 14 input) ===\n";
  std::cout << "symmetric video network, rho = 0.9; estimator prior mean 0.5\n\n";

  const std::vector<double> grid{0.40, 0.50, 0.55, 0.60};
  const auto config_at = [](double a) { return expfw::video_symmetric(a, 0.9, 1018); };

  const auto results = expfw::run_sweeps(
      {{"DB-DP oracle-p", expfw::dbdp_factory()},
       {"DB-DP learned-p (prior .5)", expfw::dbdp_estimated_p_factory(0.5)},
       {"DB-DP learned-p (prior .9)", expfw::dbdp_estimated_p_factory(0.9)}},
      config_at, grid, args.intervals, expfw::total_deficiency_metric(), {"deficiency"},
      args.sweep);
  expfw::print_sweep_table(std::cout, "alpha*", results);
  std::cout << "\nwith ~100+ observations per link per second, the learned curve should\n"
               "be indistinguishable from the oracle beyond the first few intervals.\n";
  return 0;
}
