// Ablation: sensitivity of the FCSMA baseline to its discretization
// constants (reference [22] does not pin them down — see DESIGN.md).
// Sweeps the window-size ladder and section width at the Fig. 3 operating
// point and reports deficiency: the qualitative conclusion (FCSMA far worse
// than DB-DP/LDF) must hold across the whole constant range for the
// reproduction to be fair.
#include <iostream>

#include "expfw/bench_cli.hpp"
#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 800);

  std::cout << "\n=== Ablation: FCSMA discretization constants (Fig. 3 point alpha*=0.55) ===\n";

  std::vector<expfw::SchemeSpec> schemes;
  schemes.push_back({"DB-DP(ref)", expfw::dbdp_factory()});
  schemes.push_back({"FCSMA default {128..32}/w=1", expfw::fcsma_factory(mac::FcsmaParams{})});
  {
    mac::FcsmaParams p;
    p.window_sizes = {64, 32, 16, 8, 4, 2};
    schemes.push_back({"FCSMA aggressive {64..2} (collision collapse)", expfw::fcsma_factory(p)});
  }
  {
    mac::FcsmaParams p;
    p.window_sizes = {256, 192, 128, 96, 64};
    schemes.push_back({"FCSMA patient {256..64} (backoff-dominated)", expfw::fcsma_factory(p)});
  }
  {
    mac::FcsmaParams p;
    p.section_width = 2.0;
    schemes.push_back({"FCSMA wide sections w=2", expfw::fcsma_factory(p)});
  }
  {
    mac::FcsmaParams p;
    p.section_width = 0.5;
    schemes.push_back({"FCSMA narrow sections w=0.5", expfw::fcsma_factory(p)});
  }

  const auto config_at = [](double alpha) { return expfw::video_symmetric(alpha, 0.9, 1011); };
  const std::vector<double> grid{0.45, 0.55, 0.65};

  const auto results =
      expfw::run_sweeps(schemes, config_at, grid, args.intervals,
                        expfw::total_deficiency_metric(), {"deficiency"}, args.sweep);
  expfw::print_sweep_table(std::cout, "alpha*", results);
  std::cout << "\nconclusion holds iff every FCSMA column dominates the DB-DP column\n";
  return 0;
}
