// Ablation: sensitivity of the FCSMA baseline to its discretization
// constants (reference [22] does not pin them down — see DESIGN.md).
// Sweeps the window-size ladder and section width at the Fig. 3 operating
// point and reports deficiency: the qualitative conclusion (FCSMA far worse
// than DB-DP/LDF) must hold across the whole constant range for the
// reproduction to be fair.
#include <cstdlib>
#include <iostream>

#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const IntervalIndex intervals = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 800;

  std::cout << "\n=== Ablation: FCSMA discretization constants (Fig. 3 point alpha*=0.55) ===\n";

  struct Variant {
    std::string name;
    mac::FcsmaParams params;
  };
  std::vector<Variant> variants;
  variants.push_back({"default {128..32}/w=1", mac::FcsmaParams{}});
  {
    mac::FcsmaParams p;
    p.window_sizes = {64, 32, 16, 8, 4, 2};
    variants.push_back({"aggressive {64..2} (collision collapse)", p});
  }
  {
    mac::FcsmaParams p;
    p.window_sizes = {256, 192, 128, 96, 64};
    variants.push_back({"patient {256..64} (backoff-dominated)", p});
  }
  {
    mac::FcsmaParams p;
    p.section_width = 2.0;
    variants.push_back({"wide sections w=2", p});
  }
  {
    mac::FcsmaParams p;
    p.section_width = 0.5;
    variants.push_back({"narrow sections w=0.5", p});
  }

  const auto config_at = [](double alpha) { return expfw::video_symmetric(alpha, 0.9, 1011); };
  const auto metric = expfw::total_deficiency_metric();
  const std::vector<double> grid{0.45, 0.55, 0.65};

  std::vector<expfw::SweepResult> results;
  results.push_back(expfw::run_sweep("DB-DP(ref)", expfw::dbdp_factory(), config_at, grid,
                                     intervals, metric, {"deficiency"}));
  for (const auto& v : variants) {
    results.push_back(expfw::run_sweep("FCSMA " + v.name, expfw::fcsma_factory(v.params),
                                       config_at, grid, intervals, metric, {"deficiency"}));
  }
  expfw::print_sweep_table(std::cout, "alpha*", results);
  std::cout << "\nconclusion holds iff every FCSMA column dominates the DB-DP column\n";
  return 0;
}
