// Ablation: the DP protocol's contention overhead (Section IV-C's
// "quantifiably small overhead" claim). Measures, per interval: medium busy
// share, empty-packet airtime share, and idle share attributable to backoff,
// as the deadline shrinks — the overhead grows relative to capacity exactly
// as the paper's Remark 4 discussion predicts.
#include <iostream>
#include <string>

#include "expfw/bench_cli.hpp"
#include "expfw/observe.hpp"
#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "traffic/arrival_process.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 500, 50);

  std::cout << "\n=== Ablation: DP contention overhead vs deadline ===\n";
  std::cout << "10 links, saturated Bernoulli traffic, control airtimes\n\n";

  TablePrinter table{{"deadline", "tx slots", "busy share", "empty-pkt share",
                      "delivered/interval", "collisions"}};
  const std::vector<std::int64_t> deadlines =
      args.smoke ? std::vector<std::int64_t>{1, 4} : std::vector<std::int64_t>{1, 2, 4, 8, 16};
  for (std::int64_t ms : deadlines) {
    const Duration deadline = Duration::milliseconds(ms);
    const auto phy = phy::PhyParams::control_80211a();
    const std::int64_t slots = phy.transmissions_per_interval(deadline);
    auto cfg = net::symmetric_network(10, deadline, phy, 0.9,
                                      traffic::BernoulliArrivals{1.0}, 0.5, 1012);
    net::Network net{std::move(cfg), expfw::dbdp_factory()};
    // One metrics file per deadline point; the trace captures the first.
    // Stream only the first deadline point: one --metrics-stream flag, one
    // file, and the remaining points would otherwise truncate it.
    expfw::RunObserver observer{args.sweep.metrics_dir,
                                ms == deadlines.front() ? args.sweep.trace_out
                                                        : std::string{},
                                ms == deadlines.front() ? args.sweep.stream_path
                                                        : std::string{},
                                args.sweep.stream_every};
    std::string run_label = "d";  // two-step append: gcc 12 -O2 misfires -Wrestrict on "d" + to_string(ms)
    run_label += std::to_string(ms);
    run_label += "ms";
    observer.attach(net, run_label);
    net.run(args.intervals);
    observer.finish();
    const auto& c = net.medium().counters();
    const double sim_time = (net.simulator().now() - TimePoint::origin()).seconds_f();
    const double busy_share = c.busy_time.seconds_f() / sim_time;
    const double empty_share =
        Duration::microseconds(70).seconds_f() * static_cast<double>(c.empty_tx) / sim_time;
    double delivered = 0;
    for (LinkId n = 0; n < 10; ++n) delivered += net.stats().timely_throughput(n);
    table.add_row({deadline.to_string(),
                   TablePrinter::num(slots),
                   TablePrinter::num(busy_share), TablePrinter::num(empty_share),
                   TablePrinter::num(delivered), TablePrinter::num(
                       static_cast<std::int64_t>(c.collisions))});
  }
  table.print(std::cout);
  std::cout << "\noverhead share shrinks as the deadline grows (Remark 4)\n";
  return 0;
}
