// Theory validation: the exact two-link feasible region vs the empirical
// boundaries of LDF and DB-DP.
//
// The exact frontier comes from the priority-ordering outcomes (Lemma 1 +
// Lemma 3: the region is the downward closure of their convex hull); the
// empirical boundary is probed by bisection along rays. Feasibility
// optimality (Theorem 1) predicts all three coincide.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "analysis/feasibility.hpp"
#include "analysis/region.hpp"
#include "expfw/bench_cli.hpp"
#include "expfw/scenarios.hpp"
#include "net/network_config.hpp"
#include "traffic/arrival_process.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 2500, 100);

  std::cout << "\n=== Theory: exact two-link region vs empirical boundaries ===\n";
  std::cout << "2 links, p = (0.6, 0.9), 1 packet/interval each, 4 tx slots\n\n";

  const ProbabilityVector p{0.6, 0.9};
  const int slots = 4;
  const auto region = analysis::two_link_region(p, {{0.0, 1.0}, {0.0, 1.0}}, slots);
  std::cout << "exact frontier extremes: link0-first (" << region.link0_first.q0 << ", "
            << region.link0_first.q1 << "), link1-first (" << region.link1_first.q0 << ", "
            << region.link1_first.q1 << ")\n\n";

  // Probe along rays q = s * (w, 1-w): lambda = 1, rho_n = s * dir_n.
  TablePrinter table{{"ray (w, 1-w)", "exact boundary s*", "LDF empirical", "DB-DP empirical"}};
  const std::vector<double> rays =
      args.smoke ? std::vector<double>{0.5} : std::vector<double>{0.2, 0.35, 0.5, 0.65, 0.8};
  for (double w : rays) {
    const analysis::RegionPoint dir{w, 1.0 - w};
    const double exact = region.boundary_scale(dir);

    const auto config_for = [&](double s) {
      net::NetworkConfig cfg;
      cfg.interval_length = Duration::microseconds(520);  // 4 x 120us airtime
      cfg.phy = phy::PhyParams::control_80211a();
      cfg.seed = 29;
      for (int n = 0; n < 2; ++n) {
        cfg.success_prob.push_back(p[static_cast<std::size_t>(n)]);
        cfg.arrivals.push_back(std::make_unique<traffic::ConstantArrivals>(1));
        cfg.requirements.lambda.push_back(1.0);
      }
      cfg.requirements.rho = {std::min(1.0, s * dir.q0), std::min(1.0, s * dir.q1)};
      return cfg;
    };
    analysis::ProbeParams params;
    params.intervals = args.intervals;
    params.bisection_steps = args.smoke ? 4 : 9;
    params.deficiency_threshold = 0.01;
    params.lo = 0.1;
    params.hi = 1.0 / std::max(dir.q0, dir.q1);  // rho caps at 1
    const double ldf = analysis::max_supported_load(config_for, expfw::ldf_factory(), params);
    const double dbdp = analysis::max_supported_load(config_for, expfw::dbdp_factory(), params);

    char ray[32];
    std::snprintf(ray, sizeof ray, "(%.2f, %.2f)", dir.q0, dir.q1);
    table.add_row({ray, TablePrinter::num(std::min(exact, 1.0 / std::max(dir.q0, dir.q1))),
                   TablePrinter::num(ldf), TablePrinter::num(dbdp)});
  }
  table.print(std::cout);
  std::cout << "\nfeasibility optimality: the three columns should agree to within\n"
               "the probe resolution (rho saturates at 1, capping shallow rays).\n";
  return 0;
}
