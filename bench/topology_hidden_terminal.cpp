// Hidden-terminal extension experiment (not in the paper, which assumes a
// complete collision domain): the 10-link control network split into two
// carrier-sense cells of 5 that still share one channel at the receivers
// (expfw::hidden_cells_topology). Cross-cell transmissions collide but are
// invisible to listen-before-talk, so every contention scheme — including
// DB-DP, whose collision-freedom proof requires complete sensing — picks
// up a genuine collision rate. Expected: the hidden topology's collision
// rate strictly dominates the complete graph's at every load (checked in
// full runs; DB-DP's complete-graph rate is exactly zero).
#include <cstdlib>
#include <iostream>

#include "expfw/figure_bench.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 2000);

  const expfw::MetricFn metric = [](const net::Network& network) {
    // Facade accessor so the bench also runs under --shards (the hidden-cells
    // topology is union-connected, so sharding it exercises the cut path).
    const auto c = network.medium_counters();
    const auto attempts = std::max<std::uint64_t>(1, c.data_tx + c.empty_tx);
    return std::vector<double>{network.total_deficiency(),
                               static_cast<double>(c.collisions) / attempts};
  };
  const std::vector<expfw::SchemeSpec> schemes{{"DB-DP", expfw::dbdp_factory()},
                                               {"FCSMA", expfw::fcsma_factory()},
                                               {"DCF", expfw::dcf_factory()}};
  const auto grid = expfw::linspace(0.60, 1.00, args.grid_points(9));

  expfw::FigureSpec spec{
      .figure_id = "Topology A (complete)",
      .description = "control network, rho = 0.99, complete collision domain (paper model)",
      .expected_shape = "DB-DP collision rate exactly 0 (collision-freedom holds)",
      .x_label = "lambda*",
      .csv_column = "lambda",
      .csv_basename = "topology_complete.csv",
      .schemes = schemes,
      .metric = metric,
      .metric_names = {"deficiency", "coll_rate"},
      .paper_intervals = 20000,
  };
  const auto complete = expfw::run_figure_sweep(
      std::cout, spec, [](double l) { return expfw::control_symmetric(l, 0.99, 1011); }, grid,
      args);

  spec.figure_id = "Topology B (hidden cells)";
  spec.description = "same network, carrier sensing confined to two cells of 5 links";
  spec.expected_shape = "all schemes collide across cells; collision rate > topology A";
  spec.csv_basename = "topology_hidden.csv";
  const auto hidden = expfw::run_figure_sweep(
      std::cout, spec,
      [](double l) {
        return expfw::with_topology(expfw::control_symmetric(l, 0.99, 1011),
                                    expfw::hidden_cells_topology(10, 5));
      },
      grid, args);

  // Grid-aggregate collision rate per scheme; with the full horizon the
  // hidden topology must strictly dominate (smoke runs are too short to
  // assert on).
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    double rate_complete = 0.0;
    double rate_hidden = 0.0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      rate_complete += complete[s].mean(i, 1);
      rate_hidden += hidden[s].mean(i, 1);
    }
    std::cout << schemes[s].name << ": mean collision rate " << rate_complete / grid.size()
              << " (complete) vs " << rate_hidden / grid.size() << " (hidden)\n";
    if (!args.smoke && rate_hidden <= rate_complete) {
      std::cout << "FAIL: hidden-terminal collision rate not above the complete graph's\n";
      return 1;
    }
  }
  return 0;
}
