// Microbenchmarks (google-benchmark): raw engine and protocol throughput —
// how many simulated events/intervals per wall-clock second the substrate
// sustains. Not a paper figure; guards against performance regressions in
// the simulator that would make the figure benches impractically slow.
//
// This binary also owns the repo's allocation-count benchmarks: a counting
// `operator new` hook (below) makes heap traffic a measurable, CI-gatable
// quantity. The engine's steady-state contract — zero allocations per
// scheduled/cancelled/fired event once pools are warm — is asserted by
// tools/bench_report.py over this binary's JSON output.
//
// Provides its own main so `--smoke` works like every other bench binary
// (CI runs `$b --smoke` uniformly): smoke mode runs only the cheap event
// queue benchmarks instead of the multi-second protocol loops.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string_view>
#include <vector>

#include <numeric>

#include "analysis/priority_evaluator.hpp"
#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "obs/sketch.hpp"
#include "sim/simulator.hpp"
#include "traffic/arrival_process.hpp"
#include "util/rng.hpp"

// ---- counting allocator hook ------------------------------------------------
// Global operator new/delete replacements that count every heap allocation in
// the process. Benchmarks snapshot the counter around a measured window; the
// difference is reported as a benchmark counter ("allocs") that CI gates on.
// Atomic because google-benchmark may touch the heap from helper threads.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

std::uint64_t alloc_count() { return g_alloc_count.load(std::memory_order_relaxed); }

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t) { return counted_alloc(size); }
void* operator new[](std::size_t size, std::align_val_t) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace rtmac;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_in(Duration::microseconds(i % 97), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

// One schedule/cancel/fire churn cycle mix, shaped like what DP/FCSMA/DCF
// backoff state machines generate: a working set of pending expiries that are
// constantly cancelled (medium turned busy) and rescheduled (medium idle),
// with a fraction actually firing. Cancelled handles are re-cancelled later
// (after their slot may have been reused) to keep the stale-handle path hot.
// Returns the number of cycles executed.
// `ids` is caller-owned scratch (resized here) so allocation-count windows
// can pre-warm it and measure the queue alone.
std::uint64_t churn_window(sim::EventQueue& q, std::uint64_t cycles, std::uint64_t* fired,
                           std::vector<sim::EventId>& ids) {
  constexpr std::size_t kLive = 256;
  ids.assign(kLive, sim::EventId{});
  std::uint64_t x = 0x9E3779B97F4A7C15ULL;  // deterministic xorshift stream
  std::int64_t t = 0;
  for (std::size_t i = 0; i < kLive; ++i) {
    ids[i] = q.push(TimePoint::from_ns(t + static_cast<std::int64_t>(i)), [] {});
  }
  for (std::uint64_t c = 0; c < cycles; ++c) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::size_t slot = x % kLive;
    q.cancel(ids[slot]);  // often already fired/cancelled: stale-handle no-op
    ++t;
    ids[slot] = q.push(TimePoint::from_ns(t * 100 + static_cast<std::int64_t>(x % 97)), [] {});
    if ((x & 3) == 0 && !q.empty()) {
      q.pop().callback();
      ++*fired;
    }
  }
  std::uint64_t drained = 0;
  while (!q.empty()) {
    q.pop().callback();
    ++drained;
  }
  benchmark::DoNotOptimize(drained);
  return cycles;
}

void BM_EventQueueCancelChurn(benchmark::State& state) {
  std::uint64_t fired = 0;
  std::vector<sim::EventId> ids;
  for (auto _ : state) {
    sim::EventQueue q;
    churn_window(q, 4096, &fired, ids);
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_EventQueueCancelChurn);

// Steady-state allocation count: after one warm-up window has grown the
// queue's internal storage to its working-set size, a second, identical
// window of >= 1e5 schedule/cancel/fire cycles must not allocate at all.
// CI gates on counters["allocs"] == 0 (exact and deterministic, unlike the
// wall-clock numbers). counters["cycles"] documents the window size.
void BM_EventQueueSteadyStateAllocs(benchmark::State& state) {
  constexpr std::uint64_t kCycles = 1 << 17;  // 131072 >= 1e5
  std::uint64_t fired = 0;
  std::uint64_t window_allocs = 0;
  std::vector<sim::EventId> ids;
  for (auto _ : state) {
    sim::EventQueue q;
    churn_window(q, kCycles, &fired, ids);  // warm-up: grows pool and heap storage
    const std::uint64_t before = alloc_count();
    churn_window(q, kCycles, &fired, ids);  // measured steady-state window
    window_allocs = alloc_count() - before;
  }
  state.counters["allocs"] = static_cast<double>(window_allocs);
  state.counters["cycles"] = static_cast<double>(kCycles);
  state.SetItemsProcessed(state.iterations() * kCycles);
}
BENCHMARK(BM_EventQueueSteadyStateAllocs);

void BM_DbdpVideoInterval(benchmark::State& state) {
  net::Network net{expfw::video_symmetric(0.55, 0.9, 1), expfw::dbdp_factory()};
  for (auto _ : state) {
    net.run(1);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("simulated 20ms intervals (20 links)");
}
BENCHMARK(BM_DbdpVideoInterval);

void BM_LdfVideoInterval(benchmark::State& state) {
  net::Network net{expfw::video_symmetric(0.55, 0.9, 1), expfw::ldf_factory()};
  for (auto _ : state) {
    net.run(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LdfVideoInterval);

void BM_FcsmaVideoInterval(benchmark::State& state) {
  net::Network net{expfw::video_symmetric(0.55, 0.9, 1), expfw::fcsma_factory()};
  for (auto _ : state) {
    net.run(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FcsmaVideoInterval);

void BM_DcfVideoInterval(benchmark::State& state) {
  net::Network net{expfw::video_symmetric(0.55, 0.9, 1), expfw::dcf_factory()};
  for (auto _ : state) {
    net.run(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DcfVideoInterval);

// Allocations per simulated interval for a full protocol stack, after a
// warm-up run. CI-gated at zero (tools/bench_report.py --gate-zero-alloc):
// the whole steady-state interval path — SoA kernel, shared backoff clock,
// burst transmissions, caller-owned delivery buffers — must never touch the
// heap. A regression here fails the bench-perf lane, not just a dashboard.
void BM_DbdpIntervalAllocs(benchmark::State& state) {
  constexpr IntervalIndex kWindow = 32;
  net::Network net{expfw::video_symmetric(0.55, 0.9, 1), expfw::dbdp_factory()};
  net.run(8);  // warm-up: pools, stats buffers, scheme state
  double allocs_per_interval = 0.0;
  for (auto _ : state) {
    const std::uint64_t before = alloc_count();
    net.run(kWindow);
    allocs_per_interval =
        static_cast<double>(alloc_count() - before) / static_cast<double>(kWindow);
  }
  state.counters["allocs_per_interval"] = allocs_per_interval;
  state.SetItemsProcessed(state.iterations() * kWindow);
}
BENCHMARK(BM_DbdpIntervalAllocs);

// Same gate for the centralized LDF scheduler (sort-based serve loop).
void BM_LdfIntervalAllocs(benchmark::State& state) {
  constexpr IntervalIndex kWindow = 32;
  net::Network net{expfw::video_symmetric(0.55, 0.9, 1), expfw::ldf_factory()};
  net.run(8);
  double allocs_per_interval = 0.0;
  for (auto _ : state) {
    const std::uint64_t before = alloc_count();
    net.run(kWindow);
    allocs_per_interval =
        static_cast<double>(alloc_count() - before) / static_cast<double>(kWindow);
  }
  state.counters["allocs_per_interval"] = allocs_per_interval;
  state.SetItemsProcessed(state.iterations() * kWindow);
}
BENCHMARK(BM_LdfIntervalAllocs);

// Quantile-sketch update throughput: the per-interval observability cost of
// the sketch-backed series (debt, deliveries, busy periods, latency).
void BM_SketchUpdate(benchmark::State& state) {
  obs::QuantileSketch sketch;
  Rng rng{11};
  for (auto _ : state) {
    sketch.update(rng.next_double());
  }
  benchmark::DoNotOptimize(sketch.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SketchUpdate);

// The sketch's zero-steady-state-allocation contract, CI-gated at zero like
// the event queue's: compactor levels are pre-sized at construction, so a
// window of 1e6 updates (with many compaction cascades) must never touch
// the heap.
void BM_SketchUpdateAllocs(benchmark::State& state) {
  constexpr std::uint64_t kWindow = 1'000'000;
  obs::QuantileSketch sketch;
  Rng rng{12};
  double window_allocs = 0.0;
  for (auto _ : state) {
    const std::uint64_t before = alloc_count();
    for (std::uint64_t i = 0; i < kWindow; ++i) sketch.update(rng.next_double());
    window_allocs = static_cast<double>(alloc_count() - before);
  }
  state.counters["allocs"] = window_allocs;
  state.counters["updates"] = static_cast<double>(kWindow);
  state.SetItemsProcessed(state.iterations() * kWindow);
}
BENCHMARK(BM_SketchUpdateAllocs);

// Merge cost for the fan-in path (one sketch per task folded at export).
void BM_SketchMerge(benchmark::State& state) {
  const auto parts = static_cast<std::size_t>(state.range(0));
  std::vector<obs::QuantileSketch> inputs;
  Rng rng{13};
  for (std::size_t p = 0; p < parts; ++p) {
    obs::QuantileSketch s{{/*k=*/256, /*exact_threshold=*/2048,
                           /*seed=*/0x5eed0000ULL + p}};
    for (int i = 0; i < 100'000; ++i) s.update(rng.next_double());
    inputs.push_back(std::move(s));
  }
  for (auto _ : state) {
    obs::QuantileSketch total;
    for (const auto& s : inputs) total.merge(s);
    benchmark::DoNotOptimize(total.quantile(0.5));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(parts));
}
BENCHMARK(BM_SketchMerge)->Arg(4)->Arg(16);

void BM_PriorityEvaluatorExact(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  analysis::PriorityEvaluator eval{ProbabilityVector(n, 0.7), 60};
  std::vector<LinkId> order(n);
  std::iota(order.begin(), order.end(), LinkId{0});
  const std::vector<std::vector<double>> pmfs(
      n, traffic::UniformBurstyArrivals{0.55}.pmf());
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate(order, pmfs));
  }
}
BENCHMARK(BM_PriorityEvaluatorExact)->Arg(5)->Arg(10)->Arg(20);

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view{argv[i]} == "--smoke") {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  static char filter[] = "--benchmark_filter=BM_EventQueue.*|BM_Sketch.*";
  if (smoke) args.push_back(filter);
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
