// Microbenchmarks (google-benchmark): raw engine and protocol throughput —
// how many simulated events/intervals per wall-clock second the substrate
// sustains. Not a paper figure; guards against performance regressions in
// the simulator that would make the figure benches impractically slow.
//
// Provides its own main so `--smoke` works like every other bench binary
// (CI runs `$b --smoke` uniformly): smoke mode runs only the cheap event
// queue benchmark instead of the multi-second protocol loops.
#include <benchmark/benchmark.h>

#include <string_view>
#include <vector>

#include <numeric>

#include "analysis/priority_evaluator.hpp"
#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "traffic/arrival_process.hpp"

namespace {

using namespace rtmac;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_in(Duration::microseconds(i % 97), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_DbdpVideoInterval(benchmark::State& state) {
  net::Network net{expfw::video_symmetric(0.55, 0.9, 1), expfw::dbdp_factory()};
  for (auto _ : state) {
    net.run(1);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("simulated 20ms intervals (20 links)");
}
BENCHMARK(BM_DbdpVideoInterval);

void BM_LdfVideoInterval(benchmark::State& state) {
  net::Network net{expfw::video_symmetric(0.55, 0.9, 1), expfw::ldf_factory()};
  for (auto _ : state) {
    net.run(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LdfVideoInterval);

void BM_FcsmaVideoInterval(benchmark::State& state) {
  net::Network net{expfw::video_symmetric(0.55, 0.9, 1), expfw::fcsma_factory()};
  for (auto _ : state) {
    net.run(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FcsmaVideoInterval);

void BM_PriorityEvaluatorExact(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  analysis::PriorityEvaluator eval{ProbabilityVector(n, 0.7), 60};
  std::vector<LinkId> order(n);
  std::iota(order.begin(), order.end(), LinkId{0});
  const std::vector<std::vector<double>> pmfs(
      n, traffic::UniformBurstyArrivals{0.55}.pmf());
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate(order, pmfs));
  }
}
BENCHMARK(BM_PriorityEvaluatorExact)->Arg(5)->Arg(10)->Arg(20);

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view{argv[i]} == "--smoke") {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  static char filter[] = "--benchmark_filter=BM_EventQueueScheduleRun";
  if (smoke) args.push_back(filter);
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
