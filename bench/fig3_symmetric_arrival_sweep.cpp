// Regenerates Fig. 3: total timely-throughput deficiency of the symmetric
// 20-link video network at 90% delivery ratio, sweeping the burst
// probability alpha*. Paper shape: DB-DP tracks LDF up to the knee at
// alpha* ~ 0.62; FCSMA's knee sits at roughly 70% of that load.
//
// Intervals per point are reduced from the paper's 5000 to keep the full
// bench suite fast; pass --intervals 5000 --reps 8 for a paper-scale run
// with confidence intervals (see --help for the full flag triad).
#include <iostream>

#include "expfw/bench_cli.hpp"
#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 1000);

  expfw::print_figure_banner(
      std::cout, "Fig. 3",
      "symmetric video network, 20 links, rho = 0.9, deficiency vs alpha*",
      "DB-DP ~ LDF with knee near alpha* ~ 0.62; FCSMA knee near 0.43 (~70% of LDF)");

  const auto grid = expfw::linspace(0.40, 0.80, args.grid_points(9));
  const auto config_at = [](double alpha) { return expfw::video_symmetric(alpha, 0.9, 1001); };

  const auto results = expfw::run_sweeps(
      {{"LDF", expfw::ldf_factory()},
       {"DB-DP", expfw::dbdp_factory()},
       {"FCSMA", expfw::fcsma_factory()}},
      config_at, grid, args.intervals, expfw::total_deficiency_metric(), {"deficiency"},
      args.sweep);

  expfw::print_sweep_table(std::cout, "alpha*", results);
  expfw::write_sweep_csv(expfw::bench_output_dir() + "/fig3.csv", "alpha", results);
  std::cout << "\n(" << args.intervals << " intervals/point; paper used 5000)\n";
  return 0;
}
