// Regenerates Fig. 3: total timely-throughput deficiency of the symmetric
// 20-link video network at 90% delivery ratio, sweeping the burst
// probability alpha*. Paper shape: DB-DP tracks LDF up to the knee at
// alpha* ~ 0.62; FCSMA's knee sits at roughly 70% of that load.
//
// Intervals per point are reduced from the paper's 5000 to keep the full
// bench suite fast; pass --intervals 5000 --reps 8 for a paper-scale run
// with confidence intervals (see --help for the full flag triad).
#include <iostream>

#include "expfw/figure_bench.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 1000);

  const expfw::FigureSpec spec{
      .figure_id = "Fig. 3",
      .description = "symmetric video network, 20 links, rho = 0.9, deficiency vs alpha*",
      .expected_shape =
          "DB-DP ~ LDF with knee near alpha* ~ 0.62; FCSMA knee near 0.43 (~70% of LDF)",
      .x_label = "alpha*",
      .csv_column = "alpha",
      .csv_basename = "fig3.csv",
      .schemes = expfw::paper_scheme_table(),
      .metric = expfw::total_deficiency_metric(),
      .metric_names = {"deficiency"},
      .paper_intervals = 5000,
  };

  const auto grid = expfw::linspace(0.40, 0.80, args.grid_points(9));
  const auto config_at = [](double alpha) { return expfw::video_symmetric(alpha, 0.9, 1001); };

  (void)expfw::run_figure_sweep(std::cout, spec, config_at, grid, args);
  return 0;
}
