// Regenerates Fig. 3: total timely-throughput deficiency of the symmetric
// 20-link video network at 90% delivery ratio, sweeping the burst
// probability alpha*. Paper shape: DB-DP tracks LDF up to the knee at
// alpha* ~ 0.62; FCSMA's knee sits at roughly 70% of that load.
//
// Intervals per point are reduced from the paper's 5000 to keep the full
// bench suite fast; pass an integer argument to override (e.g. 5000 for the
// paper-scale run recorded in EXPERIMENTS.md).
#include <cstdlib>
#include <iostream>
#include <string>

#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const IntervalIndex intervals = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;

  expfw::print_figure_banner(
      std::cout, "Fig. 3",
      "symmetric video network, 20 links, rho = 0.9, deficiency vs alpha*",
      "DB-DP ~ LDF with knee near alpha* ~ 0.62; FCSMA knee near 0.43 (~70% of LDF)");

  const auto grid = expfw::linspace(0.40, 0.80, 9);
  const auto config_at = [](double alpha) { return expfw::video_symmetric(alpha, 0.9, 1001); };
  const auto metric = expfw::total_deficiency_metric();

  std::vector<expfw::SweepResult> results;
  results.push_back(expfw::run_sweep("LDF", expfw::ldf_factory(), config_at, grid, intervals,
                                     metric, {"deficiency"}));
  results.push_back(expfw::run_sweep("DB-DP", expfw::dbdp_factory(), config_at, grid,
                                     intervals, metric, {"deficiency"}));
  results.push_back(expfw::run_sweep("FCSMA", expfw::fcsma_factory(), config_at, grid,
                                     intervals, metric, {"deficiency"}));

  expfw::print_sweep_table(std::cout, "alpha*", results);
  expfw::write_sweep_csv(expfw::bench_output_dir() + "/fig3.csv", "alpha", results);
  std::cout << "\n(" << intervals << " intervals/point; paper used 5000)\n";
  return 0;
}
