// Robustness ablations beyond the paper's base model:
//  (1) bursty Gilbert-Elliott losses with matching long-run mean — the
//      protocols only know the mean p_n, so this probes sensitivity to the
//      i.i.d.-loss assumption;
//  (2) cross-link correlated video bursts (common-shock traffic) — the
//      model (Section II-B) allows intra-interval correlation; this probes
//      how much headroom correlated demand peaks consume.
#include <cstdio>
#include <iostream>
#include <memory>

#include "expfw/bench_cli.hpp"
#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"
#include "phy/channel_model.hpp"
#include "traffic/joint_arrivals.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 1500);

  // --- (1) bursty losses -----------------------------------------------------
  std::cout << "\n=== Ablation: Gilbert-Elliott bursty losses (mean-matched p = 0.7) ===\n";
  // Bad-state dwell controls burstiness; all variants share mean 0.7.
  // mean = (1-pi_b)*p_g + pi_b*p_b with pi_b = g2b/(g2b+b2g).
  struct GeVariant {
    std::string name;
    phy::GilbertElliottParams ge;
  };
  std::vector<GeVariant> ge_variants;
  {
    // pi_b = 1/3: 0.95*(2/3) + 0.2*(1/3) = 0.7 Fast flips.
    ge_variants.push_back({"fast flips", {0.95, 0.2, 0.2, 0.4}});
    // Same stationary split, 10x slower chain => much burstier.
    ge_variants.push_back({"slow flips", {0.95, 0.2, 0.02, 0.04}});
    ge_variants.push_back({"very slow flips", {0.95, 0.2, 0.005, 0.01}});
  }
  const auto grid = std::vector<double>{0.40, 0.50, 0.60};
  const auto metric = expfw::total_deficiency_metric();

  std::vector<expfw::SweepResult> ge_results;
  ge_results.push_back(expfw::run_sweep(
      "iid (paper)", expfw::dbdp_factory(),
      [](double a) { return expfw::video_symmetric(a, 0.9, 1014); }, grid, args.intervals,
      metric, {"deficiency"}, args.sweep));
  for (const auto& v : ge_variants) {
    const double mean = v.ge.mean_success();
    auto config_at = [v, mean](double a) {
      auto cfg = expfw::video_symmetric(a, 0.9, 1014);
      for (auto& p : cfg.success_prob) p = mean;
      cfg.channel_factory = [v] {
        return std::make_unique<phy::GilbertElliottChannel>(
            std::vector<phy::GilbertElliottParams>(20, v.ge));
      };
      return cfg;
    };
    ge_results.push_back(expfw::run_sweep("DB-DP GE " + v.name, expfw::dbdp_factory(),
                                          config_at, grid, args.intervals, metric,
                                          {"deficiency"}, args.sweep));
  }
  expfw::print_sweep_table(std::cout, "alpha*", ge_results);

  // --- (2) correlated bursts --------------------------------------------------
  std::cout << "\n=== Ablation: cross-link correlated bursts (common shock) ===\n";
  std::vector<expfw::SweepResult> shock_results;
  for (double shock_frac : {0.0, 0.25, 0.5, 1.0}) {
    auto config_at = [shock_frac](double a) {
      auto cfg = expfw::video_symmetric(a, 0.9, 1015);
      cfg.arrivals.clear();
      cfg.joint_arrivals = std::make_unique<traffic::CommonShockBurstyArrivals>(
          20, a, shock_frac * a);
      return cfg;
    };
    char name[48];
    std::snprintf(name, sizeof name, "DB-DP shock=%.0f%%", 100 * shock_frac);
    shock_results.push_back(expfw::run_sweep(name, expfw::dbdp_factory(), config_at, grid,
                                             args.intervals, metric, {"deficiency"},
                                             args.sweep));
  }
  expfw::print_sweep_table(std::cout, "alpha*", shock_results);
  std::cout << "\ncorrelated peaks cost capacity for EVERY policy (demand exceeding 60\n"
               "slots in a shock interval is dropped); the point is DB-DP degrades\n"
               "gracefully rather than destabilizing.\n";
  return 0;
}
