// Regenerates Fig. 7: group-wide deficiency of the asymmetric network
// (group 1: p=0.5, alpha=0.5*alpha*; group 2: p=0.8, alpha=alpha*) at 90%
// delivery ratio, sweeping alpha*. Paper shape: DB-DP ~ LDF for both
// groups; under FCSMA group 1 suffers far larger deficiency than group 2
// (saturated contention windows ignore large debts).
#include <iostream>

#include "expfw/figure_bench.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 1000);

  const expfw::FigureSpec spec{
      .figure_id = "Fig. 7",
      .description = "asymmetric network (two groups), rho = 0.9, group deficiency vs alpha*",
      .expected_shape =
          "DB-DP ~ LDF in both groups; FCSMA group 1 (low p) far worse than group 2",
      .x_label = "alpha*",
      .csv_column = "alpha",
      .csv_basename = "fig7.csv",
      .schemes = expfw::paper_scheme_table(),
      .metric = expfw::group_deficiency_metric(
          {expfw::asymmetric_group(1), expfw::asymmetric_group(2)}),
      .metric_names = {"grp1", "grp2"},
      .paper_intervals = 5000,
  };

  const auto grid = expfw::linspace(0.50, 0.90, args.grid_points(9));
  const auto config_at = [](double a) { return expfw::video_asymmetric(a, 0.9, 1007); };

  (void)expfw::run_figure_sweep(std::cout, spec, config_at, grid, args);
  return 0;
}
