// Regenerates Fig. 7: group-wide deficiency of the asymmetric network
// (group 1: p=0.5, alpha=0.5*alpha*; group 2: p=0.8, alpha=alpha*) at 90%
// delivery ratio, sweeping alpha*. Paper shape: DB-DP ~ LDF for both
// groups; under FCSMA group 1 suffers far larger deficiency than group 2
// (saturated contention windows ignore large debts).
#include <iostream>

#include "expfw/bench_cli.hpp"
#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 1000);

  expfw::print_figure_banner(
      std::cout, "Fig. 7",
      "asymmetric network (two groups), rho = 0.9, group deficiency vs alpha*",
      "DB-DP ~ LDF in both groups; FCSMA group 1 (low p) far worse than group 2");

  const auto grid = expfw::linspace(0.50, 0.90, args.grid_points(9));
  const auto config_at = [](double a) { return expfw::video_asymmetric(a, 0.9, 1007); };
  const auto metric =
      expfw::group_deficiency_metric({expfw::asymmetric_group(1), expfw::asymmetric_group(2)});

  const auto results = expfw::run_sweeps(
      {{"LDF", expfw::ldf_factory()},
       {"DB-DP", expfw::dbdp_factory()},
       {"FCSMA", expfw::fcsma_factory()}},
      config_at, grid, args.intervals, metric, {"grp1", "grp2"}, args.sweep);

  expfw::print_sweep_table(std::cout, "alpha*", results);
  expfw::write_sweep_csv(expfw::bench_output_dir() + "/fig7.csv", "alpha", results);
  std::cout << "\n(" << args.intervals << " intervals/point; paper used 5000)\n";
  return 0;
}
