// Regenerates Fig. 9: deficiency of the 10-link ultra-low-latency control
// network (2 ms deadline, Bernoulli arrivals) at 99% delivery ratio,
// sweeping lambda*. Paper shape: DB-DP close to LDF despite losing 1-2 of
// the 16 transmission opportunities per interval to backoff/claim overhead;
// FCSMA substantially worse.
#include <iostream>

#include "expfw/bench_cli.hpp"
#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 4000);

  expfw::print_figure_banner(
      std::cout, "Fig. 9",
      "control network, 10 links, 2 ms deadline, rho = 0.99, deficiency vs lambda*",
      "DB-DP ~ LDF with knee near lambda* ~ 0.8; FCSMA knee far lower");

  const auto grid = expfw::linspace(0.60, 1.00, args.grid_points(9));
  const auto config_at = [](double l) { return expfw::control_symmetric(l, 0.99, 1009); };

  const auto results = expfw::run_sweeps(
      {{"LDF", expfw::ldf_factory()},
       {"DB-DP", expfw::dbdp_factory()},
       {"FCSMA", expfw::fcsma_factory()}},
      config_at, grid, args.intervals, expfw::total_deficiency_metric(), {"deficiency"},
      args.sweep);

  expfw::print_sweep_table(std::cout, "lambda*", results);
  expfw::write_sweep_csv(expfw::bench_output_dir() + "/fig9.csv", "lambda", results);
  std::cout << "\n(" << args.intervals << " intervals/point; paper used 20000)\n";
  return 0;
}
