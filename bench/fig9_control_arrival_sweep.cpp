// Regenerates Fig. 9: deficiency of the 10-link ultra-low-latency control
// network (2 ms deadline, Bernoulli arrivals) at 99% delivery ratio,
// sweeping lambda*. Paper shape: DB-DP close to LDF despite losing 1-2 of
// the 16 transmission opportunities per interval to backoff/claim overhead;
// FCSMA substantially worse.
#include <cstdlib>
#include <iostream>

#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const IntervalIndex intervals = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;

  expfw::print_figure_banner(
      std::cout, "Fig. 9",
      "control network, 10 links, 2 ms deadline, rho = 0.99, deficiency vs lambda*",
      "DB-DP ~ LDF with knee near lambda* ~ 0.8; FCSMA knee far lower");

  const auto grid = expfw::linspace(0.60, 1.00, 9);
  const auto config_at = [](double l) { return expfw::control_symmetric(l, 0.99, 1009); };
  const auto metric = expfw::total_deficiency_metric();

  std::vector<expfw::SweepResult> results;
  results.push_back(expfw::run_sweep("LDF", expfw::ldf_factory(), config_at, grid, intervals,
                                     metric, {"deficiency"}));
  results.push_back(expfw::run_sweep("DB-DP", expfw::dbdp_factory(), config_at, grid,
                                     intervals, metric, {"deficiency"}));
  results.push_back(expfw::run_sweep("FCSMA", expfw::fcsma_factory(), config_at, grid,
                                     intervals, metric, {"deficiency"}));

  expfw::print_sweep_table(std::cout, "lambda*", results);
  expfw::write_sweep_csv(expfw::bench_output_dir() + "/fig9.csv", "lambda", results);
  std::cout << "\n(" << intervals << " intervals/point; paper used 20000)\n";
  return 0;
}
