// Regenerates Fig. 9: deficiency of the 10-link ultra-low-latency control
// network (2 ms deadline, Bernoulli arrivals) at 99% delivery ratio,
// sweeping lambda*. Paper shape: DB-DP close to LDF despite losing 1-2 of
// the 16 transmission opportunities per interval to backoff/claim overhead;
// FCSMA substantially worse.
#include <iostream>

#include "expfw/figure_bench.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 4000);

  const expfw::FigureSpec spec{
      .figure_id = "Fig. 9",
      .description =
          "control network, 10 links, 2 ms deadline, rho = 0.99, deficiency vs lambda*",
      .expected_shape = "DB-DP ~ LDF with knee near lambda* ~ 0.8; FCSMA knee far lower",
      .x_label = "lambda*",
      .csv_column = "lambda",
      .csv_basename = "fig9.csv",
      .schemes = expfw::paper_scheme_table(),
      .metric = expfw::total_deficiency_metric(),
      .metric_names = {"deficiency"},
      .paper_intervals = 20000,
  };

  const auto grid = expfw::linspace(0.60, 1.00, args.grid_points(9));
  const auto config_at = [](double l) { return expfw::control_symmetric(l, 0.99, 1009); };

  (void)expfw::run_figure_sweep(std::cout, spec, config_at, grid, args);
  return 0;
}
