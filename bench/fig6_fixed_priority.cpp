// Regenerates Fig. 6: average timely-throughput per link under a FIXED
// priority ordering (reordering disabled), alpha* = 0.6. Paper shape:
// timely-throughput decreases with priority index but remains strictly
// positive even for the lowest-priority link (index 20) — the priority
// structure prevents complete starvation.
#include <iostream>

#include "expfw/bench_cli.hpp"
#include "expfw/observe.hpp"
#include "expfw/report.hpp"
#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 2000, 100);

  expfw::print_figure_banner(
      std::cout, "Fig. 6",
      "average timely-throughput per link under a fixed priority ordering, alpha* = 0.6",
      "decreasing in priority index; lowest-priority link still nonzero");

  net::Network net{expfw::video_symmetric(0.6, 0.9, 1006),
                   expfw::dp_static_priority_factory()};
  expfw::RunObserver observer{args.sweep.metrics_dir, args.sweep.trace_out,
                              args.sweep.stream_path, args.sweep.stream_every};
  observer.attach(net, "static");
  net.run(args.intervals);
  observer.finish();

  TablePrinter table{{"priority index", "avg timely-throughput", "arrival rate"}};
  for (LinkId n = 0; n < 20; ++n) {
    // Identity initial permutation: link n holds priority n+1 forever.
    table.add_row({TablePrinter::num(static_cast<std::int64_t>(n + 1)),
                   TablePrinter::num(net.stats().timely_throughput(n)),
                   TablePrinter::num(3.5 * 0.6)});
  }
  table.print(std::cout);

  std::cout << "\nlowest-priority link throughput: " << net.stats().timely_throughput(19)
            << " (nonzero = no starvation)\n";
  return 0;
}
