// Ablation: choice of debt influence function f in DB-DP (Definition 6
// allows a family; the paper simulates f(x) = ln(max{1, 100(x+1)})).
// Compares deficiency and convergence across f choices at the Fig. 3
// operating point, echoing the literature's observation that log-like
// weights trade off adaptivity vs chain mixing.
#include <iostream>

#include "expfw/bench_cli.hpp"
#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const auto args = expfw::parse_bench_args(argc, argv, 800);

  std::cout << "\n=== Ablation: DB-DP debt influence function ===\n";

  const std::vector<expfw::SchemeSpec> schemes{
      {"LDF(ref)", expfw::ldf_factory()},
      {"paper ln(100(x+1)), R=10", expfw::dbdp_factory(core::Influence::paper_log(), 10.0)},
      {"identity x, R=10", expfw::dbdp_factory(core::Influence::identity(), 10.0)},
      {"sqrt x, R=10", expfw::dbdp_factory(core::Influence::power(0.5), 10.0)},
      {"log2(1+x), R=10", expfw::dbdp_factory(core::Influence::log(2.0), 10.0)},
      {"paper f, R=1", expfw::dbdp_factory(core::Influence::paper_log(), 1.0)},
      {"paper f, R=100", expfw::dbdp_factory(core::Influence::paper_log(), 100.0)},
  };

  const auto config_at = [](double alpha) { return expfw::video_symmetric(alpha, 0.9, 1013); };
  const std::vector<double> grid{0.50, 0.55, 0.60};

  const auto results =
      expfw::run_sweeps(schemes, config_at, grid, args.intervals,
                        expfw::total_deficiency_metric(), {"deficiency"}, args.sweep);
  expfw::print_sweep_table(std::cout, "alpha*", results);
  std::cout << "\nall Definition-6 choices should stay near LDF inside the region\n";
  return 0;
}
