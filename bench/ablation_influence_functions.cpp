// Ablation: choice of debt influence function f in DB-DP (Definition 6
// allows a family; the paper simulates f(x) = ln(max{1, 100(x+1)})).
// Compares deficiency and convergence across f choices at the Fig. 3
// operating point, echoing the literature's observation that log-like
// weights trade off adaptivity vs chain mixing.
#include <cstdlib>
#include <iostream>

#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace rtmac;
  const IntervalIndex intervals = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 800;

  std::cout << "\n=== Ablation: DB-DP debt influence function ===\n";

  struct Variant {
    std::string name;
    core::Influence f;
    double r;
  };
  const std::vector<Variant> variants{
      {"paper ln(100(x+1)), R=10", core::Influence::paper_log(), 10.0},
      {"identity x, R=10", core::Influence::identity(), 10.0},
      {"sqrt x, R=10", core::Influence::power(0.5), 10.0},
      {"log2(1+x), R=10", core::Influence::log(2.0), 10.0},
      {"paper f, R=1", core::Influence::paper_log(), 1.0},
      {"paper f, R=100", core::Influence::paper_log(), 100.0},
  };

  const auto config_at = [](double alpha) { return expfw::video_symmetric(alpha, 0.9, 1013); };
  const auto metric = expfw::total_deficiency_metric();
  const std::vector<double> grid{0.50, 0.55, 0.60};

  std::vector<expfw::SweepResult> results;
  results.push_back(expfw::run_sweep("LDF(ref)", expfw::ldf_factory(), config_at, grid,
                                     intervals, metric, {"deficiency"}));
  for (const auto& v : variants) {
    results.push_back(expfw::run_sweep(v.name, expfw::dbdp_factory(v.f, v.r), config_at,
                                       grid, intervals, metric, {"deficiency"}));
  }
  expfw::print_sweep_table(std::cout, "alpha*", results);
  std::cout << "\nall Definition-6 choices should stay near LDF inside the region\n";
  return 0;
}
