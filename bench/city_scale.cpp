// City-scale sharded-engine benchmark (DESIGN §4i, §4j).
//
// Phase 1 — scale: a city_unit_disk_topology of 12500 clusters x 8 links
// (10^5 links; smoke: 1250 x 8 = 10^4) built through the sparse O(n)
// unit-disk pipeline. The dense n x n InterferenceGraph is unaffordable at
// this size, so only the sharded engine can run it: the partitioner
// recovers every cluster as its own cell with small per-cell event heaps
// and media. Records events/sec and peak RSS.
//
// Phase 2 — speedup: a dense disconnected_cells_topology at 10^4 links
// (625 cells of 16; smoke: 2048 links) small enough for the legacy
// single-engine path, timed on both engines. Identical shape to BENCH_8's
// phase 2, so the sharded events/sec gates directly against that baseline
// (the arrival kernel + arena SoA + clique fast paths must at least double
// it on one core).
//
// Phase A — adaptive lookahead: a chain of hidden-terminal-coupled cells
// (every cut edge conflict-only) run twice, fixed windows vs adaptive
// lookahead. Deliveries must agree exactly; the round count must drop.
//
// Phase 3 — million links: 125000 clusters x 8 links (10^6; smoke reuses
// the 10^5 shape) through the same pipeline, gated on a hard peak-RSS
// ceiling — the arena-backed SoA state is what keeps this run affordable.
// All phases land in bench_out/city_scale.json for BENCH_10 merging.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "expfw/bench_cli.hpp"
#include "expfw/report.hpp"
#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "net/network_config.hpp"
#include "traffic/arrival_process.hpp"
#include "util/resource.hpp"

namespace {

using namespace rtmac;

/// BENCH_8 phase-2 sharded throughput on the reference machine; the rebuilt
/// engine must at least double it on the identical configuration.
constexpr double kBench8ShardedEventsPerSec = 1643710.0;

/// Declared peak-RSS ceiling for the full 10^6-link phase-3 run (and,
/// scaled by links, for the smoke run via --gate-rss-kb in CI). The arena
/// SoA budget is ~1.1 KB/link end to end; 2 GB leaves slack for the
/// allocator and the sparse-topology build without hiding a regression to
/// per-link heap objects, which blew past 2.5 GB.
constexpr long kMillionLinkRssCeilingKb = 2000000;

struct Timing {
  std::uint64_t events = 0;
  std::size_t cells = 0;
  std::size_t groups = 0;
  std::uint64_t delivered = 0;
  std::uint64_t coordinator_rounds = 0;
  std::uint64_t event_reallocs = 0;
  double wall_seconds = 0.0;
  [[nodiscard]] double events_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds : 0.0;
  }
};

Timing run_once(net::NetworkConfig cfg, IntervalIndex intervals) {
  net::Network network{std::move(cfg), expfw::dcf_factory()};
  const auto t0 = std::chrono::steady_clock::now();
  network.run(intervals);
  const auto t1 = std::chrono::steady_clock::now();
  Timing t;
  t.events = network.events_executed();
  t.cells = network.cell_count();
  t.groups = network.group_count();
  t.delivered = network.medium_counters().delivered;
  t.coordinator_rounds = network.sharded() ? network.coordinator_rounds() : 0;
  t.event_reallocs = network.event_reallocs();
  t.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return t;
}

net::NetworkConfig control_config(std::size_t num_links, std::uint64_t seed) {
  return net::symmetric_network(num_links, Duration::milliseconds(2),
                                phy::PhyParams::control_80211a(), 0.7,
                                traffic::BernoulliArrivals{0.8}, 0.9, seed);
}

/// One unit-disk city run of `cells` clusters x 8 links.
Timing run_city(std::size_t cells, std::uint64_t cfg_seed, IntervalIndex intervals,
                std::size_t shard_jobs) {
  constexpr std::size_t kLinksPerCell = 8;
  auto cfg = expfw::with_sparse_topology(
      control_config(cells * kLinksPerCell, cfg_seed),
      expfw::city_unit_disk_topology(cells, kLinksPerCell, /*seed=*/1889));
  cfg.shards = cells;  // one cell per cluster; groups capped by jobs below
  cfg.shard_jobs = shard_jobs;
  return run_once(std::move(cfg), intervals);
}

void write_timing(std::ostream& out, const Timing& t, IntervalIndex intervals,
                  std::size_t links) {
  out << "{\"links\":" << links << ",\"intervals\":" << intervals
      << ",\"cells\":" << t.cells << ",\"groups\":" << t.groups
      << ",\"events\":" << t.events << ",\"delivered\":" << t.delivered
      << ",\"coordinator_rounds\":" << t.coordinator_rounds
      << ",\"event_reallocs\":" << t.event_reallocs
      << ",\"wall_seconds\":" << t.wall_seconds
      << ",\"events_per_sec\":" << t.events_per_sec() << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = expfw::parse_bench_args(argc, argv, /*default_intervals=*/25,
                                            /*smoke_intervals=*/5);
  const std::size_t jobs =
      args.sweep.shard_jobs > 0 ? static_cast<std::size_t>(args.sweep.shard_jobs) : 0;
  bool failed = false;

  // ---- Phase 1: city-scale sparse unit disk (sharded only) -----------------
  const std::size_t city_cells = args.smoke ? 1250 : 12500;
  const std::size_t city_links = city_cells * 8;
  std::cout << "City scale: " << city_links << " links in " << city_cells
            << " unit-disk clusters, DCF, " << args.intervals << " intervals\n";
  const Timing city = run_city(city_cells, 90210, args.intervals, jobs);
  const long city_rss_kb = util::peak_rss_kb();
  std::cout << "  " << city.cells << " cells, " << city.groups << " groups: "
            << city.events << " events in " << city.wall_seconds << " s = "
            << static_cast<std::uint64_t>(city.events_per_sec())
            << " events/s, peak RSS " << city_rss_kb << " KB\n";

  // ---- Phase 2: legacy vs sharded on the same dense topology ---------------
  const std::size_t speedup_links = args.smoke ? 2048 : 10000;
  constexpr std::size_t kSpeedupCellSize = 16;
  const IntervalIndex speedup_intervals = args.intervals;
  std::cout << "Speedup: " << speedup_links << " links in cells of "
            << kSpeedupCellSize << ", legacy vs 4-group sharded\n";

  const auto speedup_config = [&](std::size_t shards) {
    auto cfg = control_config(speedup_links, 77);
    cfg.topology =
        expfw::disconnected_cells_topology(speedup_links, kSpeedupCellSize);
    cfg.shards = shards;
    return cfg;
  };
  const Timing legacy = run_once(speedup_config(0), speedup_intervals);
  const Timing sharded = run_once(speedup_config(4), speedup_intervals);
  const double ratio =
      legacy.events_per_sec() > 0.0 ? sharded.events_per_sec() / legacy.events_per_sec() : 0.0;
  std::cout << "  legacy:  " << static_cast<std::uint64_t>(legacy.events_per_sec())
            << " events/s\n"
            << "  sharded: " << static_cast<std::uint64_t>(sharded.events_per_sec())
            << " events/s (" << sharded.cells << " cells, "
            << sharded.events_per_sec() / kBench8ShardedEventsPerSec
            << "x BENCH_8)\n"
            << "  speedup: " << ratio << "x\n";
  if (legacy.delivered != sharded.delivered) {
    std::cout << "FAIL: engines disagree on delivered packets (" << legacy.delivered
              << " vs " << sharded.delivered << ")\n";
    return 1;
  }

  // ---- Phase A: adaptive coordinator lookahead A/B -------------------------
  // Hidden-terminal chain with alternating load: even cells carry traffic,
  // odd cells are idle. Every cut is conflict-only, so fixed vs adaptive
  // windows must deliver identically. A blocked cell's clock already sits on
  // its blocking completion, so the lookahead's leverage is the idle
  // neighbor: its empty queue reports bound = +inf at the FIRST barrier of
  // the interval, letting the busy side resolve its cut completions in one
  // round instead of waiting a round for the neighbor's clock to reach the
  // horizon — the lightly-loaded-cell regime a real city is full of.
  const std::size_t chain_cells = args.smoke ? 64 : 256;
  constexpr std::size_t kChainCellSize = 8;
  std::cout << "Adaptive lookahead: " << chain_cells << "-cell hidden-terminal chain\n";
  const auto chain_config = [&](bool adaptive) {
    auto cfg = expfw::with_sparse_topology(
        control_config(chain_cells * kChainCellSize, 4242),
        expfw::chain_cells_topology(chain_cells, kChainCellSize));
    cfg.uniform_arrivals.reset();
    const traffic::BernoulliArrivals busy{0.8};
    const traffic::BernoulliArrivals idle{0.0};
    for (std::size_t l = 0; l < cfg.num_links(); ++l) {
      const bool is_busy = (l / kChainCellSize) % 2 == 0;
      cfg.arrivals.push_back((is_busy ? busy : idle).clone());
      cfg.requirements.lambda[l] = is_busy ? 0.8 : 0.0;
    }
    cfg.shards = chain_cells;
    cfg.shard_jobs = jobs;
    cfg.adaptive_lookahead = adaptive;
    return cfg;
  };
  const Timing fixed_la = run_once(chain_config(false), args.intervals);
  const Timing adaptive_la = run_once(chain_config(true), args.intervals);
  std::cout << "  fixed:    " << fixed_la.coordinator_rounds << " rounds, "
            << static_cast<std::uint64_t>(fixed_la.events_per_sec()) << " events/s\n"
            << "  adaptive: " << adaptive_la.coordinator_rounds << " rounds, "
            << static_cast<std::uint64_t>(adaptive_la.events_per_sec()) << " events/s\n";
  if (fixed_la.delivered != adaptive_la.delivered) {
    std::cout << "FAIL: adaptive lookahead changed delivered packets ("
              << fixed_la.delivered << " vs " << adaptive_la.delivered << ")\n";
    return 1;
  }
  if (adaptive_la.coordinator_rounds >= fixed_la.coordinator_rounds) {
    std::cout << "FAIL: adaptive lookahead did not reduce coordinator rounds\n";
    failed = true;
  }

  // ---- Phase 3: one million links under the RSS ceiling --------------------
  // Runs LAST so the process-wide peak RSS it reports is its own working
  // set, not a later phase's. Smoke keeps the 10^5 shape (same code path,
  // CI-affordable) and scales the declared ceiling with the link count.
  const std::size_t million_cells = args.smoke ? 12500 : 125000;
  const std::size_t million_links = million_cells * 8;
  const IntervalIndex million_intervals = args.smoke ? 2 : 10;
  const long rss_ceiling_kb =
      args.smoke ? kMillionLinkRssCeilingKb / 4 : kMillionLinkRssCeilingKb;
  std::cout << "Million links: " << million_links << " links, "
            << million_intervals << " intervals, RSS ceiling " << rss_ceiling_kb
            << " KB\n";
  const Timing million = run_city(million_cells, 31337, million_intervals, jobs);
  const long million_rss_kb = util::peak_rss_kb();
  std::cout << "  " << million.cells << " cells: " << million.events
            << " events in " << million.wall_seconds << " s = "
            << static_cast<std::uint64_t>(million.events_per_sec())
            << " events/s, peak RSS " << million_rss_kb << " KB\n";
  if (million_rss_kb > rss_ceiling_kb) {
    std::cout << "FAIL: peak RSS " << million_rss_kb << " KB exceeds the "
              << rss_ceiling_kb << " KB ceiling\n";
    failed = true;
  }

  // ---- JSON for tools/bench_report.py --extra ------------------------------
  const std::string json_path = expfw::bench_output_dir() + "/city_scale.json";
  std::ofstream json{json_path};
  json << "{\"schema\":\"rtmac.city_scale\",\"version\":2,\"smoke\":"
       << (args.smoke ? "true" : "false") << ",\n \"city\":";
  write_timing(json, city, args.intervals, city_links);
  json << ",\n \"city_peak_rss_kb\":" << city_rss_kb << ",\n \"speedup\":{\"legacy\":";
  write_timing(json, legacy, speedup_intervals, speedup_links);
  json << ",\"sharded\":";
  write_timing(json, sharded, speedup_intervals, speedup_links);
  json << ",\"events_per_sec_ratio\":" << ratio
       << ",\"bench8_sharded_events_per_sec\":" << kBench8ShardedEventsPerSec << "}";
  json << ",\n \"adaptive_lookahead\":{\"fixed\":";
  write_timing(json, fixed_la, args.intervals, chain_cells * kChainCellSize);
  json << ",\"adaptive\":";
  write_timing(json, adaptive_la, args.intervals, chain_cells * kChainCellSize);
  json << ",\"rounds_saved\":"
       << (fixed_la.coordinator_rounds - adaptive_la.coordinator_rounds) << "}";
  json << ",\n \"million\":";
  write_timing(json, million, million_intervals, million_links);
  json << ",\n \"million_peak_rss_kb\":" << million_rss_kb
       << ",\n \"rss_ceiling_kb\":" << rss_ceiling_kb << "}\n";
  json.close();
  std::cout << "wrote " << json_path << "\n";

  if (!args.smoke && ratio < 2.0) {
    std::cout << "FAIL: sharded events/sec below the 2x acceptance bar\n";
    failed = true;
  }
  if (!args.smoke &&
      sharded.events_per_sec() < 2.0 * kBench8ShardedEventsPerSec) {
    std::cout << "FAIL: phase-2 sharded events/sec below 2x the BENCH_8 baseline\n";
    failed = true;
  }
  return failed ? 1 : 0;
}
