// City-scale sharded-engine benchmark (DESIGN §4i).
//
// Phase 1 — scale: a city_unit_disk_topology of 12500 clusters x 8 links
// (10^5 links; smoke: 1250 x 8 = 10^4) built through the sparse O(n)
// unit-disk pipeline. The dense n x n InterferenceGraph is unaffordable at
// this size, so only the sharded engine can run it: the partitioner
// recovers every cluster as its own cell with small per-cell event heaps
// and media. Records events/sec and peak RSS.
//
// Phase 2 — speedup: a dense disconnected_cells_topology at 10^4 links
// (625 cells of 16; smoke: 2048 links) small enough for the legacy
// single-engine path, timed on both engines. The sharded engine replaces
// one 10^4-link binary heap with 625 16-link heaps, so its events/sec must
// beat the legacy engine well beyond the 2x acceptance bar even on one
// core. Both phases land in bench_out/city_scale.json for BENCH_8 merging.
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "expfw/bench_cli.hpp"
#include "expfw/report.hpp"
#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "net/network_config.hpp"
#include "traffic/arrival_process.hpp"

namespace {

using namespace rtmac;

struct Timing {
  std::uint64_t events = 0;
  std::size_t cells = 0;
  std::size_t groups = 0;
  std::uint64_t delivered = 0;
  double wall_seconds = 0.0;
  [[nodiscard]] double events_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds : 0.0;
  }
};

Timing run_once(net::NetworkConfig cfg, IntervalIndex intervals) {
  net::Network network{std::move(cfg), expfw::dcf_factory()};
  const auto t0 = std::chrono::steady_clock::now();
  network.run(intervals);
  const auto t1 = std::chrono::steady_clock::now();
  Timing t;
  t.events = network.events_executed();
  t.cells = network.cell_count();
  t.groups = network.group_count();
  t.delivered = network.medium_counters().delivered;
  t.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return t;
}

net::NetworkConfig control_config(std::size_t num_links, std::uint64_t seed) {
  return net::symmetric_network(num_links, Duration::milliseconds(2),
                                phy::PhyParams::control_80211a(), 0.7,
                                traffic::BernoulliArrivals{0.8}, 0.9, seed);
}

/// Linux ru_maxrss is in kilobytes.
long peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

void write_timing(std::ostream& out, const Timing& t, IntervalIndex intervals,
                  std::size_t links) {
  out << "{\"links\":" << links << ",\"intervals\":" << intervals
      << ",\"cells\":" << t.cells << ",\"groups\":" << t.groups
      << ",\"events\":" << t.events << ",\"delivered\":" << t.delivered
      << ",\"wall_seconds\":" << t.wall_seconds
      << ",\"events_per_sec\":" << t.events_per_sec() << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = expfw::parse_bench_args(argc, argv, /*default_intervals=*/25,
                                            /*smoke_intervals=*/5);

  // ---- Phase 1: city-scale sparse unit disk (sharded only) -----------------
  const std::size_t city_cells = args.smoke ? 1250 : 12500;
  constexpr std::size_t kLinksPerCell = 8;
  const std::size_t city_links = city_cells * kLinksPerCell;
  std::cout << "City scale: " << city_links << " links in " << city_cells
            << " unit-disk clusters, DCF, " << args.intervals << " intervals\n";

  auto city_cfg = expfw::with_sparse_topology(
      control_config(city_links, 90210),
      expfw::city_unit_disk_topology(city_cells, kLinksPerCell, /*seed=*/1889));
  city_cfg.shards = city_cells;  // one cell per cluster; groups capped below
  city_cfg.shard_jobs = args.sweep.shard_jobs > 0
                            ? static_cast<std::size_t>(args.sweep.shard_jobs)
                            : 0;
  const Timing city = run_once(std::move(city_cfg), args.intervals);
  const long city_rss_kb = peak_rss_kb();
  std::cout << "  " << city.cells << " cells, " << city.groups << " groups: "
            << city.events << " events in " << city.wall_seconds << " s = "
            << static_cast<std::uint64_t>(city.events_per_sec())
            << " events/s, peak RSS " << city_rss_kb << " KB\n";

  // ---- Phase 2: legacy vs sharded on the same dense topology ---------------
  const std::size_t speedup_links = args.smoke ? 2048 : 10000;
  constexpr std::size_t kSpeedupCellSize = 16;
  const IntervalIndex speedup_intervals = args.intervals;
  std::cout << "Speedup: " << speedup_links << " links in cells of "
            << kSpeedupCellSize << ", legacy vs 4-group sharded\n";

  const auto speedup_config = [&](std::size_t shards) {
    auto cfg = control_config(speedup_links, 77);
    cfg.topology =
        expfw::disconnected_cells_topology(speedup_links, kSpeedupCellSize);
    cfg.shards = shards;
    return cfg;
  };
  const Timing legacy = run_once(speedup_config(0), speedup_intervals);
  const Timing sharded = run_once(speedup_config(4), speedup_intervals);
  const double ratio =
      legacy.events_per_sec() > 0.0 ? sharded.events_per_sec() / legacy.events_per_sec() : 0.0;
  std::cout << "  legacy:  " << static_cast<std::uint64_t>(legacy.events_per_sec())
            << " events/s\n"
            << "  sharded: " << static_cast<std::uint64_t>(sharded.events_per_sec())
            << " events/s (" << sharded.cells << " cells)\n"
            << "  speedup: " << ratio << "x\n";
  if (legacy.delivered != sharded.delivered) {
    std::cout << "FAIL: engines disagree on delivered packets (" << legacy.delivered
              << " vs " << sharded.delivered << ")\n";
    return 1;
  }

  // ---- JSON for tools/bench_report.py --extra ------------------------------
  const std::string json_path = expfw::bench_output_dir() + "/city_scale.json";
  std::ofstream json{json_path};
  json << "{\"schema\":\"rtmac.city_scale\",\"version\":1,\"smoke\":"
       << (args.smoke ? "true" : "false") << ",\n \"city\":";
  write_timing(json, city, args.intervals, city_links);
  json << ",\n \"city_peak_rss_kb\":" << city_rss_kb << ",\n \"speedup\":{\"legacy\":";
  write_timing(json, legacy, speedup_intervals, speedup_links);
  json << ",\"sharded\":";
  write_timing(json, sharded, speedup_intervals, speedup_links);
  json << ",\"events_per_sec_ratio\":" << ratio << "}}\n";
  json.close();
  std::cout << "wrote " << json_path << "\n";

  if (!args.smoke && ratio < 2.0) {
    std::cout << "FAIL: sharded events/sec below the 2x acceptance bar\n";
    return 1;
  }
  return 0;
}
