#!/usr/bin/env python3
"""Unit tests for tools/lint_rtmac.py: each rule must catch a seeded
violation, honor lint-ok suppressions, and respect its allowlist."""

import shutil
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import lint_rtmac  # noqa: E402


def violations_in(checker, text, path=Path("src/fake.cpp")):
    return checker(path, text)


class WallClockRule(unittest.TestCase):
    def test_catches_steady_clock(self):
        v = violations_in(lint_rtmac.check_wall_clock,
                          "auto t = std::chrono::steady_clock::now();\n")
        self.assertEqual([x.rule for x in v], ["wall-clock"])

    def test_catches_time_nullptr(self):
        v = violations_in(lint_rtmac.check_wall_clock,
                          "seed = time(nullptr);\n")
        self.assertEqual(len(v), 1)

    def test_virtual_time_is_fine(self):
        v = violations_in(lint_rtmac.check_wall_clock,
                          "TimePoint t = sim_.now() + Duration::seconds(1);\n")
        self.assertEqual(v, [])

    def test_comment_mention_is_fine(self):
        v = violations_in(lint_rtmac.check_wall_clock,
                          "int x = 0;  // unlike steady_clock, virtual time\n")
        self.assertEqual(v, [])

    def test_suppression(self):
        v = violations_in(
            lint_rtmac.check_wall_clock,
            "auto t = std::chrono::steady_clock::now();"
            "  // lint-ok: wall-clock profiler only\n")
        self.assertEqual(v, [])


class NondetRngRule(unittest.TestCase):
    def test_catches_random_device(self):
        v = violations_in(lint_rtmac.check_nondet_rng,
                          "std::mt19937 g{std::random_device{}()};\n")
        self.assertEqual([x.rule for x in v], ["nondet-rng"])

    def test_catches_rand(self):
        v = violations_in(lint_rtmac.check_nondet_rng,
                          "int r = rand() % 6;\nsrand(42);\n")
        self.assertEqual(len(v), 2)

    def test_repo_rng_is_fine(self):
        v = violations_in(lint_rtmac.check_nondet_rng,
                          "Rng rng{seed, stream_id};\n"
                          "double u = rng.next_double();\n")
        self.assertEqual(v, [])


class UnorderedIterationRule(unittest.TestCase):
    def test_catches_iteration_over_member(self):
        text = ("std::unordered_map<int, double> weights_;\n"
                "void f() { for (const auto& [k, w] : weights_) use(k, w); }\n")
        v = violations_in(lint_rtmac.check_unordered_iteration, text)
        self.assertEqual([x.rule for x in v], ["unordered-iteration"])

    def test_lookup_is_fine(self):
        text = ("std::unordered_map<int, double> weights_;\n"
                "double g(int k) { return weights_.at(k); }\n")
        v = violations_in(lint_rtmac.check_unordered_iteration, text)
        self.assertEqual(v, [])

    def test_vector_iteration_is_fine(self):
        text = ("std::vector<double> xs_;\n"
                "void f() { for (double x : xs_) use(x); }\n")
        v = violations_in(lint_rtmac.check_unordered_iteration, text)
        self.assertEqual(v, [])

    def test_suppression(self):
        text = ("std::unordered_set<int> seen_;\n"
                "void f() { for (int s : seen_) total += s; }"
                "  // lint-ok: unordered-iteration commutative sum\n")
        v = violations_in(lint_rtmac.check_unordered_iteration, text)
        self.assertEqual(v, [])


class FloatEqualityRule(unittest.TestCase):
    def test_catches_literal_comparison(self):
        v = violations_in(lint_rtmac.check_float_equality,
                          "if (ratio == 1.0) return;\n")
        self.assertEqual([x.rule for x in v], ["float-equality"])

    def test_catches_double_variable_comparison(self):
        text = ("double mean = compute();\n"
                "if (mean == target) return;\n")
        v = violations_in(lint_rtmac.check_float_equality, text)
        self.assertEqual(len(v), 1)

    def test_integer_comparison_is_fine(self):
        v = violations_in(lint_rtmac.check_float_equality,
                          "if (count == 0) return;\n")
        self.assertEqual(v, [])

    def test_suppression(self):
        v = violations_in(
            lint_rtmac.check_float_equality,
            "if (x == 0.0) return 1.0;  // lint-ok: float-equality guard\n")
        self.assertEqual(v, [])


class RawAssertRule(unittest.TestCase):
    def test_catches_assert_and_include(self):
        text = "#include <cassert>\nvoid f() { assert(x > 0); }\n"
        v = violations_in(lint_rtmac.check_raw_assert, text)
        self.assertEqual(len(v), 2)

    def test_contracts_are_fine(self):
        text = ('#include "util/check.hpp"\n'
                "void f() { RTMAC_ASSERT(x > 0); RTMAC_REQUIRE(y >= 0); }\n")
        v = violations_in(lint_rtmac.check_raw_assert, text)
        self.assertEqual(v, [])

    def test_static_assert_is_fine(self):
        v = violations_in(lint_rtmac.check_raw_assert,
                          "static_assert(sizeof(int) == 4);\n")
        self.assertEqual(v, [])


class StdFunctionRule(unittest.TestCase):
    def test_catches_std_function_member(self):
        v = violations_in(lint_rtmac.check_std_function,
                          "std::function<void()> on_expire_;\n",
                          path=Path("src/mac/fake.hpp"))
        self.assertEqual([x.rule for x in v], ["std-function"])

    def test_catches_functional_include(self):
        v = violations_in(lint_rtmac.check_std_function,
                          "#include <functional>\n",
                          path=Path("src/sim/fake.hpp"))
        self.assertEqual(len(v), 1)

    def test_inplace_function_is_fine(self):
        v = violations_in(
            lint_rtmac.check_std_function,
            '#include "util/inplace_function.hpp"\n'
            "util::InplaceFunction<void()> on_expire_;\n")
        self.assertEqual(v, [])

    def test_comment_mention_is_fine(self):
        v = violations_in(lint_rtmac.check_std_function,
                          "int x;  // unlike std::function, stores inline\n")
        self.assertEqual(v, [])

    def test_suppression(self):
        v = violations_in(
            lint_rtmac.check_std_function,
            "using Factory = std::function<int()>;"
            "  // lint-ok: std-function copyable config-time factory\n")
        self.assertEqual(v, [])

    def test_scope_excludes_config_layers(self):
        # The rule's scope is the event hot path only; net/ and expfw/ keep
        # std::function for copyable observers and factories.
        self.assertEqual(lint_rtmac.RULE_SCOPES["std-function"],
                         ("src/sim", "src/phy", "src/mac"))


class IntervalInterfaceAllocRule(unittest.TestCase):
    def test_catches_vector_parameter(self):
        v = violations_in(
            lint_rtmac.check_interval_interface,
            "void begin_interval(IntervalIndex k,"
            " const std::vector<int>& arrivals);\n",
            path=Path("src/mac/fake.hpp"))
        self.assertEqual([x.rule for x in v], ["interval-interface-alloc"])

    def test_catches_multiline_signature(self):
        text = ("void begin_interval(IntervalIndex k,\n"
                "                    std::vector<int> arrivals,\n"
                "                    TimePoint interval_end);\n")
        v = violations_in(lint_rtmac.check_interval_interface, text,
                          path=Path("src/mac/fake.hpp"))
        self.assertEqual(len(v), 1)
        self.assertEqual(v[0].line, 1)

    def test_catches_allocating_return_type(self):
        v = violations_in(lint_rtmac.check_interval_interface,
                          "std::vector<int> end_interval();\n",
                          path=Path("src/mac/fake.hpp"))
        self.assertEqual(len(v), 1)

    def test_span_interface_is_fine(self):
        text = ("void begin_interval(IntervalIndex k,"
                " std::span<const int> arrivals, TimePoint end);\n"
                "void end_interval(std::span<int> delivered);\n")
        v = violations_in(lint_rtmac.check_interval_interface, text,
                          path=Path("src/mac/fake.hpp"))
        self.assertEqual(v, [])

    def test_call_site_is_fine(self):
        v = violations_in(
            lint_rtmac.check_interval_interface,
            "links_[n]->begin_interval(arrivals[n], interval_end);\n",
            path=Path("src/mac/fake.cpp"))
        self.assertEqual(v, [])

    def test_suppression_on_any_signature_line(self):
        text = ("void begin_interval(  // lint-ok: interval-interface-alloc"
                " config-time copy\n"
                "    std::vector<int> arrivals);\n")
        v = violations_in(lint_rtmac.check_interval_interface, text,
                          path=Path("src/mac/fake.hpp"))
        self.assertEqual(v, [])

    def test_scope_is_hot_path_layers(self):
        self.assertEqual(lint_rtmac.RULE_SCOPES["interval-interface-alloc"],
                         ("src/mac", "src/net"))


class TreeScanAndAllowlist(unittest.TestCase):
    def make_tree(self):
        root = Path(tempfile.mkdtemp(prefix="lint_rtmac_test_"))
        self.addCleanup(shutil.rmtree, root)
        (root / "src" / "util").mkdir(parents=True)
        (root / "src" / "expfw").mkdir(parents=True)
        return root

    def test_allowlisted_profiler_passes_wall_clock(self):
        root = self.make_tree()
        (root / "src" / "expfw" / "runner.cpp").write_text(
            "auto t = std::chrono::steady_clock::now();\n")
        (root / "src" / "util" / "stopwatch.cpp").write_text(
            "auto t = std::chrono::steady_clock::now();\n")
        self.assertEqual(lint_rtmac.scan_tree(root), [])

    def test_unquarantined_wall_clock_fails(self):
        root = self.make_tree()
        (root / "src" / "mac").mkdir()
        (root / "src" / "mac" / "bad.cpp").write_text(
            "auto t = std::chrono::steady_clock::now();\n")
        v = lint_rtmac.scan_tree(root)
        self.assertEqual([x.rule for x in v], ["wall-clock"])
        self.assertIn("mac/bad.cpp", str(v[0]))

    def test_obs_sketch_wall_clock_fails(self):
        # The streaming-observability files are NOT allowlisted: a sketch or
        # stream that ever timestamps with a wall clock would silently break
        # the byte-identical-across-jobs export guarantee, so the lint must
        # catch it there.
        root = self.make_tree()
        (root / "src" / "obs").mkdir()
        (root / "src" / "obs" / "sketch.cpp").write_text(
            "auto t = std::chrono::steady_clock::now();\n")
        v = lint_rtmac.scan_tree(root)
        self.assertEqual([x.rule for x in v], ["wall-clock"])
        self.assertIn("obs/sketch.cpp", str(v[0]))

    def test_shard_api_outside_allowlist_fails(self):
        # Scheme/bench code must not reach into the shard-mode Medium API:
        # cross-shard state flows only through the coordinator's mailboxes.
        root = self.make_tree()
        (root / "src" / "mac").mkdir()
        (root / "src" / "mac" / "rogue.cpp").write_text(
            "medium.inject_remote_activity(rec);\n"
            "medium.drain_cut_outbox(out);\n")
        v = lint_rtmac.scan_tree(root)
        self.assertEqual([x.rule for x in v],
                         ["shard-isolation", "shard-isolation"])
        self.assertIn("mac/rogue.cpp", str(v[0]))

    def test_shard_api_in_medium_and_network_glue_passes(self):
        root = self.make_tree()
        (root / "src" / "phy").mkdir()
        (root / "src" / "net").mkdir()
        (root / "src" / "sim").mkdir()
        shard_calls = ("m.configure_shard(cfg);\n"
                       "m.register_remote_sense(speaker, nodes);\n"
                       "m.set_resolution_horizon(end);\n"
                       "m.drain_cut_outbox(out);\n"
                       "m.inject_remote_activity(rec);\n")
        (root / "src" / "phy" / "medium.cpp").write_text(shard_calls)
        (root / "src" / "net" / "network.cpp").write_text(shard_calls)
        (root / "src" / "sim" / "sharded_simulator.cpp").write_text(
            shard_calls)
        self.assertEqual(lint_rtmac.scan_tree(root), [])

    def test_shard_isolation_checker_direct(self):
        v = violations_in(lint_rtmac.check_shard_isolation,
                          "medium_->set_resolution_horizon(end);\n")
        self.assertEqual([x.rule for x in v], ["shard-isolation"])
        # Plain horizon-flavored identifiers and comments are fine.
        v = violations_in(
            lint_rtmac.check_shard_isolation,
            "double horizon = end;  // set_resolution_horizon is banned\n")
        self.assertEqual(v, [])
        # Suppression works like every other rule.
        v = violations_in(
            lint_rtmac.check_shard_isolation,
            "m.drain_cut_outbox(out);  // lint-ok: shard-isolation test rig\n")
        self.assertEqual(v, [])

    def test_obs_stream_nondet_rng_fails(self):
        # Same guarantee, RNG flavor: compaction coins must come from the
        # seeded util Rng, never from rand()/random_device.
        root = self.make_tree()
        (root / "src" / "obs").mkdir()
        (root / "src" / "obs" / "stream.cpp").write_text(
            "int coin = rand() & 1;\n")
        v = lint_rtmac.scan_tree(root)
        self.assertEqual([x.rule for x in v], ["nondet-rng"])
        self.assertIn("obs/stream.cpp", str(v[0]))


@unittest.skipIf(lint_rtmac.find_compiler() is None, "no C++ compiler")
class HeaderSelfContainedRule(unittest.TestCase):
    def make_tree(self):
        root = Path(tempfile.mkdtemp(prefix="lint_rtmac_hdr_"))
        self.addCleanup(shutil.rmtree, root)
        (root / "src").mkdir()
        return root

    def test_catches_missing_include(self):
        root = self.make_tree()
        (root / "src" / "broken.hpp").write_text(
            "#pragma once\n"
            "inline std::string label() { return {}; }  // needs <string>\n")
        v = lint_rtmac.check_headers(root)
        self.assertEqual([x.rule for x in v], ["header-self-contained"])

    def test_self_contained_header_passes(self):
        root = self.make_tree()
        (root / "src" / "good.hpp").write_text(
            "#pragma once\n#include <string>\n"
            "inline std::string label() { return {}; }\n")
        self.assertEqual(lint_rtmac.check_headers(root), [])


if __name__ == "__main__":
    unittest.main()
