#!/usr/bin/env python3
"""Unit tests for tools/lint_rtmac.py: each rule must catch a seeded
violation, honor lint-ok suppressions, and respect its allowlist."""

import contextlib
import io
import shutil
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import lint_rtmac  # noqa: E402


def violations_in(checker, text, path=Path("src/fake.cpp")):
    return checker(path, text)


class WallClockRule(unittest.TestCase):
    def test_catches_steady_clock(self):
        v = violations_in(lint_rtmac.check_wall_clock,
                          "auto t = std::chrono::steady_clock::now();\n")
        self.assertEqual([x.rule for x in v], ["wall-clock"])

    def test_catches_time_nullptr(self):
        v = violations_in(lint_rtmac.check_wall_clock,
                          "seed = time(nullptr);\n")
        self.assertEqual(len(v), 1)

    def test_virtual_time_is_fine(self):
        v = violations_in(lint_rtmac.check_wall_clock,
                          "TimePoint t = sim_.now() + Duration::seconds(1);\n")
        self.assertEqual(v, [])

    def test_comment_mention_is_fine(self):
        v = violations_in(lint_rtmac.check_wall_clock,
                          "int x = 0;  // unlike steady_clock, virtual time\n")
        self.assertEqual(v, [])

    def test_suppression(self):
        v = violations_in(
            lint_rtmac.check_wall_clock,
            "auto t = std::chrono::steady_clock::now();"
            "  // lint-ok: wall-clock profiler only\n")
        self.assertEqual(v, [])


class NondetRngRule(unittest.TestCase):
    def test_catches_random_device(self):
        v = violations_in(lint_rtmac.check_nondet_rng,
                          "std::mt19937 g{std::random_device{}()};\n")
        self.assertEqual([x.rule for x in v], ["nondet-rng"])

    def test_catches_rand(self):
        v = violations_in(lint_rtmac.check_nondet_rng,
                          "int r = rand() % 6;\nsrand(42);\n")
        self.assertEqual(len(v), 2)

    def test_repo_rng_is_fine(self):
        v = violations_in(lint_rtmac.check_nondet_rng,
                          "Rng rng{seed, stream_id};\n"
                          "double u = rng.next_double();\n")
        self.assertEqual(v, [])


class UnorderedIterationRule(unittest.TestCase):
    def test_catches_iteration_over_member(self):
        text = ("std::unordered_map<int, double> weights_;\n"
                "void f() { for (const auto& [k, w] : weights_) use(k, w); }\n")
        v = violations_in(lint_rtmac.check_unordered_iteration, text)
        self.assertEqual([x.rule for x in v], ["unordered-iteration"])

    def test_lookup_is_fine(self):
        text = ("std::unordered_map<int, double> weights_;\n"
                "double g(int k) { return weights_.at(k); }\n")
        v = violations_in(lint_rtmac.check_unordered_iteration, text)
        self.assertEqual(v, [])

    def test_vector_iteration_is_fine(self):
        text = ("std::vector<double> xs_;\n"
                "void f() { for (double x : xs_) use(x); }\n")
        v = violations_in(lint_rtmac.check_unordered_iteration, text)
        self.assertEqual(v, [])

    def test_suppression(self):
        text = ("std::unordered_set<int> seen_;\n"
                "void f() { for (int s : seen_) total += s; }"
                "  // lint-ok: unordered-iteration commutative sum\n")
        v = violations_in(lint_rtmac.check_unordered_iteration, text)
        self.assertEqual(v, [])


class FloatEqualityRule(unittest.TestCase):
    def test_catches_literal_comparison(self):
        v = violations_in(lint_rtmac.check_float_equality,
                          "if (ratio == 1.0) return;\n")
        self.assertEqual([x.rule for x in v], ["float-equality"])

    def test_catches_double_variable_comparison(self):
        text = ("double mean = compute();\n"
                "if (mean == target) return;\n")
        v = violations_in(lint_rtmac.check_float_equality, text)
        self.assertEqual(len(v), 1)

    def test_integer_comparison_is_fine(self):
        v = violations_in(lint_rtmac.check_float_equality,
                          "if (count == 0) return;\n")
        self.assertEqual(v, [])

    def test_suppression(self):
        v = violations_in(
            lint_rtmac.check_float_equality,
            "if (x == 0.0) return 1.0;  // lint-ok: float-equality guard\n")
        self.assertEqual(v, [])


class RawAssertRule(unittest.TestCase):
    def test_catches_assert_and_include(self):
        text = "#include <cassert>\nvoid f() { assert(x > 0); }\n"
        v = violations_in(lint_rtmac.check_raw_assert, text)
        self.assertEqual(len(v), 2)

    def test_contracts_are_fine(self):
        text = ('#include "util/check.hpp"\n'
                "void f() { RTMAC_ASSERT(x > 0); RTMAC_REQUIRE(y >= 0); }\n")
        v = violations_in(lint_rtmac.check_raw_assert, text)
        self.assertEqual(v, [])

    def test_static_assert_is_fine(self):
        v = violations_in(lint_rtmac.check_raw_assert,
                          "static_assert(sizeof(int) == 4);\n")
        self.assertEqual(v, [])


class StdFunctionRule(unittest.TestCase):
    def test_catches_std_function_member(self):
        v = violations_in(lint_rtmac.check_std_function,
                          "std::function<void()> on_expire_;\n",
                          path=Path("src/mac/fake.hpp"))
        self.assertEqual([x.rule for x in v], ["std-function"])

    def test_catches_functional_include(self):
        v = violations_in(lint_rtmac.check_std_function,
                          "#include <functional>\n",
                          path=Path("src/sim/fake.hpp"))
        self.assertEqual(len(v), 1)

    def test_inplace_function_is_fine(self):
        v = violations_in(
            lint_rtmac.check_std_function,
            '#include "util/inplace_function.hpp"\n'
            "util::InplaceFunction<void()> on_expire_;\n")
        self.assertEqual(v, [])

    def test_comment_mention_is_fine(self):
        v = violations_in(lint_rtmac.check_std_function,
                          "int x;  // unlike std::function, stores inline\n")
        self.assertEqual(v, [])

    def test_suppression(self):
        v = violations_in(
            lint_rtmac.check_std_function,
            "using Factory = std::function<int()>;"
            "  // lint-ok: std-function copyable config-time factory\n")
        self.assertEqual(v, [])

    def test_scope_excludes_config_layers(self):
        # The rule's scope is the event hot path only; net/ and expfw/ keep
        # std::function for copyable observers and factories.
        self.assertEqual(lint_rtmac.RULE_SCOPES["std-function"],
                         ("src/sim", "src/phy", "src/mac"))


class IntervalInterfaceAllocRule(unittest.TestCase):
    def test_catches_vector_parameter(self):
        v = violations_in(
            lint_rtmac.check_interval_interface,
            "void begin_interval(IntervalIndex k,"
            " const std::vector<int>& arrivals);\n",
            path=Path("src/mac/fake.hpp"))
        self.assertEqual([x.rule for x in v], ["interval-interface-alloc"])

    def test_catches_multiline_signature(self):
        text = ("void begin_interval(IntervalIndex k,\n"
                "                    std::vector<int> arrivals,\n"
                "                    TimePoint interval_end);\n")
        v = violations_in(lint_rtmac.check_interval_interface, text,
                          path=Path("src/mac/fake.hpp"))
        self.assertEqual(len(v), 1)
        self.assertEqual(v[0].line, 1)

    def test_catches_allocating_return_type(self):
        v = violations_in(lint_rtmac.check_interval_interface,
                          "std::vector<int> end_interval();\n",
                          path=Path("src/mac/fake.hpp"))
        self.assertEqual(len(v), 1)

    def test_span_interface_is_fine(self):
        text = ("void begin_interval(IntervalIndex k,"
                " std::span<const int> arrivals, TimePoint end);\n"
                "void end_interval(std::span<int> delivered);\n")
        v = violations_in(lint_rtmac.check_interval_interface, text,
                          path=Path("src/mac/fake.hpp"))
        self.assertEqual(v, [])

    def test_call_site_is_fine(self):
        v = violations_in(
            lint_rtmac.check_interval_interface,
            "links_[n]->begin_interval(arrivals[n], interval_end);\n",
            path=Path("src/mac/fake.cpp"))
        self.assertEqual(v, [])

    def test_suppression_on_any_signature_line(self):
        text = ("void begin_interval(  // lint-ok: interval-interface-alloc"
                " config-time copy\n"
                "    std::vector<int> arrivals);\n")
        v = violations_in(lint_rtmac.check_interval_interface, text,
                          path=Path("src/mac/fake.hpp"))
        self.assertEqual(v, [])

    def test_scope_is_hot_path_layers(self):
        self.assertEqual(lint_rtmac.RULE_SCOPES["interval-interface-alloc"],
                         ("src/mac", "src/net"))


class TreeScanAndAllowlist(unittest.TestCase):
    def make_tree(self):
        root = Path(tempfile.mkdtemp(prefix="lint_rtmac_test_"))
        self.addCleanup(shutil.rmtree, root)
        (root / "src" / "util").mkdir(parents=True)
        (root / "src" / "expfw").mkdir(parents=True)
        return root

    def test_allowlisted_profiler_passes_wall_clock(self):
        root = self.make_tree()
        (root / "src" / "expfw" / "runner.cpp").write_text(
            "auto t = std::chrono::steady_clock::now();\n")
        (root / "src" / "util" / "stopwatch.cpp").write_text(
            "auto t = std::chrono::steady_clock::now();\n")
        self.assertEqual(lint_rtmac.scan_tree(root), [])

    def test_unquarantined_wall_clock_fails(self):
        root = self.make_tree()
        (root / "src" / "mac").mkdir()
        (root / "src" / "mac" / "bad.cpp").write_text(
            "auto t = std::chrono::steady_clock::now();\n")
        v = lint_rtmac.scan_tree(root)
        self.assertEqual([x.rule for x in v], ["wall-clock"])
        self.assertIn("mac/bad.cpp", str(v[0]))

    def test_obs_sketch_wall_clock_fails(self):
        # The streaming-observability files are NOT allowlisted: a sketch or
        # stream that ever timestamps with a wall clock would silently break
        # the byte-identical-across-jobs export guarantee, so the lint must
        # catch it there.
        root = self.make_tree()
        (root / "src" / "obs").mkdir()
        (root / "src" / "obs" / "sketch.cpp").write_text(
            "auto t = std::chrono::steady_clock::now();\n")
        v = lint_rtmac.scan_tree(root)
        self.assertEqual([x.rule for x in v], ["wall-clock"])
        self.assertIn("obs/sketch.cpp", str(v[0]))

    def test_shard_api_outside_allowlist_fails(self):
        # Scheme/bench code must not reach into the shard-mode Medium API:
        # cross-shard state flows only through the coordinator's mailboxes.
        root = self.make_tree()
        (root / "src" / "mac").mkdir()
        (root / "src" / "mac" / "rogue.cpp").write_text(
            "medium.inject_remote_activity(rec);\n"
            "medium.drain_cut_outbox(out);\n")
        v = lint_rtmac.scan_tree(root)
        self.assertEqual([x.rule for x in v],
                         ["shard-isolation", "shard-isolation"])
        self.assertIn("mac/rogue.cpp", str(v[0]))

    def test_shard_api_in_medium_and_network_glue_passes(self):
        root = self.make_tree()
        (root / "src" / "phy").mkdir()
        (root / "src" / "net").mkdir()
        (root / "src" / "sim").mkdir()
        shard_calls = ("m.configure_shard(cfg);\n"
                       "m.register_remote_sense(speaker, nodes);\n"
                       "m.set_resolution_horizon(end);\n"
                       "m.drain_cut_outbox(out);\n"
                       "m.inject_remote_activity(rec);\n")
        (root / "src" / "phy" / "medium.cpp").write_text(shard_calls)
        (root / "src" / "net" / "network.cpp").write_text(shard_calls)
        (root / "src" / "sim" / "sharded_simulator.cpp").write_text(
            shard_calls)
        self.assertEqual(lint_rtmac.scan_tree(root), [])

    def test_shard_isolation_checker_direct(self):
        v = violations_in(lint_rtmac.check_shard_isolation,
                          "medium_->set_resolution_horizon(end);\n")
        self.assertEqual([x.rule for x in v], ["shard-isolation"])
        # Plain horizon-flavored identifiers and comments are fine.
        v = violations_in(
            lint_rtmac.check_shard_isolation,
            "double horizon = end;  // set_resolution_horizon is banned\n")
        self.assertEqual(v, [])
        # Suppression works like every other rule.
        v = violations_in(
            lint_rtmac.check_shard_isolation,
            "m.drain_cut_outbox(out);  // lint-ok: shard-isolation test rig\n")
        self.assertEqual(v, [])

    def test_obs_stream_nondet_rng_fails(self):
        # Same guarantee, RNG flavor: compaction coins must come from the
        # seeded util Rng, never from rand()/random_device.
        root = self.make_tree()
        (root / "src" / "obs").mkdir()
        (root / "src" / "obs" / "stream.cpp").write_text(
            "int coin = rand() & 1;\n")
        v = lint_rtmac.scan_tree(root)
        self.assertEqual([x.rule for x in v], ["nondet-rng"])
        self.assertIn("obs/stream.cpp", str(v[0]))


@unittest.skipIf(lint_rtmac.find_compiler() is None, "no C++ compiler")
class HeaderSelfContainedRule(unittest.TestCase):
    def make_tree(self):
        root = Path(tempfile.mkdtemp(prefix="lint_rtmac_hdr_"))
        self.addCleanup(shutil.rmtree, root)
        (root / "src").mkdir()
        return root

    def test_catches_missing_include(self):
        root = self.make_tree()
        (root / "src" / "broken.hpp").write_text(
            "#pragma once\n"
            "inline std::string label() { return {}; }  // needs <string>\n")
        v = lint_rtmac.check_headers(root)
        self.assertEqual([x.rule for x in v], ["header-self-contained"])

    def test_self_contained_header_passes(self):
        root = self.make_tree()
        (root / "src" / "good.hpp").write_text(
            "#pragma once\n#include <string>\n"
            "inline std::string label() { return {}; }\n")
        self.assertEqual(lint_rtmac.check_headers(root), [])


class LayeringRule(unittest.TestCase):
    def make_tree(self, *dirs):
        root = Path(tempfile.mkdtemp(prefix="lint_rtmac_layer_"))
        self.addCleanup(shutil.rmtree, root)
        for d in dirs:
            (root / "src" / d).mkdir(parents=True)
        return root

    def test_back_edge_fails(self):
        root = self.make_tree("mac")
        (root / "src" / "mac" / "rogue.cpp").write_text(
            '#include "net/network.hpp"\n')
        v = lint_rtmac.check_layering(root)
        self.assertEqual([x.rule for x in v], ["layering"])
        self.assertIn("back-edge", v[0].message)
        self.assertIn("mac/rogue.cpp", str(v[0]))

    def test_downward_and_same_dir_includes_pass(self):
        root = self.make_tree("net", "mac")
        (root / "src" / "net" / "network.cpp").write_text(
            '#include "mac/scheme.hpp"\n#include "util/time.hpp"\n'
            '#include "net/topology.hpp"\n#include <vector>\n')
        (root / "src" / "mac" / "scheme.hpp").write_text(
            '#pragma once\n#include "local_helper.hpp"\n')
        self.assertEqual(lint_rtmac.check_layering(root), [])

    def test_declared_exception_passes_but_does_not_leak(self):
        # The obs/collect.cpp -> net edge is declared in LAYER_EXCEPTIONS;
        # the same edge from any other file must still be a violation.
        root = self.make_tree("obs")
        (root / "src" / "obs" / "collect.cpp").write_text(
            '#include "net/network.hpp"\n#include "mac/dp_link_mac.hpp"\n')
        (root / "src" / "obs" / "other.cpp").write_text(
            '#include "net/network.hpp"\n')
        v = lint_rtmac.check_layering(root)
        self.assertEqual([x.rule for x in v], ["layering"])
        self.assertIn("obs/other.cpp", str(v[0]))

    def test_header_cycle_fails(self):
        root = self.make_tree("sim")
        (root / "src" / "sim" / "a.hpp").write_text(
            '#pragma once\n#include "sim/b.hpp"\n')
        (root / "src" / "sim" / "b.hpp").write_text(
            '#pragma once\n#include "sim/a.hpp"\n')
        v = lint_rtmac.check_layering(root)
        self.assertEqual([x.rule for x in v], ["layering"])
        self.assertIn("cycle", v[0].message)
        self.assertIn("sim/a.hpp", v[0].message)
        self.assertIn("sim/b.hpp", v[0].message)

    def test_multiline_include_is_seen_whole(self):
        # A directive split with a backslash continuation is still one
        # logical line; the back-edge must be caught at its first line.
        root = self.make_tree("mac")
        (root / "src" / "mac" / "glue.cpp").write_text(
            '#include \\\n    "net/network.hpp"\nint x;\n')
        v = lint_rtmac.check_layering(root)
        self.assertEqual([(x.rule, x.line) for x in v], [("layering", 1)])

    def test_unknown_directory_fails(self):
        root = self.make_tree("widgets")
        (root / "src" / "widgets" / "w.cpp").write_text("int x;\n")
        v = lint_rtmac.check_layering(root)
        self.assertEqual([x.rule for x in v], ["layering"])
        self.assertIn("no declared layer", v[0].message)

    def test_unknown_include_target_fails(self):
        root = self.make_tree("mac")
        (root / "src" / "mac" / "m.cpp").write_text(
            '#include "widgets/w.hpp"\n')
        v = lint_rtmac.check_layering(root)
        self.assertEqual([x.rule for x in v], ["layering"])
        self.assertIn("no declared layer", v[0].message)

    def test_suppression(self):
        root = self.make_tree("mac")
        (root / "src" / "mac" / "glue.cpp").write_text(
            '#include "net/network.hpp"  // lint-ok: layering migration\n')
        self.assertEqual(lint_rtmac.check_layering(root), [])

    def test_real_tree_has_no_undeclared_back_edges(self):
        repo = Path(lint_rtmac.__file__).resolve().parent.parent
        self.assertEqual(lint_rtmac.check_layering(repo), [])


class OutputOrderingAndSummary(unittest.TestCase):
    def make_tree(self):
        root = Path(tempfile.mkdtemp(prefix="lint_rtmac_order_"))
        self.addCleanup(shutil.rmtree, root)
        (root / "src" / "core").mkdir(parents=True)
        (root / "src" / "mac").mkdir(parents=True)
        return root

    def run_main(self, root):
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            rc = lint_rtmac.main(["--root", str(root), "--no-headers"])
        return rc, out.getvalue(), err.getvalue()

    def test_violations_sorted_by_path_line_rule(self):
        # scan_tree visits rule-by-rule (wall-clock before nondet-rng), so
        # unsorted output would list mac/z.cpp first; the printed order must
        # be (path, line, rule) regardless.
        root = self.make_tree()
        (root / "src" / "mac" / "z.cpp").write_text(
            "auto t = std::chrono::steady_clock::now();\n")
        (root / "src" / "core" / "a.cpp").write_text(
            "int r = rand() % 6;\n")
        rc, out, _err = self.run_main(root)
        self.assertEqual(rc, 1)
        lines = out.strip().splitlines()
        self.assertEqual(len(lines), 2)
        self.assertIn("core/a.cpp", lines[0])
        self.assertIn("mac/z.cpp", lines[1])

    def test_summary_line_counts_per_rule(self):
        root = self.make_tree()
        (root / "src" / "mac" / "z.cpp").write_text(
            "auto t = std::chrono::steady_clock::now();\n"
            "int r = rand() % 6;\n")
        rc, _out, err = self.run_main(root)
        self.assertEqual(rc, 1)
        self.assertIn("2 violation(s) [nondet-rng=1, wall-clock=1]", err)

    def test_clean_tree_reports_clean(self):
        root = self.make_tree()
        (root / "src" / "core" / "ok.cpp").write_text("int x = 0;\n")
        rc, out, _err = self.run_main(root)
        self.assertEqual(rc, 0)
        self.assertIn("clean", out)


if __name__ == "__main__":
    unittest.main()
