#!/usr/bin/env python3
"""Repo-specific determinism / correctness lint for rtmac.

Enforces the coding rules the repo's guarantees depend on but clang-tidy
cannot express:

  wall-clock          No wall/monotonic clock reads outside src/util/ and the
                      quarantined profiler (expfw/runner.cpp, expfw/observe.cpp).
                      Sweep output must be a pure function of (config, seed);
                      a stray clock read is how nondeterminism sneaks in.
  nondet-rng          No std::rand/srand, std::random_device, or
                      default_random_engine anywhere. All randomness flows
                      from util/rng.hpp streams derived from the root seed.
  unordered-iteration No iteration over unordered containers: their order is
                      implementation-defined, so any loop over one can leak
                      scheduling/hash noise into results. Keyed lookups are
                      fine; iterate a sorted or indexed container instead.
  float-equality      No ==/!= on floating-point values in src/stats/ (the
                      layer that aggregates results): exact comparison on
                      accumulated doubles is almost always a latent bug.
  raw-assert          No assert()/<cassert> in src/: use RTMAC_ASSERT /
                      RTMAC_REQUIRE / RTMAC_UNREACHABLE (util/check.hpp) so
                      invariants stay checkable in Release via RTMAC_CHECKED.
  std-function        No std::function in src/sim/, src/phy/, src/mac/ (the
                      event hot path): it heap-allocates beyond its tiny SSO
                      buffer and silently accepts copy-only callables. Use
                      util::InplaceFunction, which stores callables inline
                      and rejects oversized captures at compile time.
  interval-interface-alloc
                      No allocating containers (std::vector, std::string,
                      std::map, ...) in begin_interval/end_interval
                      signatures under src/mac/ and src/net/. The interval
                      hot path runs once per simulated interval for every
                      scheme; its interfaces take std::span views in and
                      fill caller-owned spans out, so the steady state stays
                      allocation-free (BM_DbdpIntervalAllocs == 0 is
                      CI-gated).
  shard-isolation     No shard-mode Medium plumbing (configure_shard,
                      register_remote_sense, inject_remote_activity,
                      drain_cut_outbox, set_resolution_horizon) outside the
                      Medium itself, the shard coordinator, and the Network
                      glue in src/net/network.cpp. Cross-shard state flows
                      through the coordinator's deterministic mailboxes only;
                      a stray call from scheme/bench code would bypass the
                      window barriers and break run-to-run determinism.
  header-self-contained
                      Every header under src/ must compile on its own
                      (g++ -fsyntax-only), so include order never matters.

Suppress a finding by appending a justification on the same line:

    if (sum_sq == 0.0) return 1.0;  // lint-ok: float-equality exact zero guard

The rule name is required; a human-readable reason after it is expected.

Exit status: 0 clean, 1 violations, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

SOURCE_GLOBS = ("*.cpp", "*.hpp")

# Directories scanned for each textual rule, relative to the repo root.
RULE_SCOPES = {
    "wall-clock": ("src",),
    "nondet-rng": ("src", "bench", "tests", "examples"),
    "unordered-iteration": ("src",),
    "float-equality": ("src/stats",),
    "raw-assert": ("src",),
    "std-function": ("src/sim", "src/phy", "src/mac"),
    "interval-interface-alloc": ("src/mac", "src/net"),
    "shard-isolation": ("src", "bench", "tests", "examples"),
}

# Files (or directories, trailing "/") exempt from a rule. Keep this list
# tiny and justified.
ALLOWLISTS = {
    "wall-clock": (
        # util/ owns the time abstraction; anything wall-clock-shaped that
        # ever lands there is at least behind the library's own API.
        "src/util/",
        # The engine profiler measures wall time by design; its output is
        # quarantined to profile.jsonl / profile gauges, never sim-domain data.
        "src/expfw/runner.cpp",
        "src/expfw/observe.cpp",
    ),
    "shard-isolation": (
        # The Medium owns the shard-mode API; the coordinator and the
        # Network's cell glue are the only sanctioned callers.
        "src/phy/medium.hpp",
        "src/phy/medium.cpp",
        "src/sim/sharded_simulator.hpp",
        "src/sim/sharded_simulator.cpp",
        "src/net/network.cpp",
    ),
}

SUPPRESS_RE = re.compile(r"//\s*lint-ok:\s*([\w-]+)")

WALL_CLOCK_RE = re.compile(
    r"steady_clock|system_clock|high_resolution_clock|file_clock"
    r"|\bgettimeofday\b|\bclock_gettime\b|\blocaltime\b|\bgmtime\b"
    r"|\bstrftime\b|\bstd::time\s*\(|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
    r"|\bstd::clock\s*\("
)

NONDET_RNG_RE = re.compile(
    r"\brandom_device\b|\bdefault_random_engine\b|\bstd::rand\b"
    r"|(?<![\w:])s?rand\s*\("
)

RAW_ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(|<cassert>")

STD_FUNCTION_RE = re.compile(r"\bstd\s*::\s*function\b|<functional>")

FLOAT_LITERAL = r"(?:\d+\.\d*|\.\d+|\d+\.?\d*[eE][-+]?\d+)[fF]?"
FLOAT_EQ_LITERAL_RE = re.compile(
    rf"(?:{FLOAT_LITERAL}\s*[=!]=)|(?:[=!]=\s*{FLOAT_LITERAL})"
)

INTERVAL_IFACE_RE = re.compile(r"\b(?:begin|end)_interval\s*\(")

SHARD_ISOLATION_RE = re.compile(
    r"\b(?:configure_shard|register_remote_sense|inject_remote_activity"
    r"|drain_cut_outbox|set_resolution_horizon)\s*\(")

ALLOC_CONTAINER_RE = re.compile(
    r"\bstd\s*::\s*(?:vector|deque|list|forward_list|map|set|multimap"
    r"|multiset|unordered_\w+|string|basic_string)\b")

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s+(\w+)"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;]*?):([^)]*)\)")

COMMENT_RE = re.compile(r"//.*$")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _suppressed(line, rule):
    m = SUPPRESS_RE.search(line)
    return m is not None and m.group(1) == rule


def _code_part(line):
    """The line with any trailing // comment stripped (string-naive but the
    tree keeps clock/rng identifiers out of string literals)."""
    return COMMENT_RE.sub("", line)


def _scan_regex(path, text, rule, regex, message):
    out = []
    for i, line in enumerate(text.splitlines(), 1):
        if regex.search(_code_part(line)) and not _suppressed(line, rule):
            out.append(Violation(path, i, rule, message))
    return out


def check_wall_clock(path, text):
    return _scan_regex(
        path, text, "wall-clock", WALL_CLOCK_RE,
        "wall-clock read outside util/ and the quarantined profiler "
        "(sim results must be a pure function of the seed)")


def check_nondet_rng(path, text):
    return _scan_regex(
        path, text, "nondet-rng", NONDET_RNG_RE,
        "nondeterministically seeded / non-reproducible RNG "
        "(use util/rng.hpp streams derived from the root seed)")


def check_raw_assert(path, text):
    return _scan_regex(
        path, text, "raw-assert", RAW_ASSERT_RE,
        "raw assert/<cassert> (use RTMAC_ASSERT/RTMAC_REQUIRE/"
        "RTMAC_UNREACHABLE from util/check.hpp)")


def check_std_function(path, text):
    return _scan_regex(
        path, text, "std-function", STD_FUNCTION_RE,
        "std::function/<functional> in the event hot path "
        "(heap-allocates past its SSO buffer; use util::InplaceFunction)")


def check_float_equality(path, text):
    out = []
    double_names = set()
    for line in text.splitlines():
        for m in re.finditer(r"\b(?:double|float)\s+(\w+)\s*[={;,)]",
                             _code_part(line)):
            double_names.add(m.group(1))
    name_eq = (
        re.compile(
            r"\b(" + "|".join(re.escape(n) for n in sorted(double_names)) +
            r")\s*[=!]=(?!=)|[=!]=\s*\b(" +
            "|".join(re.escape(n) for n in sorted(double_names)) + r")\b")
        if double_names else None)
    for i, line in enumerate(text.splitlines(), 1):
        code = _code_part(line)
        hit = FLOAT_EQ_LITERAL_RE.search(code)
        if not hit and name_eq is not None:
            hit = name_eq.search(code)
        if hit and not _suppressed(line, "float-equality"):
            out.append(Violation(
                path, i, "float-equality",
                "exact ==/!= on floating-point in stats/ "
                "(compare against a tolerance, or suppress for exact-zero "
                "guards with lint-ok)"))
    return out


def check_interval_interface(path, text):
    """Flags begin_interval/end_interval signatures (declarations, defs, or
    return types) that mention an allocating container. The signature may
    span lines; the whole parenthesized stretch is inspected."""
    out = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        first = _code_part(lines[i])
        if INTERVAL_IFACE_RE.search(first) is None:
            i += 1
            continue
        # Accumulate until the parameter list's parentheses balance out.
        depth = 0
        opened = False
        j = i
        parts = []
        while j < len(lines):
            chunk = _code_part(lines[j])
            parts.append(chunk)
            for ch in chunk:
                if ch == "(":
                    depth += 1
                    opened = True
                elif ch == ")":
                    depth -= 1
            if opened and depth <= 0:
                break
            j += 1
        j = min(j, len(lines) - 1)
        signature = " ".join(parts)
        suppressed = any(_suppressed(lines[k], "interval-interface-alloc")
                         for k in range(i, j + 1))
        if ALLOC_CONTAINER_RE.search(signature) and not suppressed:
            out.append(Violation(
                path, i + 1, "interval-interface-alloc",
                "allocating container in an interval hot-path interface "
                "(take std::span views in and fill caller-owned spans out; "
                "the per-interval steady state must not allocate)"))
        i = j + 1
    return out


def check_shard_isolation(path, text):
    return _scan_regex(
        path, text, "shard-isolation", SHARD_ISOLATION_RE,
        "shard-mode Medium API outside the Medium/coordinator/Network glue "
        "(cross-shard state must flow through the coordinator's "
        "deterministic mailboxes)")


def check_unordered_iteration(path, text):
    out = []
    names = set()
    for line in text.splitlines():
        for m in UNORDERED_DECL_RE.finditer(_code_part(line)):
            names.add(m.group(1))
    for i, line in enumerate(text.splitlines(), 1):
        code = _code_part(line)
        for m in RANGE_FOR_RE.finditer(code):
            seq = m.group(2).strip()
            seq_id = re.sub(r"^[\w.\->]*?(\w+)\s*(?:\(\s*\))?$", r"\1", seq)
            if "unordered" in seq or seq_id in names or seq in names:
                if not _suppressed(line, "unordered-iteration"):
                    out.append(Violation(
                        path, i, "unordered-iteration",
                        f"iteration over unordered container '{seq}' "
                        "(implementation-defined order can leak into "
                        "results; iterate a sorted/indexed view)"))
    return out


TEXT_RULES = {
    "wall-clock": check_wall_clock,
    "nondet-rng": check_nondet_rng,
    "unordered-iteration": check_unordered_iteration,
    "float-equality": check_float_equality,
    "raw-assert": check_raw_assert,
    "std-function": check_std_function,
    "interval-interface-alloc": check_interval_interface,
    "shard-isolation": check_shard_isolation,
}


def scan_tree(root):
    violations = []
    for rule, scopes in RULE_SCOPES.items():
        checker = TEXT_RULES[rule]
        allow = ALLOWLISTS.get(rule, ())
        allow_files = {root / p for p in allow if not p.endswith("/")}
        allow_dirs = tuple(root / p for p in allow if p.endswith("/"))
        for scope in scopes:
            base = root / scope
            if not base.is_dir():
                continue
            for glob in SOURCE_GLOBS:
                for path in sorted(base.rglob(glob)):
                    if path in allow_files or any(
                            path.is_relative_to(d) for d in allow_dirs):
                        continue
                    violations.extend(
                        checker(path.relative_to(root), path.read_text()))
    return violations


def find_compiler():
    for cand in (os.environ.get("CXX"), "c++", "g++", "clang++"):
        if cand and shutil.which(cand):
            return cand
    return None


def check_headers(root, jobs=0):
    """Compile every header under src/ on its own; returns violations."""
    compiler = find_compiler()
    if compiler is None:
        print("lint_rtmac: no C++ compiler found, skipping "
              "header-self-contained", file=sys.stderr)
        return []
    headers = sorted((root / "src").rglob("*.hpp"))
    jobs = jobs or os.cpu_count() or 1

    def compile_one(header):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".cpp", delete=False) as tu:
            tu.write(f'#include "{header.relative_to(root / "src")}"\n')
            tu_path = tu.name
        try:
            proc = subprocess.run(
                [compiler, "-std=c++20", "-fsyntax-only",
                 "-I", str(root / "src"), tu_path],
                capture_output=True, text=True)
            if proc.returncode != 0:
                first_error = next(
                    (l for l in proc.stderr.splitlines() if "error" in l),
                    proc.stderr.strip().splitlines()[0]
                    if proc.stderr.strip() else "compile failed")
                return Violation(
                    header.relative_to(root), 1, "header-self-contained",
                    f"header does not compile standalone: {first_error}")
            return None
        finally:
            os.unlink(tu_path)

    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        results = list(pool.map(compile_one, headers))
    return [v for v in results if v is not None]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: the repo containing "
                             "this script)")
    parser.add_argument("--no-headers", action="store_true",
                        help="skip the header-self-contained compile check")
    parser.add_argument("--jobs", type=int, default=0,
                        help="parallel header compiles (default: cpu count)")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"lint_rtmac: {root} has no src/ directory", file=sys.stderr)
        return 2

    violations = scan_tree(root)
    if not args.no_headers:
        violations.extend(check_headers(root, args.jobs))

    for v in violations:
        print(v)
    if violations:
        print(f"lint_rtmac: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("lint_rtmac: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
