#!/usr/bin/env python3
"""Repo-specific determinism / correctness lint for rtmac.

Enforces the coding rules the repo's guarantees depend on but clang-tidy
cannot express:

  wall-clock          No wall/monotonic clock reads outside src/util/ and the
                      quarantined profiler (expfw/runner.cpp, expfw/observe.cpp).
                      Sweep output must be a pure function of (config, seed);
                      a stray clock read is how nondeterminism sneaks in.
  nondet-rng          No std::rand/srand, std::random_device, or
                      default_random_engine anywhere. All randomness flows
                      from util/rng.hpp streams derived from the root seed.
  unordered-iteration No iteration over unordered containers: their order is
                      implementation-defined, so any loop over one can leak
                      scheduling/hash noise into results. Keyed lookups are
                      fine; iterate a sorted or indexed container instead.
  float-equality      No ==/!= on floating-point values in src/stats/ (the
                      layer that aggregates results): exact comparison on
                      accumulated doubles is almost always a latent bug.
  raw-assert          No assert()/<cassert> in src/: use RTMAC_ASSERT /
                      RTMAC_REQUIRE / RTMAC_UNREACHABLE (util/check.hpp) so
                      invariants stay checkable in Release via RTMAC_CHECKED.
  std-function        No std::function in src/sim/, src/phy/, src/mac/ (the
                      event hot path): it heap-allocates beyond its tiny SSO
                      buffer and silently accepts copy-only callables. Use
                      util::InplaceFunction, which stores callables inline
                      and rejects oversized captures at compile time.
  interval-interface-alloc
                      No allocating containers (std::vector, std::string,
                      std::map, ...) in begin_interval/end_interval
                      signatures under src/mac/ and src/net/. The interval
                      hot path runs once per simulated interval for every
                      scheme; its interfaces take std::span views in and
                      fill caller-owned spans out, so the steady state stays
                      allocation-free (BM_DbdpIntervalAllocs == 0 is
                      CI-gated).
  shard-isolation     No shard-mode Medium plumbing (configure_shard,
                      register_remote_sense, inject_remote_activity,
                      drain_cut_outbox, set_resolution_horizon) outside the
                      Medium itself, the shard coordinator, and the Network
                      glue in src/net/network.cpp. Cross-shard state flows
                      through the coordinator's deterministic mailboxes only;
                      a stray call from scheme/bench code would bypass the
                      window barriers and break run-to-run determinism.
  layering            The include graph over src/ must respect the layer DAG
                      declared in LAYERS (util at the bottom, expfw at the
                      top): a file may include only its own directory or a
                      strictly lower layer, and headers must be acyclic.
                      Intentional back-edges are declared in LAYER_EXCEPTIONS
                      with a rationale string; everything else is a
                      violation. See DESIGN.md §5c for the diagram.
  header-self-contained
                      Every header under src/ must compile on its own
                      (g++ -fsyntax-only), so include order never matters.

Suppress a finding by appending a justification on the same line:

    if (sum_sq == 0.0) return 1.0;  // lint-ok: float-equality exact zero guard

The rule name is required; a human-readable reason after it is expected.

Exit status: 0 clean, 1 violations, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path, PurePosixPath

SOURCE_GLOBS = ("*.cpp", "*.hpp")

# Directories scanned for each textual rule, relative to the repo root.
RULE_SCOPES = {
    "wall-clock": ("src",),
    "nondet-rng": ("src", "bench", "tests", "examples"),
    "unordered-iteration": ("src",),
    "float-equality": ("src/stats",),
    "raw-assert": ("src",),
    "std-function": ("src/sim", "src/phy", "src/mac"),
    "interval-interface-alloc": ("src/mac", "src/net"),
    "shard-isolation": ("src", "bench", "tests", "examples"),
}

# Files (or directories, trailing "/") exempt from a rule, each carrying the
# rationale that justifies the exemption — same shape as LAYER_EXCEPTIONS
# below, so every hole in every rule is declared and explained in one idiom.
# Keep these lists tiny.
ALLOWLISTS = {
    "wall-clock": (
        ("src/util/",
         "util/ owns the time abstraction; anything wall-clock-shaped that "
         "ever lands there is at least behind the library's own API"),
        ("src/expfw/runner.cpp",
         "the engine profiler measures wall time by design; its output is "
         "quarantined to profile.jsonl / profile gauges, never sim-domain "
         "data"),
        ("src/expfw/observe.cpp",
         "same quarantined wall-clock profiler surface as expfw/runner.cpp"),
    ),
    "shard-isolation": (
        ("src/phy/medium.hpp",
         "the Medium owns the shard-mode API it is forbidding elsewhere"),
        ("src/phy/medium.cpp",
         "the Medium owns the shard-mode API it is forbidding elsewhere"),
        ("src/sim/sharded_simulator.hpp",
         "the shard coordinator is a sanctioned caller (barrier phase only)"),
        ("src/sim/sharded_simulator.cpp",
         "the shard coordinator is a sanctioned caller (barrier phase only)"),
        ("src/net/network.cpp",
         "the Network's per-cell glue is the sanctioned bridge between the "
         "coordinator and each cell's Medium"),
    ),
}

# ---- layering -----------------------------------------------------------
# The layer DAG over src/ (higher numbers may include strictly lower ones,
# plus their own directory). Derived from the architecture DESIGN.md §2
# describes and diagrammed in §5c; sim and traffic share a layer because
# neither depends on the other.
LAYERS = {
    "util": 0,
    "core": 1,
    "sim": 2,
    "traffic": 2,
    "stats": 3,
    "obs": 4,
    "phy": 5,
    "mac": 6,
    "net": 7,
    "analysis": 8,
    "expfw": 9,
}

# Declared back-edges: (includer path, target directory) -> rationale.
# Every entry must explain why the edge cannot point downward; an edge not
# listed here (and not suppressed inline) is a violation.
LAYER_EXCEPTIONS = {
    ("src/obs/collect.cpp", "mac"):
        "one-way .cpp-only bridge: collect_network_metrics() snapshots "
        "MAC-scheme gauges into the registry; the header forward-declares "
        "and no mac/ code ever includes obs/collect",
    ("src/obs/collect.cpp", "net"):
        "one-way .cpp-only bridge: collect_network_metrics() reads "
        "net::Network counters; the header forward-declares net::Network "
        "so the dependency never escapes this translation unit",
}

SUPPRESS_RE = re.compile(r"//\s*lint-ok:\s*([\w-]+)")

WALL_CLOCK_RE = re.compile(
    r"steady_clock|system_clock|high_resolution_clock|file_clock"
    r"|\bgettimeofday\b|\bclock_gettime\b|\blocaltime\b|\bgmtime\b"
    r"|\bstrftime\b|\bstd::time\s*\(|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
    r"|\bstd::clock\s*\("
)

NONDET_RNG_RE = re.compile(
    r"\brandom_device\b|\bdefault_random_engine\b|\bstd::rand\b"
    r"|(?<![\w:])s?rand\s*\("
)

RAW_ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(|<cassert>")

STD_FUNCTION_RE = re.compile(r"\bstd\s*::\s*function\b|<functional>")

FLOAT_LITERAL = r"(?:\d+\.\d*|\.\d+|\d+\.?\d*[eE][-+]?\d+)[fF]?"
FLOAT_EQ_LITERAL_RE = re.compile(
    rf"(?:{FLOAT_LITERAL}\s*[=!]=)|(?:[=!]=\s*{FLOAT_LITERAL})"
)

INTERVAL_IFACE_RE = re.compile(r"\b(?:begin|end)_interval\s*\(")

SHARD_ISOLATION_RE = re.compile(
    r"\b(?:configure_shard|register_remote_sense|inject_remote_activity"
    r"|drain_cut_outbox|set_resolution_horizon)\s*\(")

ALLOC_CONTAINER_RE = re.compile(
    r"\bstd\s*::\s*(?:vector|deque|list|forward_list|map|set|multimap"
    r"|multiset|unordered_\w+|string|basic_string)\b")

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s+(\w+)"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;]*?):([^)]*)\)")

COMMENT_RE = re.compile(r"//.*$")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _suppressed(line, rule):
    m = SUPPRESS_RE.search(line)
    return m is not None and m.group(1) == rule


def _code_part(line):
    """The line with any trailing // comment stripped (string-naive but the
    tree keeps clock/rng identifiers out of string literals)."""
    return COMMENT_RE.sub("", line)


def _scan_regex(path, text, rule, regex, message):
    out = []
    for i, line in enumerate(text.splitlines(), 1):
        if regex.search(_code_part(line)) and not _suppressed(line, rule):
            out.append(Violation(path, i, rule, message))
    return out


def check_wall_clock(path, text):
    return _scan_regex(
        path, text, "wall-clock", WALL_CLOCK_RE,
        "wall-clock read outside util/ and the quarantined profiler "
        "(sim results must be a pure function of the seed)")


def check_nondet_rng(path, text):
    return _scan_regex(
        path, text, "nondet-rng", NONDET_RNG_RE,
        "nondeterministically seeded / non-reproducible RNG "
        "(use util/rng.hpp streams derived from the root seed)")


def check_raw_assert(path, text):
    return _scan_regex(
        path, text, "raw-assert", RAW_ASSERT_RE,
        "raw assert/<cassert> (use RTMAC_ASSERT/RTMAC_REQUIRE/"
        "RTMAC_UNREACHABLE from util/check.hpp)")


def check_std_function(path, text):
    return _scan_regex(
        path, text, "std-function", STD_FUNCTION_RE,
        "std::function/<functional> in the event hot path "
        "(heap-allocates past its SSO buffer; use util::InplaceFunction)")


def check_float_equality(path, text):
    out = []
    double_names = set()
    for line in text.splitlines():
        for m in re.finditer(r"\b(?:double|float)\s+(\w+)\s*[={;,)]",
                             _code_part(line)):
            double_names.add(m.group(1))
    name_eq = (
        re.compile(
            r"\b(" + "|".join(re.escape(n) for n in sorted(double_names)) +
            r")\s*[=!]=(?!=)|[=!]=\s*\b(" +
            "|".join(re.escape(n) for n in sorted(double_names)) + r")\b")
        if double_names else None)
    for i, line in enumerate(text.splitlines(), 1):
        code = _code_part(line)
        hit = FLOAT_EQ_LITERAL_RE.search(code)
        if not hit and name_eq is not None:
            hit = name_eq.search(code)
        if hit and not _suppressed(line, "float-equality"):
            out.append(Violation(
                path, i, "float-equality",
                "exact ==/!= on floating-point in stats/ "
                "(compare against a tolerance, or suppress for exact-zero "
                "guards with lint-ok)"))
    return out


def check_interval_interface(path, text):
    """Flags begin_interval/end_interval signatures (declarations, defs, or
    return types) that mention an allocating container. The signature may
    span lines; the whole parenthesized stretch is inspected."""
    out = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        first = _code_part(lines[i])
        if INTERVAL_IFACE_RE.search(first) is None:
            i += 1
            continue
        # Accumulate until the parameter list's parentheses balance out.
        depth = 0
        opened = False
        j = i
        parts = []
        while j < len(lines):
            chunk = _code_part(lines[j])
            parts.append(chunk)
            for ch in chunk:
                if ch == "(":
                    depth += 1
                    opened = True
                elif ch == ")":
                    depth -= 1
            if opened and depth <= 0:
                break
            j += 1
        j = min(j, len(lines) - 1)
        signature = " ".join(parts)
        suppressed = any(_suppressed(lines[k], "interval-interface-alloc")
                         for k in range(i, j + 1))
        if ALLOC_CONTAINER_RE.search(signature) and not suppressed:
            out.append(Violation(
                path, i + 1, "interval-interface-alloc",
                "allocating container in an interval hot-path interface "
                "(take std::span views in and fill caller-owned spans out; "
                "the per-interval steady state must not allocate)"))
        i = j + 1
    return out


def check_shard_isolation(path, text):
    return _scan_regex(
        path, text, "shard-isolation", SHARD_ISOLATION_RE,
        "shard-mode Medium API outside the Medium/coordinator/Network glue "
        "(cross-shard state must flow through the coordinator's "
        "deterministic mailboxes)")


def check_unordered_iteration(path, text):
    out = []
    names = set()
    for line in text.splitlines():
        for m in UNORDERED_DECL_RE.finditer(_code_part(line)):
            names.add(m.group(1))
    for i, line in enumerate(text.splitlines(), 1):
        code = _code_part(line)
        for m in RANGE_FOR_RE.finditer(code):
            seq = m.group(2).strip()
            seq_id = re.sub(r"^[\w.\->]*?(\w+)\s*(?:\(\s*\))?$", r"\1", seq)
            if "unordered" in seq or seq_id in names or seq in names:
                if not _suppressed(line, "unordered-iteration"):
                    out.append(Violation(
                        path, i, "unordered-iteration",
                        f"iteration over unordered container '{seq}' "
                        "(implementation-defined order can leak into "
                        "results; iterate a sorted/indexed view)"))
    return out


INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def _logical_lines(text):
    """Yields (first_line_number, line) with backslash continuations folded,
    so a preprocessor directive split across physical lines is seen whole."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        start = i
        buf = lines[i]
        while buf.rstrip().endswith("\\") and i + 1 < len(lines):
            buf = buf.rstrip()[:-1] + lines[i + 1]
            i += 1
        yield start + 1, buf
        i += 1


def _quoted_includes(path, text):
    """All quoted includes of a file as (line_number, line, target) where
    target is the include path string (src-relative by repo convention)."""
    out = []
    for lineno, line in _logical_lines(text):
        m = INCLUDE_RE.match(_code_part(line))
        if m is not None:
            out.append((lineno, line, m.group(1)))
    return out


def check_layering(root):
    """Include-graph rule over src/: no back-edges in the LAYERS DAG (other
    than the declared LAYER_EXCEPTIONS) and no cycles among headers."""
    src = root / "src"
    if not src.is_dir():
        return []
    out = []
    header_includes = {}  # src-relative posix path -> [(line, target)]
    for glob in SOURCE_GLOBS:
        for path in sorted(src.rglob(glob)):
            rel = path.relative_to(root)
            rel_src = path.relative_to(src)
            if len(rel_src.parts) < 2:
                continue  # a file directly in src/ belongs to no layer
            here = rel_src.parts[0]
            here_layer = LAYERS.get(here)
            includes = _quoted_includes(rel, path.read_text())
            if here_layer is None:
                out.append(Violation(
                    rel, 1, "layering",
                    f"directory src/{here}/ has no declared layer "
                    "(add it to LAYERS in tools/lint_rtmac.py)"))
                continue
            if path.suffix == ".hpp":
                header_includes[rel_src.as_posix()] = includes
            for lineno, line, target in includes:
                tparts = PurePosixPath(target).parts
                if len(tparts) < 2:
                    continue  # same-directory shorthand, no cross-layer edge
                tdir = tparts[0]
                tlayer = LAYERS.get(tdir)
                if tdir == here:
                    continue
                if _suppressed(line, "layering"):
                    continue
                if tlayer is None:
                    out.append(Violation(
                        rel, lineno, "layering",
                        f'include of "{target}" targets a directory with no '
                        f"declared layer (add src/{tdir}/ to LAYERS in "
                        "tools/lint_rtmac.py)"))
                elif tlayer >= here_layer and (
                        rel.as_posix(), tdir) not in LAYER_EXCEPTIONS:
                    out.append(Violation(
                        rel, lineno, "layering",
                        f'include of "{target}" is a layer back-edge: '
                        f"src/{here}/ (layer {here_layer}) may only depend "
                        f"on layers below it, and src/{tdir}/ is layer "
                        f"{tlayer} (declare a LAYER_EXCEPTION with a "
                        "rationale if this edge is intentional)"))
    out.extend(_header_cycles(root, header_includes))
    return out


def _header_cycles(root, header_includes):
    """DFS over the header include graph; reports each cycle once, anchored
    at its lexicographically smallest member. Cycles are forbidden outright —
    there is no exception mechanism, because a cycle cannot be layered."""
    out = []
    reported = set()
    # Resolve each header's includes to known headers (same-dir shorthand
    # resolves relative to the includer's directory).
    graph = {}
    for header, includes in header_includes.items():
        edges = []
        for lineno, _line, target in includes:
            if "/" not in target:
                target = (PurePosixPath(header).parent / target).as_posix()
            if target in header_includes:
                edges.append((lineno, target))
        graph[header] = edges

    WHITE, GREY, BLACK = 0, 1, 2
    color = dict.fromkeys(graph, WHITE)

    def visit(node, stack):
        color[node] = GREY
        stack.append(node)
        for lineno, target in graph[node]:
            if color[target] == GREY:
                cycle = stack[stack.index(target):] + [target]
                key = frozenset(cycle)
                if key not in reported:
                    reported.add(key)
                    anchor = min(cycle[:-1])
                    out.append(Violation(
                        Path("src") / node, lineno, "layering",
                        "header include cycle: " +
                        " -> ".join(cycle) +
                        f" (break the cycle at {anchor}, e.g. with a "
                        "forward declaration)"))
            elif color[target] == WHITE:
                visit(target, stack)
        stack.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color[node] == WHITE:
            visit(node, [])
    return out


TEXT_RULES = {
    "wall-clock": check_wall_clock,
    "nondet-rng": check_nondet_rng,
    "unordered-iteration": check_unordered_iteration,
    "float-equality": check_float_equality,
    "raw-assert": check_raw_assert,
    "std-function": check_std_function,
    "interval-interface-alloc": check_interval_interface,
    "shard-isolation": check_shard_isolation,
}


def scan_tree(root):
    violations = []
    for rule, scopes in RULE_SCOPES.items():
        checker = TEXT_RULES[rule]
        allow = ALLOWLISTS.get(rule, ())
        allow_files = {root / p for p, _rationale in allow if not p.endswith("/")}
        allow_dirs = tuple(root / p for p, _rationale in allow if p.endswith("/"))
        for scope in scopes:
            base = root / scope
            if not base.is_dir():
                continue
            for glob in SOURCE_GLOBS:
                for path in sorted(base.rglob(glob)):
                    if path in allow_files or any(
                            path.is_relative_to(d) for d in allow_dirs):
                        continue
                    violations.extend(
                        checker(path.relative_to(root), path.read_text()))
    violations.extend(check_layering(root))
    return violations


def find_compiler():
    for cand in (os.environ.get("CXX"), "c++", "g++", "clang++"):
        if cand and shutil.which(cand):
            return cand
    return None


def check_headers(root, jobs=0):
    """Compile every header under src/ on its own; returns violations."""
    compiler = find_compiler()
    if compiler is None:
        print("lint_rtmac: no C++ compiler found, skipping "
              "header-self-contained", file=sys.stderr)
        return []
    headers = sorted((root / "src").rglob("*.hpp"))
    jobs = jobs or os.cpu_count() or 1

    def compile_one(header):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".cpp", delete=False) as tu:
            tu.write(f'#include "{header.relative_to(root / "src")}"\n')
            tu_path = tu.name
        try:
            proc = subprocess.run(
                [compiler, "-std=c++20", "-fsyntax-only",
                 "-I", str(root / "src"), tu_path],
                capture_output=True, text=True)
            if proc.returncode != 0:
                first_error = next(
                    (l for l in proc.stderr.splitlines() if "error" in l),
                    proc.stderr.strip().splitlines()[0]
                    if proc.stderr.strip() else "compile failed")
                return Violation(
                    header.relative_to(root), 1, "header-self-contained",
                    f"header does not compile standalone: {first_error}")
            return None
        finally:
            os.unlink(tu_path)

    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        results = list(pool.map(compile_one, headers))
    return [v for v in results if v is not None]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: the repo containing "
                             "this script)")
    parser.add_argument("--no-headers", action="store_true",
                        help="skip the header-self-contained compile check")
    parser.add_argument("--jobs", type=int, default=0,
                        help="parallel header compiles (default: cpu count)")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"lint_rtmac: {root} has no src/ directory", file=sys.stderr)
        return 2

    violations = scan_tree(root)
    if not args.no_headers:
        violations.extend(check_headers(root, args.jobs))

    # Stable order whatever filesystem enumeration produced, so CI diffs of
    # lint output are deterministic.
    violations.sort(key=lambda v: (str(v.path), v.line, v.rule))
    for v in violations:
        print(v)
    if violations:
        counts = {}
        for v in violations:
            counts[v.rule] = counts.get(v.rule, 0) + 1
        summary = ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
        print(f"lint_rtmac: {len(violations)} violation(s) [{summary}]",
              file=sys.stderr)
        return 1
    print("lint_rtmac: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
