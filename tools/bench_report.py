#!/usr/bin/env python3
"""Convert google-benchmark JSON into a committed BENCH_*.json trajectory
point.

The micro engine benchmark emits google-benchmark JSON (--benchmark_format=
json). This tool distills it into the repo's perf-trajectory format: one
small, sorted, schema-versioned JSON document per PR that records wall-clock
throughput (informative — shared CI runners make absolute numbers noisy) and
allocation counts (exact and deterministic — CI gates on them).

Typical use:

    ./build/bench/micro_engine_benchmark --benchmark_format=json > raw.json
    python3 tools/bench_report.py raw.json -o BENCH_5.json --pr 5 \
        --baseline prior_raw.json --gate-zero-alloc

Gating: with --gate-zero-alloc, every benchmark whose name contains
"Allocs" must report all of its allocation counters ("allocs",
"allocs_per_interval", ...) as exactly 0, or the tool exits 1. The gate also
requires the sentinel benchmarks BM_EventQueueSteadyStateAllocs,
BM_DbdpIntervalAllocs, and BM_SketchUpdateAllocs to be present, so renaming
or dropping them cannot silently disable it. Malformed or empty input exits 2. A benchmark JSON that
parses but carries error_occurred entries also exits 2 (a crashed benchmark
must fail CI, not produce a hollow trajectory point).

With --gate-rss-kb N, the embedded rtmac.city_scale extra (see --extra)
must report million_peak_rss_kb <= N, or the tool exits 1. The gate
refuses to pass vacuously: a missing city_scale extra or a missing RSS
field is itself a violation. CI points N at the smoke run's scaled
ceiling; the full 10^6-link ceiling lives in bench/city_scale.cpp
(kMillionLinkRssCeilingKb) and the committed BENCH_N.json records the
measured value either way.

--baseline accepts either raw google-benchmark JSON or an already-distilled
rtmac.bench document (e.g. the committed BENCH_N.json of the previous PR),
detected by its "schema" field. When --baseline is omitted, the tool
auto-picks the highest-numbered committed BENCH_N.json in the current
directory (skipping the file named by -o, so regenerating a trajectory
point never uses itself as its own baseline); --no-baseline disables the
comparison entirely.

--extra FILE (repeatable) embeds additional JSON documents — e.g. the
city-scale sharded-engine numbers written by bench/city_scale to
bench_out/city_scale.json — under the output's "extra" map, keyed by the
document's "schema" field (file stem as fallback).

Output schema (rtmac.bench v1):

    {"schema": "rtmac.bench", "version": 1, "pr": N,
     "context": {<host/cpu info from google-benchmark>},
     "benchmarks": {name: {"real_time_ns", "cpu_time_ns",
                           "items_per_second"?, "counters": {...}}},
     "baseline": {<same benchmarks shape, from --baseline>},
     "speedup_vs_baseline": {name: cpu_time ratio (old/new)}}
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Time-unit multipliers to nanoseconds.
_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# Context keys worth keeping; the rest (dates, load averages) only add noise
# to committed diffs.
_CONTEXT_KEYS = ("host_name", "executable", "num_cpus", "mhz_per_cpu",
                 "cpu_scaling_enabled", "library_build_type")


class ReportError(Exception):
    """Malformed benchmark input."""


def _to_ns(value, unit):
    try:
        return float(value) * _TO_NS[unit]
    except (KeyError, TypeError, ValueError) as e:
        raise ReportError(f"bad time value {value!r} with unit {unit!r}") from e


def distill(raw):
    """google-benchmark JSON dict -> {name: {...}} benchmark map."""
    if not isinstance(raw, dict) or not isinstance(raw.get("benchmarks"), list):
        raise ReportError("input is not google-benchmark JSON "
                          "(missing 'benchmarks' list)")
    if not raw["benchmarks"]:
        raise ReportError("'benchmarks' list is empty")
    out = {}
    for bench in raw["benchmarks"]:
        if not isinstance(bench, dict) or "name" not in bench:
            raise ReportError(f"benchmark entry without a name: {bench!r}")
        name = bench["name"]
        if bench.get("error_occurred"):
            raise ReportError(
                f"{name}: benchmark reported an error: "
                f"{bench.get('error_message', 'unknown')}")
        if bench.get("run_type") == "aggregate":
            continue  # keep raw runs only; aggregates are derived
        unit = bench.get("time_unit", "ns")
        entry = {
            "real_time_ns": _to_ns(bench.get("real_time"), unit),
            "cpu_time_ns": _to_ns(bench.get("cpu_time"), unit),
        }
        if "items_per_second" in bench:
            entry["items_per_second"] = float(bench["items_per_second"])
        # google-benchmark flattens user counters into the benchmark object;
        # collect everything numeric that is not a known structural field.
        known = {"name", "run_name", "run_type", "repetitions",
                 "repetition_index", "threads", "iterations", "real_time",
                 "cpu_time", "time_unit", "items_per_second",
                 "bytes_per_second", "label", "family_index",
                 "per_family_instance_index", "error_occurred",
                 "error_message"}
        counters = {k: float(v) for k, v in bench.items()
                    if k not in known and isinstance(v, (int, float))}
        if counters:
            entry["counters"] = counters
        out[name] = entry
    if not out:
        raise ReportError("no raw benchmark runs in input")
    return out


# Benchmarks the zero-alloc gate insists on seeing: the engine churn window,
# the full DB-DP interval path, and the quantile-sketch update path. Their
# absence means the gate would pass vacuously, so it is treated as a
# violation.
_GATE_SENTINELS = ("BM_EventQueueSteadyStateAllocs", "BM_DbdpIntervalAllocs",
                   "BM_SketchUpdateAllocs")


def gate_zero_alloc(benchmarks):
    """Returns a list of violation strings for the zero-alloc gate."""
    violations = []
    gated = {n: b for n, b in benchmarks.items() if "Allocs" in n}
    for sentinel in _GATE_SENTINELS:
        if sentinel not in gated:
            violations.append(
                f"{sentinel} missing from input (the zero-alloc gate would "
                f"pass vacuously; did the benchmark get renamed?)")
    for name, bench in sorted(gated.items()):
        counters = {k: v for k, v in bench.get("counters", {}).items()
                    if k == "allocs" or k.startswith("allocs")}
        if not counters:
            violations.append(f"{name}: no allocation counter to gate on")
        for counter, value in sorted(counters.items()):
            if value != 0:
                violations.append(
                    f"{name}: {counter} = {value:g} heap allocations in the "
                    f"steady-state window (must be 0)")
    return violations


def gate_rss(extras, limit_kb):
    """Violations for the peak-RSS gate against the city_scale extra.

    Reads million_peak_rss_kb from the embedded rtmac.city_scale document.
    Absence is a violation, not a pass: the gate exists to catch the
    regression where per-link heap state silently returns, and a missing
    measurement is indistinguishable from one nobody ran."""
    doc = extras.get("rtmac.city_scale")
    if not isinstance(doc, dict):
        return ["--gate-rss-kb needs the rtmac.city_scale extra "
                "(pass --extra bench_out/city_scale.json)"]
    rss = doc.get("million_peak_rss_kb")
    if not isinstance(rss, (int, float)):
        return ["rtmac.city_scale extra has no million_peak_rss_kb field"]
    if rss > limit_kb:
        return [f"million-link phase peak RSS {rss:g} KB exceeds the "
                f"{limit_kb:g} KB ceiling"]
    return []


# rtmac.bench document versions this tool can read. Bump alongside the
# writer (emit_report) whenever the document shape changes.
KNOWN_BENCH_VERSIONS = (1,)


def load_benchmarks(raw):
    """Benchmark map from raw google-benchmark JSON or a distilled
    rtmac.bench document (committed BENCH_N.json), detected by schema.

    Unknown rtmac.bench versions (and unrecognized schema strings) are
    refused with a clear error: silently mis-reading a future document
    shape would corrupt every regression comparison downstream."""
    if isinstance(raw, dict) and "schema" in raw:
        # Anything carrying a schema tag must identify itself exactly; raw
        # google-benchmark output has no "schema" key and falls through.
        schema = raw.get("schema")
        if schema != "rtmac.bench":
            raise ReportError(
                f"unknown schema {schema!r} (this tool reads 'rtmac.bench' "
                "documents and raw google-benchmark JSON)")
        version = raw.get("version")
        if version not in KNOWN_BENCH_VERSIONS:
            known = ", ".join(str(v) for v in KNOWN_BENCH_VERSIONS)
            raise ReportError(
                f"rtmac.bench document has version {version!r} but this "
                f"tool only knows version(s) {known} — update "
                "tools/bench_report.py (KNOWN_BENCH_VERSIONS) alongside "
                "the schema change")
        benchmarks = raw.get("benchmarks")
        if not isinstance(benchmarks, dict) or not benchmarks:
            raise ReportError("rtmac.bench document without a benchmark map")
        return benchmarks
    return distill(raw)


def latest_committed_baseline(directory=Path("."), exclude=None):
    """Highest-numbered BENCH_<N>.json in `directory`, or None.

    `exclude` (a Path) is skipped so an invocation writing BENCH_8.json
    never picks its own output as the baseline.
    """
    best = None
    best_n = -1
    for path in directory.glob("BENCH_*.json"):
        stem = path.stem[len("BENCH_"):]
        if not stem.isdigit():
            continue
        if exclude is not None and path.resolve() == Path(exclude).resolve():
            continue
        if int(stem) > best_n:
            best_n = int(stem)
            best = path
    return best


def speedups(current, baseline):
    out = {}
    for name, bench in sorted(current.items()):
        base = baseline.get(name)
        if base and bench.get("cpu_time_ns"):
            out[name] = round(base["cpu_time_ns"] / bench["cpu_time_ns"], 3)
    return out


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("input", type=Path,
                        help="google-benchmark JSON (--benchmark_format=json)")
    parser.add_argument("-o", "--output", type=Path, required=True,
                        help="trajectory point to write (e.g. BENCH_5.json)")
    parser.add_argument("--pr", type=int, default=None,
                        help="PR number this point belongs to")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="pre-change benchmarks: raw google-benchmark "
                             "JSON or a distilled BENCH_N.json; embedded for "
                             "before/after comparison (default: the latest "
                             "committed BENCH_N.json in the current "
                             "directory, if any)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="skip the baseline comparison even when a "
                             "committed BENCH_N.json exists")
    parser.add_argument("--extra", type=Path, action="append", default=[],
                        help="embed this JSON document under the output's "
                             "'extra' map (repeatable); e.g. the "
                             "bench_out/city_scale.json written by "
                             "bench/city_scale")
    parser.add_argument("--gate-zero-alloc", action="store_true",
                        help="fail (exit 1) unless every *Allocs* benchmark "
                             "reports all allocation counters == 0")
    parser.add_argument("--gate-rss-kb", type=float, default=None,
                        metavar="KB",
                        help="fail (exit 1) unless the embedded "
                             "rtmac.city_scale extra reports "
                             "million_peak_rss_kb <= KB")
    args = parser.parse_args(argv)

    try:
        raw = json.loads(args.input.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_report: cannot read {args.input}: {e}", file=sys.stderr)
        return 2

    try:
        benchmarks = distill(raw)
        doc = {"schema": "rtmac.bench", "version": 1}
        if args.pr is not None:
            doc["pr"] = args.pr
        context = raw.get("context", {})
        doc["context"] = {k: context[k] for k in _CONTEXT_KEYS if k in context}
        doc["benchmarks"] = benchmarks
        baseline_path = args.baseline
        if baseline_path is None and not args.no_baseline:
            baseline_path = latest_committed_baseline(exclude=args.output)
            if baseline_path is not None:
                print(f"bench_report: baseline auto-picked: {baseline_path}")
        if baseline_path is not None and not args.no_baseline:
            base_raw = json.loads(baseline_path.read_text())
            base = load_benchmarks(base_raw)
            doc["baseline"] = base
            doc["speedup_vs_baseline"] = speedups(benchmarks, base)
        for extra_path in args.extra:
            extra = json.loads(extra_path.read_text())
            if not isinstance(extra, dict):
                raise ReportError(f"{extra_path}: --extra expects a JSON object")
            key = extra.get("schema") or extra_path.stem
            doc.setdefault("extra", {})[str(key)] = extra
    except (ReportError, OSError, json.JSONDecodeError) as e:
        print(f"bench_report: malformed input: {e}", file=sys.stderr)
        return 2

    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"bench_report: wrote {args.output} "
          f"({len(benchmarks)} benchmarks)")

    if args.gate_zero_alloc:
        violations = gate_zero_alloc(benchmarks)
        for v in violations:
            print(f"bench_report: GATE FAILED: {v}", file=sys.stderr)
        if violations:
            return 1
        print("bench_report: zero-alloc gate passed")
    if args.gate_rss_kb is not None:
        violations = gate_rss(doc.get("extra", {}), args.gate_rss_kb)
        for v in violations:
            print(f"bench_report: GATE FAILED: {v}", file=sys.stderr)
        if violations:
            return 1
        print(f"bench_report: peak-RSS gate passed "
              f"(ceiling {args.gate_rss_kb:g} KB)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
