#include "mac/centralized_scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace rtmac::mac {

CentralizedScheme::CentralizedScheme(const SchemeContext& ctx, CentralizedParams params,
                                     std::string name)
    : sim_{ctx.simulator},
      medium_{ctx.medium},
      data_airtime_{ctx.phy.data_airtime},
      p_{ctx.success_prob},
      debts_{ctx.debts},
      params_{std::move(params)},
      name_{std::move(name)},
      buffer_(ctx.num_links, 0),
      delivered_(ctx.num_links, 0),
      weight_(ctx.num_links, 0.0),
      ordering_(ctx.num_links, 0) {}

void CentralizedScheme::begin_interval(IntervalIndex, std::span<const int> arrivals,
                                       TimePoint interval_end) {
  RTMAC_REQUIRE(arrivals.size() == buffer_.size());
  interval_end_ = interval_end;
  std::copy(arrivals.begin(), arrivals.end(), buffer_.begin());
  std::fill(delivered_.begin(), delivered_.end(), 0);

  // Eq. (4): sort by f(d^+) * p, descending. Ties broken by link id so the
  // ordering (and therefore the whole simulation) is deterministic. The
  // explicit id tie-break reproduces stable_sort's order without its
  // temporary-buffer allocation (this path is alloc-gated in CI).
  const std::size_t n_links = buffer_.size();
  for (LinkId n = 0; n < n_links; ++n) {
    weight_[n] = params_.influence(debts_.debt_plus(n)) * p_[n];
  }
  std::iota(ordering_.begin(), ordering_.end(), LinkId{0});
  std::sort(ordering_.begin(), ordering_.end(), [this](LinkId a, LinkId b) {
    if (weight_[a] != weight_[b]) return weight_[a] > weight_[b];
    return a < b;
  });

  serving_ = 0;
  // Kick off through the event queue (no synchronous transmission at the
  // interval boundary).
  sim_.schedule_in(Duration{}, [this] { serve_next(); });
}

void CentralizedScheme::serve_next() {
  // Skip drained links; stop when nothing is left or the next packet cannot
  // finish before the deadline.
  while (serving_ < ordering_.size() && buffer_[ordering_[serving_]] == 0) ++serving_;
  if (serving_ >= ordering_.size()) return;
  if (sim_.now() + data_airtime_ > interval_end_) return;  // deadline gap

  const LinkId link = ordering_[serving_];
  medium_.start_transmission(link, data_airtime_, phy::PacketKind::kData,
                             [this](phy::TxOutcome o) { on_tx_done(o); });
}

void CentralizedScheme::on_tx_done(phy::TxOutcome outcome) {
  RTMAC_ASSERT(outcome != phy::TxOutcome::kCollision, "centralized schedule cannot collide");
  const LinkId link = ordering_[serving_];
  if (outcome == phy::TxOutcome::kDelivered) {
    --buffer_[link];
    ++delivered_[link];
  }
  serve_next();  // retransmit on loss, advance when drained
}

void CentralizedScheme::end_interval(std::span<int> delivered) {
  RTMAC_REQUIRE(delivered.size() == delivered_.size());
  std::fill(buffer_.begin(), buffer_.end(), 0);  // deadline flush
  std::copy(delivered_.begin(), delivered_.end(), delivered.begin());
}

}  // namespace rtmac::mac
