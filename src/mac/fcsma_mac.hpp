// FCSMA baseline — discretized Fast-CSMA (Li & Eryilmaz [22] as evaluated
// by the paper).
//
// Each link contends with a RANDOM backoff drawn uniformly from a contention
// window whose size shrinks with the link's debt weight exp-style mapping:
// the weight w = f(d^+) p is quantised into a fixed number of sections, and
// each section has a predetermined window size. Two structural consequences
// the paper leans on, both reproduced here:
//   * random backoff means two links can draw the same residual count and
//     collide — collision rate grows with the number of contenders;
//   * the window mapping SATURATES: all debts beyond the top section get the
//     same (minimum) window, so FCSMA stops reacting to debt differences
//     precisely when debts are large (the Fig. 7 group-starvation effect).
//
// Reference [22] does not fix numerical constants in the paper text; the
// defaults below keep the documented structure and are swept by
// bench/ablation_fcsma_windows.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/influence.hpp"
#include "mac/backoff_engine.hpp"
#include "mac/link_mac.hpp"
#include "mac/shared_backoff_clock.hpp"
#include "util/rng.hpp"

namespace rtmac::mac {

/// Tunables of the discretized FCSMA.
///
/// Default constants are calibrated (bench/ablation_fcsma_windows) so the
/// baseline reproduces the paper's Fig. 3 behaviour: supporting roughly 70%
/// of the load the optimal schemes admit in the 20-link video scenario.
/// More aggressive ladders (e.g. saturating at CW=2) collapse under
/// collisions and make the baseline look unfairly bad.
struct FcsmaParams {
  core::Influence influence = core::Influence::paper_log();  ///< f in the weight
  /// Window size per debt section, most-patient first. The LAST entry serves
  /// every weight at or beyond the saturation threshold.
  std::vector<int> window_sizes = {128, 96, 64, 48, 32};
  /// Width of one section in weight units: section = floor(w / width).
  double section_width = 1.0;
  /// Forces the per-link BackoffEngine path even on complete-sensing
  /// topologies (equivalence tests; the batch path must be bit-identical).
  bool force_scalar_path = false;
};

/// Per-link FCSMA state machine (contend, transmit one packet, redraw).
class FcsmaLinkMac {
 public:
  /// `id` indexes the Medium/debts/p (cell-local under sharding);
  /// `stream_link` keys the backoff RNG stream and defaults to `id` — a
  /// shard cell passes the link's global id so the draw sequence matches
  /// the unsharded run.
  FcsmaLinkMac(sim::Simulator& simulator, phy::Medium& medium, const core::DebtTracker& debts,
               const ProbabilityVector& p, const FcsmaParams& params, Duration data_airtime,
               Duration slot, LinkId id, std::uint64_t seed, LinkId stream_link = kSameAsId);

  /// Sentinel for `stream_link`: use `id`.
  static constexpr LinkId kSameAsId = static_cast<LinkId>(-1);

  FcsmaLinkMac(const FcsmaLinkMac&) = delete;
  FcsmaLinkMac& operator=(const FcsmaLinkMac&) = delete;

  void begin_interval(IntervalIndex k, int arrivals, TimePoint interval_end);
  int end_interval();

  [[nodiscard]] LinkId id() const { return id_; }
  /// Contention window selected for the current interval (diagnostics).
  [[nodiscard]] int current_window() const { return window_; }

 private:
  void contend();
  void on_backoff_expired();
  void on_tx_done(phy::TxOutcome outcome);

  sim::Simulator& sim_;
  phy::Medium& medium_;
  const core::DebtTracker& debts_;
  const ProbabilityVector& p_;
  const FcsmaParams& params_;
  Duration data_airtime_;
  LinkId id_;
  Rng rng_;

  TimePoint interval_end_;
  int buffer_ = 0;
  int delivered_ = 0;
  int window_ = 1;
  BackoffEngine backoff_;
};

/// MacScheme gluing N FCSMA links together. On complete-sensing domains the
/// default is the batch layout — SoA per-link state plus one
/// SharedBackoffClock for the whole domain — which is draw-for-draw
/// identical to the per-link machines (same RNG streams, same order);
/// partial-sensing topologies and force_scalar_path keep the scalar
/// machines.
class FcsmaScheme final : public MacScheme {
 public:
  FcsmaScheme(const SchemeContext& ctx, FcsmaParams params, std::string name);

  void begin_interval(IntervalIndex k, std::span<const int> arrivals,
                      TimePoint interval_end) override;
  void end_interval(std::span<int> delivered) override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::size_t pending_events_per_link() const override {
    return clock_ != nullptr ? 1 : 6;
  }

  /// True when this instance runs the shared-clock batch path.
  [[nodiscard]] bool batch_path() const { return clock_ != nullptr; }

 private:
  void contend(LinkId n);
  void on_backoff_expired(LinkId n);
  void on_tx_done(LinkId n, phy::TxOutcome outcome);

  FcsmaParams params_;  // must precede links_: links reference it
  sim::Simulator& sim_;
  phy::Medium& medium_;
  const core::DebtTracker& debts_;
  const ProbabilityVector& p_;
  Duration data_airtime_;

  // Scalar layout.
  std::vector<std::unique_ptr<FcsmaLinkMac>> links_;

  // Batch layout (SoA, indexed by local link id).
  std::unique_ptr<SharedBackoffClock> clock_;
  std::vector<Rng> rng_;
  std::vector<int> window_;
  std::vector<int> buffer_;
  std::vector<int> delivered_;
  TimePoint interval_end_;

  std::string name_;
};

/// Maps a debt weight to a window size per the section quantisation.
/// Exposed for unit tests.
[[nodiscard]] int fcsma_window_for_weight(double weight, const FcsmaParams& params);

}  // namespace rtmac::mac
