// Online estimation of per-link channel reliability.
//
// The paper assumes each transmitter knows its p_n, noting it "can be
// obtained by either probing or learning from the empirical results of past
// transmissions" (Section II-A). This module implements the learning
// option: each link keeps a Beta-Bernoulli posterior over its own success
// probability, updated from the ACK outcome of every clean (non-collided)
// data transmission, and the DB-DP coin bias consumes the posterior mean
// instead of an oracle value. Fully decentralized: link n only ever
// observes its own transmissions.
#pragma once

#include <cstdint>
#include <vector>

#include "core/debt.hpp"
#include "core/mu.hpp"
#include "core/types.hpp"
#include "mac/priority_provider.hpp"

namespace rtmac::mac {

/// Beta-posterior reliability tracker for all links (each link's entry is
/// touched only by that link's MAC — no cross-link information flows).
class ReliabilityEstimator {
 public:
  /// `initial` is the prior mean, `prior_weight` its strength in
  /// pseudo-observations. Defaults: uninformative-ish around 0.5.
  explicit ReliabilityEstimator(std::size_t num_links, double initial = 0.5,
                                double prior_weight = 2.0);

  /// Records the outcome of one clean data transmission on `link`.
  void record(LinkId link, bool success);

  /// Posterior mean estimate of p_link.
  [[nodiscard]] double estimate(LinkId link) const;

  [[nodiscard]] std::uint64_t observations(LinkId link) const { return attempts_[link]; }
  [[nodiscard]] std::size_t num_links() const { return attempts_.size(); }

 private:
  double prior_successes_;  ///< prior_weight * initial
  double prior_weight_;
  std::vector<std::uint64_t> attempts_;
  std::vector<std::uint64_t> successes_;
};

/// DB-DP coin bias (eq. 14) fed by the learned reliability instead of the
/// configured oracle p_n. Owns the estimator; the DpScheme shares it with
/// its links so they can record outcomes.
class EstimatedMuProvider final : public PriorityProvider {
 public:
  EstimatedMuProvider(core::DebtMu formula, const core::DebtTracker& debts,
                      std::size_t num_links, double initial = 0.5,
                      double prior_weight = 2.0);

  [[nodiscard]] double mu(LinkId n, IntervalIndex k) const override;

  [[nodiscard]] ReliabilityEstimator& estimator() { return estimator_; }
  [[nodiscard]] const ReliabilityEstimator& estimator() const { return estimator_; }

 private:
  core::DebtMu formula_;
  const core::DebtTracker& debts_;
  ReliabilityEstimator estimator_;
};

}  // namespace rtmac::mac
