// One shared backoff clock for all CSMA countdowns of a complete-sensing
// collision domain, replacing N BackoffEngines for the random-window schemes
// (DCF, FCSMA).
//
// DpBatchBackoff already folds the DP protocol's N engines into one clock,
// but it leans on a DP-only invariant (windows are unique per interval, so
// expiries never tie). DCF and FCSMA draw windows at random and DO tie —
// that is exactly how their collisions happen — and they re-arm mid-interval
// after every transmission. This clock handles both, reproducing the scalar
// engines' behaviour bit for bit:
//
//   * Under complete sensing every countdown freezes and resumes at the same
//     instants, and every transmission starts at an expiry instant — which is
//     always a whole number of slots past the last resume. Busy edges
//     therefore land exactly on shared slot boundaries, the 802.11
//     partial-slot discard never discards anything, and one elapsed-idle-slot
//     counter E serves every link: a countdown of c slots armed at elapsed
//     count e expires when E reaches the DEADLINE e + c.
//   * Armed countdowns live in one min-heap of (deadline, seq) entries and
//     the whole domain holds ONE pending simulator event (the earliest
//     deadline). A busy edge parks that event (one reschedule) instead of
//     visiting N listeners; an idle edge re-arms it (one reschedule).
//   * Tie order is result-affecting (complete domains draw channel losses
//     from one shared stream in completion order), so `seq` replays the
//     scalar engines' event-queue sequence numbers exactly: a link arming
//     while the medium is idle gets a fresh seq immediately, and every idle
//     edge re-issues seqs to the frozen countdowns in link order — the order
//     the scalar engines registered as listeners and were resumed in.
//   * Countdowns due exactly at a busy edge must still fire (the scalar
//     engines' count_after <= 0 rule: both stations counted down to zero in
//     the same slot and will collide), so fire() keeps a same-instant tie
//     visible in the simulator queue before running the expiry handler, and
//     the busy edge only parks the domain event when it is strictly in the
//     future.
//
// Tracer and metrics emulation mirror DpBatchBackoff: per-link freeze/resume
// records in link order, and the same shared "mac.freeze_ns" counter and
// freeze histogram the label-less scalar engines feed.
//
// Registers itself as a global-view Medium listener at construction; must
// outlive the run (same contract as BackoffEngine).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "util/inplace_function.hpp"
#include "util/time.hpp"

namespace rtmac::mac {

class SharedBackoffClock final : public phy::MediumListener {
 public:
  /// Fired through the event queue when a link's countdown expires;
  /// inline-stored so re-arming never allocates.
  using ExpiryHandler = util::InplaceFunction<void(LinkId)>;

  SharedBackoffClock(sim::Simulator& simulator, phy::Medium& medium, Duration slot,
                     std::size_t num_links, ExpiryHandler on_expire);

  SharedBackoffClock(const SharedBackoffClock&) = delete;
  SharedBackoffClock& operator=(const SharedBackoffClock&) = delete;

  /// Resets the clock's slot phase for a new interval (countdowns from the
  /// previous interval must have been stop()ped). Call before the arm loop;
  /// finish_arming() closes it.
  void begin_interval(TimePoint now);

  /// Starts a countdown of `count` slots for link n (one scalar
  /// BackoffEngine::start). Legal at the current resume instant or while the
  /// medium is busy — the only places the CSMA schemes arm. Does not touch
  /// the simulator event until finish_arming() (inside begin_interval's arm
  /// loop) or immediately (mid-interval re-arms).
  void arm(LinkId n, int count);

  /// Schedules the domain expiry event after begin_interval's arm loop.
  void finish_arming();

  /// Disarms everything at the interval boundary (scalar: stop() on every
  /// engine, in link order — freeze accounting is closed the same way).
  void stop();

  [[nodiscard]] std::size_t armed() const { return heap_.size(); }
  /// Whole idle slots elapsed since begin_interval (diagnostics).
  [[nodiscard]] int elapsed_slots() const;

  /// Bytes of long-lived storage (the armed heap), for mem gauges.
  [[nodiscard]] std::size_t memory_bytes() const {
    return heap_.capacity() * sizeof(Entry) +
           trace_scratch_.capacity() * sizeof(trace_scratch_[0]);
  }

  // phy::MediumListener:
  void on_medium_busy(TimePoint t) override;
  void on_medium_idle(TimePoint t) override;

 private:
  /// One armed countdown. `deadline` is on the shared elapsed-slot axis;
  /// `seq` replays the scalar engine's event-queue sequence number;
  /// `arm_epoch`/`live`/`arm_time` classify the entry at the next idle edge
  /// (armed since the busy edge began / armed while the medium sensed idle /
  /// when — frozen arms account their freeze from the arm instant).
  struct Entry {
    std::int64_t deadline;
    std::uint64_t seq;
    LinkId link;
    std::uint64_t arm_epoch;
    bool live;
    TimePoint arm_time;
  };

  [[nodiscard]] std::int64_t elapsed_now() const {
    return frozen_ ? elapsed_frozen_ : elapsed_at_resume_;
  }
  void heap_push(Entry e);
  Entry heap_pop();
  void arm_event();
  void fire();
  void resequence();
  void account_freezes(TimePoint resume_at);

  sim::Simulator& sim_;
  phy::Medium& medium_;
  Duration slot_;
  std::size_t num_links_;
  ExpiryHandler on_expire_;

  std::vector<Entry> heap_;  ///< min-heap by (deadline, seq)
  std::vector<std::pair<LinkId, int>> trace_scratch_;  ///< link-order tracer walk
  std::uint64_t next_seq_ = 0;
  std::uint64_t busy_epoch_ = 0;  ///< bumped at every busy edge

  bool arming_ = false;  ///< inside begin_interval's arm loop
  bool in_interval_ = false;
  bool frozen_ = false;
  std::int64_t elapsed_at_resume_ = 0;  ///< whole slots elapsed when last resumed
  std::int64_t elapsed_frozen_ = 0;     ///< elapsed count captured at the freeze
  TimePoint resume_time_;               ///< when the shared clock last (re)started
  TimePoint freeze_time_;               ///< when the current freeze began
  sim::EventId expiry_event_;
  TimePoint event_wall_;  ///< wall time expiry_event_ is scheduled at (while valid)

  // Cached metric handles, re-resolved when the Medium's registry changes
  // (parity with the scalar engines' shared-label freeze accounting).
  obs::MetricsRegistry* metrics_seen_ = nullptr;
  obs::Histogram* freeze_hist_ = nullptr;
  obs::Counter* freeze_ns_ = nullptr;
};

}  // namespace rtmac::mac
