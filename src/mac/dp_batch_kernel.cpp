#include "mac/dp_batch_kernel.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace rtmac::mac {

// ---- SharedSeed -------------------------------------------------------------

void SharedSeed::candidate_set_into(IntervalIndex k, std::size_t num_links, int max_pairs,
                                    std::vector<PriorityIndex>& anchors_scratch,
                                    std::vector<PriorityIndex>& out) const {
  RTMAC_REQUIRE(num_links >= 2);
  RTMAC_REQUIRE(max_pairs >= 1);
  out.clear();
  if (max_pairs == 1) {
    out.push_back(candidate(k, num_links));
    return;
  }

  // Deterministic shuffle of {1..N-1}, then greedy acceptance of
  // non-conflicting pair anchors (|m - m'| >= 2 keeps pairs disjoint).
  // Every device runs this with the same (seed, k), so the sets agree.
  Rng rng{mix64(seed_, k)};
  anchors_scratch.resize(num_links - 1);
  for (std::size_t i = 0; i < anchors_scratch.size(); ++i) {
    anchors_scratch[i] = static_cast<PriorityIndex>(i + 1);
  }
  for (std::size_t i = anchors_scratch.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(anchors_scratch[i - 1], anchors_scratch[j]);
  }
  for (PriorityIndex m : anchors_scratch) {
    if (static_cast<int>(out.size()) >= max_pairs) break;
    bool conflicts = false;
    for (PriorityIndex c : out) {
      const auto d = m > c ? m - c : c - m;
      if (d < 2) {
        conflicts = true;
        break;
      }
    }
    if (!conflicts) out.push_back(m);
  }
  std::sort(out.begin(), out.end());
}

std::vector<PriorityIndex> SharedSeed::candidate_set(IntervalIndex k, std::size_t num_links,
                                                     int max_pairs) const {
  std::vector<PriorityIndex> scratch;
  std::vector<PriorityIndex> out;
  candidate_set_into(k, num_links, max_pairs, scratch, out);
  return out;
}

// ---- eq. (6) backoff assignment ---------------------------------------------

bool dp_is_candidate(PriorityIndex sigma, std::span<const PriorityIndex> pairs,
                     bool* is_lower) {
  for (PriorityIndex m : pairs) {
    if (sigma == m || sigma == m + 1) {
      if (is_lower != nullptr) *is_lower = (sigma == m);
      return true;
    }
  }
  return false;
}

int dp_backoff_count(PriorityIndex sigma, std::span<const PriorityIndex> pairs, int xi) {
  int shift = 0;
  bool candidate = false;
  for (PriorityIndex m : pairs) {
    if (m + 1 < sigma) shift += 2;
    if (sigma == m || sigma == m + 1) candidate = true;
  }
  if (candidate) {
    RTMAC_ASSERT(xi == 1 || xi == -1);
    return static_cast<int>(sigma) - xi + shift;
  }
  return static_cast<int>(sigma) - 1 + shift;
}

// ---- DpBatchKernel ----------------------------------------------------------

DpBatchKernel::DpBatchKernel(std::size_t num_links, SharedSeed shared_seed,
                             const PriorityProvider& provider, bool reordering, int max_pairs,
                             std::span<const PriorityIndex> initial_priorities,
                             std::uint64_t seed, std::size_t priority_space,
                             std::span<const LinkId> stream_ids)
    : shared_seed_{shared_seed},
      provider_{provider},
      reordering_{reordering},
      max_pairs_{max_pairs},
      priority_space_{priority_space == 0 ? num_links : priority_space},
      sigma_(num_links),
      role_(num_links, 0),
      xi_(num_links, 0),
      beta_(num_links, 0),
      perm_scratch_(priority_space_, 0) {
  RTMAC_REQUIRE(num_links >= 1);
  RTMAC_REQUIRE(max_pairs >= 1);
  RTMAC_REQUIRE(priority_space_ >= num_links);
  RTMAC_REQUIRE(initial_priorities.size() == num_links);
  RTMAC_REQUIRE(stream_ids.empty() || stream_ids.size() == num_links);
  coin_rng_.reserve(num_links);
  for (LinkId n = 0; n < num_links; ++n) {
    const PriorityIndex pr = initial_priorities[n];
    RTMAC_REQUIRE(pr >= 1 && pr <= priority_space_);
    sigma_[n] = pr;
    // Same stream derivation as the scalar DpLinkMac, so coin draws agree.
    // A shard cell keys by global id so its draws match the unsharded run.
    const LinkId stream = stream_ids.empty() ? n : stream_ids[n];
    coin_rng_.emplace_back(seed, /*stream_id=*/0xD100000000ULL + stream);
  }
  pairs_.reserve(static_cast<std::size_t>(max_pairs));
  if (priority_space_ >= 2) anchors_scratch_.reserve(priority_space_ - 1);
}

void DpBatchKernel::plan_interval(IntervalIndex k) {
  const std::size_t n_links = sigma_.size();
  const bool reorder = reordering_ && priority_space_ >= 2;
  pairs_.clear();
  if (reorder) {
    // Step 1: shared candidate draw over the GLOBAL priority space — every
    // cell of a sharded domain derives the identical set.
    shared_seed_.candidate_set_into(k, priority_space_, max_pairs_, anchors_scratch_, pairs_);
  }

  // Steps 3-4 (eqs. 5-6, generalized per Remark 6): one flat pass. Every
  // candidate pair (m, m+1) widens the backoff schedule by 2 slots so the
  // candidates' coin-modulated choices {m-1, m, m+1, m+2} (plus the per-pair
  // shift) never touch a bystander's slot. With a single pair the
  // expressions reduce exactly to eq. (6).
  for (LinkId n = 0; n < n_links; ++n) {
    const PriorityIndex sigma = sigma_[n];
    Role role = Role::kBystander;
    int xi = 0;
    if (reorder) {
      bool is_lower = false;
      if (dp_is_candidate(sigma, pairs_, &is_lower)) {
        role = is_lower ? Role::kLower : Role::kUpper;
        // Step 3 (eq. 5): local biased coin, from the link's own stream.
        xi = coin_rng_[n].bernoulli(provider_.mu(n, k)) ? +1 : -1;
      }
      beta_[n] = dp_backoff_count(sigma, pairs_, xi);
    } else {
      beta_[n] = static_cast<int>(sigma) - 1;  // static priorities: TDMA-by-backoff
    }
    role_[n] = static_cast<std::uint8_t>(role);
    xi_[n] = static_cast<std::int8_t>(xi);
  }
}

int DpBatchKernel::resolve_swap(LinkId n, bool frozen_at_one, bool claim_aired) {
  // Step 5 (eqs. 7-8), applied at the interval boundary so the change takes
  // effect next interval. With unique backoff counts, a freeze at remaining
  // count 1 can only be caused by the swap partner's transmission, so the
  // carrier-sense record alone decides the swap:
  //  * lower candidate (priority C), coin "down" (xi=-1): moves down iff the
  //    channel turned busy when its count stood at 1 — i.e. the upper
  //    candidate claimed the earlier slot and transmitted in it;
  //  * upper candidate (priority C+1), coin "up" (xi=+1): moves up iff its
  //    count passed 1 -> 0 with the channel idle AND its claim actually went
  //    on the air (if the gap rule suppressed the transmission, the partner
  //    cannot have heard anything, and both sides must conclude "no swap").
  const Role role = static_cast<Role>(role_[n]);
  if (role == Role::kLower && xi_[n] == -1 && frozen_at_one) {
    ++sigma_[n];
    return +1;
  }
  if (role == Role::kUpper && xi_[n] == +1 && !frozen_at_one && claim_aired) {
    --sigma_[n];
    return -1;
  }
  return 0;
}

void DpBatchKernel::validate_permutation() {
  const std::size_t n_links = sigma_.size();
  perm_scratch_.assign(priority_space_, 0);
  for (LinkId n = 0; n < n_links; ++n) {
    const PriorityIndex pr = sigma_[n];
    RTMAC_ASSERT(pr >= 1 && pr <= priority_space_ && perm_scratch_[pr - 1] == 0,
                 "priority state diverged: swap decisions inconsistent (priority ", pr,
                 " among N=", priority_space_, ")");
    perm_scratch_[pr - 1] = 1;
  }
}

// ---- DpBatchBackoff ---------------------------------------------------------

DpBatchBackoff::DpBatchBackoff(sim::Simulator& simulator, phy::Medium& medium, Duration slot,
                               std::size_t num_links, std::size_t freeze_capacity_hint,
                               ExpiryHandler on_expire)
    : sim_{simulator},
      medium_{medium},
      slot_{slot},
      num_links_{num_links},
      on_expire_{std::move(on_expire)},
      betas_(num_links, 0) {
  RTMAC_REQUIRE(slot.ns() > 0);
  order_.reserve(num_links);
  freeze_log_.reserve(freeze_capacity_hint);
  medium_.add_listener(this);  // global view: the domain has complete sensing
}

void DpBatchBackoff::begin_interval(TimePoint now, std::span<const int> betas,
                                    std::span<const std::uint8_t> armed, bool include_unarmed) {
  RTMAC_REQUIRE(betas.size() == num_links_ && armed.size() == num_links_);
  stop();
  std::copy(betas.begin(), betas.end(), betas_.begin());
  // DP windows are unique small integers (eq. 6: at most ~N + 2*pairs), so a
  // counting scatter over [0, max window] replaces a comparison sort and at
  // most one expiry is ever due at a time. The bucket array grows once to
  // the steady window range and is reused every interval thereafter.
  int max_beta = -1;
  std::size_t selected = 0;
  for (LinkId n = 0; n < num_links_; ++n) {
    if (include_unarmed || armed[n] != 0) {
      RTMAC_ASSERT(betas_[n] >= 0, "negative backoff window");
      max_beta = std::max(max_beta, betas_[n]);
      ++selected;
    }
  }
  if (static_cast<std::size_t>(max_beta + 1) > bucket_.size()) bucket_.resize(max_beta + 1);
  std::fill(bucket_.begin(), bucket_.begin() + (max_beta + 1), kNoLink);
  for (LinkId n = 0; n < num_links_; ++n) {
    if (include_unarmed || armed[n] != 0) {
      RTMAC_ASSERT(bucket_[betas_[n]] == kNoLink, "duplicate backoff window");
      bucket_[betas_[n]] = n;
    }
  }
  order_.clear();
  for (int b = 0; b <= max_beta; ++b) {
    if (bucket_[b] != kNoLink) order_.push_back(bucket_[b]);
  }
  RTMAC_ASSERT(order_.size() == selected, "counting sort lost a link");
  next_ = 0;
  freeze_log_.clear();
  elapsed_at_resume_ = 0;
  in_interval_ = true;
  if (medium_.sense_busy(phy::Medium::kAllNodes)) {
    // Defensive: the Network's gap-rule invariant keeps interval starts
    // idle, but mirror BackoffEngine::start anyway (freeze without a log
    // entry; the clock has not run yet).
    frozen_ = true;
    elapsed_frozen_ = 0;
    freeze_time_ = now;
  } else {
    frozen_ = false;
    resume_time_ = now;
    schedule_next();
  }
}

void DpBatchBackoff::stop() {
  if (expiry_event_.valid()) sim_.cancel(expiry_event_);
  expiry_event_ = sim::EventId{};
  if (in_interval_ && frozen_) account_freezes(sim_.now());
  frozen_ = false;
  in_interval_ = false;
}

bool DpBatchBackoff::frozen_with_remaining(int beta, int remaining) const {
  for (int elapsed : freeze_log_) {
    if (beta - elapsed == remaining) return true;
  }
  return false;
}

int DpBatchBackoff::elapsed_slots() const {
  if (!in_interval_) return 0;
  if (frozen_) return elapsed_frozen_;
  return elapsed_at_resume_ + static_cast<int>((sim_.now() - resume_time_).floor_div(slot_));
}

void DpBatchBackoff::schedule_next() {
  if (next_ >= order_.size()) return;
  const LinkId link = order_[next_];
  const TimePoint at = resume_time_ + (betas_[link] - elapsed_at_resume_) * slot_;
  expiry_event_ = sim_.schedule_at(at, [this] { fire(); });
}

void DpBatchBackoff::fire() {
  expiry_event_ = sim::EventId{};
  const LinkId link = order_[next_++];
  if (sim::Tracer* tracer = medium_.tracer(); tracer != nullptr) {
    tracer->record(sim_.now(), sim::TraceKind::kBackoffExpired, link);
  }
  on_expire_(link);
  // If the handler started a transmission, our own on_medium_busy already
  // froze the clock (synchronously, inside start_transmission); only an
  // idle clock keeps counting toward the next window. A burst resolves the
  // whole freeze/resume cycle inside the handler (Medium::end_burst runs the
  // idle transition synchronously), in which case on_medium_idle has already
  // re-armed the expiry — the handle check keeps this from double-scheduling.
  if (in_interval_ && !frozen_ && !expiry_event_.valid()) schedule_next();
}

void DpBatchBackoff::on_medium_busy(TimePoint t) {
  if (!in_interval_ || frozen_) return;
  const int elapsed =
      elapsed_at_resume_ + static_cast<int>((t - resume_time_).floor_div(slot_));
  frozen_ = true;
  elapsed_frozen_ = elapsed;
  freeze_time_ = t;
  freeze_log_.push_back(elapsed);
  if (expiry_event_.valid()) sim_.cancel(expiry_event_);
  expiry_event_ = sim::EventId{};
  if (sim::Tracer* tracer = medium_.tracer(); tracer != nullptr) {
    // Per-engine emulation: every link whose window has not yet elapsed
    // freezes here, in link order (the order the scalar engines registered).
    for (LinkId n = 0; n < num_links_; ++n) {
      if (betas_[n] > elapsed) {
        tracer->record(t, sim::TraceKind::kBackoffFrozen, n, betas_[n] - elapsed);
      }
    }
  }
}

void DpBatchBackoff::on_medium_idle(TimePoint t) {
  if (!in_interval_ || !frozen_) return;
  frozen_ = false;
  account_freezes(t);
  if (sim::Tracer* tracer = medium_.tracer(); tracer != nullptr) {
    for (LinkId n = 0; n < num_links_; ++n) {
      if (betas_[n] > elapsed_frozen_) {
        tracer->record(t, sim::TraceKind::kBackoffResumed, n, betas_[n] - elapsed_frozen_);
      }
    }
  }
  elapsed_at_resume_ = elapsed_frozen_;
  resume_time_ = t;
  schedule_next();
}

void DpBatchBackoff::account_freezes(TimePoint resume_at) {
  if (obs::MetricsRegistry* m = medium_.metrics(); m != metrics_seen_) {
    metrics_seen_ = m;
    freeze_hist_ = nullptr;
    freeze_ns_.assign(num_links_, nullptr);
    if (m != nullptr) {
      freeze_hist_ =
          &m->histogram("mac.backoff_freeze_us", obs::log_bounds(1.0, 65536.0, 2.0));
      for (LinkId n = 0; n < num_links_; ++n) {
        freeze_ns_[n] = &m->counter(obs::link_metric("mac.freeze_ns", n));
      }
    }
  }
  if (freeze_hist_ == nullptr) return;
  const Duration frozen_for = resume_at - freeze_time_;
  // Same accounting the scalar engines perform independently: every link
  // still counting down when the freeze began spent `frozen_for` frozen.
  for (LinkId n = 0; n < num_links_; ++n) {
    if (betas_[n] > elapsed_frozen_) {
      freeze_hist_->observe(frozen_for.us_f());
      freeze_ns_[n]->inc(static_cast<std::uint64_t>(frozen_for.ns()));
    }
  }
}

}  // namespace rtmac::mac
