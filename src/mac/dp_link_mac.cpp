#include "mac/dp_link_mac.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace rtmac::mac {

// ---- SharedSeed -------------------------------------------------------------

std::vector<PriorityIndex> SharedSeed::candidate_set(IntervalIndex k, std::size_t num_links,
                                                     int max_pairs) const {
  RTMAC_REQUIRE(num_links >= 2);
  RTMAC_REQUIRE(max_pairs >= 1);
  if (max_pairs == 1) return {candidate(k, num_links)};

  // Deterministic shuffle of {1..N-1}, then greedy acceptance of
  // non-conflicting pair anchors (|m - m'| >= 2 keeps pairs disjoint).
  // Every device runs this with the same (seed, k), so the sets agree.
  Rng rng{mix64(seed_, k)};
  std::vector<PriorityIndex> anchors(num_links - 1);
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    anchors[i] = static_cast<PriorityIndex>(i + 1);
  }
  for (std::size_t i = anchors.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(anchors[i - 1], anchors[j]);
  }
  std::vector<PriorityIndex> chosen;
  for (PriorityIndex m : anchors) {
    if (static_cast<int>(chosen.size()) >= max_pairs) break;
    bool conflicts = false;
    for (PriorityIndex c : chosen) {
      const auto d = m > c ? m - c : c - m;
      if (d < 2) {
        conflicts = true;
        break;
      }
    }
    if (!conflicts) chosen.push_back(m);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

// ---- eq. (6) backoff assignment ---------------------------------------------

bool dp_is_candidate(PriorityIndex sigma, const std::vector<PriorityIndex>& pairs,
                     bool* is_lower) {
  for (PriorityIndex m : pairs) {
    if (sigma == m || sigma == m + 1) {
      if (is_lower != nullptr) *is_lower = (sigma == m);
      return true;
    }
  }
  return false;
}

int dp_backoff_count(PriorityIndex sigma, const std::vector<PriorityIndex>& pairs, int xi) {
  int shift = 0;
  bool candidate = false;
  for (PriorityIndex m : pairs) {
    if (m + 1 < sigma) shift += 2;
    if (sigma == m || sigma == m + 1) candidate = true;
  }
  if (candidate) {
    RTMAC_ASSERT(xi == 1 || xi == -1);
    return static_cast<int>(sigma) - xi + shift;
  }
  return static_cast<int>(sigma) - 1 + shift;
}

// ---- DpLinkMac --------------------------------------------------------------

DpLinkMac::DpLinkMac(sim::Simulator& simulator, phy::Medium& medium,
                     const SharedSeed& shared_seed, const PriorityProvider& provider,
                     DpLinkParams params, LinkId id, std::size_t num_links,
                     PriorityIndex initial_priority, std::uint64_t seed,
                     ReliabilityEstimator* estimator)
    : sim_{simulator},
      medium_{medium},
      shared_seed_{shared_seed},
      provider_{provider},
      estimator_{estimator},
      params_{params},
      id_{id},
      num_links_{num_links},
      coin_rng_{seed, /*stream_id=*/0xD100000000ULL + id},
      sigma_{initial_priority},
      backoff_{simulator, medium, params.backoff_slot, id} {
  RTMAC_REQUIRE(initial_priority >= 1 && initial_priority <= num_links);
  backoff_.set_trace_link(id);
}

void DpLinkMac::begin_interval(IntervalIndex k, int arrivals, TimePoint interval_end) {
  RTMAC_REQUIRE(arrivals >= 0);
  interval_end_ = interval_end;
  buffer_ = arrivals;
  delivered_ = 0;
  tx_started_ = 0;
  first_tx_started_ = false;
  empty_claim_pending_ = false;
  role_ = Role::kBystander;
  xi_ = 0;

  // Step 4 (eq. 6, generalized per Remark 6 to disjoint candidate pairs):
  // every candidate pair (m, m+1) widens the backoff schedule by 2 slots so
  // the candidates' coin-modulated choices {m-1, m, m+1, m+2} (plus the
  // per-pair shift) never touch a bystander's slot. With a single pair the
  // expressions reduce exactly to eq. (6).
  int beta;
  if (params_.reordering && num_links_ >= 2) {
    const std::vector<PriorityIndex> pairs =
        shared_seed_.candidate_set(k, num_links_, params_.max_swap_pairs);  // Step 1
    bool is_lower = false;
    if (dp_is_candidate(sigma_, pairs, &is_lower)) {
      role_ = is_lower ? Role::kLower : Role::kUpper;
      // Step 2: a candidate with no traffic still claims its slot on the air.
      if (buffer_ == 0) empty_claim_pending_ = true;
      // Step 3 (eq. 5): local biased coin.
      xi_ = coin_rng_.bernoulli(provider_.mu(id_, k)) ? +1 : -1;
    }
    beta = dp_backoff_count(sigma_, pairs, xi_);
  } else {
    beta = static_cast<int>(sigma_) - 1;  // static priorities: plain TDMA-by-backoff
  }

  backoff_.start(beta, [this] { on_backoff_expired(); });
}

void DpLinkMac::on_backoff_expired() { try_transmit(); }

void DpLinkMac::try_transmit() {
  const TimePoint now = sim_.now();
  const bool is_candidate = role_ != Role::kBystander;

  auto send = [this](Duration airtime, phy::PacketKind kind) {
    ++tx_started_;
    first_tx_started_ = true;
    medium_.start_transmission(id_, airtime, kind,
                               [this, kind](phy::TxOutcome o) { on_tx_done(kind, o); });
  };

  if (buffer_ > 0) {
    // Remark 4 gap rule: transmit only if the packet fits in the interval.
    if (now + params_.data_airtime <= interval_end_) {
      send(params_.data_airtime, phy::PacketKind::kData);
      return;
    }
    // Swap-consistency rule: a CANDIDATE whose data packet no longer fits
    // must still claim its backoff slot on the air if a short empty packet
    // fits — otherwise its silence is indistinguishable from "moved away"
    // and the partner could commit a one-sided swap. (Candidates without
    // arrivals already claim via empty_claim_pending_ below; this extends
    // the same priority-claiming packet to the gap-blocked data case.)
    if (is_candidate && !first_tx_started_ &&
        now + params_.empty_airtime <= interval_end_) {
      send(params_.empty_airtime, phy::PacketKind::kEmpty);
    }
    return;
  }
  if (empty_claim_pending_ && now + params_.empty_airtime <= interval_end_) {
    empty_claim_pending_ = false;
    send(params_.empty_airtime, phy::PacketKind::kEmpty);
  }
}

void DpLinkMac::on_tx_done(phy::PacketKind kind, phy::TxOutcome outcome) {
  // DP backoff counts are unique within the interval, so with complete
  // carrier sensing (everyone freezes and resumes together) no DP
  // transmission can ever collide; the assert documents that invariant.
  // Under partial sensing the countdowns desynchronize — hidden terminals
  // make collisions a genuine protocol outcome, not a bug.
  RTMAC_ASSERT(outcome != phy::TxOutcome::kCollision || !medium_.topology().complete_sensing(),
               "DP protocol must be collision-free under complete sensing: link ", id_,
               " collided at sigma=", sigma_);
  if (kind == phy::PacketKind::kData && estimator_ != nullptr &&
      outcome != phy::TxOutcome::kCollision) {
    // Learning mode (Section II-A): the ACK outcome of every clean data
    // transmission updates this link's own reliability posterior.
    estimator_->record(id_, outcome == phy::TxOutcome::kDelivered);
  }
  if (kind == phy::PacketKind::kData && outcome == phy::TxOutcome::kDelivered) {
    ++delivered_;
    --buffer_;
  }
  // Channel losses leave the packet in the buffer: retransmit until the
  // deadline (back-to-back, the channel is already ours).
  try_transmit();
}

int DpLinkMac::end_interval() {
  backoff_.stop();

  // Step 5 (eqs. 7-8), applied at the interval boundary so the change takes
  // effect next interval. With unique backoff counts, a freeze at remaining
  // count 1 can only be caused by the swap partner's transmission, so the
  // carrier-sense record alone decides the swap:
  //  * lower candidate (priority C), coin "down" (xi=-1): moves down iff the
  //    channel turned busy when its count stood at 1 — i.e. the upper
  //    candidate claimed the earlier slot and transmitted in it;
  //  * upper candidate (priority C+1), coin "up" (xi=+1): moves up iff its
  //    count passed 1 -> 0 with the channel idle AND its claim actually went
  //    on the air (if the gap rule suppressed the transmission, the partner
  //    cannot have heard anything, and both sides must conclude "no swap").
  if (role_ == Role::kLower && xi_ == -1 && backoff_.was_frozen_at(1)) {
    if (sim::Tracer* tracer = medium_.tracer(); tracer != nullptr) {
      tracer->record(sim_.now(), sim::TraceKind::kSwapDown, id_, sigma_, sigma_ + 1);
    }
    ++sigma_;
  } else if (role_ == Role::kUpper && xi_ == +1 && !backoff_.was_frozen_at(1) &&
             backoff_.expired() && first_tx_started_) {
    if (sim::Tracer* tracer = medium_.tracer(); tracer != nullptr) {
      tracer->record(sim_.now(), sim::TraceKind::kSwapUp, id_, sigma_, sigma_ - 1);
    }
    --sigma_;
  }

  // Step 7: flush everything that missed the deadline.
  buffer_ = 0;
  empty_claim_pending_ = false;
  return delivered_;
}

// ---- DpScheme ---------------------------------------------------------------

DpScheme::DpScheme(const SchemeContext& ctx, std::unique_ptr<PriorityProvider> provider,
                   DpLinkParams params, std::string name,
                   std::optional<core::Permutation> initial, ReliabilityEstimator* estimator)
    : shared_seed_{mix64(ctx.seed, 0x5EEDC0DE)},
      provider_{std::move(provider)},
      name_{std::move(name)},
      sensing_complete_{ctx.medium.topology().complete_sensing()} {
  RTMAC_REQUIRE(provider_ != nullptr);
  const core::Permutation init =
      initial.has_value() ? *initial : core::Permutation::identity(ctx.num_links);
  RTMAC_REQUIRE(init.size() == ctx.num_links);
  links_.reserve(ctx.num_links);
  for (LinkId n = 0; n < ctx.num_links; ++n) {
    links_.push_back(std::make_unique<DpLinkMac>(ctx.simulator, ctx.medium, shared_seed_,
                                                 *provider_, params, n, ctx.num_links,
                                                 init.priority_of(n), ctx.seed, estimator));
  }
}

void DpScheme::begin_interval(IntervalIndex k, const std::vector<int>& arrivals,
                              TimePoint interval_end) {
  RTMAC_REQUIRE(arrivals.size() == links_.size());
  for (std::size_t n = 0; n < links_.size(); ++n) {
    links_[n]->begin_interval(k, arrivals[n], interval_end);
  }
}

std::vector<int> DpScheme::end_interval() {
  std::vector<int> delivered(links_.size());
  for (std::size_t n = 0; n < links_.size(); ++n) {
    delivered[n] = links_[n]->end_interval();
  }
  // Decentralized decisions must still compose into a permutation; this is
  // the protocol's core consistency invariant. It only holds when every
  // device can carrier-sense every other: hidden terminals may observe
  // asymmetric freeze records and commit one-sided swaps.
  if constexpr (kChecksEnabled) {
    if (sensing_complete_) {
      const auto sigma = priority_vector();
      std::vector<bool> seen(sigma.size(), false);
      for (PriorityIndex pr : sigma) {
        RTMAC_ASSERT(pr >= 1 && pr <= sigma.size() && !seen[pr - 1],
                     "priority state diverged: swap decisions inconsistent (priority ", pr,
                     " among N=", sigma.size(), ")");
        seen[pr - 1] = true;
      }
    }
  }
  return delivered;
}

core::Permutation DpScheme::priorities() const {
  return core::Permutation::from_priorities(priority_vector());
}

std::vector<PriorityIndex> DpScheme::priority_vector() const {
  std::vector<PriorityIndex> sigma(links_.size());
  for (std::size_t n = 0; n < links_.size(); ++n) sigma[n] = links_[n]->priority();
  return sigma;
}

}  // namespace rtmac::mac
