#include "mac/dp_link_mac.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace rtmac::mac {

// ---- DpLinkAir --------------------------------------------------------------

DpLinkAir::DpLinkAir(sim::Simulator& simulator, phy::Medium& medium, const DpLinkParams& params,
                     LinkId id, ReliabilityEstimator* estimator, bool allow_burst)
    : sim_{simulator},
      medium_{medium},
      params_{params},
      id_{id},
      estimator_{estimator},
      allow_burst_{allow_burst} {}

void DpLinkAir::begin(int arrivals, TimePoint interval_end, bool is_candidate) {
  RTMAC_REQUIRE(arrivals >= 0);
  interval_end_ = interval_end;
  buffer_ = arrivals;
  is_candidate_ = is_candidate;
  delivered_ = 0;
  tx_started_ = 0;
  first_tx_started_ = false;
  // Step 2: a candidate with no traffic still claims its slot on the air.
  empty_claim_pending_ = is_candidate && buffer_ == 0;
}

void DpLinkAir::on_slot_won() {
  if (allow_burst_ && medium_.burst_available()) {
    run_burst();
    return;
  }
  try_transmit();
}

void DpLinkAir::run_burst() {
  // Mirrors try_transmit()/on_tx_done() packet by packet, but simulates the
  // whole back-to-back chain synchronously through the Medium burst API: one
  // idle-transition event at the end instead of one completion event per
  // packet. Legal because under complete sensing the chain holds the medium
  // exclusively — every other device is frozen, so no event can interleave
  // and the loss-stream draw order is exactly the per-event path's.
  TimePoint t = sim_.now();
  bool began = false;
  while (true) {
    Duration airtime;
    phy::PacketKind kind;
    if (buffer_ > 0) {
      if (t + params_.data_airtime <= interval_end_) {
        airtime = params_.data_airtime;
        kind = phy::PacketKind::kData;
      } else if (is_candidate_ && !first_tx_started_ &&
                 t + params_.empty_airtime <= interval_end_) {
        // Gap-blocked candidate claim (see try_transmit); first packet only.
        airtime = params_.empty_airtime;
        kind = phy::PacketKind::kEmpty;
      } else {
        break;
      }
    } else if (empty_claim_pending_ && t + params_.empty_airtime <= interval_end_) {
      empty_claim_pending_ = false;
      airtime = params_.empty_airtime;
      kind = phy::PacketKind::kEmpty;
    } else {
      break;
    }
    if (!began) {
      medium_.begin_burst(id_);
      began = true;
    }
    ++tx_started_;
    first_tx_started_ = true;
    const phy::TxOutcome outcome = medium_.burst_tx(id_, t, airtime, kind);
    t += airtime;
    if (kind == phy::PacketKind::kData) {
      if (estimator_ != nullptr) estimator_->record(id_, outcome == phy::TxOutcome::kDelivered);
      if (outcome == phy::TxOutcome::kDelivered) {
        ++delivered_;
        --buffer_;
      }
    }
  }
  if (began) medium_.end_burst(t);
}

void DpLinkAir::try_transmit() {
  const TimePoint now = sim_.now();

  auto send = [this](Duration airtime, phy::PacketKind kind) {
    ++tx_started_;
    first_tx_started_ = true;
    medium_.start_transmission(id_, airtime, kind,
                               [this, kind](phy::TxOutcome o) { on_tx_done(kind, o); });
  };

  if (buffer_ > 0) {
    // Remark 4 gap rule: transmit only if the packet fits in the interval.
    if (now + params_.data_airtime <= interval_end_) {
      send(params_.data_airtime, phy::PacketKind::kData);
      return;
    }
    // Swap-consistency rule: a CANDIDATE whose data packet no longer fits
    // must still claim its backoff slot on the air if a short empty packet
    // fits — otherwise its silence is indistinguishable from "moved away"
    // and the partner could commit a one-sided swap. (Candidates without
    // arrivals already claim via empty_claim_pending_ below; this extends
    // the same priority-claiming packet to the gap-blocked data case.)
    if (is_candidate_ && !first_tx_started_ &&
        now + params_.empty_airtime <= interval_end_) {
      send(params_.empty_airtime, phy::PacketKind::kEmpty);
    }
    return;
  }
  if (empty_claim_pending_ && now + params_.empty_airtime <= interval_end_) {
    empty_claim_pending_ = false;
    send(params_.empty_airtime, phy::PacketKind::kEmpty);
  }
}

void DpLinkAir::on_tx_done(phy::PacketKind kind, phy::TxOutcome outcome) {
  // DP backoff counts are unique within the interval, so with complete
  // carrier sensing (everyone freezes and resumes together) no DP
  // transmission can ever collide; the assert documents that invariant.
  // Under partial sensing the countdowns desynchronize — hidden terminals
  // make collisions a genuine protocol outcome, not a bug.
  RTMAC_ASSERT(outcome != phy::TxOutcome::kCollision || !medium_.topology().complete_sensing(),
               "DP protocol must be collision-free under complete sensing: link ", id_,
               " collided");
  if (kind == phy::PacketKind::kData && estimator_ != nullptr &&
      outcome != phy::TxOutcome::kCollision) {
    // Learning mode (Section II-A): the ACK outcome of every clean data
    // transmission updates this link's own reliability posterior.
    estimator_->record(id_, outcome == phy::TxOutcome::kDelivered);
  }
  if (kind == phy::PacketKind::kData && outcome == phy::TxOutcome::kDelivered) {
    ++delivered_;
    --buffer_;
  }
  // Channel losses leave the packet in the buffer: retransmit until the
  // deadline (back-to-back, the channel is already ours).
  try_transmit();
}

int DpLinkAir::finish() {
  // Step 7: flush everything that missed the deadline.
  buffer_ = 0;
  empty_claim_pending_ = false;
  return delivered_;
}

// ---- DpLinkMac (scalar reference path) --------------------------------------

DpLinkMac::DpLinkMac(sim::Simulator& simulator, phy::Medium& medium, const DpLinkParams& params,
                     LinkId id, ReliabilityEstimator* estimator, LinkId trace_link)
    : air_{simulator, medium, params, id, estimator},
      backoff_{simulator, medium, params.backoff_slot, id} {
  backoff_.set_trace_link(trace_link == kSameAsId ? id : trace_link);
}

void DpLinkMac::begin_interval(int arrivals, TimePoint interval_end, bool is_candidate,
                               int backoff_count) {
  air_.begin(arrivals, interval_end, is_candidate);
  backoff_.start(backoff_count, [this] { air_.on_slot_won(); });
}

// ---- DpScheme ---------------------------------------------------------------

namespace {

const PriorityProvider& checked_provider(const std::unique_ptr<PriorityProvider>& provider) {
  RTMAC_REQUIRE(provider != nullptr);
  return *provider;
}

std::vector<PriorityIndex> initial_priority_array(
    const SchemeContext& ctx, const std::optional<core::Permutation>& initial) {
  // Priorities live in the GLOBAL space: a shard cell slices the domain-wide
  // permutation by its links' global ids, so the sigma each link carries is
  // the one it would hold in the unsharded run.
  const std::size_t space = ctx.priority_space();
  const core::Permutation init =
      initial.has_value() ? *initial : core::Permutation::identity(space);
  RTMAC_REQUIRE(init.size() == space);
  std::vector<PriorityIndex> out(ctx.num_links);
  for (LinkId n = 0; n < ctx.num_links; ++n) out[n] = init.priority_of(ctx.global_id(n));
  return out;
}

/// Hard bound on freezes per interval: the shared clock freezes at most once
/// per transmission, and no transmission is shorter than an empty packet.
std::size_t freeze_capacity_hint(Duration interval_length, const DpLinkParams& params) {
  const std::int64_t min_airtime = std::max<std::int64_t>(params.empty_airtime.ns(), 1);
  return static_cast<std::size_t>(interval_length.ns() / min_airtime) + 2;
}

}  // namespace

DpScheme::DpScheme(const SchemeContext& ctx, std::unique_ptr<PriorityProvider> provider,
                   DpLinkParams params, std::string name,
                   std::optional<core::Permutation> initial, ReliabilityEstimator* estimator)
    : sim_{ctx.simulator},
      medium_{ctx.medium},
      provider_{std::move(provider)},
      kernel_{ctx.num_links,           SharedSeed{mix64(ctx.seed, 0x5EEDC0DE)},
              checked_provider(provider_), params.reordering,
              params.max_swap_pairs,    initial_priority_array(ctx, initial),
              ctx.seed,                 ctx.priority_space(),
              ctx.link_ids},
      name_{std::move(name)},
      sensing_complete_{ctx.medium.topology().complete_sensing()},
      batch_{sensing_complete_ && !params.force_scalar_path} {
  if (batch_) {
    airs_.reserve(ctx.num_links);
    for (LinkId n = 0; n < ctx.num_links; ++n) {
      airs_.emplace_back(ctx.simulator, ctx.medium, params, n, estimator,
                         /*allow_burst=*/true);
    }
    armed_scratch_.assign(ctx.num_links, 0);
    batch_backoff_ = std::make_unique<DpBatchBackoff>(
        ctx.simulator, ctx.medium, params.backoff_slot, ctx.num_links,
        freeze_capacity_hint(ctx.interval_length, params),
        DpBatchBackoff::ExpiryHandler{[this](LinkId n) { on_slot_won(n); }});
  } else {
    links_.reserve(ctx.num_links);
    for (LinkId n = 0; n < ctx.num_links; ++n) {
      links_.push_back(std::make_unique<DpLinkMac>(ctx.simulator, ctx.medium, params, n,
                                                   estimator, ctx.global_id(n)));
    }
  }
}

void DpScheme::on_slot_won(LinkId n) { airs_[n].on_slot_won(); }

void DpScheme::begin_interval(IntervalIndex k, std::span<const int> arrivals,
                              TimePoint interval_end) {
  const std::size_t n_links = kernel_.num_links();
  RTMAC_REQUIRE(arrivals.size() == n_links);
  // Steps 1, 3, 4 for every link, as flat SoA passes.
  kernel_.plan_interval(k);
  if (!batch_) {
    for (LinkId n = 0; n < n_links; ++n) {
      links_[n]->begin_interval(arrivals[n], interval_end, kernel_.is_candidate(n),
                                kernel_.backoff_count(n));
    }
    return;
  }
  sim::Tracer* tracer = medium_.tracer();
  for (LinkId n = 0; n < n_links; ++n) {
    airs_[n].begin(arrivals[n], interval_end, kernel_.is_candidate(n));
    armed_scratch_[n] = airs_[n].armed() ? 1 : 0;
    if (tracer != nullptr) {
      // Per-engine emulation: each scalar engine traces its arming.
      tracer->record(sim_.now(), sim::TraceKind::kBackoffArmed, n, kernel_.backoff_count(n));
    }
  }
  // Unarmed links can never transmit, so their expiries are observable only
  // through the trace; schedule them only when someone is watching.
  batch_backoff_->begin_interval(sim_.now(), kernel_.backoff_counts(), armed_scratch_,
                                 /*include_unarmed=*/tracer != nullptr);
}

void DpScheme::end_interval(std::span<int> delivered) {
  const std::size_t n_links = kernel_.num_links();
  RTMAC_REQUIRE(delivered.size() == n_links);
  sim::Tracer* tracer = medium_.tracer();
  if (batch_) batch_backoff_->stop();
  for (LinkId n = 0; n < n_links; ++n) {
    bool frozen_at_one = false;
    bool claim_aired = false;
    if (batch_) {
      frozen_at_one = batch_backoff_->frozen_with_remaining(kernel_.backoff_count(n), 1);
      claim_aired = airs_[n].aired();
    } else {
      links_[n]->stop_backoff();
      frozen_at_one = links_[n]->frozen_at_one();
      claim_aired = links_[n]->claim_aired();
    }
    const PriorityIndex before = kernel_.priority(n);
    const int delta = kernel_.resolve_swap(n, frozen_at_one, claim_aired);
    if (delta != 0 && tracer != nullptr) {
      tracer->record(sim_.now(),
                     delta > 0 ? sim::TraceKind::kSwapDown : sim::TraceKind::kSwapUp, n,
                     before, static_cast<std::int64_t>(before) + delta);
    }
    delivered[n] = batch_ ? airs_[n].finish() : links_[n]->finish();
  }
  // Decentralized decisions must still compose into a permutation; this is
  // the protocol's core consistency invariant. It only holds when every
  // device can carrier-sense every other: hidden terminals may observe
  // asymmetric freeze records and commit one-sided swaps.
  if constexpr (kChecksEnabled) {
    if (sensing_complete_) kernel_.validate_permutation();
  }
}

core::Permutation DpScheme::priorities() const {
  return core::Permutation::from_priorities(priority_vector());
}

std::vector<PriorityIndex> DpScheme::priority_vector() const {
  const std::span<const PriorityIndex> sigma = kernel_.priority_span();
  return {sigma.begin(), sigma.end()};
}

}  // namespace rtmac::mac
