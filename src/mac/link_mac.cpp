// Intentionally minimal: MacScheme is an interface; its out-of-line anchor
// lives here so the vtable has a home translation unit.
#include "mac/link_mac.hpp"

namespace rtmac::mac {}  // namespace rtmac::mac
