#include "mac/reliability_estimator.hpp"

#include "util/check.hpp"

namespace rtmac::mac {

ReliabilityEstimator::ReliabilityEstimator(std::size_t num_links, double initial,
                                           double prior_weight)
    : prior_successes_{prior_weight * initial},
      prior_weight_{prior_weight},
      attempts_(num_links, 0),
      successes_(num_links, 0) {
  RTMAC_REQUIRE(num_links > 0);
  RTMAC_REQUIRE(initial > 0.0 && initial <= 1.0);
  RTMAC_REQUIRE(prior_weight > 0.0);
}

void ReliabilityEstimator::record(LinkId link, bool success) {
  RTMAC_ASSERT(link < attempts_.size());
  ++attempts_[link];
  if (success) ++successes_[link];
}

double ReliabilityEstimator::estimate(LinkId link) const {
  RTMAC_ASSERT(link < attempts_.size());
  return (static_cast<double>(successes_[link]) + prior_successes_) /
         (static_cast<double>(attempts_[link]) + prior_weight_);
}

EstimatedMuProvider::EstimatedMuProvider(core::DebtMu formula, const core::DebtTracker& debts,
                                         std::size_t num_links, double initial,
                                         double prior_weight)
    : formula_{std::move(formula)},
      debts_{debts},
      estimator_{num_links, initial, prior_weight} {}

double EstimatedMuProvider::mu(LinkId n, IntervalIndex) const {
  return formula_.mu(debts_.debt(n), estimator_.estimate(n));
}

}  // namespace rtmac::mac
