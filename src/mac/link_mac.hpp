// MAC-scheme interfaces binding protocols to the interval structure.
//
// A MacScheme is one complete medium-access discipline for the whole
// network (decentralized schemes own one state machine per link; the
// centralized ELDF genie is a single scheduler). The Network drives it:
// begin_interval() delivers this interval's arrivals, the scheme contends
// on the shared Medium during the interval, end_interval() reports how many
// packets each link delivered on time.
#pragma once

#include <cstdint>
#include <functional>  // lint-ok: std-function factory type below, config-time only
#include <memory>
#include <span>
#include <string>

#include "core/debt.hpp"
#include "core/types.hpp"
#include "phy/medium.hpp"
#include "phy/phy_params.hpp"
#include "sim/simulator.hpp"
#include "util/arena.hpp"

namespace rtmac::mac {

/// One medium-access discipline driving all N links for the experiment.
class MacScheme {
 public:
  virtual ~MacScheme() = default;

  /// Starts interval k. `arrivals[n]` packets appear in link n's buffer,
  /// all with absolute deadline `interval_end`. Called at time kT. The
  /// caller owns the buffer (pre-sized from NetworkConfig); the view is
  /// valid only for the duration of the call.
  virtual void begin_interval(IntervalIndex k, std::span<const int> arrivals,
                              TimePoint interval_end) = 0;

  /// Closes the interval at time (k+1)T after the medium has gone idle.
  /// Writes S(k) — on-time deliveries — into `delivered[n]` for EVERY link
  /// (caller-owned, sized num_links; no element may be left stale).
  /// Implementations must drop all undelivered packets (deadline expiry)
  /// and quiesce. Neither interval call may allocate in steady state: the
  /// per-interval hot path is gated allocation-free (BM_DbdpIntervalAllocs).
  virtual void end_interval(std::span<int> delivered) = 0;

  /// Human-readable scheme name for reports.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Can this scheme run on a shard cell (a subset of the links with only
  /// local carrier-sense information)? True for every decentralized scheme;
  /// the centralized genie needs global knowledge and must override to
  /// false. The sharded Network refuses non-shardable schemes up front.
  [[nodiscard]] virtual bool shardable() const { return true; }

  /// Bytes of long-lived per-link state this scheme holds (heap or arena),
  /// feeding the mem.mac gauge. Schemes with meaningful per-link footprints
  /// override; the default 0 keeps small fixed-size schemes honest enough.
  [[nodiscard]] virtual std::size_t memory_bytes() const { return 0; }

  /// Peak simultaneously-pending simulator events per link this scheme can
  /// hold — expiry timers plus in-flight completions — feeding the per-cell
  /// event reserve under sharding. Batch shared-clock layouts hold ONE
  /// domain expiry event for the whole cell plus at most one completion per
  /// link and override to 1; the conservative default covers per-link
  /// engines with parked expiries. The reserve is a pre-size, not a cap:
  /// an underestimate costs reallocations (engine.events.reallocs gauges
  /// it), never correctness.
  [[nodiscard]] virtual std::size_t pending_events_per_link() const { return 6; }
};

/// Everything a scheme implementation may depend on, owned by the Network.
/// Schemes hold references; the Network guarantees lifetime.
struct SchemeContext {
  sim::Simulator& simulator;
  phy::Medium& medium;
  const phy::PhyParams& phy;
  Duration interval_length;
  std::size_t num_links;
  const ProbabilityVector& success_prob;   ///< p_n, known to transmitters (paper SII-A)
  const core::DebtTracker& debts;          ///< updated by the Network between intervals
  std::uint64_t seed;                      ///< root seed for scheme-local randomness

  // Shard-cell identity. On the legacy single-engine path these keep their
  // defaults and global_id() is the identity, so every existing
  // brace-initialization site stays valid. On a shard cell, `num_links`,
  // `medium`, `debts` etc. are cell-local, while `link_ids` maps local
  // indices back to the network-wide ids that RNG streams, trace labels and
  // the DP priority space are keyed by — results must not depend on the
  // partition.
  std::span<const LinkId> link_ids{};      ///< local -> global map; empty = identity
  std::size_t global_num_links = 0;        ///< network-wide N; 0 = num_links
  /// Optional arena for cold per-link scheme state (shared across cells by
  /// the sharded Network). Null = scheme allocates from the heap as before.
  util::Arena* arena = nullptr;

  /// Global id of local link n.
  [[nodiscard]] LinkId global_id(LinkId n) const {
    return link_ids.empty() ? n : link_ids[n];
  }
  /// The network-wide link count (the DP priority space).
  [[nodiscard]] std::size_t priority_space() const {
    return global_num_links == 0 ? num_links : global_num_links;
  }
};

/// Factory used by the Network to instantiate the scheme under test.
// Copyable by design: sweep runners hand the same factory to many Networks.
// Setup-time only, so std::function's allocation behaviour is irrelevant.
using SchemeFactory = std::function<std::unique_ptr<MacScheme>(const SchemeContext&)>;  // lint-ok: std-function copyable config-time factory

}  // namespace rtmac::mac
