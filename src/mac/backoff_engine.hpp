// Carrier-sense backoff countdown with freeze/resume semantics.
//
// Standard listen-before-talk timing, shared by every contention-based MAC
// in this library: a counter of B backoff slots decrements once per slot
// while the medium is idle, freezes whenever the medium turns busy
// (discarding partial-slot progress, as in 802.11), resumes on idle, and
// fires an expiry callback when it reaches zero.
//
// For the DP protocol's swap detection (paper eqs. 7-8) the engine records
// the counter value at every freeze: "the channel was busy when the backoff
// timer decreased to 1" is exactly "a freeze occurred while the remaining
// count was 1", because with the DP protocol's unique backoff assignment the
// only transmission that can start one slot before ours is the swap
// partner's.
#pragma once

#include <vector>

#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "util/inplace_function.hpp"
#include "util/time.hpp"

namespace rtmac::mac {

/// One countdown instance. Register it with the Medium once; start()/stop()
/// as often as needed. Not running between stop()/expiry and next start().
class BackoffEngine final : public phy::MediumListener {
 public:
  /// `sense_node` selects which sense view drives freeze/resume: the
  /// owning link's id for a real device (it freezes only on transmissions
  /// it can hear — under partial topologies that is strictly less than the
  /// global channel state), or Medium::kAllNodes for the global view (the
  /// default, which on a complete graph is the same thing).
  BackoffEngine(sim::Simulator& simulator, phy::Medium& medium, Duration slot,
                LinkId sense_node = phy::Medium::kAllNodes);

  BackoffEngine(const BackoffEngine&) = delete;
  BackoffEngine& operator=(const BackoffEngine&) = delete;

  /// Expiry callback type: inline-stored, so arming a countdown never
  /// allocates (protocol state machines re-arm every interval).
  using ExpiryCallback = util::InplaceFunction<void()>;

  /// Arms the countdown at `count` slots (count >= 0). `on_expire` fires
  /// through the event queue when the counter reaches zero (a count of 0
  /// on an idle medium expires after a zero-delay event hop, preserving the
  /// no-synchronous-transmit rule). Any previous countdown is discarded.
  void start(int count, ExpiryCallback on_expire);

  /// Disarms; freeze records are kept until the next start().
  void stop();

  [[nodiscard]] bool running() const { return running_; }

  /// Remaining slot count (live countdowns report the value as of the last
  /// slot boundary).
  [[nodiscard]] int remaining() const;

  /// True iff, since the last start(), the medium turned busy while the
  /// remaining count was exactly `value`.
  [[nodiscard]] bool was_frozen_at(int value) const;

  /// True iff the countdown reached zero and the expiry callback fired.
  [[nodiscard]] bool expired() const { return expired_; }

  /// Labels this engine's trace events with the owning link (tracing flows
  /// through the Medium's attached Tracer; see phy::Medium::set_tracer).
  /// The same label names this engine's metrics (freeze-time accounting
  /// flows through the Medium's attached MetricsRegistry).
  void set_trace_link(LinkId link) { trace_link_ = link; }

  /// Total time this engine has spent frozen (medium busy while armed)
  /// since construction. Always tracked; also exported to the metrics
  /// registry when one is attached to the Medium.
  [[nodiscard]] Duration total_frozen_time() const { return total_frozen_; }

  // phy::MediumListener:
  void on_medium_busy(TimePoint t) override;
  void on_medium_idle(TimePoint t) override;

 private:
  void arm_expiry(TimePoint resume_at);
  void fire_expiry();

  void trace(sim::TraceKind kind, std::int64_t a = 0);
  void account_freeze(Duration frozen_for);

  sim::Simulator& sim_;
  phy::Medium& medium_;
  Duration slot_;
  LinkId sense_node_;  ///< whose sense view this engine observes
  LinkId trace_link_ = sim::kNoLink;

  bool running_ = false;
  bool frozen_ = false;     ///< true while medium busy (or awaiting first idle)
  int count_ = 0;           ///< remaining slots while frozen
  TimePoint resume_time_;   ///< when the live countdown last (re)started
  TimePoint frozen_since_;  ///< when the current freeze began (valid while frozen_)
  int count_at_resume_ = 0;
  sim::EventId expiry_event_;
  bool expired_ = false;
  ExpiryCallback on_expire_;
  std::vector<int> freeze_values_;

  Duration total_frozen_;
  // Cached metric handles, re-resolved when the Medium's registry changes
  // (attachment may happen after construction, like the tracer).
  obs::MetricsRegistry* metrics_seen_ = nullptr;
  obs::Histogram* freeze_hist_ = nullptr;
  obs::Counter* freeze_ns_ = nullptr;
};

}  // namespace rtmac::mac
