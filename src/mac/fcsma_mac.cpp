#include "mac/fcsma_mac.hpp"

#include <cmath>

#include "util/check.hpp"

namespace rtmac::mac {

int fcsma_window_for_weight(double weight, const FcsmaParams& params) {
  RTMAC_REQUIRE(!params.window_sizes.empty());
  RTMAC_REQUIRE(params.section_width > 0.0);
  const auto section = static_cast<std::size_t>(
      std::max(0.0, std::floor(weight / params.section_width)));
  const std::size_t clamped = std::min(section, params.window_sizes.size() - 1);
  return params.window_sizes[clamped];
}

// ---- FcsmaLinkMac -----------------------------------------------------------

FcsmaLinkMac::FcsmaLinkMac(sim::Simulator& simulator, phy::Medium& medium,
                           const core::DebtTracker& debts, const ProbabilityVector& p,
                           const FcsmaParams& params, Duration data_airtime, Duration slot,
                           LinkId id, std::uint64_t seed, LinkId stream_link)
    : sim_{simulator},
      medium_{medium},
      debts_{debts},
      p_{p},
      params_{params},
      data_airtime_{data_airtime},
      id_{id},
      rng_{seed, /*stream_id=*/0xFC500000000ULL + (stream_link == kSameAsId ? id : stream_link)},
      backoff_{simulator, medium, slot, id} {}

void FcsmaLinkMac::begin_interval(IntervalIndex, int arrivals, TimePoint interval_end) {
  RTMAC_REQUIRE(arrivals >= 0);
  interval_end_ = interval_end;
  buffer_ = arrivals;
  delivered_ = 0;
  // The window reacts to debt once per interval (the discretized design:
  // the mapping is static within an interval and saturates for large debt).
  const double weight = params_.influence(debts_.debt_plus(id_)) * p_[id_];
  window_ = fcsma_window_for_weight(weight, params_);
  if (buffer_ > 0) contend();
}

void FcsmaLinkMac::contend() {
  const int draw = static_cast<int>(rng_.uniform_int(0, window_ - 1));
  backoff_.start(draw, [this] { on_backoff_expired(); });
}

void FcsmaLinkMac::on_backoff_expired() {
  if (sim_.now() + data_airtime_ > interval_end_) return;  // deadline gap rule
  medium_.start_transmission(id_, data_airtime_, phy::PacketKind::kData,
                             [this](phy::TxOutcome o) { on_tx_done(o); });
}

void FcsmaLinkMac::on_tx_done(phy::TxOutcome outcome) {
  if (outcome == phy::TxOutcome::kDelivered) {
    --buffer_;
    ++delivered_;
  }
  // Collision or channel loss: the packet stays queued. Either way the link
  // redraws a fresh backoff for its next attempt.
  if (buffer_ > 0) contend();
}

int FcsmaLinkMac::end_interval() {
  backoff_.stop();
  buffer_ = 0;
  return delivered_;
}

// ---- FcsmaScheme ------------------------------------------------------------

FcsmaScheme::FcsmaScheme(const SchemeContext& ctx, FcsmaParams params, std::string name)
    : params_{std::move(params)}, name_{std::move(name)} {
  links_.reserve(ctx.num_links);
  for (LinkId n = 0; n < ctx.num_links; ++n) {
    links_.push_back(std::make_unique<FcsmaLinkMac>(ctx.simulator, ctx.medium, ctx.debts,
                                                    ctx.success_prob, params_,
                                                    ctx.phy.data_airtime, ctx.phy.backoff_slot,
                                                    n, ctx.seed, ctx.global_id(n)));
  }
}

void FcsmaScheme::begin_interval(IntervalIndex k, std::span<const int> arrivals,
                                 TimePoint interval_end) {
  RTMAC_REQUIRE(arrivals.size() == links_.size());
  for (std::size_t n = 0; n < links_.size(); ++n) {
    links_[n]->begin_interval(k, arrivals[n], interval_end);
  }
}

void FcsmaScheme::end_interval(std::span<int> delivered) {
  RTMAC_REQUIRE(delivered.size() == links_.size());
  for (std::size_t n = 0; n < links_.size(); ++n) delivered[n] = links_[n]->end_interval();
}

}  // namespace rtmac::mac
