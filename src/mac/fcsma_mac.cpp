#include "mac/fcsma_mac.hpp"

#include <cmath>

#include "util/check.hpp"

namespace rtmac::mac {

int fcsma_window_for_weight(double weight, const FcsmaParams& params) {
  RTMAC_REQUIRE(!params.window_sizes.empty());
  RTMAC_REQUIRE(params.section_width > 0.0);
  const auto section = static_cast<std::size_t>(
      std::max(0.0, std::floor(weight / params.section_width)));
  const std::size_t clamped = std::min(section, params.window_sizes.size() - 1);
  return params.window_sizes[clamped];
}

// ---- FcsmaLinkMac -----------------------------------------------------------

FcsmaLinkMac::FcsmaLinkMac(sim::Simulator& simulator, phy::Medium& medium,
                           const core::DebtTracker& debts, const ProbabilityVector& p,
                           const FcsmaParams& params, Duration data_airtime, Duration slot,
                           LinkId id, std::uint64_t seed, LinkId stream_link)
    : sim_{simulator},
      medium_{medium},
      debts_{debts},
      p_{p},
      params_{params},
      data_airtime_{data_airtime},
      id_{id},
      rng_{seed, /*stream_id=*/0xFC500000000ULL + (stream_link == kSameAsId ? id : stream_link)},
      backoff_{simulator, medium, slot, id} {}

void FcsmaLinkMac::begin_interval(IntervalIndex, int arrivals, TimePoint interval_end) {
  RTMAC_REQUIRE(arrivals >= 0);
  interval_end_ = interval_end;
  buffer_ = arrivals;
  delivered_ = 0;
  // The window reacts to debt once per interval (the discretized design:
  // the mapping is static within an interval and saturates for large debt).
  const double weight = params_.influence(debts_.debt_plus(id_)) * p_[id_];
  window_ = fcsma_window_for_weight(weight, params_);
  if (buffer_ > 0) contend();
}

void FcsmaLinkMac::contend() {
  const int draw = static_cast<int>(rng_.uniform_int(0, window_ - 1));
  backoff_.start(draw, [this] { on_backoff_expired(); });
}

void FcsmaLinkMac::on_backoff_expired() {
  if (sim_.now() + data_airtime_ > interval_end_) return;  // deadline gap rule
  medium_.start_transmission(id_, data_airtime_, phy::PacketKind::kData,
                             [this](phy::TxOutcome o) { on_tx_done(o); });
}

void FcsmaLinkMac::on_tx_done(phy::TxOutcome outcome) {
  if (outcome == phy::TxOutcome::kDelivered) {
    --buffer_;
    ++delivered_;
  }
  // Collision or channel loss: the packet stays queued. Either way the link
  // redraws a fresh backoff for its next attempt.
  if (buffer_ > 0) contend();
}

int FcsmaLinkMac::end_interval() {
  backoff_.stop();
  buffer_ = 0;
  return delivered_;
}

// ---- FcsmaScheme ------------------------------------------------------------

FcsmaScheme::FcsmaScheme(const SchemeContext& ctx, FcsmaParams params, std::string name)
    : params_{std::move(params)},
      sim_{ctx.simulator},
      medium_{ctx.medium},
      debts_{ctx.debts},
      p_{ctx.success_prob},
      data_airtime_{ctx.phy.data_airtime},
      name_{std::move(name)} {
  if (ctx.medium.topology().complete_sensing() && !params_.force_scalar_path) {
    // Batch path: one shared backoff clock for the whole collision domain,
    // SoA per-link state. Streams and draw order match the scalar machines.
    clock_ = std::make_unique<SharedBackoffClock>(
        ctx.simulator, ctx.medium, ctx.phy.backoff_slot, ctx.num_links,
        [this](LinkId n) { on_backoff_expired(n); });
    rng_.reserve(ctx.num_links);
    for (LinkId n = 0; n < ctx.num_links; ++n) {
      rng_.emplace_back(ctx.seed, /*stream_id=*/0xFC500000000ULL + ctx.global_id(n));
    }
    window_.assign(ctx.num_links, 1);
    buffer_.assign(ctx.num_links, 0);
    delivered_.assign(ctx.num_links, 0);
    return;
  }
  links_.reserve(ctx.num_links);
  for (LinkId n = 0; n < ctx.num_links; ++n) {
    links_.push_back(std::make_unique<FcsmaLinkMac>(ctx.simulator, ctx.medium, ctx.debts,
                                                    ctx.success_prob, params_,
                                                    ctx.phy.data_airtime, ctx.phy.backoff_slot,
                                                    n, ctx.seed, ctx.global_id(n)));
  }
}

std::size_t FcsmaScheme::memory_bytes() const {
  if (clock_ == nullptr) return links_.size() * sizeof(FcsmaLinkMac);
  return rng_.capacity() * sizeof(Rng) +
         (window_.capacity() + buffer_.capacity() + delivered_.capacity()) * sizeof(int) +
         clock_->memory_bytes();
}

void FcsmaScheme::contend(LinkId n) {
  const int draw = static_cast<int>(rng_[n].uniform_int(0, window_[n] - 1));
  clock_->arm(n, draw);
}

void FcsmaScheme::on_backoff_expired(LinkId n) {
  if (sim_.now() + data_airtime_ > interval_end_) return;  // deadline gap rule
  medium_.start_transmission(n, data_airtime_, phy::PacketKind::kData,
                             [this, n](phy::TxOutcome o) { on_tx_done(n, o); });
}

void FcsmaScheme::on_tx_done(LinkId n, phy::TxOutcome outcome) {
  if (outcome == phy::TxOutcome::kDelivered) {
    --buffer_[n];
    ++delivered_[n];
  }
  // Collision or channel loss: the packet stays queued. Either way the link
  // redraws a fresh backoff for its next attempt.
  if (buffer_[n] > 0) contend(n);
}

void FcsmaScheme::begin_interval(IntervalIndex k, std::span<const int> arrivals,
                                 TimePoint interval_end) {
  if (clock_ == nullptr) {
    RTMAC_REQUIRE(arrivals.size() == links_.size());
    for (std::size_t n = 0; n < links_.size(); ++n) {
      links_[n]->begin_interval(k, arrivals[n], interval_end);
    }
    return;
  }
  RTMAC_REQUIRE(arrivals.size() == buffer_.size());
  interval_end_ = interval_end;
  clock_->begin_interval(sim_.now());
  for (LinkId n = 0; n < buffer_.size(); ++n) {
    RTMAC_REQUIRE(arrivals[n] >= 0);
    buffer_[n] = arrivals[n];
    delivered_[n] = 0;
    // The window reacts to debt once per interval (the discretized design:
    // the mapping is static within an interval and saturates for large debt).
    const double weight = params_.influence(debts_.debt_plus(n)) * p_[n];
    window_[n] = fcsma_window_for_weight(weight, params_);
    if (buffer_[n] > 0) contend(n);
  }
  clock_->finish_arming();
}

void FcsmaScheme::end_interval(std::span<int> delivered) {
  if (clock_ == nullptr) {
    RTMAC_REQUIRE(delivered.size() == links_.size());
    for (std::size_t n = 0; n < links_.size(); ++n) delivered[n] = links_[n]->end_interval();
    return;
  }
  RTMAC_REQUIRE(delivered.size() == buffer_.size());
  clock_->stop();
  for (LinkId n = 0; n < buffer_.size(); ++n) {
    delivered[n] = delivered_[n];
    buffer_[n] = 0;
  }
}

}  // namespace rtmac::mac
