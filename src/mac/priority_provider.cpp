#include "mac/priority_provider.hpp"

#include "util/check.hpp"

namespace rtmac::mac {

FixedMuProvider::FixedMuProvider(std::vector<double> mu) : mu_{std::move(mu)} {
  for (const double m : mu_) {
    RTMAC_REQUIRE(m > 0.0 && m < 1.0, "mu must lie strictly inside (0,1), got ", m);
  }
}

double FixedMuProvider::mu(LinkId n, IntervalIndex) const {
  RTMAC_REQUIRE(n < mu_.size());
  return mu_[n];
}

DebtMuProvider::DebtMuProvider(core::DebtMu formula, const core::DebtTracker& debts,
                               const ProbabilityVector& success_prob)
    : formula_{std::move(formula)}, debts_{debts}, p_{success_prob} {}

double DebtMuProvider::mu(LinkId n, IntervalIndex) const {
  RTMAC_REQUIRE(n < debts_.size() && n < p_.size());
  return formula_.mu(debts_.debt(n), p_[n]);
}

}  // namespace rtmac::mac
