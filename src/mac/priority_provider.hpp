// Sources of the DP protocol's per-interval coin bias mu_n(k).
//
// The generic DP protocol (Algorithm 2) is agnostic to how mu_n is chosen;
// feasibility optimality comes from plugging in the debt-driven eq. (14)
// (DB-DP). Fixed biases are used for the stationary-distribution experiments
// where eq. (10) must hold with constant mu.
#pragma once

#include <vector>

#include "core/debt.hpp"
#include "core/mu.hpp"
#include "core/types.hpp"

namespace rtmac::mac {

/// Supplies each link's coin bias at the start of each interval.
class PriorityProvider {
 public:
  virtual ~PriorityProvider() = default;
  /// mu_n(k) in (0, 1): probability that link n draws xi = +1.
  [[nodiscard]] virtual double mu(LinkId n, IntervalIndex k) const = 0;
};

/// Constant per-link biases (Proposition 2 setting: stationary chain).
class FixedMuProvider final : public PriorityProvider {
 public:
  explicit FixedMuProvider(std::vector<double> mu);
  [[nodiscard]] double mu(LinkId n, IntervalIndex k) const override;

 private:
  std::vector<double> mu_;
};

/// The DB-DP bias of eq. (14): mu_n(k) = exp(f(d_n^+)p_n)/(R+exp(f(d_n^+)p_n)).
/// Reads only link n's own debt — the decentralization constraint.
class DebtMuProvider final : public PriorityProvider {
 public:
  /// References must outlive the provider (both owned by the Network).
  DebtMuProvider(core::DebtMu formula, const core::DebtTracker& debts,
                 const ProbabilityVector& success_prob);
  [[nodiscard]] double mu(LinkId n, IntervalIndex k) const override;

  [[nodiscard]] const core::DebtMu& formula() const { return formula_; }

 private:
  core::DebtMu formula_;
  const core::DebtTracker& debts_;
  const ProbabilityVector& p_;
};

}  // namespace rtmac::mac
