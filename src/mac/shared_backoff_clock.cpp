#include "mac/shared_backoff_clock.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace rtmac::mac {

SharedBackoffClock::SharedBackoffClock(sim::Simulator& simulator, phy::Medium& medium,
                                       Duration slot, std::size_t num_links,
                                       ExpiryHandler on_expire)
    : sim_{simulator},
      medium_{medium},
      slot_{slot},
      num_links_{num_links},
      on_expire_{std::move(on_expire)} {
  RTMAC_REQUIRE(slot.ns() > 0);
  heap_.reserve(num_links);
  medium_.add_listener(this);  // global view: the domain has complete sensing
}

void SharedBackoffClock::heap_push(Entry e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), [](const Entry& a, const Entry& b) {
    if (a.deadline != b.deadline) return a.deadline > b.deadline;
    return a.seq > b.seq;
  });
}

SharedBackoffClock::Entry SharedBackoffClock::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(), [](const Entry& a, const Entry& b) {
    if (a.deadline != b.deadline) return a.deadline > b.deadline;
    return a.seq > b.seq;
  });
  const Entry e = heap_.back();
  heap_.pop_back();
  return e;
}

void SharedBackoffClock::begin_interval(TimePoint now) {
  RTMAC_ASSERT(!in_interval_ && heap_.empty(), "begin_interval with countdowns armed");
  in_interval_ = true;
  arming_ = true;
  elapsed_at_resume_ = 0;
  if (medium_.sense_busy(phy::Medium::kAllNodes)) {
    // Defensive: the Network's gap-rule invariant keeps interval starts
    // idle, but mirror BackoffEngine::start anyway (arms freeze until the
    // next idle transition; the clock has not run yet).
    frozen_ = true;
    elapsed_frozen_ = 0;
    freeze_time_ = now;
  } else {
    frozen_ = false;
    resume_time_ = now;
  }
}

void SharedBackoffClock::arm(LinkId n, int count) {
  RTMAC_ASSERT(count >= 0);
  RTMAC_ASSERT(in_interval_, "arm outside an interval");
  // All arms happen at resume instants or during a busy period — the CSMA
  // schemes arm from begin_interval and from transmission outcomes only, and
  // every completion instant that leaves the medium idle becomes the resume
  // instant. This keeps deadline arithmetic exact (no partial slots at arm).
  RTMAC_ASSERT(frozen_ || sim_.now() == resume_time_, "arm off the resume instant");
  if (sim::Tracer* tracer = medium_.tracer(); tracer != nullptr) {
    tracer->record(sim_.now(), sim::TraceKind::kBackoffArmed, sim::kNoLink, count);
  }
  // The scalar engine checks carrier-sense, not our freeze flag: a link
  // arming at the LAST completion of a busy period senses idle (the Medium
  // runs outcome callbacks before the idle notification) and schedules its
  // expiry event immediately — giving it a sequence number BEFORE the frozen
  // engines are resumed. `live` records that class for resequence().
  const bool live = !medium_.sense_busy(phy::Medium::kAllNodes);
  heap_push(Entry{elapsed_now() + count, next_seq_++, n, busy_epoch_, live, sim_.now()});
  if (!frozen_ && !arming_) {
    // Mid-interval arm on an idle medium: keep the single domain event on
    // the earliest deadline. (Unreachable for DCF/FCSMA, which only re-arm
    // from completion callbacks, but cheap to keep correct.)
    if (heap_.front().seq == next_seq_ - 1) arm_event();
  }
}

void SharedBackoffClock::finish_arming() {
  arming_ = false;
  if (!frozen_ && !heap_.empty()) arm_event();
}

void SharedBackoffClock::stop() {
  if (expiry_event_.valid()) sim_.cancel(expiry_event_);
  expiry_event_ = sim::EventId{};
  if (in_interval_ && frozen_) account_freezes(sim_.now());
  frozen_ = false;
  in_interval_ = false;
  heap_.clear();
}

int SharedBackoffClock::elapsed_slots() const {
  if (!in_interval_) return 0;
  if (frozen_) return static_cast<int>(elapsed_frozen_);
  return static_cast<int>(elapsed_at_resume_ +
                          (sim_.now() - resume_time_).floor_div(slot_));
}

void SharedBackoffClock::arm_event() {
  const Entry& m = heap_.front();
  event_wall_ = resume_time_ + static_cast<int>(m.deadline - elapsed_at_resume_) * slot_;
  // Resuming from a freeze finds the event parked at the far-future sentinel
  // (see on_medium_busy): move it rather than allocate a new one. The fresh
  // FIFO sequence number matches what a cancel + schedule_at would produce.
  if (!sim_.reschedule(expiry_event_, event_wall_)) {
    expiry_event_ = sim_.schedule_at(event_wall_, [this] { fire(); });
  }
}

void SharedBackoffClock::fire() {
  expiry_event_ = sim::EventId{};
  RTMAC_ASSERT(!heap_.empty(), "spurious domain expiry");
  const Entry top = heap_pop();
  RTMAC_ASSERT(top.deadline ==
                   (frozen_ ? elapsed_frozen_
                            : elapsed_at_resume_ +
                                  (sim_.now() - resume_time_).floor_div(slot_)),
               "expiry off the shared clock");
  if (!heap_.empty() && heap_.front().deadline == top.deadline) {
    // Another countdown is due at this same instant — a collision in the
    // making. Its event must sit IN the simulator queue before the handler
    // runs: the scalar engines keep same-instant events pending (their
    // count_after <= 0 rule skips the freeze), and the Medium's burst fast
    // path reads the queue (no_event_before) to decide whether it may
    // resolve a transmission synchronously. Hiding the tie inside this heap
    // would let it conclude the coast is clear.
    event_wall_ = sim_.now();
    expiry_event_ = sim_.schedule_at(event_wall_, [this] { fire(); });
  }
  if (sim::Tracer* tracer = medium_.tracer(); tracer != nullptr) {
    tracer->record(sim_.now(), sim::TraceKind::kBackoffExpired, sim::kNoLink);
  }
  on_expire_(top.link);
  // If the handler started a transmission, our own on_medium_busy froze the
  // clock synchronously (and honours a pending same-instant tie); only an
  // idle clock re-arms toward the next deadline here.
  if (in_interval_ && !frozen_ && !expiry_event_.valid() && !heap_.empty()) arm_event();
}

void SharedBackoffClock::on_medium_busy(TimePoint t) {
  if (!in_interval_ || frozen_) return;
  const auto k = (t - resume_time_).floor_div(slot_);
  // Transmissions start at expiry instants, which sit a whole number of
  // slots past the shared resume — the 802.11 partial-slot discard the
  // scalar engines apply here never has anything to discard.
  RTMAC_ASSERT(resume_time_ + static_cast<int>(k) * slot_ == t,
               "busy edge off the shared slot grid");
  frozen_ = true;
  elapsed_frozen_ = elapsed_at_resume_ + k;
  freeze_time_ = t;
  ++busy_epoch_;
  // Park the domain event at the far-future sentinel — but ONLY when it is
  // strictly in the future. An event due at this very instant is a countdown
  // that reached zero in the same slot as the transmission now starting; the
  // scalar engines let it fire into the collision, and so do we.
  if (expiry_event_.valid() && event_wall_ > t) {
    sim_.reschedule(expiry_event_, sim::Simulator::no_run_limit());
  }
  if (sim::Tracer* tracer = medium_.tracer(); tracer != nullptr) {
    // Per-engine emulation in link order (the order the scalar engines
    // registered as listeners). Countdowns due at this instant are skipped,
    // exactly as the scalar count_after <= 0 rule skips the freeze.
    trace_scratch_.clear();
    for (const Entry& e : heap_) {
      if (e.deadline > elapsed_frozen_) {
        trace_scratch_.push_back({e.link, static_cast<int>(e.deadline - elapsed_frozen_)});
      }
    }
    std::sort(trace_scratch_.begin(), trace_scratch_.end());
    for (const auto& [link, remaining] : trace_scratch_) {
      tracer->record(t, sim::TraceKind::kBackoffFrozen, sim::kNoLink, remaining);
    }
  }
}

void SharedBackoffClock::on_medium_idle(TimePoint t) {
  if (!in_interval_ || !frozen_) return;
  frozen_ = false;
  account_freezes(t);
  if (sim::Tracer* tracer = medium_.tracer(); tracer != nullptr) {
    // Every frozen countdown resumes, in link order; a link that armed live
    // at this instant (the last completion's outcome callback) never froze.
    trace_scratch_.clear();
    for (const Entry& e : heap_) {
      if (e.live && e.arm_epoch == busy_epoch_) continue;
      trace_scratch_.push_back({e.link, static_cast<int>(e.deadline - elapsed_frozen_)});
    }
    std::sort(trace_scratch_.begin(), trace_scratch_.end());
    for (const auto& [link, remaining] : trace_scratch_) {
      tracer->record(t, sim::TraceKind::kBackoffResumed, sim::kNoLink, remaining);
    }
  }
  resequence();
  elapsed_at_resume_ = elapsed_frozen_;
  resume_time_ = t;
  if (!heap_.empty()) arm_event();
}

void SharedBackoffClock::resequence() {
  // Replay the scalar engines' event-queue sequence numbers at a resume:
  // links that armed live at this instant already hold their events (issued
  // in the outcome callbacks, in arm order), then the idle sweep reschedules
  // every frozen engine in listener = link order. Ties between expiries are
  // result-affecting — complete domains draw channel losses from one shared
  // stream in completion order — so this order is exact, not cosmetic.
  const std::uint64_t ep = busy_epoch_;
  std::sort(heap_.begin(), heap_.end(), [ep](const Entry& a, const Entry& b) {
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    const bool la = a.live && a.arm_epoch == ep;
    const bool lb = b.live && b.arm_epoch == ep;
    if (la != lb) return la;
    if (la) return a.seq < b.seq;
    return a.link < b.link;
  });
  // An array sorted by (deadline, seq) is a valid min-heap; assigning fresh
  // ascending seqs in sorted order preserves exactly that.
  for (Entry& e : heap_) e.seq = next_seq_++;
}

void SharedBackoffClock::account_freezes(TimePoint resume_at) {
  // Handles are cached across events and re-resolved only when the Medium's
  // registry changes (parity with BackoffEngine::account_freeze; the scalar
  // DCF/FCSMA engines carry no trace label, so they all share one counter).
  if (obs::MetricsRegistry* m = medium_.metrics(); m != metrics_seen_) {
    metrics_seen_ = m;
    if (m == nullptr) {
      freeze_hist_ = nullptr;
      freeze_ns_ = nullptr;
    } else {
      freeze_hist_ = &m->histogram("mac.backoff_freeze_us", obs::log_bounds(1.0, 65536.0, 2.0));
      freeze_ns_ = &m->counter("mac.freeze_ns");
    }
  }
  if (freeze_hist_ == nullptr) return;
  for (const Entry& e : heap_) {
    if (e.live && e.arm_epoch == busy_epoch_) continue;  // armed idle; never froze
    // A countdown armed DURING the busy period (a non-final completion's
    // outcome callback) has been frozen since its arm instant, not since the
    // busy edge; the scalar engine accounts the same span.
    const TimePoint since = e.arm_time > freeze_time_ ? e.arm_time : freeze_time_;
    const Duration frozen_for = resume_at - since;
    freeze_hist_->observe(frozen_for.us_f());
    freeze_ns_->inc(static_cast<std::uint64_t>(frozen_for.ns()));
  }
}

}  // namespace rtmac::mac
