#include "mac/backoff_engine.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "util/check.hpp"

namespace rtmac::mac {

BackoffEngine::BackoffEngine(sim::Simulator& simulator, phy::Medium& medium, Duration slot,
                             LinkId sense_node)
    : sim_{simulator}, medium_{medium}, slot_{slot}, sense_node_{sense_node} {
  RTMAC_REQUIRE(slot > Duration{});
  medium_.add_listener(this, sense_node_);
}

void BackoffEngine::trace(sim::TraceKind kind, std::int64_t a) {
  if (sim::Tracer* tracer = medium_.tracer(); tracer != nullptr) {
    tracer->record(sim_.now(), kind, trace_link_, a);
  }
}

void BackoffEngine::account_freeze(Duration frozen_for) {
  total_frozen_ += frozen_for;
  // Handles are cached across events and re-resolved only when the Medium's
  // registry changes; detached cost is one pointer compare.
  if (obs::MetricsRegistry* m = medium_.metrics(); m != metrics_seen_) {
    metrics_seen_ = m;
    if (m == nullptr) {
      freeze_hist_ = nullptr;
      freeze_ns_ = nullptr;
    } else {
      // Freezes last one airtime to most of an interval: ~3 us to ~65 ms.
      freeze_hist_ = &m->histogram("mac.backoff_freeze_us", obs::log_bounds(1.0, 65536.0, 2.0));
      freeze_ns_ = &m->counter(trace_link_ == sim::kNoLink
                                   ? std::string{"mac.freeze_ns"}
                                   : obs::link_metric("mac.freeze_ns", trace_link_));
    }
  }
  if (freeze_hist_ != nullptr) {
    freeze_hist_->observe(frozen_for.us_f());
    freeze_ns_->inc(static_cast<std::uint64_t>(frozen_for.ns()));
  }
}

void BackoffEngine::start(int count, ExpiryCallback on_expire) {
  RTMAC_ASSERT(count >= 0);
  stop();
  running_ = true;
  expired_ = false;
  freeze_values_.clear();
  on_expire_ = std::move(on_expire);
  count_ = count;
  trace(sim::TraceKind::kBackoffArmed, count);
  if (medium_.sense_busy(sense_node_)) {
    frozen_ = true;  // begin counting at the next idle transition
    frozen_since_ = sim_.now();
  } else {
    frozen_ = false;
    arm_expiry(sim_.now());
  }
}

void BackoffEngine::stop() {
  if (expiry_event_.valid()) sim_.cancel(expiry_event_);
  expiry_event_ = {};
  running_ = false;
  if (frozen_) account_freeze(sim_.now() - frozen_since_);  // close the open freeze
  frozen_ = false;
  on_expire_ = nullptr;
}

int BackoffEngine::remaining() const {
  if (!running_) return 0;
  if (frozen_) return count_;
  // Live countdown: report the value as of the last completed slot boundary.
  const auto elapsed_slots = (sim_.now() - resume_time_).floor_div(slot_);
  return std::max(0, count_at_resume_ - static_cast<int>(elapsed_slots));
}

bool BackoffEngine::was_frozen_at(int value) const {
  return std::find(freeze_values_.begin(), freeze_values_.end(), value) != freeze_values_.end();
}

void BackoffEngine::arm_expiry(TimePoint resume_at) {
  resume_time_ = resume_at;
  count_at_resume_ = count_;
  const TimePoint expiry_at = resume_at + count_ * slot_;
  // Resuming from a freeze finds the expiry event parked at the far-future
  // sentinel (see on_medium_busy): move it rather than allocate a new one.
  // reschedule() takes a fresh FIFO sequence number, so same-timestamp
  // ordering is exactly what a cancel + fresh schedule_at would produce.
  if (!sim_.reschedule(expiry_event_, expiry_at)) {
    expiry_event_ = sim_.schedule_at(expiry_at, [this] { fire_expiry(); });
  }
}

void BackoffEngine::fire_expiry() {
  expiry_event_ = {};
  running_ = false;
  frozen_ = false;
  count_ = 0;
  expired_ = true;
  trace(sim::TraceKind::kBackoffExpired);
  // Move the callback out: it commonly re-arms this engine.
  auto cb = std::move(on_expire_);
  on_expire_ = nullptr;
  if (cb) cb();
}

void BackoffEngine::on_medium_busy(TimePoint t) {
  if (!running_ || frozen_) return;
  // Charge the countdown for full idle slots completed before the freeze;
  // partial-slot progress is discarded (802.11 semantics).
  const auto elapsed_slots = static_cast<int>((t - resume_time_).floor_div(slot_));
  const int count_after = count_at_resume_ - elapsed_slots;
  if (count_after <= 0) {
    // The busy transition coincides with our own expiry instant: the expiry
    // event is firing at this same timestamp; let it proceed (in CSMA terms,
    // both stations counted down to zero in the same slot and will collide).
    return;
  }
  // Park the expiry event at the far-future sentinel instead of cancelling
  // it: freeze/resume is the hottest churn in contention-heavy cells, and a
  // cancel + re-push per edge costs a tombstone (skimmed or compacted
  // later), a slot recycle, and a rebuilt callback, where two in-place
  // reschedules cost one O(log n) sift each. The parked event can never
  // fire (run horizons are finite) and keeps next_event_time() exact: a
  // frozen engine contributes no activity bound, same as a cancelled one.
  sim_.reschedule(expiry_event_, sim::Simulator::no_run_limit());
  count_ = count_after;
  frozen_ = true;
  frozen_since_ = t;
  freeze_values_.push_back(count_);
  trace(sim::TraceKind::kBackoffFrozen, count_);
}

void BackoffEngine::on_medium_idle(TimePoint t) {
  if (!running_ || !frozen_) return;
  frozen_ = false;
  account_freeze(t - frozen_since_);
  trace(sim::TraceKind::kBackoffResumed, count_);
  arm_expiry(t);
}

}  // namespace rtmac::mac
