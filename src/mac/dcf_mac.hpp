// 802.11 DCF-style exponential-backoff baseline (extension).
//
// Not part of the paper's evaluation, but the paper's motivation cites
// Bianchi's analysis of DCF collision loss; this scheme makes that loss
// directly measurable inside the same harness. Plain CSMA/CA: uniform
// backoff in [0, CW-1], CW doubling from cw_min to cw_max on every failed
// attempt (collision or channel loss), reset to cw_min on success. Debt- and
// deadline-oblivious within an interval except for the standard gap rule.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mac/backoff_engine.hpp"
#include "mac/link_mac.hpp"
#include "util/rng.hpp"

namespace rtmac::mac {

/// Contention-window doubling parameters (802.11a defaults).
struct DcfParams {
  int cw_min = 16;
  int cw_max = 1024;
};

/// Per-link DCF state machine. `id` indexes the Medium (cell-local under
/// sharding); `stream_link` keys the backoff RNG stream and defaults to
/// `id` — a shard cell passes the link's global id so the draw sequence is
/// identical to the unsharded run.
class DcfLinkMac {
 public:
  DcfLinkMac(sim::Simulator& simulator, phy::Medium& medium, DcfParams params,
             Duration data_airtime, Duration slot, LinkId id, std::uint64_t seed,
             LinkId stream_link = kSameAsId);

  /// Sentinel for `stream_link`: use `id`.
  static constexpr LinkId kSameAsId = static_cast<LinkId>(-1);

  DcfLinkMac(const DcfLinkMac&) = delete;
  DcfLinkMac& operator=(const DcfLinkMac&) = delete;

  void begin_interval(IntervalIndex k, int arrivals, TimePoint interval_end);
  int end_interval();

  [[nodiscard]] int current_window() const { return cw_; }

 private:
  void contend();
  void on_backoff_expired();
  void on_tx_done(phy::TxOutcome outcome);

  sim::Simulator& sim_;
  phy::Medium& medium_;
  DcfParams params_;
  Duration data_airtime_;
  LinkId id_;
  Rng rng_;

  TimePoint interval_end_;
  int buffer_ = 0;
  int delivered_ = 0;
  int cw_;
  BackoffEngine backoff_;
};

/// MacScheme gluing N DCF links together.
class DcfScheme final : public MacScheme {
 public:
  DcfScheme(const SchemeContext& ctx, DcfParams params, std::string name);

  void begin_interval(IntervalIndex k, std::span<const int> arrivals,
                      TimePoint interval_end) override;
  void end_interval(std::span<int> delivered) override;
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::vector<std::unique_ptr<DcfLinkMac>> links_;
  std::string name_;
};

}  // namespace rtmac::mac
