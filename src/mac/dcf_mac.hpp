// 802.11 DCF-style exponential-backoff baseline (extension).
//
// Not part of the paper's evaluation, but the paper's motivation cites
// Bianchi's analysis of DCF collision loss; this scheme makes that loss
// directly measurable inside the same harness. Plain CSMA/CA: uniform
// backoff in [0, CW-1], CW doubling from cw_min to cw_max on every failed
// attempt (collision or channel loss), reset to cw_min on success. Debt- and
// deadline-oblivious within an interval except for the standard gap rule.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mac/backoff_engine.hpp"
#include "mac/link_mac.hpp"
#include "mac/shared_backoff_clock.hpp"
#include "util/rng.hpp"

namespace rtmac::mac {

/// Contention-window doubling parameters (802.11a defaults).
struct DcfParams {
  int cw_min = 16;
  int cw_max = 1024;
  /// Forces the per-link BackoffEngine path even on complete-sensing
  /// topologies (equivalence tests; the batch path must be bit-identical).
  bool force_scalar_path = false;
};

/// Per-link DCF state machine. `id` indexes the Medium (cell-local under
/// sharding); `stream_link` keys the backoff RNG stream and defaults to
/// `id` — a shard cell passes the link's global id so the draw sequence is
/// identical to the unsharded run.
class DcfLinkMac {
 public:
  DcfLinkMac(sim::Simulator& simulator, phy::Medium& medium, DcfParams params,
             Duration data_airtime, Duration slot, LinkId id, std::uint64_t seed,
             LinkId stream_link = kSameAsId);

  /// Sentinel for `stream_link`: use `id`.
  static constexpr LinkId kSameAsId = static_cast<LinkId>(-1);

  DcfLinkMac(const DcfLinkMac&) = delete;
  DcfLinkMac& operator=(const DcfLinkMac&) = delete;

  void begin_interval(IntervalIndex k, int arrivals, TimePoint interval_end);
  int end_interval();

  [[nodiscard]] int current_window() const { return cw_; }

 private:
  void contend();
  void on_backoff_expired();
  void on_tx_done(phy::TxOutcome outcome);

  sim::Simulator& sim_;
  phy::Medium& medium_;
  DcfParams params_;
  Duration data_airtime_;
  LinkId id_;
  Rng rng_;

  TimePoint interval_end_;
  int buffer_ = 0;
  int delivered_ = 0;
  int cw_;
  BackoffEngine backoff_;
};

/// MacScheme gluing N DCF links together.
///
/// Two layouts behind one interface:
///   * BATCH (complete-sensing domains, the default there): flat SoA per-link
///     state (window, buffer, RNG stream) plus ONE SharedBackoffClock for the
///     whole domain, replacing N BackoffEngines. Busy/idle edges cost one
///     listener visit instead of N, and the domain holds one pending expiry
///     event instead of N. Draw-for-draw identical to the scalar path (same
///     per-link RNG streams consumed in the same order).
///   * SCALAR (partial sensing, or force_scalar_path): per-link DcfLinkMac
///     machines in ONE contiguous arena block (placement-constructed,
///     destroyed by the scheme) instead of N heap objects: at 10^5+ links the
///     pointer-chasing and per-object malloc overhead of a unique_ptr layout
///     dominated construction and polluted the interval hot loop's cache
///     footprint.
class DcfScheme final : public MacScheme {
 public:
  DcfScheme(const SchemeContext& ctx, DcfParams params, std::string name);
  ~DcfScheme() override;

  void begin_interval(IntervalIndex k, std::span<const int> arrivals,
                      TimePoint interval_end) override;
  void end_interval(std::span<int> delivered) override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::size_t pending_events_per_link() const override {
    return clock_ != nullptr ? 1 : 6;
  }

  /// True when this instance runs the shared-clock batch path.
  [[nodiscard]] bool batch_path() const { return clock_ != nullptr; }

 private:
  void contend(LinkId n);
  void on_backoff_expired(LinkId n);
  void on_tx_done(LinkId n, phy::TxOutcome outcome);

  sim::Simulator& sim_;
  phy::Medium& medium_;
  DcfParams params_;
  Duration data_airtime_;

  // Scalar layout.
  DcfLinkMac* links_ = nullptr;  ///< contiguous block of num_links_ machines
  std::size_t num_links_ = 0;
  std::unique_ptr<util::Arena> own_arena_;  ///< fallback when ctx.arena is null

  // Batch layout (SoA, indexed by local link id).
  std::unique_ptr<SharedBackoffClock> clock_;
  std::vector<Rng> rng_;
  std::vector<int> cw_;
  std::vector<int> buffer_;
  std::vector<int> delivered_;
  TimePoint interval_end_;

  std::string name_;
};

}  // namespace rtmac::mac
