// The Decentralized Priority (DP) protocol — the paper's Algorithm 2.
//
// Each link holds a unique priority index sigma_n(k) in {1..N} and derives a
// collision-free backoff count from it (eq. 6). One adjacent pair of
// priorities {C(k), C(k)+1} is drawn per interval from a seed shared by all
// devices; the two candidate links toss biased coins xi_n (eq. 5) and detect
// each other's intent purely through carrier sensing at backoff value 1
// (eqs. 7-8), swapping priorities for the next interval when both agree.
// Candidates with no arrivals transmit a short "empty packet" so the swap
// can always be confirmed on the air; confirmed or not, the whole interval
// carries no collisions because backoff counts are unique.
//
// The per-interval protocol math lives in DpBatchKernel (mac/dp_batch_kernel
// .hpp) as flat SoA passes shared by two execution paths:
//   * batch (default under complete sensing): one shared backoff clock
//     (DpBatchBackoff) drives all links' DpLinkAir transmission machines —
//     the allocation-free hot path;
//   * scalar reference (partial sensing, or force_scalar_path): one
//     DpLinkMac per link, each with its own BackoffEngine listening on its
//     own sense view — the faithful per-device state machine the batch path
//     is tested bit-identical against.
// DpScheme wires either path to the shared Medium and implements the
// MacScheme contract.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/permutation.hpp"
#include "core/types.hpp"
#include "mac/backoff_engine.hpp"
#include "mac/dp_batch_kernel.hpp"
#include "mac/link_mac.hpp"
#include "mac/priority_provider.hpp"
#include "mac/reliability_estimator.hpp"
#include "phy/medium.hpp"
#include "phy/phy_params.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace rtmac::mac {

/// Static configuration of one DP link.
struct DpLinkParams {
  Duration data_airtime;
  Duration empty_airtime;
  Duration backoff_slot;
  /// When false, Step 1-5 reordering is disabled entirely: priorities stay
  /// fixed forever (the Fig. 6 "fixed priority ordering" experiment).
  bool reordering = true;
  /// Remark 6: number of disjoint candidate pairs drawn per interval.
  /// 1 is the base protocol of Algorithm 2; larger values trade a slightly
  /// larger worst-case backoff (up to ~N + 2*pairs slots) for faster
  /// convergence of the priority chain.
  int max_swap_pairs = 1;
  /// Debug/testing: run the per-link scalar reference path even where the
  /// batch path applies (complete sensing). The equivalence tests assert
  /// both paths produce bit-identical results.
  bool force_scalar_path = false;
};

/// The transmission half of one DP link: buffer, gap rule (Remark 4),
/// priority-claim empties, retransmit-until-deadline. Driven by a backoff
/// clock (shared or per-link) through on_slot_won(); knows nothing about
/// priorities or coins.
class DpLinkAir {
 public:
  /// `estimator`, when non-null, receives the outcome of every clean data
  /// transmission this link makes (the "learning p_n" mode of Section II-A).
  /// `allow_burst` opts this machine into the Medium burst fast path (one
  /// event per back-to-back chain instead of one per packet); only the batch
  /// execution path enables it, so the scalar reference path keeps the
  /// per-event machinery the burst is tested bit-identical against.
  DpLinkAir(sim::Simulator& simulator, phy::Medium& medium, const DpLinkParams& params,
            LinkId id, ReliabilityEstimator* estimator, bool allow_burst = false);

  /// Resets per-interval state. `is_candidate` enables the Step 2 empty
  /// priority-claim behaviour for this interval.
  void begin(int arrivals, TimePoint interval_end, bool is_candidate);

  /// The link's backoff window elapsed: attempt the first transmission.
  void on_slot_won();

  /// Step 7 deadline flush; returns this interval's on-time deliveries.
  int finish();

  /// True iff this link has anything to put on the air this interval (data
  /// or a pending priority claim) — i.e. its backoff expiry can matter.
  [[nodiscard]] bool armed() const { return buffer_ > 0 || empty_claim_pending_; }

  /// True iff the at-expiry claim actually aired (first transmission began).
  [[nodiscard]] bool aired() const { return first_tx_started_; }

  /// Number of transmissions (data + empty) started this interval (R_n).
  [[nodiscard]] int transmissions_started() const { return tx_started_; }

  [[nodiscard]] LinkId id() const { return id_; }

 private:
  void try_transmit();
  void run_burst();
  void on_tx_done(phy::PacketKind kind, phy::TxOutcome outcome);

  sim::Simulator& sim_;
  phy::Medium& medium_;
  DpLinkParams params_;
  LinkId id_;
  ReliabilityEstimator* estimator_;  ///< optional, not owned
  bool allow_burst_ = false;

  // Per-interval state.
  TimePoint interval_end_;
  int buffer_ = 0;  ///< undelivered data packets
  bool is_candidate_ = false;
  bool empty_claim_pending_ = false;
  int delivered_ = 0;
  int tx_started_ = 0;
  bool first_tx_started_ = false;  ///< the at-expiry claim actually aired
};

/// Scalar reference path: one link's air machine plus its own BackoffEngine
/// (listening on the link's own sense view, so it also models partial
/// sensing / hidden terminals). The priority math stays in DpBatchKernel.
class DpLinkMac {
 public:
  /// `id` indexes the Medium (cell-local under sharding); `trace_link` is
  /// the label used for traces and freeze metrics and defaults to `id` — a
  /// shard cell passes the link's global id so merged metrics line up with
  /// the unsharded run.
  DpLinkMac(sim::Simulator& simulator, phy::Medium& medium, const DpLinkParams& params,
            LinkId id, ReliabilityEstimator* estimator = nullptr,
            LinkId trace_link = kSameAsId);

  /// Sentinel for `trace_link`: use `id`.
  static constexpr LinkId kSameAsId = static_cast<LinkId>(-1);

  DpLinkMac(const DpLinkMac&) = delete;
  DpLinkMac& operator=(const DpLinkMac&) = delete;

  /// Arms the engine for interval k with the kernel-computed window.
  void begin_interval(int arrivals, TimePoint interval_end, bool is_candidate,
                      int backoff_count);

  void stop_backoff() { backoff_.stop(); }
  [[nodiscard]] bool frozen_at_one() const { return backoff_.was_frozen_at(1); }
  /// Upper-candidate swap evidence: countdown expired AND the claim aired.
  [[nodiscard]] bool claim_aired() const { return backoff_.expired() && air_.aired(); }
  int finish() { return air_.finish(); }
  [[nodiscard]] const DpLinkAir& air() const { return air_; }

 private:
  DpLinkAir air_;
  BackoffEngine backoff_;
};

/// MacScheme gluing the kernel, the backoff clock(s), and N air machines
/// together. The per-link pieces never talk to each other; the scheme only
/// fans out interval boundaries (which in a real deployment come from the
/// devices' own synchronized clocks) and aggregates statistics.
class DpScheme final : public MacScheme {
 public:
  /// The scheme owns its coin-bias provider. Initial priorities are the
  /// identity permutation unless `initial` is given. `estimator`, when
  /// non-null, must live inside `provider` (e.g. EstimatedMuProvider) or
  /// otherwise outlive the scheme; every link reports its clean data
  /// transmission outcomes to it.
  DpScheme(const SchemeContext& ctx, std::unique_ptr<PriorityProvider> provider,
           DpLinkParams params, std::string name,
           std::optional<core::Permutation> initial = std::nullopt,
           ReliabilityEstimator* estimator = nullptr);

  void begin_interval(IntervalIndex k, std::span<const int> arrivals,
                      TimePoint interval_end) override;
  void end_interval(std::span<int> delivered) override;
  [[nodiscard]] std::string name() const override { return name_; }

  /// Current priority assignment (valid between intervals). Debug/analysis.
  [[nodiscard]] core::Permutation priorities() const;

  /// Raw per-link priority indices without the bijection check (diagnostics).
  [[nodiscard]] std::vector<PriorityIndex> priority_vector() const;

  /// The SoA per-interval state (observability reads priorities / backoff
  /// windows straight from the arrays).
  [[nodiscard]] const DpBatchKernel& kernel() const { return kernel_; }

  /// True when this scheme runs the shared-clock batch path.
  [[nodiscard]] bool batch_path() const { return batch_; }

  [[nodiscard]] std::size_t pending_events_per_link() const override {
    return batch_ ? 1 : 6;
  }

 private:
  void on_slot_won(LinkId n);

  sim::Simulator& sim_;
  phy::Medium& medium_;
  // Declaration order matters: kernel_ dereferences provider_.
  std::unique_ptr<PriorityProvider> provider_;
  DpBatchKernel kernel_;
  std::string name_;
  /// Swap decisions compose into a permutation only when every device hears
  /// every transmission; under partial sensing the consistency invariant is
  /// expected to break (hidden terminals), so the debug check is gated.
  bool sensing_complete_ = true;
  bool batch_ = true;

  // Batch path: shared clock + flat air machines.
  std::vector<DpLinkAir> airs_;
  std::unique_ptr<DpBatchBackoff> batch_backoff_;
  std::vector<std::uint8_t> armed_scratch_;

  // Scalar reference path: per-link engines on per-node sense views.
  std::vector<std::unique_ptr<DpLinkMac>> links_;
};

}  // namespace rtmac::mac
