// The Decentralized Priority (DP) protocol — the paper's Algorithm 2.
//
// Each link holds a unique priority index sigma_n(k) in {1..N} and derives a
// collision-free backoff count from it (eq. 6). One adjacent pair of
// priorities {C(k), C(k)+1} is drawn per interval from a seed shared by all
// devices; the two candidate links toss biased coins xi_n (eq. 5) and detect
// each other's intent purely through carrier sensing at backoff value 1
// (eqs. 7-8), swapping priorities for the next interval when both agree.
// Candidates with no arrivals transmit a short "empty packet" so the swap
// can always be confirmed on the air; confirmed or not, the whole interval
// carries no collisions because backoff counts are unique.
//
// DpLinkMac is the per-link state machine; DpScheme wires N of them to the
// shared Medium and implements the MacScheme contract.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/permutation.hpp"
#include "core/types.hpp"
#include "mac/backoff_engine.hpp"
#include "mac/link_mac.hpp"
#include "mac/priority_provider.hpp"
#include "mac/reliability_estimator.hpp"
#include "phy/medium.hpp"
#include "phy/phy_params.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace rtmac::mac {

/// The common random seed of Algorithm 2 Step 1. All devices hold the same
/// seed (obtained e.g. from coarse time synchronization) and derive the same
/// candidate pair(s) for every interval without exchanging messages.
class SharedSeed {
 public:
  explicit SharedSeed(std::uint64_t seed) : seed_{seed} {}

  /// C(k): uniform on {1..N-1}, identical at every device.
  /// Precondition: num_links >= 2.
  [[nodiscard]] PriorityIndex candidate(IntervalIndex k, std::size_t num_links) const {
    return static_cast<PriorityIndex>(
        1 + mix64(seed_, k) % static_cast<std::uint64_t>(num_links - 1));
  }

  /// Remark 6 generalization: up to `max_pairs` NON-CONSECUTIVE integers
  /// from {1..N-1}, sorted ascending — each value m marks the disjoint
  /// candidate pair (m, m+1). max_pairs == 1 reduces to {candidate(k, N)}.
  /// Every device derives the identical set from (seed, k) alone.
  [[nodiscard]] std::vector<PriorityIndex> candidate_set(IntervalIndex k,
                                                         std::size_t num_links,
                                                         int max_pairs) const;

 private:
  std::uint64_t seed_;
};

/// Pure backoff assignment of eq. (6), generalized per Remark 6.
///
/// `sigma` is the link's priority, `pairs` the sorted disjoint candidate
/// anchors for the interval, `xi` the link's coin (+1/-1; ignored for
/// bystanders). Exposed as a free function so the collision-freedom
/// invariant — distinct links always receive distinct counts, whatever the
/// coins — can be tested exhaustively, independent of the event engine.
/// Returns the backoff slot count (>= 0).
[[nodiscard]] int dp_backoff_count(PriorityIndex sigma,
                                   const std::vector<PriorityIndex>& pairs, int xi);

/// True iff `sigma` belongs to one of the candidate pairs; when it does,
/// `*is_lower` (if non-null) reports whether it is the pair's lower index.
[[nodiscard]] bool dp_is_candidate(PriorityIndex sigma,
                                   const std::vector<PriorityIndex>& pairs,
                                   bool* is_lower = nullptr);

/// Static configuration of one DP link.
struct DpLinkParams {
  Duration data_airtime;
  Duration empty_airtime;
  Duration backoff_slot;
  /// When false, Step 1-5 reordering is disabled entirely: priorities stay
  /// fixed forever (the Fig. 6 "fixed priority ordering" experiment).
  bool reordering = true;
  /// Remark 6: number of disjoint candidate pairs drawn per interval.
  /// 1 is the base protocol of Algorithm 2; larger values trade a slightly
  /// larger worst-case backoff (up to ~N + 2*pairs slots) for faster
  /// convergence of the priority chain.
  int max_swap_pairs = 1;
};

/// Per-link protocol state machine. Knows only: its own priority, its own
/// debt-driven coin bias (via PriorityProvider), the shared seed, and the
/// busy/idle state of the medium — nothing about other links.
class DpLinkMac {
 public:
  /// `estimator`, when non-null, receives the outcome of every clean data
  /// transmission this link makes (the "learning p_n" mode of Section II-A).
  DpLinkMac(sim::Simulator& simulator, phy::Medium& medium, const SharedSeed& shared_seed,
            const PriorityProvider& provider, DpLinkParams params, LinkId id,
            std::size_t num_links, PriorityIndex initial_priority, std::uint64_t seed,
            ReliabilityEstimator* estimator = nullptr);

  DpLinkMac(const DpLinkMac&) = delete;
  DpLinkMac& operator=(const DpLinkMac&) = delete;

  /// Algorithm 2 steps 1-4 for interval k; arms the backoff engine.
  void begin_interval(IntervalIndex k, int arrivals, TimePoint interval_end);

  /// Steps 5 and 7: resolves the priority update from the carrier-sense
  /// record, flushes the buffer, returns this interval's deliveries.
  int end_interval();

  [[nodiscard]] LinkId id() const { return id_; }
  [[nodiscard]] PriorityIndex priority() const { return sigma_; }
  /// Number of transmissions (data + empty) started this interval (R_n).
  [[nodiscard]] int transmissions_started() const { return tx_started_; }

 private:
  void on_backoff_expired();
  void try_transmit();
  void on_tx_done(phy::PacketKind kind, phy::TxOutcome outcome);

  sim::Simulator& sim_;
  phy::Medium& medium_;
  const SharedSeed& shared_seed_;
  const PriorityProvider& provider_;
  ReliabilityEstimator* estimator_;  ///< optional, not owned
  DpLinkParams params_;
  LinkId id_;
  std::size_t num_links_;
  Rng coin_rng_;

  PriorityIndex sigma_;  ///< priority carried into the current interval

  // Per-interval state.
  TimePoint interval_end_;
  int buffer_ = 0;               ///< undelivered data packets
  bool empty_claim_pending_ = false;
  int delivered_ = 0;
  int tx_started_ = 0;
  bool first_tx_started_ = false;  ///< the at-expiry claim actually aired
  enum class Role : std::uint8_t { kBystander, kLower, kUpper };
  Role role_ = Role::kBystander;  ///< kLower = priority C(k), kUpper = C(k)+1
  int xi_ = 0;                    ///< coin outcome, +1 or -1 (candidates only)
  BackoffEngine backoff_;
};

/// MacScheme gluing N DpLinkMacs together. The per-link objects never talk
/// to each other; the scheme only fans out interval boundaries (which in a
/// real deployment come from the devices' own synchronized clocks) and
/// aggregates statistics.
class DpScheme final : public MacScheme {
 public:
  /// The scheme owns its coin-bias provider. Initial priorities are the
  /// identity permutation unless `initial` is given. `estimator`, when
  /// non-null, must live inside `provider` (e.g. EstimatedMuProvider) or
  /// otherwise outlive the scheme; every link reports its clean data
  /// transmission outcomes to it.
  DpScheme(const SchemeContext& ctx, std::unique_ptr<PriorityProvider> provider,
           DpLinkParams params, std::string name,
           std::optional<core::Permutation> initial = std::nullopt,
           ReliabilityEstimator* estimator = nullptr);

  void begin_interval(IntervalIndex k, const std::vector<int>& arrivals,
                      TimePoint interval_end) override;
  std::vector<int> end_interval() override;
  [[nodiscard]] std::string name() const override { return name_; }

  /// Current priority assignment (valid between intervals). Debug/analysis.
  [[nodiscard]] core::Permutation priorities() const;

  /// Raw per-link priority indices without the bijection check (diagnostics).
  [[nodiscard]] std::vector<PriorityIndex> priority_vector() const;

 private:
  // Declaration order matters: links_ hold references to both members below.
  SharedSeed shared_seed_;
  std::unique_ptr<PriorityProvider> provider_;
  std::vector<std::unique_ptr<DpLinkMac>> links_;
  std::string name_;
  /// Swap decisions compose into a permutation only when every device hears
  /// every transmission; under partial sensing the consistency invariant is
  /// expected to break (hidden terminals), so the debug check is gated.
  bool sensing_complete_ = true;
};

}  // namespace rtmac::mac
