// Batch SoA kernel for the DP protocol's per-interval passes.
//
// The paper's Algorithm 2 does all of its per-interval work — candidate-pair
// draw, biased coins, backoff-window computation, swap resolution —
// independently per link. The scalar implementation mirrors that as N
// per-link state machines (DpLinkMac), which is faithful but costs virtual
// dispatch, pointer chasing, and N backoff event streams per interval.
//
// This header factors the per-interval math into flat structure-of-arrays
// passes over all links of one collision domain:
//
//   * DpBatchKernel — SoA arrays (priorities, roles, coins, backoff windows)
//     plus the flat passes that fill them (plan_interval) and fold the
//     carrier-sense record back into priorities (resolve_swap). Owns no
//     event-engine state, so it is directly testable against the per-link
//     formulas.
//   * DpBatchBackoff — one shared backoff clock replacing N BackoffEngines.
//     Under complete sensing every DP countdown freezes and resumes at the
//     same instants, so the N engines are one elapsed-slot counter plus the
//     next-expiry schedule over the (unique) per-link windows.
//
// All buffers are pre-sized at construction; the steady-state interval path
// performs no heap allocation (CI gates BM_DbdpIntervalAllocs at 0).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "mac/priority_provider.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "util/inplace_function.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace rtmac::mac {

/// The common random seed of Algorithm 2 Step 1. All devices hold the same
/// seed (obtained e.g. from coarse time synchronization) and derive the same
/// candidate pair(s) for every interval without exchanging messages.
class SharedSeed {
 public:
  explicit SharedSeed(std::uint64_t seed) : seed_{seed} {}

  /// C(k): uniform on {1..N-1}, identical at every device.
  /// Precondition: num_links >= 2.
  [[nodiscard]] PriorityIndex candidate(IntervalIndex k, std::size_t num_links) const {
    return static_cast<PriorityIndex>(
        1 + mix64(seed_, k) % static_cast<std::uint64_t>(num_links - 1));
  }

  /// Remark 6 generalization: up to `max_pairs` NON-CONSECUTIVE integers
  /// from {1..N-1}, sorted ascending — each value m marks the disjoint
  /// candidate pair (m, m+1). max_pairs == 1 reduces to {candidate(k, N)}.
  /// Every device derives the identical set from (seed, k) alone.
  /// Writes into `out` using `anchors_scratch` as working storage; neither
  /// allocates once grown to capacity (the batch hot path reuses both).
  void candidate_set_into(IntervalIndex k, std::size_t num_links, int max_pairs,
                          std::vector<PriorityIndex>& anchors_scratch,
                          std::vector<PriorityIndex>& out) const;

  /// Allocating convenience wrapper around candidate_set_into (tests,
  /// analysis tooling).
  [[nodiscard]] std::vector<PriorityIndex> candidate_set(IntervalIndex k,
                                                         std::size_t num_links,
                                                         int max_pairs) const;

 private:
  std::uint64_t seed_;
};

/// Pure backoff assignment of eq. (6), generalized per Remark 6.
///
/// `sigma` is the link's priority, `pairs` the sorted disjoint candidate
/// anchors for the interval, `xi` the link's coin (+1/-1; ignored for
/// bystanders). Exposed as a free function so the collision-freedom
/// invariant — distinct links always receive distinct counts, whatever the
/// coins — can be tested exhaustively, independent of the event engine.
/// Returns the backoff slot count (>= 0).
[[nodiscard]] int dp_backoff_count(PriorityIndex sigma, std::span<const PriorityIndex> pairs,
                                   int xi);

/// True iff `sigma` belongs to one of the candidate pairs; when it does,
/// `*is_lower` (if non-null) reports whether it is the pair's lower index.
[[nodiscard]] bool dp_is_candidate(PriorityIndex sigma, std::span<const PriorityIndex> pairs,
                                   bool* is_lower = nullptr);

/// SoA per-interval state for all links of one collision domain, plus the
/// flat passes that compute it. The kernel holds only protocol math — no
/// event-engine or transmission state — so both the batch path and the
/// scalar reference path (DpLinkMac) drive it and stay bit-identical.
class DpBatchKernel {
 public:
  enum class Role : std::uint8_t { kBystander = 0, kLower = 1, kUpper = 2 };

  /// `initial_priorities[n]` is link n's sigma in {1..P} where P is the
  /// priority space (defaults to num_links, in which case the priorities
  /// must form a permutation of {1..N}). `provider` must outlive the kernel.
  /// Per-link coin streams are derived from `seed` exactly as the scalar
  /// path does, so batch and scalar draws coincide.
  ///
  /// Sharding: a cell kernel holds only its own links but their priorities
  /// live in the GLOBAL space — pass `priority_space` = total links so the
  /// shared candidate draw and backoff formulas match the unsharded run,
  /// and `stream_ids[n]` = link n's global id so coin streams match too
  /// (empty span = identity, the unsharded default).
  DpBatchKernel(std::size_t num_links, SharedSeed shared_seed, const PriorityProvider& provider,
                bool reordering, int max_pairs,
                std::span<const PriorityIndex> initial_priorities, std::uint64_t seed,
                std::size_t priority_space = 0, std::span<const LinkId> stream_ids = {});

  /// Algorithm 2 Steps 1, 3, 4 as one flat pass: draws the shared candidate
  /// set, assigns roles, tosses the candidates' coins (from per-link streams,
  /// in link order), and fills every backoff window. Allocation-free after
  /// construction.
  void plan_interval(IntervalIndex k);

  /// Step 5 (eqs. 7-8) for link n, from its carrier-sense record:
  /// `frozen_at_one` = the channel turned busy while n's remaining count was
  /// exactly 1; `claim_aired` = n's countdown expired and its at-expiry claim
  /// actually went on the air. Applies the swap to the priority array and
  /// returns the priority delta (+1 down, -1 up, 0 none).
  int resolve_swap(LinkId n, bool frozen_at_one, bool claim_aired);

  /// Debug check: priorities still form a permutation of {1..N}. Only
  /// meaningful under complete sensing (hidden terminals may legitimately
  /// commit one-sided swaps). Allocation-free after first use.
  void validate_permutation();

  [[nodiscard]] std::size_t num_links() const { return sigma_.size(); }
  /// Size of the priority space the sigmas live in (== num_links unless
  /// this kernel is a shard cell of a larger domain).
  [[nodiscard]] std::size_t priority_space() const { return priority_space_; }
  [[nodiscard]] PriorityIndex priority(LinkId n) const { return sigma_[n]; }
  [[nodiscard]] Role role(LinkId n) const { return static_cast<Role>(role_[n]); }
  [[nodiscard]] bool is_candidate(LinkId n) const {
    return role_[n] != static_cast<std::uint8_t>(Role::kBystander);
  }
  /// Coin outcome of the current interval: +1 or -1 for candidates, 0 else.
  [[nodiscard]] int coin(LinkId n) const { return xi_[n]; }
  [[nodiscard]] int backoff_count(LinkId n) const { return beta_[n]; }

  // SoA views (valid until the next plan_interval / resolve_swap).
  [[nodiscard]] std::span<const PriorityIndex> priority_span() const { return sigma_; }
  [[nodiscard]] std::span<const int> backoff_counts() const { return beta_; }
  [[nodiscard]] std::span<const PriorityIndex> candidate_pairs() const { return pairs_; }

 private:
  SharedSeed shared_seed_;
  const PriorityProvider& provider_;
  bool reordering_;
  int max_pairs_;
  std::size_t priority_space_;
  std::vector<Rng> coin_rng_;  ///< one stream per link, same derivation as scalar

  // SoA per-interval state, indexed by LinkId.
  std::vector<PriorityIndex> sigma_;  ///< priority carried into the interval
  std::vector<std::uint8_t> role_;    ///< Role, stored flat
  std::vector<std::int8_t> xi_;       ///< coin outcome (candidates only)
  std::vector<int> beta_;             ///< backoff window (slots)

  std::vector<PriorityIndex> pairs_;            ///< this interval's candidate anchors
  std::vector<PriorityIndex> anchors_scratch_;  ///< candidate_set_into working set
  std::vector<std::uint8_t> perm_scratch_;      ///< validate_permutation working set
};

/// One shared backoff clock for all DP links of a complete-sensing collision
/// domain, replacing N BackoffEngines.
///
/// Correctness rests on two DP invariants: (a) under complete sensing every
/// engine freezes and resumes at the same instants, so all countdowns share
/// one elapsed-slot counter; (b) backoff windows are unique per interval, so
/// at most one expiry is due at a time and a single pending event (the next
/// window to elapse) suffices. Freeze records become one shared log of
/// elapsed-slot values: link n "froze at remaining count c" iff some logged
/// elapsed value e satisfies beta_n - e == c.
///
/// Registers itself as a global-view Medium listener at construction; must
/// outlive the run (same contract as BackoffEngine).
class DpBatchBackoff final : public phy::MediumListener {
 public:
  /// Fired through the event queue when a link's window elapses; inline-
  /// stored so re-arming never allocates.
  using ExpiryHandler = util::InplaceFunction<void(LinkId)>;

  /// `freeze_capacity_hint` pre-sizes the shared freeze log (at most one
  /// freeze per transmission, bounded by interval_length / min_airtime).
  DpBatchBackoff(sim::Simulator& simulator, phy::Medium& medium, Duration slot,
                 std::size_t num_links, std::size_t freeze_capacity_hint,
                 ExpiryHandler on_expire);

  DpBatchBackoff(const DpBatchBackoff&) = delete;
  DpBatchBackoff& operator=(const DpBatchBackoff&) = delete;

  /// Arms the shared clock for a new interval. `betas[n]` is link n's
  /// window; links with `armed[n] == 0` have nothing to send and are
  /// excluded from the expiry schedule unless `include_unarmed` is set
  /// (tracing mode: the scalar path fires — and traces — their expiries
  /// too, so parity requires scheduling them).
  void begin_interval(TimePoint now, std::span<const int> betas,
                      std::span<const std::uint8_t> armed, bool include_unarmed);

  /// Disarms at the interval boundary; the freeze log survives until the
  /// next begin_interval (end-of-interval swap resolution reads it).
  void stop();

  /// True iff, since the last begin_interval, the medium turned busy while
  /// a window of `beta` slots had exactly `remaining` slots left.
  [[nodiscard]] bool frozen_with_remaining(int beta, int remaining) const;

  /// Whole slots elapsed on the shared clock (diagnostics).
  [[nodiscard]] int elapsed_slots() const;

  // phy::MediumListener:
  void on_medium_busy(TimePoint t) override;
  void on_medium_idle(TimePoint t) override;

 private:
  /// Empty-bucket sentinel for the counting sort.
  static constexpr LinkId kNoLink = static_cast<LinkId>(-1);

  void schedule_next();
  void fire();
  void account_freezes(TimePoint resume_at);

  sim::Simulator& sim_;
  phy::Medium& medium_;
  Duration slot_;
  std::size_t num_links_;
  ExpiryHandler on_expire_;

  std::vector<int> betas_;      ///< per-link windows for the current interval
  std::vector<LinkId> order_;   ///< scheduled links, ascending by window
  std::vector<LinkId> bucket_;  ///< counting-sort scratch, indexed by window
  std::size_t next_ = 0;        ///< index into order_ of the next expiry
  std::vector<int> freeze_log_; ///< shared elapsed-slot value at each freeze

  bool in_interval_ = false;
  bool frozen_ = false;
  int elapsed_at_resume_ = 0;   ///< whole slots elapsed when last resumed
  int elapsed_frozen_ = 0;      ///< elapsed count captured at the freeze
  TimePoint resume_time_;       ///< when the shared clock last (re)started
  TimePoint freeze_time_;       ///< when the current freeze began
  sim::EventId expiry_event_;

  // Cached metric handles, re-resolved when the Medium's registry changes
  // (parity with BackoffEngine's per-link freeze accounting).
  obs::MetricsRegistry* metrics_seen_ = nullptr;
  obs::Histogram* freeze_hist_ = nullptr;
  std::vector<obs::Counter*> freeze_ns_;
};

}  // namespace rtmac::mac
