#include "mac/dcf_mac.hpp"

#include <algorithm>
#include <new>

#include "util/check.hpp"

namespace rtmac::mac {

DcfLinkMac::DcfLinkMac(sim::Simulator& simulator, phy::Medium& medium, DcfParams params,
                       Duration data_airtime, Duration slot, LinkId id, std::uint64_t seed,
                       LinkId stream_link)
    : sim_{simulator},
      medium_{medium},
      params_{params},
      data_airtime_{data_airtime},
      id_{id},
      rng_{seed, /*stream_id=*/0xDCF00000000ULL + (stream_link == kSameAsId ? id : stream_link)},
      cw_{params.cw_min},
      backoff_{simulator, medium, slot, id} {
  RTMAC_REQUIRE(params.cw_min >= 1 && params.cw_max >= params.cw_min);
}

void DcfLinkMac::begin_interval(IntervalIndex, int arrivals, TimePoint interval_end) {
  interval_end_ = interval_end;
  buffer_ = arrivals;
  delivered_ = 0;
  if (buffer_ > 0) contend();
}

void DcfLinkMac::contend() {
  const int draw = static_cast<int>(rng_.uniform_int(0, cw_ - 1));
  backoff_.start(draw, [this] { on_backoff_expired(); });
}

void DcfLinkMac::on_backoff_expired() {
  if (sim_.now() + data_airtime_ > interval_end_) return;
  medium_.start_transmission(id_, data_airtime_, phy::PacketKind::kData,
                             [this](phy::TxOutcome o) { on_tx_done(o); });
}

void DcfLinkMac::on_tx_done(phy::TxOutcome outcome) {
  if (outcome == phy::TxOutcome::kDelivered) {
    --buffer_;
    ++delivered_;
    cw_ = params_.cw_min;  // success resets the window
  } else {
    cw_ = std::min(cw_ * 2, params_.cw_max);  // binary exponential backoff
  }
  if (buffer_ > 0) contend();
}

int DcfLinkMac::end_interval() {
  backoff_.stop();
  buffer_ = 0;
  return delivered_;
}

DcfScheme::DcfScheme(const SchemeContext& ctx, DcfParams params, std::string name)
    : sim_{ctx.simulator},
      medium_{ctx.medium},
      params_{params},
      data_airtime_{ctx.phy.data_airtime},
      name_{std::move(name)} {
  RTMAC_REQUIRE(params.cw_min >= 1 && params.cw_max >= params.cw_min);
  if (ctx.medium.topology().complete_sensing() && !params.force_scalar_path) {
    // Batch path: one shared backoff clock for the whole collision domain,
    // SoA per-link state. Streams and draw order match the scalar machines.
    clock_ = std::make_unique<SharedBackoffClock>(
        ctx.simulator, ctx.medium, ctx.phy.backoff_slot, ctx.num_links,
        [this](LinkId n) { on_backoff_expired(n); });
    rng_.reserve(ctx.num_links);
    for (LinkId n = 0; n < ctx.num_links; ++n) {
      rng_.emplace_back(ctx.seed, /*stream_id=*/0xDCF00000000ULL + ctx.global_id(n));
    }
    cw_.assign(ctx.num_links, params.cw_min);
    buffer_.assign(ctx.num_links, 0);
    delivered_.assign(ctx.num_links, 0);
    num_links_ = ctx.num_links;
    return;
  }
  util::Arena* arena = ctx.arena;
  if (arena == nullptr) {
    own_arena_ = std::make_unique<util::Arena>();
    arena = own_arena_.get();
  }
  // DcfLinkMac is not trivially destructible (the BackoffEngine holds a
  // freeze-record vector), so the block is raw arena bytes with manual
  // placement construction; the destructor tears the machines down.
  links_ = static_cast<DcfLinkMac*>(
      arena->allocate(ctx.num_links * sizeof(DcfLinkMac), alignof(DcfLinkMac)));
  num_links_ = 0;
  for (LinkId n = 0; n < ctx.num_links; ++n) {
    new (links_ + n) DcfLinkMac(ctx.simulator, ctx.medium, params, ctx.phy.data_airtime,
                                ctx.phy.backoff_slot, n, ctx.seed, ctx.global_id(n));
    ++num_links_;
  }
}

DcfScheme::~DcfScheme() {
  if (links_ == nullptr) return;
  for (std::size_t n = num_links_; n > 0; --n) links_[n - 1].~DcfLinkMac();
}

std::size_t DcfScheme::memory_bytes() const {
  if (clock_ == nullptr) return num_links_ * sizeof(DcfLinkMac);
  return rng_.capacity() * sizeof(Rng) +
         (cw_.capacity() + buffer_.capacity() + delivered_.capacity()) * sizeof(int) +
         clock_->memory_bytes();
}

void DcfScheme::contend(LinkId n) {
  const int draw = static_cast<int>(rng_[n].uniform_int(0, cw_[n] - 1));
  clock_->arm(n, draw);
}

void DcfScheme::on_backoff_expired(LinkId n) {
  if (sim_.now() + data_airtime_ > interval_end_) return;
  medium_.start_transmission(n, data_airtime_, phy::PacketKind::kData,
                             [this, n](phy::TxOutcome o) { on_tx_done(n, o); });
}

void DcfScheme::on_tx_done(LinkId n, phy::TxOutcome outcome) {
  if (outcome == phy::TxOutcome::kDelivered) {
    --buffer_[n];
    ++delivered_[n];
    cw_[n] = params_.cw_min;  // success resets the window
  } else {
    cw_[n] = std::min(cw_[n] * 2, params_.cw_max);  // binary exponential backoff
  }
  if (buffer_[n] > 0) contend(n);
}

void DcfScheme::begin_interval(IntervalIndex k, std::span<const int> arrivals,
                               TimePoint interval_end) {
  RTMAC_REQUIRE(arrivals.size() == num_links_);
  if (clock_ == nullptr) {
    for (std::size_t n = 0; n < num_links_; ++n) {
      links_[n].begin_interval(k, arrivals[n], interval_end);
    }
    return;
  }
  interval_end_ = interval_end;
  clock_->begin_interval(sim_.now());
  for (LinkId n = 0; n < num_links_; ++n) {
    buffer_[n] = arrivals[n];
    delivered_[n] = 0;
    if (buffer_[n] > 0) contend(n);
  }
  clock_->finish_arming();
}

void DcfScheme::end_interval(std::span<int> delivered) {
  RTMAC_REQUIRE(delivered.size() == num_links_);
  if (clock_ == nullptr) {
    for (std::size_t n = 0; n < num_links_; ++n) delivered[n] = links_[n].end_interval();
    return;
  }
  clock_->stop();
  for (LinkId n = 0; n < num_links_; ++n) {
    delivered[n] = delivered_[n];
    buffer_[n] = 0;
  }
}

}  // namespace rtmac::mac
