#include "mac/dcf_mac.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rtmac::mac {

DcfLinkMac::DcfLinkMac(sim::Simulator& simulator, phy::Medium& medium, DcfParams params,
                       Duration data_airtime, Duration slot, LinkId id, std::uint64_t seed,
                       LinkId stream_link)
    : sim_{simulator},
      medium_{medium},
      params_{params},
      data_airtime_{data_airtime},
      id_{id},
      rng_{seed, /*stream_id=*/0xDCF00000000ULL + (stream_link == kSameAsId ? id : stream_link)},
      cw_{params.cw_min},
      backoff_{simulator, medium, slot, id} {
  RTMAC_REQUIRE(params.cw_min >= 1 && params.cw_max >= params.cw_min);
}

void DcfLinkMac::begin_interval(IntervalIndex, int arrivals, TimePoint interval_end) {
  interval_end_ = interval_end;
  buffer_ = arrivals;
  delivered_ = 0;
  if (buffer_ > 0) contend();
}

void DcfLinkMac::contend() {
  const int draw = static_cast<int>(rng_.uniform_int(0, cw_ - 1));
  backoff_.start(draw, [this] { on_backoff_expired(); });
}

void DcfLinkMac::on_backoff_expired() {
  if (sim_.now() + data_airtime_ > interval_end_) return;
  medium_.start_transmission(id_, data_airtime_, phy::PacketKind::kData,
                             [this](phy::TxOutcome o) { on_tx_done(o); });
}

void DcfLinkMac::on_tx_done(phy::TxOutcome outcome) {
  if (outcome == phy::TxOutcome::kDelivered) {
    --buffer_;
    ++delivered_;
    cw_ = params_.cw_min;  // success resets the window
  } else {
    cw_ = std::min(cw_ * 2, params_.cw_max);  // binary exponential backoff
  }
  if (buffer_ > 0) contend();
}

int DcfLinkMac::end_interval() {
  backoff_.stop();
  buffer_ = 0;
  return delivered_;
}

DcfScheme::DcfScheme(const SchemeContext& ctx, DcfParams params, std::string name)
    : name_{std::move(name)} {
  links_.reserve(ctx.num_links);
  for (LinkId n = 0; n < ctx.num_links; ++n) {
    links_.push_back(std::make_unique<DcfLinkMac>(ctx.simulator, ctx.medium, params,
                                                  ctx.phy.data_airtime, ctx.phy.backoff_slot,
                                                  n, ctx.seed, ctx.global_id(n)));
  }
}

void DcfScheme::begin_interval(IntervalIndex k, std::span<const int> arrivals,
                               TimePoint interval_end) {
  RTMAC_REQUIRE(arrivals.size() == links_.size());
  for (std::size_t n = 0; n < links_.size(); ++n) {
    links_[n]->begin_interval(k, arrivals[n], interval_end);
  }
}

void DcfScheme::end_interval(std::span<int> delivered) {
  RTMAC_REQUIRE(delivered.size() == links_.size());
  for (std::size_t n = 0; n < links_.size(); ++n) delivered[n] = links_[n]->end_interval();
}

}  // namespace rtmac::mac
