// Centralized ELDF/LDF scheduling (the paper's Algorithm 1).
//
// A genie with global knowledge: at each interval start it sorts all links
// by f(d_n^+(k)) * p_n (eq. 4) and serves them strictly in that order,
// retransmitting each link's packets until delivered or drained, with no
// backoff, no collisions, and no contention overhead — the feasibility-
// optimal upper bound the decentralized schemes are measured against.
// Choosing f(x) = x recovers plain Largest-Debt-First (LDF).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/influence.hpp"
#include "mac/link_mac.hpp"

namespace rtmac::mac {

/// Configuration for the centralized scheduler.
struct CentralizedParams {
  core::Influence influence = core::Influence::identity();  ///< f in eq. (4)
};

/// MacScheme implementation of Algorithm 1 on the shared Medium (so the
/// unreliable-channel process is identical across schemes).
class CentralizedScheme final : public MacScheme {
 public:
  CentralizedScheme(const SchemeContext& ctx, CentralizedParams params, std::string name);

  void begin_interval(IntervalIndex k, std::span<const int> arrivals,
                      TimePoint interval_end) override;
  void end_interval(std::span<int> delivered) override;
  [[nodiscard]] std::string name() const override { return name_; }

  /// The genie sorts ALL links by global debt knowledge — it cannot run on
  /// a cell that only sees a subset.
  [[nodiscard]] bool shardable() const override { return false; }

  /// The priority ordering used in the current interval (highest first).
  [[nodiscard]] const std::vector<LinkId>& current_ordering() const { return ordering_; }

 private:
  void serve_next();
  void on_tx_done(phy::TxOutcome outcome);

  sim::Simulator& sim_;
  phy::Medium& medium_;
  Duration data_airtime_;
  const ProbabilityVector& p_;
  const core::DebtTracker& debts_;
  CentralizedParams params_;
  std::string name_;

  // Per-interval state (pre-sized at construction; no steady-state allocs).
  TimePoint interval_end_;
  std::vector<int> buffer_;
  std::vector<int> delivered_;
  std::vector<double> weight_;  ///< eq. (4) weights, recomputed per interval
  std::vector<LinkId> ordering_;
  std::size_t serving_ = 0;  ///< index into ordering_ of the link on the air
};

}  // namespace rtmac::mac
