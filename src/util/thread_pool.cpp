#include "util/thread_pool.hpp"

#include <stdexcept>
#include <utility>

namespace rtmac {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    throw std::invalid_argument{"ThreadPool: num_threads must be >= 1"};
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const util::LockGuard lock{mutex_};
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::enqueue(Task task) {
  {
    const util::LockGuard lock{mutex_};
    if (stopping_) {
      throw std::runtime_error{"ThreadPool: submit on a stopping pool"};
    }
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::worker_loop() {
  // Explicit while-loop rather than the predicate form of wait(): the
  // thread-safety analysis cannot see held capabilities inside a predicate
  // lambda, so the guarded reads of stopping_/queue_ live in this scope.
  util::LockGuard lock{mutex_};
  for (;;) {
    while (!stopping_ && queue_.empty()) work_available_.wait(lock);
    if (queue_.empty()) return;  // stopping_ and drained
    Task task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

bool ThreadPool::run_one() {
  Task task;
  {
    const util::LockGuard lock{mutex_};
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::wait_until(const std::function<bool()>& ready) {
  while (!ready()) {
    if (run_one()) continue;
    // Queue momentarily empty but the awaited work is running on other
    // threads. There is no per-completion signal to wait on (tasks are
    // opaque), so poll with a short sleep; sweep tasks run for
    // milliseconds, making the overhead invisible.
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

}  // namespace rtmac
