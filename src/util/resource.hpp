// Process resource introspection shared by benches and the sweep runner.
#pragma once

namespace rtmac::util {

/// Peak resident set size of this process in kilobytes, or 0 when the
/// platform offers no getrusage. Monotone over the process lifetime, so the
/// city bench samples it after each phase and the sweep heartbeat reports a
/// running high-water mark rather than an instantaneous figure.
[[nodiscard]] long peak_rss_kb();

}  // namespace rtmac::util
