// Strong-typed virtual time for the discrete-event simulator.
//
// All simulation time is kept as signed 64-bit nanosecond counts. A strong
// Duration/TimePoint pair (rather than raw integers or std::chrono) keeps
// the arithmetic closed under exactly the operations that make sense for
// virtual time, and gives the whole library one unambiguous resolution.
// 2^63 ns is roughly 292 years of virtual time, far beyond any experiment.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace rtmac {

/// A span of virtual time with nanosecond resolution. Value type; totally
/// ordered; supports the usual affine arithmetic with TimePoint.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration nanoseconds(std::int64_t ns) { return Duration{ns}; }
  [[nodiscard]] static constexpr Duration microseconds(std::int64_t us) { return Duration{us * 1'000}; }
  [[nodiscard]] static constexpr Duration milliseconds(std::int64_t ms) { return Duration{ms * 1'000'000}; }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  /// Builds a duration from a fractional microsecond count (rounds to nearest ns).
  [[nodiscard]] static Duration from_us_f(double us);
  /// Builds a duration from a fractional second count (rounds to nearest ns).
  [[nodiscard]] static Duration from_seconds_f(double s);

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us_f() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms_f() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double seconds_f() const { return static_cast<double>(ns_) / 1e9; }

  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration other) const { return Duration{ns_ + other.ns_}; }
  constexpr Duration operator-(Duration other) const { return Duration{ns_ - other.ns_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration& operator+=(Duration other) { ns_ += other.ns_; return *this; }
  constexpr Duration& operator-=(Duration other) { ns_ -= other.ns_; return *this; }

  /// Number of whole `unit`s contained in this duration (truncating).
  /// Precondition: `unit` is positive.
  [[nodiscard]] constexpr std::int64_t floor_div(Duration unit) const {
    const std::int64_t q = ns_ / unit.ns_;
    return (ns_ % unit.ns_ != 0 && ((ns_ < 0) != (unit.ns_ < 0))) ? q - 1 : q;
  }

  /// Human-readable rendering with an adaptive unit, e.g. "330us", "2ms".
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

constexpr Duration operator*(std::int64_t k, Duration d) { return d * k; }

/// An instant on the simulator's virtual clock. Affine: TimePoint - TimePoint
/// yields Duration; TimePoint + Duration yields TimePoint.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint from_ns(std::int64_t ns) { return TimePoint{ns}; }
  [[nodiscard]] static constexpr TimePoint origin() { return TimePoint{0}; }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double seconds_f() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.ns()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.ns()}; }
  constexpr Duration operator-(TimePoint other) const { return Duration::nanoseconds(ns_ - other.ns_); }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.ns(); return *this; }

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit TimePoint(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

}  // namespace rtmac
