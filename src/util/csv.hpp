// Minimal CSV writer used by benches and examples to dump figure series.
//
// Values are formatted with enough precision to round-trip doubles; fields
// containing separators/quotes/newlines are quoted per RFC 4180.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace rtmac {

/// Streams rows of a CSV table to an std::ostream supplied by the caller.
/// The writer does not own the stream; keep it alive while writing.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char separator = ',');

  /// Writes the header row. Must be called at most once, before any row.
  void header(const std::vector<std::string>& columns);

  /// Writes a `# ...` metadata line (provenance: seeds, replication counts).
  /// Only legal between rows, not inside one.
  void comment(std::string_view text);

  CsvWriter& field(std::string_view value);
  CsvWriter& field(double value);
  CsvWriter& field(std::int64_t value);
  CsvWriter& field(std::uint64_t value);
  CsvWriter& field(int value) { return field(static_cast<std::int64_t>(value)); }

  /// Terminates the current row.
  void end_row();

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  void separator_if_needed();

  std::ostream& out_;
  char sep_;
  bool row_open_ = false;
  bool header_written_ = false;
  std::size_t rows_ = 0;
};

/// Escapes a single CSV field (exposed for tests).
[[nodiscard]] std::string csv_escape(std::string_view value, char separator = ',');

}  // namespace rtmac
