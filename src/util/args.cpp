#include "util/args.hpp"

#include <cstdlib>

namespace rtmac {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // --key value form: consume the next token iff it is not itself a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";  // boolean switch
    }
  }
}

bool ArgParser::has(const std::string& name) const { return flags_.contains(name); }

std::string ArgParser::get(const std::string& name, const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

double ArgParser::get(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end != nullptr && *end == '\0') ? v : def;
}

std::int64_t ArgParser::get(const std::string& name, std::int64_t def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? v : def;
}

bool ArgParser::get(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  if (it->second.empty() || it->second == "true" || it->second == "1" ||
      it->second == "yes" || it->second == "on") {
    return true;
  }
  return false;
}

std::vector<std::string> ArgParser::unknown_flags(
    const std::vector<std::string>& expected) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : flags_) {
    bool found = false;
    for (const auto& e : expected) {
      if (e == name) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back(name);
  }
  return unknown;
}

}  // namespace rtmac
