// Fixed-width ASCII table printer for bench/example console output.
//
// Benches print paper-figure series as aligned tables so the regenerated
// rows can be eyeballed against the paper directly.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace rtmac {

/// Collects rows of string cells and renders them with per-column widths.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  /// Adds a row; the number of cells must equal the number of columns.
  void add_row(std::vector<std::string> cells);

  /// Renders header, separator, and all rows.
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Convenience cell formatters.
  [[nodiscard]] static std::string num(double v, int precision = 4);
  [[nodiscard]] static std::string num(std::int64_t v);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rtmac
