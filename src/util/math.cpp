#include "util/math.hpp"

#include <cmath>

#include "util/check.hpp"

namespace rtmac {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double sample_variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double total_variation(std::span<const double> p, std::span<const double> q) {
  RTMAC_REQUIRE(p.size() == q.size());
  double s = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) s += std::abs(p[i] - q[i]);
  return 0.5 * s;
}

double linf_norm(std::span<const double> xs) {
  double m = 0.0;
  for (double x : xs) m = std::max(m, std::abs(x));
  return m;
}

double factorial(unsigned n) {
  double r = 1.0;
  for (unsigned i = 2; i <= n; ++i) r *= static_cast<double>(i);
  return r;
}

double normalize(std::vector<double>& xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  if (s > 0.0) {
    for (double& x : xs) x /= s;
  }
  return s;
}

double binomial(unsigned n, unsigned k) {
  if (k > n) return 0.0;
  k = std::min(k, n - k);
  double r = 1.0;
  for (unsigned i = 1; i <= k; ++i) {
    r *= static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return r;
}

double binomial_pmf(unsigned n, unsigned k, double p) {
  if (k > n) return 0.0;
  return binomial(n, k) * std::pow(p, k) * std::pow(1.0 - p, n - k);
}

}  // namespace rtmac
