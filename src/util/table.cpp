#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace rtmac {

TablePrinter::TablePrinter(std::vector<std::string> columns) : columns_{std::move(columns)} {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  RTMAC_REQUIRE(cells.size() == columns_.size(), "row arity must match header");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) width[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) width[i] = std::max(width[i], row[i].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << (i == 0 ? "| " : " | ");
      out << row[i];
      out << std::string(width[i] - row[i].size(), ' ');
    }
    out << " |\n";
  };
  print_row(columns_);
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    out << (i == 0 ? "|-" : "-|-") << std::string(width[i], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::num(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  return buf;
}

}  // namespace rtmac
