// Tiny command-line flag parser for the example/tool binaries.
//
// Supports --key value and --key=value forms plus boolean switches.
// Unknown flags are collected so tools can reject typos with a usage hint.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rtmac {

/// Parsed command line: flags plus bare positional arguments.
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// True iff --name appeared (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Typed accessors with defaults. Malformed numbers fall back to the
  /// default (tools treat flags as best-effort configuration).
  [[nodiscard]] std::string get(const std::string& name, const std::string& def) const;
  [[nodiscard]] double get(const std::string& name, double def) const;
  [[nodiscard]] std::int64_t get(const std::string& name, std::int64_t def) const;
  [[nodiscard]] bool get(const std::string& name, bool def) const;

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  /// Flags seen on the command line that `expected` does not contain.
  [[nodiscard]] std::vector<std::string> unknown_flags(
      const std::vector<std::string>& expected) const;

 private:
  std::map<std::string, std::string> flags_;  // name -> value ("" for switches)
  std::vector<std::string> positional_;
};

}  // namespace rtmac
