// Fixed-size thread pool for the parallel sweep engine.
//
// Deliberately simple: one shared FIFO queue, a fixed number of workers, no
// work stealing. Sweep tasks are multi-millisecond simulations, so queue
// contention is irrelevant; what matters is that results are written to
// pre-assigned slots so the outcome is independent of scheduling order.
//
// Nested waiting is safe: a task that submits subtasks and then calls
// wait_all()/wait_until() lends its thread to the queue while it waits, so
// a pool of any size (including 1) cannot deadlock on task dependencies
// expressed through those calls.
#pragma once

#include <chrono>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/thread_annotations.hpp"

namespace rtmac {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers. Throws std::invalid_argument on 0.
  explicit ThreadPool(std::size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue (runs every task already submitted), then joins.
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Number of hardware threads, with a sane floor of 1.
  [[nodiscard]] static std::size_t hardware_threads();

  /// Enqueues `fn` and returns a future for its result. An exception thrown
  /// by the task is captured and rethrown from future::get().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    enqueue([task] { (*task)(); });
    return result;
  }

  /// Blocks until every future is ready, executing queued tasks on the
  /// calling thread while it waits (deadlock-free nested wait). Does NOT
  /// call get(): exceptions stay in the futures for the caller to surface.
  template <typename R>
  void wait_all(std::vector<std::future<R>>& futures) {
    for (auto& f : futures) {
      wait_until([&f] {
        return f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
      });
    }
  }

  /// Runs queued tasks on the calling thread until `ready()` returns true.
  void wait_until(const std::function<bool()>& ready) RTMAC_EXCLUDES(mutex_);

 private:
  using Task = std::function<void()>;

  void enqueue(Task task) RTMAC_EXCLUDES(mutex_);
  void worker_loop() RTMAC_EXCLUDES(mutex_);
  /// Pops one task if available; returns false when the queue is empty.
  bool run_one() RTMAC_EXCLUDES(mutex_);

  mutable util::Mutex mutex_;
  util::CondVar work_available_;
  std::deque<Task> queue_ RTMAC_GUARDED_BY(mutex_);
  bool stopping_ RTMAC_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace rtmac
