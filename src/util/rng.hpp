// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component of the simulator (traffic, channel losses,
// protocol coin tosses) draws from its own Rng stream, derived from a root
// seed plus a stream identifier. This makes whole experiments bit-for-bit
// reproducible under a fixed seed while keeping streams statistically
// independent (streams are seeded through SplitMix64, the recommended
// seeding procedure for xoshiro generators).
#pragma once

#include <cstdint>
#include <limits>

namespace rtmac {

/// SplitMix64: tiny, high-quality 64-bit mixer used for seeding and for
/// deriving per-(seed, index) values such as the shared candidate draw C(k).
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_{seed} {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mix of two 64-bit values; used to derive stream seeds and the
/// per-interval shared randomness of the DP protocol without carrying state.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  SplitMix64 sm{a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2))};
  sm.next();
  return sm.next() ^ b;
}

/// xoshiro256** pseudo-random generator. Satisfies the essentials of
/// UniformRandomBitGenerator so it can also feed <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);
  /// Derives an independent stream: same root seed + different stream id
  /// gives a statistically independent generator.
  Rng(std::uint64_t root_seed, std::uint64_t stream_id);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next_u64(); }

  // The draw methods are defined inline: every transmission and arrival
  // draws from an Rng, so a cross-TU call per draw is measurable in the
  // interval hot path.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform real in [0, 1).
  double next_double() {
    // 53 high-quality bits -> double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    __extension__ using uint128 = unsigned __int128;  // GCC/Clang builtin
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
    // Lemire's unbiased bounded sampling.
    std::uint64_t x = next_u64();
    uint128 m = static_cast<uint128>(x) * range;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < range) {
      const std::uint64_t t = (0 - range) % range;
      while (l < t) {
        x = next_u64();
        m = static_cast<uint128>(x) * range;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace rtmac
