// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component of the simulator (traffic, channel losses,
// protocol coin tosses) draws from its own Rng stream, derived from a root
// seed plus a stream identifier. This makes whole experiments bit-for-bit
// reproducible under a fixed seed while keeping streams statistically
// independent (streams are seeded through SplitMix64, the recommended
// seeding procedure for xoshiro generators).
#pragma once

#include <cstdint>
#include <limits>

namespace rtmac {

/// SplitMix64: tiny, high-quality 64-bit mixer used for seeding and for
/// deriving per-(seed, index) values such as the shared candidate draw C(k).
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_{seed} {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mix of two 64-bit values; used to derive stream seeds and the
/// per-interval shared randomness of the DP protocol without carrying state.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  SplitMix64 sm{a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2))};
  sm.next();
  return sm.next() ^ b;
}

/// xoshiro256** pseudo-random generator. Satisfies the essentials of
/// UniformRandomBitGenerator so it can also feed <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);
  /// Derives an independent stream: same root seed + different stream id
  /// gives a statistically independent generator.
  Rng(std::uint64_t root_seed, std::uint64_t stream_id);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next_u64(); }
  std::uint64_t next_u64();

  /// Uniform real in [0, 1).
  double next_double();
  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);
  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool bernoulli(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace rtmac
