// Bump-pointer arena for config-time-sized cold state.
//
// The million-link engine keeps per-link cold state (arrival parameters, MAC
// configuration, counters, ledgers) in structure-of-arrays blocks that are
// sized exactly once, when the NetworkConfig is frozen, and freed all at once
// when the Network dies. A general-purpose allocator is the wrong tool for
// that lifetime pattern: per-object headers waste a double-digit percentage
// of a 10^6-link footprint, and scattered allocations destroy the locality
// the SoA layout exists to provide. The Arena hands out aligned slices from
// large chunks, records how many bytes each subsystem took (exported as the
// `mem.*` gauges through obs), and never frees anything early.
//
// Deliberately NOT thread-safe: every allocation happens during single-
// threaded construction, before the sharded parallel phase can exist.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace rtmac::util {

class Arena {
 public:
  /// `reserve_bytes` pre-sizes the first chunk so a well-estimated caller
  /// takes exactly one mmap; under-estimates grow geometrically.
  explicit Arena(std::size_t reserve_bytes = 0);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw aligned block. The arena does not run destructors — callers that
  /// placement-construct non-trivial objects own their teardown.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align);

  /// Value-initialized contiguous array of a trivially-destructible T.
  /// This is the SoA workhorse: one call per column.
  template <typename T>
  [[nodiscard]] std::span<T> make_span(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is released without running destructors");
    if (count == 0) return {};
    T* data = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    std::uninitialized_value_construct_n(data, count);
    return {data, count};
  }

  /// Bytes handed out (excludes alignment padding and chunk slack).
  [[nodiscard]] std::size_t bytes_used() const { return used_; }
  /// Bytes owned by the chunks (the actual heap footprint).
  [[nodiscard]] std::size_t bytes_reserved() const { return reserved_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t offset = 0;
  };

  Chunk& grow(std::size_t min_bytes);

  std::vector<Chunk> chunks_;
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace rtmac::util
