// Contracts layer: RTMAC_ASSERT / RTMAC_REQUIRE / RTMAC_UNREACHABLE.
//
// Replaces <cassert> throughout the library so protocol invariants (DP
// collision-freedom, permutation validity, interval-boundary gap rules) are
// checkable outside Debug builds: defining RTMAC_CHECKED (cmake
// -DRTMAC_CHECKED=ON) keeps every check active even under NDEBUG, which is
// how Release CI exercises them against the golden figure CSVs.
//
// Semantics:
//   RTMAC_REQUIRE(cond, ...)     precondition — the *caller* passed garbage
//   RTMAC_ASSERT(cond, ...)      invariant — *this component's* state is broken
//   RTMAC_UNREACHABLE(...)       control flow that must never be reached
//                                (always active, even with checks disabled)
//
// Extra arguments are streamed into the failure message, e.g.
//   RTMAC_ASSERT(pr >= 1, "priority ", pr, " out of range for N=", n);
// A failure prints "file:line: RTMAC_ASSERT(expr) failed: message", bumps the
// process-wide counter exported by the obs layer as `checks.failed`, then
// aborts — unless a test installed a throwing handler via
// set_check_failure_handler().
//
// When checks are disabled the condition and message arguments are parsed
// but never evaluated (dead `if (false)` branch), so checks cannot bit-rot
// in configurations that skip them and cannot perturb results in ones that
// don't: a check has no observable side effect unless it fails.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>

#if !defined(NDEBUG) || defined(RTMAC_CHECKED)
#define RTMAC_CHECKS_ENABLED 1
#else
#define RTMAC_CHECKS_ENABLED 0
#endif

namespace rtmac {

/// True when RTMAC_ASSERT/RTMAC_REQUIRE are compiled in (Debug, or any build
/// configured with RTMAC_CHECKED). Lets code skip building expensive state
/// that exists only to be checked: `if constexpr (kChecksEnabled) { ... }`.
inline constexpr bool kChecksEnabled = RTMAC_CHECKS_ENABLED != 0;

/// Called on contract failure *instead of* the default print-and-abort.
/// The handler may throw (tests use this to observe failures without dying);
/// if it returns normally, the failure still aborts.
using CheckFailureHandler = void (*)(const char* kind, const char* expr, const char* file,
                                     int line, const std::string& message);

/// Installs `handler` and returns the previous one (nullptr = default abort).
CheckFailureHandler set_check_failure_handler(CheckFailureHandler handler);

/// Called on contract failure BEFORE the failure handler (and before any
/// abort/throw), so crash artifacts can be written while the process state
/// is still intact — this is the obs flight recorder's entry point. The
/// hook must not throw; it is temporarily uninstalled while it runs, so a
/// contract failure inside the hook cannot recurse into it.
using CheckDumpHook = void (*)(const char* kind, const char* expr, const char* file,
                               int line, const std::string& message);

/// Installs `hook` and returns the previous one (nullptr = none).
CheckDumpHook set_check_dump_hook(CheckDumpHook hook);

/// Process-wide count of contract failures. Exported by the obs layer as the
/// `checks.failed` counter; nonzero only when a throwing handler suppressed
/// the abort (the default path never survives to report).
[[nodiscard]] std::uint64_t check_failures();

namespace check_detail {

/// Out-of-line failure path: count, hand to the handler (which may throw),
/// otherwise print and abort. Never returns normally.
[[noreturn]] void fail(const char* kind, const char* expr, const char* file, int line,
                       const std::string& message);

template <typename... Args>
std::string format(Args&&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return {};
  } else {
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
  }
}

/// Swallows arguments unevaluated when checks are compiled out.
template <typename... Args>
constexpr void discard(Args&&...) {}

}  // namespace check_detail
}  // namespace rtmac

#define RTMAC_CHECK_IMPL_(kind, cond, ...)                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::rtmac::check_detail::fail(kind, #cond, __FILE__, __LINE__,      \
                                  ::rtmac::check_detail::format(__VA_ARGS__)); \
    }                                                                   \
  } while (false)

#define RTMAC_CHECK_DISCARD_(cond, ...)                                          \
  do {                                                                           \
    if (false) {                                                                 \
      ::rtmac::check_detail::discard(!(cond)__VA_OPT__(, ) __VA_ARGS__);         \
    }                                                                            \
  } while (false)

#if RTMAC_CHECKS_ENABLED
/// Internal invariant: this component's own state must satisfy `cond`.
#define RTMAC_ASSERT(cond, ...) RTMAC_CHECK_IMPL_("RTMAC_ASSERT", cond, __VA_ARGS__)
/// Precondition: the caller must supply arguments satisfying `cond`.
#define RTMAC_REQUIRE(cond, ...) RTMAC_CHECK_IMPL_("RTMAC_REQUIRE", cond, __VA_ARGS__)
#else
#define RTMAC_ASSERT(cond, ...) RTMAC_CHECK_DISCARD_(cond, __VA_ARGS__)
#define RTMAC_REQUIRE(cond, ...) RTMAC_CHECK_DISCARD_(cond, __VA_ARGS__)
#endif

/// Marks control flow that must never execute. Always active (the cost is
/// zero on the paths that matter: it only runs when the program is already
/// broken), so switch defaults and exhausted lookups fail loudly even in
/// plain Release builds.
#define RTMAC_UNREACHABLE(...)                                                  \
  ::rtmac::check_detail::fail("RTMAC_UNREACHABLE", "reached", __FILE__, __LINE__, \
                              ::rtmac::check_detail::format(__VA_ARGS__))
