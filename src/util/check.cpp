#include "util/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace rtmac {

namespace {

// Process-wide failure state. Contracts can trip on any thread (sweep tasks,
// shard workers), so all three are atomics rather than GUARDED_BY a mutex:
// the failure path must never block, and the counter is monotonic — exactly
// the shape lock-free access is right for (see DESIGN.md §5c).
std::atomic<std::uint64_t> g_failures{0};
std::atomic<CheckFailureHandler> g_handler{nullptr};
std::atomic<CheckDumpHook> g_dump_hook{nullptr};

}  // namespace

CheckFailureHandler set_check_failure_handler(CheckFailureHandler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

CheckDumpHook set_check_dump_hook(CheckDumpHook hook) {
  return g_dump_hook.exchange(hook, std::memory_order_acq_rel);
}

std::uint64_t check_failures() { return g_failures.load(std::memory_order_relaxed); }

namespace check_detail {

void fail(const char* kind, const char* expr, const char* file, int line,
          const std::string& message) {
  g_failures.fetch_add(1, std::memory_order_relaxed);
  // Crash-artifact dump first, while nothing has thrown or aborted yet. The
  // hook is swapped out for the duration so a failure inside the dump path
  // cannot recurse into it.
  if (CheckDumpHook hook = g_dump_hook.exchange(nullptr, std::memory_order_acq_rel);
      hook != nullptr) {
    hook(kind, expr, file, line, message);
    g_dump_hook.store(hook, std::memory_order_release);
  }
  if (CheckFailureHandler handler = g_handler.load(std::memory_order_acquire);
      handler != nullptr) {
    handler(kind, expr, file, line, message);  // may throw: test path
  }
  std::fprintf(stderr, "%s:%d: %s(%s) failed%s%s\n", file, line, kind, expr,
               message.empty() ? "" : ": ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace check_detail
}  // namespace rtmac
