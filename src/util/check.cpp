#include "util/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace rtmac {

namespace {

std::atomic<std::uint64_t> g_failures{0};
std::atomic<CheckFailureHandler> g_handler{nullptr};

}  // namespace

CheckFailureHandler set_check_failure_handler(CheckFailureHandler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

std::uint64_t check_failures() { return g_failures.load(std::memory_order_relaxed); }

namespace check_detail {

void fail(const char* kind, const char* expr, const char* file, int line,
          const std::string& message) {
  g_failures.fetch_add(1, std::memory_order_relaxed);
  if (CheckFailureHandler handler = g_handler.load(std::memory_order_acquire);
      handler != nullptr) {
    handler(kind, expr, file, line, message);  // may throw: test path
  }
  std::fprintf(stderr, "%s:%d: %s(%s) failed%s%s\n", file, line, kind, expr,
               message.empty() ? "" : ": ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace check_detail
}  // namespace rtmac
