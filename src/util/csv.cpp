#include "util/csv.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace rtmac {

std::string csv_escape(std::string_view value, char separator) {
  const bool needs_quote =
      value.find_first_of("\"\r\n") != std::string_view::npos ||
      value.find(separator) != std::string_view::npos;
  if (!needs_quote) return std::string{value};
  std::string out;
  out.reserve(value.size() + 2);
  out.push_back('"');
  for (char c : value) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(std::ostream& out, char separator) : out_{out}, sep_{separator} {}

void CsvWriter::header(const std::vector<std::string>& columns) {
  RTMAC_REQUIRE(!header_written_ && rows_ == 0, "header must precede all rows");
  header_written_ = true;
  bool first = true;
  for (const auto& c : columns) {
    if (!first) out_ << sep_;
    out_ << csv_escape(c, sep_);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::comment(std::string_view text) {
  RTMAC_REQUIRE(!row_open_, "comment must not split a row");
  out_ << "# " << text << '\n';
}

void CsvWriter::separator_if_needed() {
  if (row_open_) out_ << sep_;
  row_open_ = true;
}

CsvWriter& CsvWriter::field(std::string_view value) {
  separator_if_needed();
  out_ << csv_escape(value, sep_);
  return *this;
}

CsvWriter& CsvWriter::field(double value) {
  separator_if_needed();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  out_ << buf;
  return *this;
}

CsvWriter& CsvWriter::field(std::int64_t value) {
  separator_if_needed();
  out_ << value;
  return *this;
}

CsvWriter& CsvWriter::field(std::uint64_t value) {
  separator_if_needed();
  out_ << value;
  return *this;
}

void CsvWriter::end_row() {
  out_ << '\n';
  row_open_ = false;
  ++rows_;
}

}  // namespace rtmac
