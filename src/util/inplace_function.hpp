// Fixed-capacity, move-only callable wrapper with inline storage.
//
// The discrete-event hot path (EventQueue callbacks, backoff expiries,
// transmission-done notifications) schedules millions of small closures per
// simulated second. std::function's type erasure costs a possible heap
// allocation per callable and admits copyable-only semantics the engine
// never needs. InplaceFunction stores the callable inside the object —
// always, enforced at compile time — so scheduling an event never touches
// the allocator, and move-only captures (unique_ptr, EventId guards) are
// first-class.
//
// Design points:
//   * capacity is a template parameter; an oversized or over-aligned capture
//     is a static_assert with an actionable message, never a silent heap
//     fallback;
//   * move-only: moving transfers the callable and empties the source;
//   * the callable must be nothrow-move-constructible (the event queue moves
//     entries while restructuring its storage; a throwing move would tear
//     the heap invariant);
//   * one dispatch table pointer (invoke / move / destroy) per object —
//     same indirection count as libstdc++'s std::function, minus the
//     allocator round trip.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rtmac::util {

/// Default inline capacity, in bytes, for engine callbacks: six pointers'
/// worth, which comfortably fits every capture the protocol stack creates
/// (the largest is [this, kind] plus padding) with headroom for test lambdas
/// that capture a handful of locals by reference.
inline constexpr std::size_t kInplaceFunctionDefaultCapacity = 48;

template <typename Signature, std::size_t Capacity = kInplaceFunctionDefaultCapacity>
class InplaceFunction;  // primary template intentionally undefined

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  /// Wraps any callable invocable as R(Args...). Intentionally implicit so
  /// lambdas convert at call sites exactly like they did with std::function.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InplaceFunction> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "callable too large for InplaceFunction's inline capacity: "
                  "shrink the capture (capture pointers, not objects) or raise "
                  "the Capacity template argument");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "callable over-aligned for InplaceFunction's inline storage");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "InplaceFunction requires a nothrow-move-constructible "
                  "callable (the event queue moves entries while compacting)");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &ops_for<Fn>;
  }

  InplaceFunction(InplaceFunction&& other) noexcept : ops_{other.ops_} {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InplaceFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  /// Destroys the held callable, if any.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// Invokes the held callable. Precondition: *this holds one.
  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src);  ///< move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops ops_for{
      [](void* storage, Args&&... args) -> R {
        return (*static_cast<Fn*>(storage))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        Fn* from = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* storage) { static_cast<Fn*>(storage)->~Fn(); },
  };

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace rtmac::util
