#include "util/time.hpp"

#include <cmath>
#include <cstdio>

namespace rtmac {

Duration Duration::from_us_f(double us) {
  return Duration::nanoseconds(static_cast<std::int64_t>(std::llround(us * 1e3)));
}

Duration Duration::from_seconds_f(double s) {
  return Duration::nanoseconds(static_cast<std::int64_t>(std::llround(s * 1e9)));
}

std::string Duration::to_string() const {
  char buf[64];
  const std::int64_t a = ns_ < 0 ? -ns_ : ns_;
  if (a >= 1'000'000'000 && a % 1'000'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%llds", static_cast<long long>(ns_ / 1'000'000'000));
  } else if (a >= 1'000'000 && a % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldms", static_cast<long long>(ns_ / 1'000'000));
  } else if (a >= 1'000 && a % 1'000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(ns_ / 1'000));
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

std::string TimePoint::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "t=%.6fs", seconds_f());
  return buf;
}

}  // namespace rtmac
