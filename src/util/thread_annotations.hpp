#pragma once

// Clang Thread Safety Analysis annotations (a.k.a. the Capability system).
//
// Under clang these expand to the `thread_safety` attribute family checked by
// `-Wthread-safety`; under every other compiler they expand to nothing (gcc
// warns on unknown attributes, which our -Werror lanes would promote).
//
// Conventions (see DESIGN.md §5c):
//  * Data members shared across threads carry RTMAC_GUARDED_BY(mutex).
//  * Public entry points that take the lock internally carry
//    RTMAC_EXCLUDES(mutex) so the analysis rejects re-entrant callers.
//  * Private helpers that assume the lock is held carry RTMAC_REQUIRES(mutex).
//  * Phase disciplines that are not backed by a runtime lock (the sharded
//    coordinator's window barrier) are modelled with a PhantomCapability.
//
// The analysis does not propagate held capabilities into lambda bodies, so
// code using these primitives must not wrap guarded accesses in lambdas (no
// predicate-form condition_variable waits); CondVar below only exposes the
// non-predicate wait() to make the safe shape the only shape.

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define RTMAC_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define RTMAC_THREAD_ANNOTATION_(x)
#endif

#define RTMAC_CAPABILITY(x) RTMAC_THREAD_ANNOTATION_(capability(x))
#define RTMAC_SCOPED_CAPABILITY RTMAC_THREAD_ANNOTATION_(scoped_lockable)
#define RTMAC_GUARDED_BY(x) RTMAC_THREAD_ANNOTATION_(guarded_by(x))
#define RTMAC_PT_GUARDED_BY(x) RTMAC_THREAD_ANNOTATION_(pt_guarded_by(x))
#define RTMAC_REQUIRES(...) \
  RTMAC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define RTMAC_ACQUIRE(...) \
  RTMAC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define RTMAC_RELEASE(...) \
  RTMAC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RTMAC_TRY_ACQUIRE(...) \
  RTMAC_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define RTMAC_EXCLUDES(...) RTMAC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define RTMAC_ACQUIRED_BEFORE(...) \
  RTMAC_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define RTMAC_ACQUIRED_AFTER(...) \
  RTMAC_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define RTMAC_RETURN_CAPABILITY(x) RTMAC_THREAD_ANNOTATION_(lock_returned(x))
#define RTMAC_NO_THREAD_SAFETY_ANALYSIS \
  RTMAC_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace rtmac::util {

class LockGuard;
class CondVar;

// std::mutex wrapper that the thread-safety analysis can see as a capability.
class RTMAC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RTMAC_ACQUIRE() { raw_.lock(); }
  void unlock() RTMAC_RELEASE() { raw_.unlock(); }
  bool try_lock() RTMAC_TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  friend class LockGuard;
  std::mutex raw_;
};

// Scoped lock for util::Mutex. Relockable (lock()/unlock()) so hot loops can
// drop the lock around work without leaving the annotated scope; the analysis
// tracks the capability through those calls.
class RTMAC_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) RTMAC_ACQUIRE(mutex)
      : lock_(mutex.raw_) {}
  ~LockGuard() RTMAC_RELEASE() {}

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

  void lock() RTMAC_ACQUIRE() { lock_.lock(); }
  void unlock() RTMAC_RELEASE() { lock_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// Condition variable usable with LockGuard. Only the non-predicate wait() is
// exposed: the predicate form takes a lambda, and the analysis does not carry
// held capabilities into lambda bodies, so guarded reads inside the predicate
// would warn. Callers write the standard explicit while-loop instead.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(LockGuard& guard) { raw_.wait(guard.lock_); }
  void notify_one() { raw_.notify_one(); }
  void notify_all() { raw_.notify_all(); }

 private:
  std::condition_variable raw_;
};

// Zero-runtime-cost capability for modelling phase disciplines that have no
// runtime lock object — e.g. "only during the coordinator's window barrier".
// Acquire/release are no-ops; the value is purely in the compile-time
// REQUIRES/GUARDED_BY checking against functions annotated with it.
class RTMAC_CAPABILITY("role") PhantomCapability {
 public:
  constexpr PhantomCapability() = default;
  PhantomCapability(const PhantomCapability&) = delete;
  PhantomCapability& operator=(const PhantomCapability&) = delete;

  void acquire() RTMAC_ACQUIRE() {}
  void release() RTMAC_RELEASE() {}
};

// Scoped holder for a PhantomCapability. Constructing one asserts, to the
// analysis, that the current code region is inside the named phase.
class RTMAC_SCOPED_CAPABILITY PhantomLock {
 public:
  explicit PhantomLock(PhantomCapability& phase) RTMAC_ACQUIRE(phase) {
    static_cast<void>(phase);
  }
  ~PhantomLock() RTMAC_RELEASE() {}

  PhantomLock(const PhantomLock&) = delete;
  PhantomLock& operator=(const PhantomLock&) = delete;
};

}  // namespace rtmac::util
