#include "util/rng.hpp"

namespace rtmac {

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm{seed};
  for (auto& s : s_) s = sm.next();
}

Rng::Rng(std::uint64_t root_seed, std::uint64_t stream_id)
    : Rng{mix64(root_seed, stream_id)} {}

}  // namespace rtmac
