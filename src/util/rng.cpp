#include "util/rng.hpp"

namespace rtmac {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm{seed};
  for (auto& s : s_) s = sm.next();
}

Rng::Rng(std::uint64_t root_seed, std::uint64_t stream_id)
    : Rng{mix64(root_seed, stream_id)} {}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  __extension__ using uint128 = unsigned __int128;  // GCC/Clang builtin
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Lemire's unbiased bounded sampling.
  std::uint64_t x = next_u64();
  uint128 m = static_cast<uint128>(x) * range;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < range) {
    const std::uint64_t t = (0 - range) % range;
    while (l < t) {
      x = next_u64();
      m = static_cast<uint128>(x) * range;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace rtmac
