#include "util/resource.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace rtmac::util {

long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;  // bytes on Darwin
#else
  return usage.ru_maxrss;  // kilobytes on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace rtmac::util
