// Small numeric helpers shared across the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rtmac {

/// x^+ = max{0, x} — positive part, used throughout the debt machinery.
[[nodiscard]] constexpr double positive_part(double x) { return x > 0.0 ? x : 0.0; }

/// Arithmetic mean of a span; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Sample variance (denominator n-1); 0 for spans shorter than 2.
[[nodiscard]] double sample_variance(std::span<const double> xs);

/// Total-variation distance between two distributions given as element-wise
/// aligned probability vectors: TV = 0.5 * sum |p_i - q_i|.
/// Precondition: p.size() == q.size().
[[nodiscard]] double total_variation(std::span<const double> p, std::span<const double> q);

/// L-infinity norm of a vector.
[[nodiscard]] double linf_norm(std::span<const double> xs);

/// n! as double (exact for n <= 20 in the integer part we use).
[[nodiscard]] double factorial(unsigned n);

/// Normalizes a nonnegative vector to sum to 1 in place; leaves a zero vector
/// untouched. Returns the pre-normalization sum.
double normalize(std::vector<double>& xs);

/// Binomial coefficient C(n, k) as double.
[[nodiscard]] double binomial(unsigned n, unsigned k);

/// PMF of Binomial(n, p) at k.
[[nodiscard]] double binomial_pmf(unsigned n, unsigned k, double p);

}  // namespace rtmac
