#include "util/arena.hpp"

#include <algorithm>

namespace rtmac::util {

namespace {
// First unsized chunk; also the floor for growth chunks. 64 KiB keeps tiny
// arenas (unit tests, small benches) cheap while amortizing large ones.
constexpr std::size_t kMinChunkBytes = 64 * 1024;
}  // namespace

Arena::Arena(std::size_t reserve_bytes) {
  if (reserve_bytes > 0) grow(reserve_bytes);
}

Arena::Chunk& Arena::grow(std::size_t min_bytes) {
  // Geometric growth off the *reserved* total so a mis-estimated reserve
  // converges in O(log n) chunks instead of thousands of small ones.
  const std::size_t size = std::max({min_bytes, kMinChunkBytes, reserved_ / 2});
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(size);
  chunk.size = size;
  reserved_ += size;
  chunks_.push_back(std::move(chunk));
  return chunks_.back();
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  RTMAC_REQUIRE(align != 0 && (align & (align - 1)) == 0, "alignment must be a power of two");
  RTMAC_REQUIRE(align <= alignof(std::max_align_t),
                "over-aligned types need their own allocation path");
  if (bytes == 0) bytes = 1;  // distinct non-null result, keeps accounting simple
  Chunk* chunk = chunks_.empty() ? nullptr : &chunks_.back();
  std::size_t offset = 0;
  if (chunk != nullptr) {
    offset = (chunk->offset + align - 1) & ~(align - 1);
    if (offset + bytes > chunk->size) chunk = nullptr;
  }
  if (chunk == nullptr) {
    // operator new chunks are max_align_t-aligned, so a fresh chunk needs
    // no padding for any alignment this arena accepts.
    chunk = &grow(bytes);
    offset = 0;
  }
  void* result = chunk->data.get() + offset;
  chunk->offset = offset + bytes;
  used_ += bytes;
  return result;
}

}  // namespace rtmac::util
