// Fundamental identifiers and small value types shared across modules.
#pragma once

#include <cstdint>
#include <vector>

namespace rtmac {

/// Index of a directed link in the network, 0-based. The paper's link set
/// N = {1..N} maps to {0..N-1} here.
using LinkId = std::uint32_t;

/// Index of a deadline interval (the paper's k). Intervals partition time
/// into [kT, (k+1)T).
using IntervalIndex = std::uint64_t;

/// Priority index of a link within an interval: 1 = highest priority
/// (transmits first), N = lowest. Matches the paper's sigma_n(k) range.
using PriorityIndex = std::uint32_t;

/// Per-link vector aliases used pervasively.
using ProbabilityVector = std::vector<double>;  // e.g. p = [p_n]
using RateVector = std::vector<double>;         // e.g. lambda, q

}  // namespace rtmac
