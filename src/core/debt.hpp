// Delivery debt — the virtual queue driving both ELDF and DB-DP.
//
// The paper's eq. (1): d_n(k+1) = d_n(k) - S_n(k) + q_n with d_n(0) = 0,
// equivalently d_n(k) = k*q_n - sum_{j<k} S_n(j). Debt measures how far a
// link's empirical timely-throughput lags its requirement; policies weight
// links by f(d^+) where (.)^+ is the positive part.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace rtmac::core {

/// Tracks the delivery-debt vector d(k) across intervals.
class DebtTracker {
 public:
  /// `q[n]` is link n's required timely-throughput (packets per interval).
  explicit DebtTracker(RateVector q);

  /// Applies eq. (1) once: advances from interval k to k+1 given the number
  /// of on-time deliveries S(k). Precondition: delivered.size() == size().
  void on_interval_end(std::span<const int> delivered);
  /// Braced-list convenience for tests ({1, 0, 2}); initializer_list does
  /// not convert to span implicitly.
  void on_interval_end(std::initializer_list<int> delivered) {
    on_interval_end(std::span<const int>{delivered.begin(), delivered.size()});
  }

  /// Current debt of link n (may be negative when ahead of requirement).
  [[nodiscard]] double debt(LinkId n) const { return d_[n]; }
  /// Positive part d_n^+ used by all debt-weighted policies.
  [[nodiscard]] double debt_plus(LinkId n) const { return d_[n] > 0.0 ? d_[n] : 0.0; }

  [[nodiscard]] const std::vector<double>& debts() const { return d_; }
  [[nodiscard]] std::vector<double> debts_plus() const;

  [[nodiscard]] double requirement(LinkId n) const { return q_[n]; }
  [[nodiscard]] const RateVector& requirements() const { return q_; }

  [[nodiscard]] std::size_t size() const { return q_.size(); }
  [[nodiscard]] IntervalIndex intervals_elapsed() const { return k_; }

  /// L-infinity norm ||d(k)||_inf (the Lyapunov-drift trigger in Lemma 2).
  [[nodiscard]] double linf() const;

  /// Resets to d(0) = 0.
  void reset();

 private:
  RateVector q_;
  std::vector<double> d_;
  IntervalIndex k_ = 0;
};

}  // namespace rtmac::core
