// Debt influence functions (the paper's Definition 6).
//
// A debt influence function f: R>=0 -> R>=0 is nondecreasing, continuous,
// diverges at infinity, and is "asymptotically shift-insensitive":
// f(x+c)/f(x) -> 1 for every finite c. Powers x^m and logarithms qualify;
// exponentials do not. ELDF sorts links by f(d^+) * p; DB-DP feeds f(d^+) * p
// into the Glauber-style coin bias of eq. (14).
#pragma once

#include <functional>
#include <string>
#include <utility>

namespace rtmac::core {

/// Value type wrapping one debt influence function with a display name.
class Influence {
 public:
  using Fn = std::function<double(double)>;

  Influence(std::string name, Fn fn) : name_{std::move(name)}, fn_{std::move(fn)} {}

  /// f(x) = x — recovers plain LDF when used with ELDF.
  [[nodiscard]] static Influence identity();
  /// f(x) = x^m, m >= 0.
  [[nodiscard]] static Influence power(double m);
  /// f(x) = log_base(1 + x), base > 1 (shifted so f(0) = 0 stays in range).
  [[nodiscard]] static Influence log(double base);
  /// The paper's simulation choice: f(x) = ln(max{1, scale*(x+1)}) with
  /// scale = 100 (Section VI).
  [[nodiscard]] static Influence paper_log(double scale = 100.0);

  [[nodiscard]] double operator()(double x) const { return fn_(x); }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  Fn fn_;
};

/// Diagnostic report from checking Definition 6 on a sample grid.
struct InfluenceAxiomReport {
  bool nondecreasing = true;      ///< f(x) <= f(y) for sampled x <= y
  bool nonnegative = true;        ///< f(x) >= 0 on the grid
  bool diverges = true;           ///< f(x_hi) exceeds any fixed bound proxy
  bool shift_insensitive = true;  ///< |f(x+c)/f(x) - 1| <= eps for large x
  [[nodiscard]] bool all() const {
    return nondecreasing && nonnegative && diverges && shift_insensitive;
  }
};

/// Empirically checks the Definition-6 axioms on a geometric grid reaching
/// `x_max`, with shift constant `c` and ratio tolerance `eps` applied at the
/// top decade of the grid. Used by tests; a pass is strong evidence, not a
/// proof.
[[nodiscard]] InfluenceAxiomReport check_influence_axioms(const Influence& f,
                                                          double x_max = 1e9,
                                                          double c = 10.0,
                                                          double eps = 1e-3);

}  // namespace rtmac::core
