// Timely-throughput requirements (Section II-C).
//
// Each link needs q_n delivered packets per interval on average; with
// arrival rate lambda_n this is expressed as a delivery ratio
// rho_n = q_n / lambda_n. This header holds the bookkeeping plus quick
// necessary-condition checks used to sanity-scope experiment sweeps.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace rtmac::core {

/// Per-link timely-throughput requirement specification.
struct Requirements {
  RateVector lambda;  ///< mean arrivals per interval, lambda_n
  RateVector rho;     ///< required delivery ratio, rho_n in [0, 1]

  /// q_n = rho_n * lambda_n (Definition: timely-throughput requirement).
  [[nodiscard]] RateVector q() const;

  [[nodiscard]] std::size_t size() const { return lambda.size(); }

  /// Uniform requirements for a symmetric network.
  [[nodiscard]] static Requirements symmetric(std::size_t n, double lambda_each, double rho_each);
};

/// Necessary (not sufficient) feasibility check: each delivery on link n
/// costs 1/p_n transmissions in expectation, and at most
/// `transmissions_per_interval` transmissions fit into one interval, so
///     sum_n q_n / p_n <= transmissions_per_interval
/// must hold for q to be feasible. Returns the utilization ratio
/// (sum_n q_n/p_n) / transmissions_per_interval; values > 1 are provably
/// infeasible.
[[nodiscard]] double workload_utilization(const RateVector& q, const ProbabilityVector& p,
                                          std::int64_t transmissions_per_interval);

}  // namespace rtmac::core
