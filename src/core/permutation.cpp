#include "core/permutation.hpp"

#include <algorithm>
#include <string>

#include "util/check.hpp"
#include "util/math.hpp"

namespace rtmac::core {

Permutation Permutation::identity(std::size_t n) {
  std::vector<PriorityIndex> sigma(n);
  for (std::size_t i = 0; i < n; ++i) sigma[i] = static_cast<PriorityIndex>(i + 1);
  return Permutation{std::move(sigma)};
}

Permutation Permutation::from_priorities(std::vector<PriorityIndex> sigma) {
  Permutation p{std::move(sigma)};
  RTMAC_REQUIRE(p.valid(), "not a bijection onto {1..N}");
  return p;
}

Permutation Permutation::from_ordering(const std::vector<LinkId>& order) {
  std::vector<PriorityIndex> sigma(order.size(), 0);
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    RTMAC_REQUIRE(order[pos] < order.size());
    sigma[order[pos]] = static_cast<PriorityIndex>(pos + 1);
  }
  return from_priorities(std::move(sigma));
}

Permutation Permutation::random(std::size_t n, Rng& rng) {
  std::vector<PriorityIndex> sigma(n);
  for (std::size_t i = 0; i < n; ++i) sigma[i] = static_cast<PriorityIndex>(i + 1);
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(sigma[i - 1], sigma[j]);
  }
  return Permutation{std::move(sigma)};
}

LinkId Permutation::link_with_priority(PriorityIndex m) const {
  RTMAC_REQUIRE(m >= 1 && m <= sigma_.size());
  for (std::size_t n = 0; n < sigma_.size(); ++n) {
    if (sigma_[n] == m) return static_cast<LinkId>(n);
  }
  RTMAC_UNREACHABLE("invalid permutation");
}

std::vector<LinkId> Permutation::ordering() const {
  std::vector<LinkId> order(sigma_.size());
  for (std::size_t n = 0; n < sigma_.size(); ++n) {
    order[sigma_[n] - 1] = static_cast<LinkId>(n);
  }
  return order;
}

void Permutation::swap_adjacent_priorities(PriorityIndex m) {
  RTMAC_REQUIRE(m >= 1 && m < sigma_.size());
  const LinkId a = link_with_priority(m);
  const LinkId b = link_with_priority(m + 1);
  std::swap(sigma_[a], sigma_[b]);
}

std::vector<LinkId> Permutation::symmetric_difference(const Permutation& other) const {
  RTMAC_REQUIRE(size() == other.size());
  std::vector<LinkId> diff;
  for (std::size_t n = 0; n < sigma_.size(); ++n) {
    if (sigma_[n] != other.sigma_[n]) diff.push_back(static_cast<LinkId>(n));
  }
  return diff;
}

bool Permutation::is_adjacent_transposition_of(const Permutation& other,
                                               PriorityIndex* m_out) const {
  if (size() != other.size()) return false;
  const auto diff = symmetric_difference(other);
  if (diff.size() != 2) return false;
  const LinkId i = diff[0];
  const LinkId j = diff[1];
  // The two links must have exchanged priority values, and those values must
  // be consecutive.
  if (sigma_[i] != other.sigma_[j] || sigma_[j] != other.sigma_[i]) return false;
  const PriorityIndex lo = std::min(sigma_[i], sigma_[j]);
  const PriorityIndex hi = std::max(sigma_[i], sigma_[j]);
  if (hi != lo + 1) return false;
  if (m_out != nullptr) *m_out = lo;
  return true;
}

std::uint64_t Permutation::rank() const {
  // Lehmer code over the priority sequence sigma_[0..N-1].
  const std::size_t n = sigma_.size();
  std::uint64_t rank = 0;
  std::uint64_t fact = 1;
  for (std::size_t i = 2; i <= n; ++i) fact *= i;  // n!
  for (std::size_t i = 0; i < n; ++i) {
    fact /= (n - i);
    std::uint64_t smaller_later = 0;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (sigma_[j] < sigma_[i]) ++smaller_later;
    }
    rank += smaller_later * fact;
  }
  return rank;
}

Permutation Permutation::unrank(std::size_t n, std::uint64_t rank) {
  std::uint64_t fact = 1;
  for (std::size_t i = 2; i <= n; ++i) fact *= i;
  RTMAC_REQUIRE(rank < fact);
  std::vector<PriorityIndex> available(n);
  for (std::size_t i = 0; i < n; ++i) available[i] = static_cast<PriorityIndex>(i + 1);
  std::vector<PriorityIndex> sigma;
  sigma.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    fact /= (n - i);
    const auto idx = static_cast<std::size_t>(rank / fact);
    rank %= fact;
    sigma.push_back(available[idx]);
    available.erase(available.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  return Permutation{std::move(sigma)};
}

std::vector<Permutation> Permutation::all(std::size_t n) {
  RTMAC_REQUIRE(n <= 8, "N! blowup: exact enumeration intended for small N");
  std::uint64_t fact = 1;
  for (std::size_t i = 2; i <= n; ++i) fact *= i;
  std::vector<Permutation> perms;
  perms.reserve(fact);
  for (std::uint64_t r = 0; r < fact; ++r) perms.push_back(unrank(n, r));
  return perms;
}

bool Permutation::valid() const {
  std::vector<bool> seen(sigma_.size(), false);
  for (PriorityIndex pr : sigma_) {
    if (pr < 1 || pr > sigma_.size() || seen[pr - 1]) return false;
    seen[pr - 1] = true;
  }
  return true;
}

std::string Permutation::to_string() const {
  std::string out = "[";
  for (std::size_t n = 0; n < sigma_.size(); ++n) {
    if (n > 0) out += ",";
    out += std::to_string(sigma_[n]);
  }
  out += "]";
  return out;
}

}  // namespace rtmac::core
