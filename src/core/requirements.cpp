#include "core/requirements.hpp"

#include "util/check.hpp"

namespace rtmac::core {

RateVector Requirements::q() const {
  RTMAC_REQUIRE(lambda.size() == rho.size());
  RateVector out(lambda.size());
  for (std::size_t n = 0; n < lambda.size(); ++n) {
    RTMAC_REQUIRE(rho[n] >= 0.0 && rho[n] <= 1.0, "delivery ratio must be in [0,1]");
    out[n] = rho[n] * lambda[n];
  }
  return out;
}

Requirements Requirements::symmetric(std::size_t n, double lambda_each, double rho_each) {
  return Requirements{RateVector(n, lambda_each), RateVector(n, rho_each)};
}

double workload_utilization(const RateVector& q, const ProbabilityVector& p,
                            std::int64_t transmissions_per_interval) {
  RTMAC_REQUIRE(q.size() == p.size());
  RTMAC_REQUIRE(transmissions_per_interval > 0);
  double load = 0.0;
  for (std::size_t n = 0; n < q.size(); ++n) {
    RTMAC_ASSERT(p[n] > 0.0);
    load += q[n] / p[n];
  }
  return load / static_cast<double>(transmissions_per_interval);
}

}  // namespace rtmac::core
