#include "core/influence.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace rtmac::core {

Influence Influence::identity() {
  return Influence{"identity", [](double x) { return x; }};
}

Influence Influence::power(double m) {
  RTMAC_REQUIRE(m >= 0.0);
  char name[32];
  std::snprintf(name, sizeof name, "x^%g", m);
  return Influence{name, [m](double x) { return std::pow(x, m); }};
}

Influence Influence::log(double base) {
  RTMAC_REQUIRE(base > 1.0);
  char name[32];
  std::snprintf(name, sizeof name, "log_%g(1+x)", base);
  const double inv_ln_base = 1.0 / std::log(base);
  return Influence{name, [inv_ln_base](double x) { return std::log1p(x) * inv_ln_base; }};
}

Influence Influence::paper_log(double scale) {
  RTMAC_REQUIRE(scale > 0.0);
  char name[48];
  std::snprintf(name, sizeof name, "ln(max{1,%g(x+1)})", scale);
  return Influence{name, [scale](double x) {
                     const double arg = scale * (x + 1.0);
                     return arg > 1.0 ? std::log(arg) : 0.0;
                   }};
}

InfluenceAxiomReport check_influence_axioms(const Influence& f, double x_max, double c,
                                            double eps) {
  InfluenceAxiomReport report;
  double prev = f(0.0);
  if (prev < 0.0) report.nonnegative = false;
  // Geometric grid from 1e-3 to x_max.
  for (double x = 1e-3; x <= x_max; x *= 1.25) {
    const double v = f(x);
    if (v < 0.0) report.nonnegative = false;
    if (v + 1e-12 < prev) report.nondecreasing = false;
    prev = v;
    // Shift-insensitivity checked on the top decade of the grid.
    if (x >= x_max / 10.0) {
      const double base = f(x);
      if (base > 0.0) {
        const double ratio = f(x + c) / base;
        if (std::abs(ratio - 1.0) > eps) report.shift_insensitive = false;
      }
    }
  }
  // Divergence proxy: the function must keep growing past its value at the
  // grid midpoint by a nontrivial margin.
  report.diverges = f(x_max) > f(std::sqrt(x_max)) + 1e-9;
  return report;
}

}  // namespace rtmac::core
