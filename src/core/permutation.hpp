// Transmission-priority permutations (the paper's Definitions 7-9).
//
// A Permutation assigns each link a unique priority index in {1..N}
// (1 = transmits first). The DP protocol's reordering Markov chain moves
// between permutations by adjacent transpositions — swapping the links that
// hold priorities m and m+1. Lehmer ranking provides a dense index over the
// N! states for the exact chain analysis at small N.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "util/rng.hpp"

namespace rtmac::core {

/// sigma: link -> priority, stored as sigma_[link] = priority (1-based).
class Permutation {
 public:
  /// Identity: link n gets priority n+1.
  [[nodiscard]] static Permutation identity(std::size_t n);

  /// From an explicit link->priority map (validated in debug builds).
  [[nodiscard]] static Permutation from_priorities(std::vector<PriorityIndex> sigma);

  /// From a transmission order: order[0] is the link with priority 1.
  [[nodiscard]] static Permutation from_ordering(const std::vector<LinkId>& order);

  /// Uniformly random permutation (Fisher-Yates).
  [[nodiscard]] static Permutation random(std::size_t n, Rng& rng);

  [[nodiscard]] std::size_t size() const { return sigma_.size(); }

  /// Priority of link `n` (1-based; 1 = first to transmit).
  [[nodiscard]] PriorityIndex priority_of(LinkId n) const { return sigma_[n]; }

  /// Link holding priority `m`. Precondition: 1 <= m <= size().
  [[nodiscard]] LinkId link_with_priority(PriorityIndex m) const;

  /// Links in transmission order (priority 1 first).
  [[nodiscard]] std::vector<LinkId> ordering() const;

  /// Swaps the links holding priorities m and m+1 (adjacent transposition
  /// in the paper's sense). Precondition: 1 <= m < size().
  void swap_adjacent_priorities(PriorityIndex m);

  /// The paper's Definition 9: set of links whose priorities differ.
  [[nodiscard]] std::vector<LinkId> symmetric_difference(const Permutation& other) const;

  /// True iff `other` differs from *this by exactly one adjacent
  /// transposition; if so, `*m_out` (when non-null) receives the lower of
  /// the two swapped priority values.
  [[nodiscard]] bool is_adjacent_transposition_of(const Permutation& other,
                                                  PriorityIndex* m_out = nullptr) const;

  /// Dense index in [0, N!) via the Lehmer code of the priority sequence.
  [[nodiscard]] std::uint64_t rank() const;
  /// Inverse of rank(). Precondition: rank < N!.
  [[nodiscard]] static Permutation unrank(std::size_t n, std::uint64_t rank);

  /// All N! permutations of size n, in rank order. Intended for n <= 8.
  [[nodiscard]] static std::vector<Permutation> all(std::size_t n);

  bool operator==(const Permutation&) const = default;

  /// Debug validation: bijective map onto {1..N}.
  [[nodiscard]] bool valid() const;

  /// e.g. "[2,1,4,3]" — priority of link 0 first (paper vector form).
  [[nodiscard]] std::string to_string() const;

 private:
  explicit Permutation(std::vector<PriorityIndex> sigma) : sigma_{std::move(sigma)} {}
  std::vector<PriorityIndex> sigma_;
};

}  // namespace rtmac::core
