#include "core/mu.hpp"

#include "util/check.hpp"

namespace rtmac::core {

DebtMu::DebtMu(Influence influence, double r) : f_{std::move(influence)}, r_{r} {
  RTMAC_REQUIRE(r > 0.0);
}

double DebtMu::weight(double debt, double p) const {
  const double d_plus = debt > 0.0 ? debt : 0.0;
  return f_(d_plus) * p;
}

double DebtMu::mu(double debt, double p) const {
  // exp(w)/(R+exp(w)) computed as 1/(1 + R*exp(-w)) to stay finite for
  // arbitrarily large debts.
  const double w = weight(debt, p);
  return 1.0 / (1.0 + r_ * std::exp(-w));
}

double DebtMu::odds(double debt, double p) const {
  return std::exp(weight(debt, p)) / r_;
}

}  // namespace rtmac::core
