#include "core/debt.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rtmac::core {

DebtTracker::DebtTracker(RateVector q) : q_{std::move(q)}, d_(q_.size(), 0.0) {
  RTMAC_REQUIRE(!q_.empty());
  for (double qn : q_) {
    RTMAC_REQUIRE(qn >= 0.0, "requirements are nonnegative");
    (void)qn;
  }
}

void DebtTracker::on_interval_end(std::span<const int> delivered) {
  RTMAC_REQUIRE(delivered.size() == d_.size());
  for (std::size_t n = 0; n < d_.size(); ++n) {
    RTMAC_REQUIRE(delivered[n] >= 0);
    d_[n] += q_[n] - static_cast<double>(delivered[n]);
  }
  ++k_;
}

std::vector<double> DebtTracker::debts_plus() const {
  std::vector<double> out(d_.size());
  for (std::size_t n = 0; n < d_.size(); ++n) out[n] = d_[n] > 0.0 ? d_[n] : 0.0;
  return out;
}

double DebtTracker::linf() const {
  double m = 0.0;
  for (double x : d_) m = std::max(m, std::abs(x));
  return m;
}

void DebtTracker::reset() {
  std::fill(d_.begin(), d_.end(), 0.0);
  k_ = 0;
}

}  // namespace rtmac::core
