// The Glauber-style coin bias of DB-DP (the paper's eq. 14).
//
//   mu_n(k) = exp(f(d_n^+(k)) p_n) / (R + exp(f(d_n^+(k)) p_n))
//
// mu_n is the probability that link n "tends to move up" in the randomized
// reordering step; it increases with debt, so lagging links climb the
// priority ladder. R > 0 is a damping constant (paper uses R = 10). The
// log-odds identity mu/(1-mu) = exp(f(d^+)p)/R is what makes the stationary
// law of the priority chain concentrate on ELDF-like orderings (eq. 15).
#pragma once

#include <cmath>

#include "core/influence.hpp"

namespace rtmac::core {

/// Computes eq. (14) coin biases from (debt, reliability) pairs.
class DebtMu {
 public:
  /// Precondition: r > 0.
  DebtMu(Influence influence, double r);

  /// mu for one link given its current debt d_n(k) and reliability p_n.
  [[nodiscard]] double mu(double debt, double p) const;

  /// Odds mu/(1-mu) = exp(f(d^+)p)/R; exposed because the stationary law
  /// (eq. 10) is a product of these odds raised to g(sigma_n).
  [[nodiscard]] double odds(double debt, double p) const;

  /// The ELDF sort key f(d^+) * p from eq. (4); shared here so centralized
  /// and decentralized policies provably weight links identically.
  [[nodiscard]] double weight(double debt, double p) const;

  [[nodiscard]] const Influence& influence() const { return f_; }
  [[nodiscard]] double r() const { return r_; }

 private:
  Influence f_;
  double r_;
};

}  // namespace rtmac::core
