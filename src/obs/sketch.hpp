// Mergeable streaming quantile sketch (KLL-style compactor hierarchy).
//
// Fixed-bucket histograms need hand-picked bounds and give rank estimates
// only as good as the bucket layout; at the ROADMAP north-star scale
// (10^5-10^6 links x 10^9 intervals) the obs layer instead needs a
// memory-bounded summary with a distribution-independent rank guarantee.
// QuantileSketch keeps a hierarchy of weighted sample buffers: level l holds
// samples that each represent 2^l inputs. When a level fills it is sorted
// and every other sample (starting offset drawn from a seeded util::Rng
// coin stream) is promoted to the next level at doubled weight; an odd
// leftover survives in place, so total retained weight always equals the
// exact input count. Level 0 is sized by `exact_threshold`: until it first
// compacts, the sketch holds every sample and quantiles are exact.
//
// Determinism and mergeability:
//  - All randomness comes from the seeded compaction coin stream, so the
//    same input sequence under the same seed yields a bit-identical sketch
//    regardless of thread count or scheduling (the property the sweep
//    engine's byte-identical --jobs exports rely on).
//  - merge() is a pure union: it appends the other sketch's retained
//    weighted samples and commutative scalars without re-compacting, and
//    every exported statistic is computed from the sorted weighted-sample
//    multiset (sums are reduced in a canonical order). Merging a set of
//    sketches therefore yields byte-identical exports for ANY merge order
//    or grouping, at the cost of O(retained) memory per merged input.
//
// The update path performs zero steady-state allocations: all compactor
// levels are pre-sized at construction (CI-gated by BM_SketchUpdateAllocs,
// like the event queue's steady state).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace rtmac::obs {

/// Tuning knobs for QuantileSketch. Memory and rank error trade off through
/// `k`; `exact_threshold` sizes the exact-mode level-0 buffer.
struct SketchOptions {
  /// Per-level compactor capacity (>= 4, even). Larger k = smaller rank
  /// error and more memory; the default targets ~1% worst-case rank error.
  std::uint32_t k = 256;
  /// Level-0 capacity (>= 4, even). While the total sample count stays
  /// below this, no compaction has happened and quantiles are exact.
  std::uint32_t exact_threshold = 2048;
  /// Seed of the compaction coin stream. The registry mixes the instrument
  /// name into this so distinct sketches use independent streams while
  /// staying deterministic across runs and thread counts.
  std::uint64_t seed = 0x534b4554'43480001ULL;  // "SKETCH"-flavored default

  /// Rank-error budget the configuration is expected to meet: an estimate
  /// for quantile q lands within `rank_error()` of q in rank space. The
  /// constant is empirical with margin (property-tested on 10^7 samples in
  /// tests/obs/sketch_test.cpp); KLL-style coin-compaction concentrates far
  /// below the worst-case deterministic bound.
  [[nodiscard]] double rank_error() const { return 4.0 / static_cast<double>(k); }
};

/// Deterministic, memory-bounded, mergeable rank sketch. Single-threaded,
/// like every obs instrument (one per simulation task).
class QuantileSketch {
 public:
  /// Throws std::invalid_argument on k < 4, exact_threshold < 4, or odd
  /// values (even capacities keep weight-preserving compaction simple).
  explicit QuantileSketch(const SketchOptions& opts = {});

  /// Inserts one sample. Zero allocations (levels are pre-sized).
  void update(double v);

  /// Folds `other` into this sketch as a pure union of retained weighted
  /// samples (no re-compaction), so any merge order/grouping of a fixed set
  /// of sketches exports byte-identically. Allocates (grows the merged-
  /// sample buffer); not an update-hot-path operation.
  void merge(const QuantileSketch& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Exact-count-weighted sum, reduced in a canonical order over the own
  /// stream and every merged input so the bytes are merge-order-invariant.
  [[nodiscard]] double sum() const;
  [[nodiscard]] double min() const;   ///< NaN when empty
  [[nodiscard]] double max() const;   ///< NaN when empty
  [[nodiscard]] double mean() const;  ///< NaN when empty

  /// q is clamped to [0, 1]; q = 0 reports min(), q = 1 reports max();
  /// NaN q (or an empty sketch) returns NaN. The estimate is always one of
  /// the retained sample values (no interpolation), which keeps exports
  /// deterministic and merge-order-invariant.
  [[nodiscard]] double quantile(double q) const;

  /// True while every sample is still individually retained (level 0 has
  /// never compacted and only exact inputs were merged): quantiles are
  /// exact inverted-CDF values, not estimates.
  [[nodiscard]] bool exact() const { return exact_; }
  /// Number of retained weighted samples (levels + merged inputs).
  [[nodiscard]] std::size_t retained() const;
  [[nodiscard]] const SketchOptions& options() const { return opts_; }

 private:
  /// Enough levels for any reachable horizon: level l carries weight 2^l,
  /// so 48 levels cover > 10^16 samples before the top could fill.
  static constexpr std::size_t kMaxLevels = 48;

  struct Weighted {
    double value;
    std::uint64_t weight;
  };

  void compact(std::size_t level);
  /// Fills scratch_ with every retained weighted sample, sorted by value
  /// (ties by weight) — the canonical multiset view all estimates use.
  void gather() const;

  SketchOptions opts_;
  Rng coin_;
  std::vector<double> storage_;  ///< all levels, one flat pre-sized block
  std::array<std::uint32_t, kMaxLevels> offset_{};    ///< level start in storage_
  std::array<std::uint32_t, kMaxLevels> capacity_{};  ///< level slot count
  std::array<std::uint32_t, kMaxLevels> size_{};      ///< live samples per level

  std::uint64_t count_ = 0;
  double sum_ = 0.0;  ///< own update stream only; see sum()
  double min_ = 0.0;
  double max_ = 0.0;
  bool exact_ = true;

  std::vector<Weighted> merged_;     ///< union of merged inputs' samples
  std::vector<double> merged_sums_;  ///< each merged input's own-stream sum
  mutable std::vector<Weighted> scratch_;  ///< estimate workspace (lazy)
};

}  // namespace rtmac::obs
