#include "obs/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/check.hpp"

namespace rtmac::obs {

QuantileSketch::QuantileSketch(const SketchOptions& opts)
    : opts_{opts}, coin_{opts.seed, /*stream_id=*/0x434f494eULL /* "COIN" */} {
  if (opts.k < 4 || opts.k % 2 != 0) {
    throw std::invalid_argument{"QuantileSketch: k must be even and >= 4"};
  }
  if (opts.exact_threshold < 4 || opts.exact_threshold % 2 != 0) {
    throw std::invalid_argument{"QuantileSketch: exact_threshold must be even and >= 4"};
  }
  // Level capacities: level 0 is the exact buffer; every higher level must
  // hold its own trigger fill (k - 1) plus the largest batch one compaction
  // below can promote (ceil(capacity/2)), so a promotion can never overrun
  // the pre-sized block mid-cascade.
  std::uint32_t total = 0;
  for (std::size_t l = 0; l < kMaxLevels; ++l) {
    capacity_[l] = l == 0 ? opts.exact_threshold : opts.k + (capacity_[l - 1] + 1) / 2;
    offset_[l] = total;
    total += capacity_[l];
  }
  storage_.assign(total, 0.0);
}

void QuantileSketch::update(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  storage_[offset_[0] + size_[0]] = v;
  if (++size_[0] >= capacity_[0]) compact(0);
}

void QuantileSketch::compact(std::size_t level) {
  RTMAC_ASSERT(level + 1 < kMaxLevels, "sketch level hierarchy overflow");
  exact_ = false;
  double* base = storage_.data() + offset_[level];
  const std::uint32_t n = size_[level];
  std::sort(base, base + n);
  // Promote every other sample of the even prefix at doubled weight; the
  // coin picks which half survives, which is what keeps the estimator
  // unbiased. An odd leftover (the largest) stays behind at its own weight,
  // so retained weight stays exactly equal to the input count.
  const std::uint32_t survivors = n & 1U;
  const std::uint32_t even = n - survivors;
  const auto start = static_cast<std::uint32_t>(coin_.next_u64() & 1U);
  double* up = storage_.data() + offset_[level + 1];
  std::uint32_t up_n = size_[level + 1];
  for (std::uint32_t i = start; i < even; i += 2) up[up_n++] = base[i];
  if (survivors != 0) base[0] = base[n - 1];
  size_[level] = survivors;
  RTMAC_ASSERT(up_n <= capacity_[level + 1], "sketch promotion overran the level");
  size_[level + 1] = up_n;
  if (up_n >= opts_.k) compact(level + 1);  // levels >= 1 trigger at k
}

void QuantileSketch::merge(const QuantileSketch& other) {
  RTMAC_REQUIRE(&other != this, "cannot merge a sketch into itself");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  exact_ = exact_ && other.exact_;
  merged_.reserve(merged_.size() + other.retained());
  for (std::size_t l = 0; l < kMaxLevels; ++l) {
    const double* base = other.storage_.data() + other.offset_[l];
    const std::uint64_t weight = std::uint64_t{1} << l;
    for (std::uint32_t i = 0; i < other.size_[l]; ++i) {
      merged_.push_back(Weighted{base[i], weight});
    }
  }
  merged_.insert(merged_.end(), other.merged_.begin(), other.merged_.end());
  merged_sums_.push_back(other.sum_);
  merged_sums_.insert(merged_sums_.end(), other.merged_sums_.begin(),
                      other.merged_sums_.end());
}

double QuantileSketch::sum() const {
  if (merged_sums_.empty()) return sum_;
  // Reduce the own-stream sum and every merged input's sum in value order:
  // the component multiset is the same whatever the merge grouping was, so
  // the reduction (and its bytes) is too.
  std::vector<double> parts;
  parts.reserve(merged_sums_.size() + 1);
  parts.push_back(sum_);
  parts.insert(parts.end(), merged_sums_.begin(), merged_sums_.end());
  std::sort(parts.begin(), parts.end());
  double total = 0.0;
  for (const double p : parts) total += p;
  return total;
}

double QuantileSketch::min() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double QuantileSketch::max() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

double QuantileSketch::mean() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN()
                     : sum() / static_cast<double>(count_);
}

std::size_t QuantileSketch::retained() const {
  std::size_t total = merged_.size();
  for (std::size_t l = 0; l < kMaxLevels; ++l) total += size_[l];
  return total;
}

void QuantileSketch::gather() const {
  scratch_.clear();
  scratch_.reserve(retained());
  for (std::size_t l = 0; l < kMaxLevels; ++l) {
    const double* base = storage_.data() + offset_[l];
    const std::uint64_t weight = std::uint64_t{1} << l;
    for (std::uint32_t i = 0; i < size_[l]; ++i) {
      scratch_.push_back(Weighted{base[i], weight});
    }
  }
  scratch_.insert(scratch_.end(), merged_.begin(), merged_.end());
  std::sort(scratch_.begin(), scratch_.end(), [](const Weighted& a, const Weighted& b) {
    return a.value < b.value || (a.value == b.value && a.weight < b.weight);  // lint-ok: float-equality total order for determinism
  });
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0 || std::isnan(q)) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;

  gather();
  // Inverted-CDF rank over the weighted multiset (1-based, ceil — the same
  // convention Histogram::quantile uses); exact when every weight is 1.
  std::uint64_t total_weight = 0;
  for (const Weighted& w : scratch_) total_weight += w.weight;
  RTMAC_ASSERT(total_weight == count_, "retained weight drifted from the input count");
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_weight)));
  rank = std::clamp<std::uint64_t>(rank, 1, total_weight);
  std::uint64_t cumulative = 0;
  for (const Weighted& w : scratch_) {
    cumulative += w.weight;
    if (cumulative >= rank) return w.value;
  }
  return max_;  // unreachable: cumulative == total_weight >= rank by the end
}

}  // namespace rtmac::obs
