// Lightweight metrics registry for protocol-internal telemetry.
//
// PHY/MAC/net components register counters, gauges, and fixed-bucket
// histograms here and update them through cached handles, so an attached
// registry costs one pointer indirection per event and a detached one costs
// a single null check (the same zero-overhead contract sim::Tracer uses).
// The registry is single-threaded by design — each simulation task owns its
// own instance, exactly like the Simulator it observes — and exports
// deterministically ordered, schema-versioned JSONL for downstream tooling.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/sketch.hpp"

namespace rtmac::obs {

class StreamSink;

/// Version of the JSONL metrics schema; bumped on any format change so
/// downstream parsers can detect drift. The header line of every export
/// carries it: {"schema":"rtmac.metrics","version":N}.
/// v2: added the "sketch" record type (mergeable quantile sketches).
inline constexpr int kMetricsSchemaVersion = 2;

/// Writes the schema header line (callers emit it once per JSONL file).
void write_metrics_header(std::ostream& out);

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram with quantile readout.
///
/// `bounds` are ascending inclusive upper bounds; one implicit overflow
/// bucket (+inf) is always appended. Quantiles are estimated by linear
/// interpolation inside the bucket containing the target rank, clamped to
/// the observed [min, max]; with no samples quantile() returns NaN.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const;  ///< NaN when empty
  [[nodiscard]] double max() const;  ///< NaN when empty
  [[nodiscard]] double mean() const; ///< NaN when empty

  /// q is clamped to [0, 1]; q = 0 reports min(), q = 1 reports max().
  [[nodiscard]] double quantile(double q) const;

  /// Upper bounds, excluding the implicit +inf overflow bucket.
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// Folds `other` into this histogram (bucket counts, sum, min/max).
  /// Requires identical bounds — merging is only meaningful between
  /// instruments created from the same instrumentation point (e.g. the
  /// per-cell registries of a sharded run).
  void merge(const Histogram& other);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Evenly-log-spaced bounds helper for duration-like histograms:
/// {lo, lo*step, ...} until > hi. lo and step must be > 0, step > 1.
[[nodiscard]] std::vector<double> log_bounds(double lo, double hi, double step);

/// Owning registry. Handles returned by counter()/gauge()/histogram() are
/// stable for the registry's lifetime (components cache them). Repeated
/// registration under one name returns the same instrument; a histogram
/// re-registered with different bounds keeps the original bounds.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);
  /// Quantile sketch instrument. The instrument name is mixed into
  /// `opts.seed` so distinct sketches draw independent compaction-coin
  /// streams while staying deterministic across runs and --jobs. A sketch
  /// re-registered with different options keeps the original options.
  QuantileSketch& sketch(std::string_view name, const SketchOptions& opts = {});

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Folds every instrument of `other` into this registry, creating missing
  /// instruments on the fly: counters add, gauges last-write-win (the
  /// other's value is taken), histograms merge bucket-wise (same bounds
  /// required), sketches merge as pure unions. Used to combine the per-cell
  /// registries of a sharded run into one export; merging the same source
  /// twice double-counts, so callers merge exactly once at collect time.
  void merge_from(const MetricsRegistry& other);

  /// Starts streaming in-run snapshots: every `every`-th stream_tick()
  /// writes one full write_jsonl() snapshot (plus `context` and the tick's
  /// "k"/"t_ns" stamps on every line) into `sink`, followed by a flush.
  /// `sink` is not owned and must outlive the streaming window; nullptr
  /// detaches. `every` must be >= 1 (throws std::invalid_argument).
  void stream_to(StreamSink* sink, std::uint64_t every = 1, std::string context = {});
  [[nodiscard]] bool streaming() const { return stream_sink_ != nullptr; }

  /// Cadence gate, called by the interval loop at every interval boundary
  /// with the interval index and its sim-time end stamp. Emits a snapshot
  /// on every `every`-th call since stream_to(); no-op (one branch) when
  /// detached. Sim-time stamps only: wall-clock never enters the stream,
  /// so streamed files diff clean across --jobs.
  void stream_tick(std::uint64_t k, std::int64_t t_ns);

  /// One JSONL line per metric, in name order (deterministic). `context`,
  /// when non-empty, is a raw JSON fragment of extra fields — e.g.
  /// `"scheme":"LDF","x":0.4,"rep":0` — spliced into every line so a
  /// concatenated multi-run file stays self-describing. Callers are
  /// responsible for the header line (write_metrics_header) once per file.
  void write_jsonl(std::ostream& out, std::string_view context = {}) const;

 private:
  enum class Type : std::uint8_t { kCounter, kGauge, kHistogram, kSketch };
  struct Entry {
    Type type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<QuantileSketch> sketch;
  };

  // std::map keeps export order independent of registration order, which
  // keeps JSONL diffs stable when instrumentation points move around.
  std::map<std::string, Entry, std::less<>> entries_;

  // Streaming state (see stream_to/stream_tick).
  StreamSink* stream_sink_ = nullptr;
  std::uint64_t stream_every_ = 1;
  std::uint64_t stream_ticks_ = 0;
  std::string stream_context_;
};

/// "link3" etc. — the per-link naming convention used by all instrumented
/// components, e.g. link_metric("phy.tx_data", 3) == "phy.tx_data.link3".
[[nodiscard]] std::string link_metric(std::string_view base, std::uint32_t link);

/// "node3" etc. — the per-device naming convention for sense-view metrics,
/// e.g. node_metric("medium.busy_fraction", 3) == "medium.busy_fraction.node3".
/// Distinct from link_metric because a node's carrier-sense view aggregates
/// other links' activity, not its own traffic.
[[nodiscard]] std::string node_metric(std::string_view base, std::uint32_t node);

}  // namespace rtmac::obs
