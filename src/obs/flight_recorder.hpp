// Crash flight recorder: a postmortem artifact for contract failures.
//
// A billion-interval run that trips RTMAC_REQUIRE/RTMAC_ASSERT hours in
// leaves nothing but an abort message; the flight recorder turns that into
// a JSONL dump of (a) the failing contract, (b) a fixed-capacity ring of
// the most recent protocol trace events, and (c) the latest metrics
// snapshot. It plugs into util/check's dump hook, which runs before the
// failure handler throws or the process aborts, so the artifact is written
// in both the test path and the production abort path.
//
// Lifecycle:
//   obs::FlightRecorder recorder{"crash/flightrec.jsonl"};
//   network.attach_tracer(&recorder.ring());   // recent-event ring
//   recorder.watch(&registry);                 // latest metrics snapshot
//   recorder.arm();                            // installs the dump hook
//   network.run(huge_horizon);                 // a failure dumps + aborts
//   recorder.disarm();                         // clean end: no artifact
//
// One recorder may be armed at a time (the hook is process-wide); the
// destructor disarms, so scope-bound usage cannot leak the hook.
//
// Threading: arm()/disarm() run on the owning thread; the dump hook can
// fire on any pool worker (a contract failure inside a sweep task), so the
// armed-recorder global is an atomic pointer. The ring itself is
// single-writer by construction — it is attached to exactly one engine,
// and each engine is advanced by exactly one thread at a time (see
// DESIGN.md §5c); dump() reads it only on the failing thread, after the
// failure has stopped that engine's event loop.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "sim/trace.hpp"

namespace rtmac::obs {

/// Version of the flight-recorder dump schema; the header line carries it:
/// {"schema":"rtmac.flightrec","version":N}.
inline constexpr int kFlightRecorderSchemaVersion = 1;

/// Default ring bound: enough recent protocol history to see the few
/// intervals leading into a failure without unbounded memory.
inline constexpr std::size_t kFlightRecorderRingCapacity = 4096;

class FlightRecorder {
 public:
  explicit FlightRecorder(std::string dump_path,
                          std::size_t ring_capacity = kFlightRecorderRingCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();  ///< disarms if still armed

  /// The recent-event ring; attach it via Network::attach_tracer (or feed
  /// it directly). Bounded, so arbitrarily long runs keep only the tail.
  [[nodiscard]] sim::Tracer& ring() { return ring_; }

  /// Registry whose current state is snapshotted into the dump (not owned;
  /// nullptr = no metrics section). Must outlive the armed window.
  void watch(const MetricsRegistry* registry) { registry_ = registry; }

  /// Installs this recorder as the process-wide check dump hook.
  /// Precondition: no other FlightRecorder is armed.
  void arm();
  /// Uninstalls the hook; safe to call when not armed.
  void disarm();
  [[nodiscard]] bool armed() const;

  /// Writes the dump file: schema header, the failure record, the ring
  /// events (oldest first), then one line per metric. Returns false when
  /// the file cannot be written (never throws — this runs on the failure
  /// path). Also callable directly, e.g. from a signal-adjacent wrapper.
  bool dump(const char* kind, const char* expr, const char* file, int line,
            const std::string& message) const;

  [[nodiscard]] const std::string& dump_path() const { return dump_path_; }

 private:
  static void dump_hook(const char* kind, const char* expr, const char* file, int line,
                        const std::string& message);

  std::string dump_path_;
  sim::Tracer ring_;
  const MetricsRegistry* registry_ = nullptr;
};

}  // namespace rtmac::obs
