#include "obs/stream.hpp"

#include <filesystem>

#include "obs/json.hpp"

namespace rtmac::obs {

void write_stream_header(std::ostream& out) {
  out << JsonObject{}
             .field("schema", "rtmac.metrics-stream")
             .field("version", kMetricsStreamSchemaVersion)
             .str()
      << '\n';
}

FileStreamSink::FileStreamSink(const std::string& path) {
  if (const auto parent = std::filesystem::path{path}.parent_path(); !parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  out_.open(path);
}

}  // namespace rtmac::obs
