#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace rtmac::obs {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) return "null";
  return std::string(buf, end);
}

std::string json_number(std::int64_t v) { return std::to_string(v); }
std::string json_number(std::uint64_t v) { return std::to_string(v); }

void JsonObject::key(std::string_view k) {
  if (body_.size() > 1) body_ += ',';
  body_ += json_quote(k);
  body_ += ':';
}

JsonObject& JsonObject::field(std::string_view k, std::string_view v) {
  key(k);
  body_ += json_quote(v);
  return *this;
}

JsonObject& JsonObject::field(std::string_view k, double v) {
  key(k);
  body_ += json_number(v);
  return *this;
}

JsonObject& JsonObject::field(std::string_view k, std::int64_t v) {
  key(k);
  body_ += json_number(v);
  return *this;
}

JsonObject& JsonObject::field(std::string_view k, std::uint64_t v) {
  key(k);
  body_ += json_number(v);
  return *this;
}

JsonObject& JsonObject::raw(std::string_view k, std::string_view json_value) {
  key(k);
  body_ += json_value;
  return *this;
}

namespace {

void skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) ++i;
}

/// Span of one JSON value starting at `i` (strings, numbers, literals, and
/// bracketed spans with bracket counting; nested strings handled).
bool scan_value(std::string_view s, std::size_t& i, std::string& out) {
  const std::size_t start = i;
  if (i >= s.size()) return false;
  if (s[i] == '"') {
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') ++i;
      ++i;
    }
    if (i >= s.size()) return false;
    ++i;  // closing quote
  } else if (s[i] == '[' || s[i] == '{') {
    int depth = 0;
    while (i < s.size()) {
      const char c = s[i];
      if (c == '"') {
        ++i;
        while (i < s.size() && s[i] != '"') {
          if (s[i] == '\\') ++i;
          ++i;
        }
        if (i >= s.size()) return false;
      } else if (c == '[' || c == '{') {
        ++depth;
      } else if (c == ']' || c == '}') {
        --depth;
        if (depth == 0) {
          ++i;
          break;
        }
      }
      ++i;
    }
    if (depth != 0) return false;
  } else {
    while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ' ' && s[i] != '\t') ++i;
  }
  if (i == start) return false;
  out.assign(s.substr(start, i - start));
  return true;
}

}  // namespace

std::optional<std::map<std::string, std::string>> parse_flat_json(std::string_view line) {
  std::map<std::string, std::string> out;
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') return std::nullopt;
  ++i;
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') {
    ++i;
    skip_ws(line, i);
    return i == line.size() ? std::optional{out} : std::nullopt;
  }
  while (true) {
    skip_ws(line, i);
    std::string key_text;
    if (!scan_value(line, i, key_text)) return std::nullopt;
    const auto key = json_unquote(key_text);
    if (!key) return std::nullopt;
    skip_ws(line, i);
    if (i >= line.size() || line[i] != ':') return std::nullopt;
    ++i;
    skip_ws(line, i);
    std::string value_text;
    if (!scan_value(line, i, value_text)) return std::nullopt;
    out[*key] = std::move(value_text);
    skip_ws(line, i);
    if (i >= line.size()) return std::nullopt;
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') {
      ++i;
      skip_ws(line, i);
      return i == line.size() ? std::optional{out} : std::nullopt;
    }
    return std::nullopt;
  }
}

std::optional<std::string> json_unquote(std::string_view s) {
  if (s.size() < 2 || s.front() != '"' || s.back() != '"') return std::nullopt;
  std::string out;
  out.reserve(s.size() - 2);
  for (std::size_t i = 1; i + 1 < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    ++i;
    if (i + 1 >= s.size()) return std::nullopt;  // escape runs into the closing quote
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 >= s.size()) return std::nullopt;
        unsigned code = 0;
        for (int d = 1; d <= 4; ++d) {
          const char c = s[i + static_cast<std::size_t>(d)];
          code <<= 4;
          if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
          else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
          else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
          else return std::nullopt;
        }
        if (code > 0x7f) return std::nullopt;  // ASCII escapes only (our own output)
        out += static_cast<char>(code);
        i += 4;
        break;
      }
      default: return std::nullopt;
    }
  }
  return out;
}

}  // namespace rtmac::obs
