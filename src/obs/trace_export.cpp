#include "obs/trace_export.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "obs/json.hpp"

namespace rtmac::obs {

namespace {

using sim::TraceEvent;
using sim::TraceKind;

std::string_view outcome_name(std::int64_t outcome) {
  switch (outcome) {
    case 0: return "delivered";
    case 1: return "channel-loss";
    case 2: return "collision";
    default: return "?";
  }
}

/// Chrome trace thread id for an event: interval boundaries get track 0,
/// link n gets track n + 1.
std::int64_t chrome_tid(const TraceEvent& e) {
  return e.link == sim::kNoLink ? 0 : static_cast<std::int64_t>(e.link) + 1;
}

double chrome_ts_us(const TraceEvent& e) {
  return static_cast<double>(e.time.ns()) / 1e3;
}

}  // namespace

void write_trace_jsonl(std::ostream& out, const sim::Tracer& tracer) {
  out << JsonObject{}
             .field("schema", "rtmac.trace")
             .field("version", sim::kTraceSchemaVersion)
             .field("total", static_cast<std::uint64_t>(tracer.total_recorded()))
             .field("dropped", static_cast<std::uint64_t>(tracer.dropped()))
             .str()
      << '\n';
  for (const auto& e : tracer.events()) {
    JsonObject line;
    line.field("t_ns", e.time.ns()).field("kind", to_string(e.kind));
    if (e.link != sim::kNoLink) line.field("link", static_cast<std::int64_t>(e.link));
    line.field("a", e.a).field("b", e.b);
    out << line.str() << '\n';
  }
}

void write_chrome_trace(std::ostream& out, const sim::Tracer& tracer) {
  out << "{\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&](const std::string& event_json) {
    if (!first) out << ",\n";
    first = false;
    out << event_json;
  };

  // Track naming. Track 0 carries interval boundaries; track n+1 is link n.
  emit(JsonObject{}
           .field("name", "process_name")
           .field("ph", "M")
           .field("pid", 0)
           .raw("args", JsonObject{}.field("name", "rtmac").str())
           .str());
  std::map<std::int64_t, bool> tid_named;
  const auto name_tid = [&](std::int64_t tid) {
    if (tid_named[tid]) return;
    tid_named[tid] = true;
    const std::string label =
        tid == 0 ? std::string{"intervals"} : "link " + std::to_string(tid - 1);
    emit(JsonObject{}
             .field("name", "thread_name")
             .field("ph", "M")
             .field("pid", 0)
             .field("tid", tid)
             .raw("args", JsonObject{}.field("name", label).str())
             .str());
  };

  const auto slice = [&](const TraceEvent& e, std::string_view ph, std::string_view name,
                         std::string args_json) {
    const std::int64_t tid = chrome_tid(e);
    name_tid(tid);
    JsonObject ev;
    ev.field("name", name)
        .field("cat", to_string(e.kind))
        .field("ph", ph)
        .field("ts", chrome_ts_us(e))
        .field("pid", 0)
        .field("tid", tid);
    if (!args_json.empty()) ev.raw("args", args_json);
    emit(ev.str());
  };

  // A ring-bounded trace can open mid-slice; track open B/E depth per tid so
  // the output never contains unmatched begins/ends (Perfetto rejects some
  // malformed nestings outright).
  std::map<std::int64_t, int> open_depth;
  TimePoint last_time = TimePoint::origin();

  for (const auto& e : tracer.events()) {
    last_time = std::max(last_time, e.time);
    switch (e.kind) {
      case TraceKind::kIntervalStart:
        slice(e, "B", "interval", JsonObject{}.field("k", e.a).str());
        ++open_depth[chrome_tid(e)];
        break;
      case TraceKind::kIntervalEnd:
        if (open_depth[chrome_tid(e)] > 0) {
          --open_depth[chrome_tid(e)];
          slice(e, "E", "interval", {});
        } else {
          slice(e, "i", "interval-end", JsonObject{}.field("k", e.a).str());
        }
        break;
      case TraceKind::kTxStart:
        slice(e, "B", e.b != 0 ? "empty-tx" : "tx",
              JsonObject{}.field("airtime_ns", e.a).str());
        ++open_depth[chrome_tid(e)];
        break;
      case TraceKind::kTxEnd:
        if (open_depth[chrome_tid(e)] > 0) {
          --open_depth[chrome_tid(e)];
          slice(e, "E", e.b != 0 ? "empty-tx" : "tx",
                JsonObject{}.field("outcome", outcome_name(e.a)).str());
        } else {
          slice(e, "i", "tx-end", JsonObject{}.field("outcome", outcome_name(e.a)).str());
        }
        break;
      case TraceKind::kBackoffArmed:
      case TraceKind::kBackoffFrozen:
      case TraceKind::kBackoffResumed:
        slice(e, "i", to_string(e.kind), JsonObject{}.field("count", e.a).str());
        break;
      case TraceKind::kBackoffExpired:
        slice(e, "i", to_string(e.kind), {});
        break;
      case TraceKind::kSwapUp:
      case TraceKind::kSwapDown:
        slice(e, "i", to_string(e.kind),
              JsonObject{}.field("old_priority", e.a).field("new_priority", e.b).str());
        break;
    }
  }

  // Close any slice left open at the end of the capture window.
  for (const auto& [tid, depth] : open_depth) {
    for (int d = 0; d < depth; ++d) {
      JsonObject ev;
      ev.field("name", "(truncated)")
          .field("ph", "E")
          .field("ts", static_cast<double>(last_time.ns()) / 1e3)
          .field("pid", 0)
          .field("tid", tid);
      emit(ev.str());
    }
  }

  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":"
      << JsonObject{}
             .field("schema", "rtmac.trace")
             .field("version", sim::kTraceSchemaVersion)
             .field("total", static_cast<std::uint64_t>(tracer.total_recorded()))
             .field("dropped", static_cast<std::uint64_t>(tracer.dropped()))
             .str()
      << "}\n";
}

}  // namespace rtmac::obs
