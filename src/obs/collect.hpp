// End-of-run metric snapshots: derived rates and ratios that components do
// not maintain live.
//
// Live instrumentation (phy::Medium, mac::BackoffEngine, net::Network with
// an attached registry) covers raw event counts and per-interval gauges;
// this collector adds the derived quantities the paper's figures are built
// from — per-link delivery and collision rates, channel busy fraction,
// total deficiency — plus simulator engine statistics. Calling it on a
// network that never had a registry attached is also valid: it reads only
// the always-on accounting (MediumCounters, LinkStatsCollector,
// DebtTracker), so metrics can be produced with zero in-run overhead.
#pragma once

#include "obs/metrics.hpp"

namespace rtmac::net {
class Network;
}

namespace rtmac::obs {

/// Snapshots the run's derived metrics into `registry`:
///   link.delivery_rate.linkN    delivered / arrivals (gauge, 1.0 when idle)
///   link.collision_rate.linkN   collided tx / started tx (gauge)
///   link.timely_throughput.linkN, link.debt.linkN (gauges)
///   phy.busy_fraction, phy.collided_fraction (gauges, of virtual time)
///   phy.tx_data, phy.tx_empty, phy.delivered, phy.collisions,
///   phy.channel_losses (counters)
///   net.deficiency, net.intervals (gauges)
///   sim.events_executed (counter), sim.virtual_seconds (gauge)
void collect_network_metrics(MetricsRegistry& registry, const net::Network& network);

}  // namespace rtmac::obs
