#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/stream.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rtmac::obs {

void write_metrics_header(std::ostream& out) {
  out << JsonObject{}
             .field("schema", "rtmac.metrics")
             .field("version", kMetricsSchemaVersion)
             .str()
      << '\n';
}

Histogram::Histogram(std::vector<double> bounds) : bounds_{std::move(bounds)} {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument{"Histogram: bounds must be ascending"};
  }
  counts_.assign(bounds_.size() + 1, 0);  // +1: implicit +inf overflow bucket
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void Histogram::merge(const Histogram& other) {
  RTMAC_REQUIRE(bounds_ == other.bounds_, "Histogram::merge: bounds differ");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::min() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double Histogram::max() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

double Histogram::mean() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN()
                     : sum_ / static_cast<double>(count_);
}

double Histogram::quantile(double q) const {
  // NaN q would otherwise survive std::clamp (both comparisons are false)
  // and reach the integer rank cast, which is undefined behaviour.
  if (count_ == 0 || std::isnan(q)) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;

  // Rank of the target sample (1-based, ceil: the standard inverted-CDF
  // definition), then linear interpolation across the containing bucket.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += counts_[b];
    if (cumulative < rank) continue;
    // Bucket b holds the target rank. Its value range, clamped to observed
    // extremes so estimates never leave [min, max].
    const double lo = std::max(min_, b == 0 ? min_ : bounds_[b - 1]);
    const double hi = std::min(max_, b < bounds_.size() ? bounds_[b] : max_);
    const double within =
        (static_cast<double>(rank - before)) / static_cast<double>(counts_[b]);
    return lo + (hi - lo) * within;
  }
  return max_;  // unreachable: cumulative == count_ >= rank by the end
}

std::vector<double> log_bounds(double lo, double hi, double step) {
  if (!(lo > 0.0) || !(step > 1.0)) {
    throw std::invalid_argument{"log_bounds: need lo > 0 and step > 1"};
  }
  std::vector<double> out;
  for (double b = lo; b <= hi; b *= step) out.push_back(b);
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.type = Type::kCounter;
    e.counter = std::make_unique<Counter>();
    it = entries_.emplace(std::string{name}, std::move(e)).first;
  }
  RTMAC_REQUIRE(it->second.type == Type::kCounter, "metric re-registered as a different type");
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.type = Type::kGauge;
    e.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(std::string{name}, std::move(e)).first;
  }
  RTMAC_REQUIRE(it->second.type == Type::kGauge, "metric re-registered as a different type");
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.type = Type::kHistogram;
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = entries_.emplace(std::string{name}, std::move(e)).first;
  }
  RTMAC_REQUIRE(it->second.type == Type::kHistogram, "metric re-registered as a different type");
  return *it->second.histogram;
}

QuantileSketch& MetricsRegistry::sketch(std::string_view name, const SketchOptions& opts) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    // Mix the instrument name into the coin seed: distinct sketches get
    // independent streams, while the result stays a pure function of
    // (options, name) — deterministic across runs and thread counts.
    std::uint64_t name_hash = 1469598103934665603ULL;  // FNV-1a
    for (const char c : name) {
      name_hash ^= static_cast<unsigned char>(c);
      name_hash *= 1099511628211ULL;
    }
    SketchOptions seeded = opts;
    seeded.seed = mix64(opts.seed, name_hash);
    Entry e;
    e.type = Type::kSketch;
    e.sketch = std::make_unique<QuantileSketch>(seeded);
    it = entries_.emplace(std::string{name}, std::move(e)).first;
  }
  RTMAC_REQUIRE(it->second.type == Type::kSketch, "metric re-registered as a different type");
  return *it->second.sketch;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, entry] : other.entries_) {
    switch (entry.type) {
      case Type::kCounter:
        counter(name).inc(entry.counter->value());
        break;
      case Type::kGauge:
        gauge(name).set(entry.gauge->value());
        break;
      case Type::kHistogram:
        histogram(name, entry.histogram->bounds()).merge(*entry.histogram);
        break;
      case Type::kSketch:
        sketch(name, entry.sketch->options()).merge(*entry.sketch);
        break;
    }
  }
}

namespace {

std::string json_array(const std::vector<double>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ',';
    out += json_number(xs[i]);
  }
  return out + "]";
}

std::string json_array(const std::vector<std::uint64_t>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ',';
    out += json_number(xs[i]);
  }
  return out + "]";
}

}  // namespace

void MetricsRegistry::write_jsonl(std::ostream& out, std::string_view context) const {
  for (const auto& [name, entry] : entries_) {
    JsonObject line;
    line.field("name", name);
    switch (entry.type) {
      case Type::kCounter:
        line.field("type", "counter").field("value", entry.counter->value());
        break;
      case Type::kGauge:
        line.field("type", "gauge").field("value", entry.gauge->value());
        break;
      case Type::kHistogram: {
        const Histogram& h = *entry.histogram;
        line.field("type", "histogram")
            .field("count", h.count())
            .field("sum", h.sum())
            .field("min", h.min())
            .field("max", h.max())
            .field("p50", h.quantile(0.50))
            .field("p90", h.quantile(0.90))
            .field("p99", h.quantile(0.99))
            .raw("bounds", json_array(h.bounds()))
            .raw("counts", json_array(h.bucket_counts()));
        break;
      }
      case Type::kSketch: {
        const QuantileSketch& s = *entry.sketch;
        line.field("type", "sketch")
            .field("count", s.count())
            .field("sum", s.sum())
            .field("min", s.min())
            .field("max", s.max())
            .field("p50", s.quantile(0.50))
            .field("p90", s.quantile(0.90))
            .field("p99", s.quantile(0.99))
            .field("k", static_cast<std::uint64_t>(s.options().k))
            .field("retained", static_cast<std::uint64_t>(s.retained()))
            .field("exact", static_cast<std::int64_t>(s.exact() ? 1 : 0));
        break;
      }
    }
    std::string text = line.str();
    if (!context.empty()) {
      // Splice the caller's context fields before the closing brace.
      text.pop_back();
      text += ',';
      text += context;
      text += '}';
    }
    out << text << '\n';
  }
}

void MetricsRegistry::stream_to(StreamSink* sink, std::uint64_t every, std::string context) {
  if (every == 0) throw std::invalid_argument{"stream_to: cadence must be >= 1"};
  stream_sink_ = sink;
  stream_every_ = every;
  stream_ticks_ = 0;
  stream_context_ = std::move(context);
}

void MetricsRegistry::stream_tick(std::uint64_t k, std::int64_t t_ns) {
  if (stream_sink_ == nullptr) return;
  if (++stream_ticks_ % stream_every_ != 0) return;
  std::string context;
  if (!stream_context_.empty()) {
    context = stream_context_;
    context += ',';
  }
  context += "\"k\":";
  context += json_number(k);
  context += ",\"t_ns\":";
  context += json_number(t_ns);
  write_jsonl(stream_sink_->stream(), context);
  stream_sink_->flush();
}

std::string link_metric(std::string_view base, std::uint32_t link) {
  std::string out{base};
  out += ".link";
  out += std::to_string(link);
  return out;
}

std::string node_metric(std::string_view base, std::uint32_t node) {
  std::string out{base};
  out += ".node";
  out += std::to_string(node);
  return out;
}

}  // namespace rtmac::obs
