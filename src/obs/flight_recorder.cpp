#include "obs/flight_recorder.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace rtmac::obs {

namespace {

/// The armed recorder. util/check's dump hook is a plain function pointer,
/// so the instance travels through this. Atomic because arming happens on
/// the main thread while the failure path (dump_hook) can fire on any pool
/// worker; the hook body itself is already serialized by check_detail::fail.
std::atomic<FlightRecorder*> g_armed{nullptr};

}  // namespace

FlightRecorder::FlightRecorder(std::string dump_path, std::size_t ring_capacity)
    : dump_path_{std::move(dump_path)}, ring_{ring_capacity} {}

FlightRecorder::~FlightRecorder() { disarm(); }

void FlightRecorder::arm() {
  FlightRecorder* const current = g_armed.load(std::memory_order_acquire);
  RTMAC_REQUIRE(current == nullptr || current == this,
                "another FlightRecorder is already armed");
  g_armed.store(this, std::memory_order_release);
  set_check_dump_hook(&FlightRecorder::dump_hook);
}

void FlightRecorder::disarm() {
  FlightRecorder* expected = this;
  if (!g_armed.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel)) {
    return;
  }
  set_check_dump_hook(nullptr);
}

bool FlightRecorder::armed() const {
  return g_armed.load(std::memory_order_acquire) == this;
}

void FlightRecorder::dump_hook(const char* kind, const char* expr, const char* file,
                               int line, const std::string& message) {
  FlightRecorder* const armed = g_armed.load(std::memory_order_acquire);
  if (armed != nullptr) armed->dump(kind, expr, file, line, message);
}

bool FlightRecorder::dump(const char* kind, const char* expr, const char* file, int line,
                          const std::string& message) const {
  if (const auto parent = std::filesystem::path{dump_path_}.parent_path();
      !parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  std::ofstream out{dump_path_};
  if (!out) return false;

  out << JsonObject{}
             .field("schema", "rtmac.flightrec")
             .field("version", kFlightRecorderSchemaVersion)
             .str()
      << '\n';
  out << JsonObject{}
             .field("record", "failure")
             .field("kind", kind)
             .field("expr", expr)
             .field("file", file)
             .field("line", line)
             .field("message", message)
             .field("trace_events", static_cast<std::uint64_t>(ring_.events().size()))
             .field("trace_dropped", static_cast<std::uint64_t>(ring_.dropped()))
             .str()
      << '\n';
  for (const sim::TraceEvent& e : ring_.events()) {
    out << JsonObject{}
               .field("record", "trace")
               .field("t_ns", e.time.ns())
               .field("kind", sim::to_string(e.kind))
               .field("link", e.link == sim::kNoLink ? std::int64_t{-1}
                                                     : static_cast<std::int64_t>(e.link))
               .field("a", e.a)
               .field("b", e.b)
               .str()
        << '\n';
  }
  if (registry_ != nullptr) registry_->write_jsonl(out, "\"record\":\"metric\"");
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace rtmac::obs
