#include "obs/collect.hpp"

#include "mac/dp_link_mac.hpp"
#include "net/network.hpp"
#include "stats/deficiency.hpp"
#include "util/check.hpp"

namespace rtmac::obs {

void collect_network_metrics(MetricsRegistry& registry, const net::Network& network) {
  // All channel/engine reads go through the Network facades, which serve the
  // legacy single-engine path directly and aggregate per-cell state (by
  // global link id) on the sharded path.
  const phy::MediumCounters counters = network.medium_counters();
  const auto& stats = network.stats();
  const double sim_seconds = network.now().seconds_f();

  registry.counter("phy.tx_data").inc(counters.data_tx);
  registry.counter("phy.tx_empty").inc(counters.empty_tx);
  registry.counter("phy.delivered").inc(counters.delivered);
  registry.counter("phy.collisions").inc(counters.collisions);
  registry.counter("phy.channel_losses").inc(counters.channel_losses);
  // Occupancy must come from the global sense view (union of busy periods):
  // counters.busy_time sums per-transmission airtime, so overlapping
  // (colliding) transmissions double-count and the "fraction" exceeds 1.
  // (Sharded runs sum per-cell views — see Network::global_sense_busy_time.)
  registry.gauge("phy.busy_fraction")
      .set(sim_seconds > 0.0 ? network.global_sense_busy_time().seconds_f() / sim_seconds
                             : 0.0);
  // Summed airtime over sim time: > busy_fraction measures overlap, and the
  // empty-packet share of it is the DP priority-claim overhead.
  registry.gauge("phy.airtime_fraction")
      .set(sim_seconds > 0.0 ? counters.busy_time.seconds_f() / sim_seconds : 0.0);
  registry.gauge("phy.collided_fraction")
      .set(sim_seconds > 0.0 ? counters.collided_time.seconds_f() / sim_seconds : 0.0);

  const std::size_t n_links = network.config().num_links();
  for (LinkId n = 0; n < n_links; ++n) {
    const auto& lc = network.link_counters(n);
    const std::uint64_t tx = lc.data_tx + lc.empty_tx;
    registry.gauge(link_metric("link.delivery_rate", n)).set(stats.delivery_ratio(n));
    registry.gauge(link_metric("link.collision_rate", n))
        .set(tx > 0 ? static_cast<double>(lc.collisions) / static_cast<double>(tx) : 0.0);
    registry.gauge(link_metric("link.timely_throughput", n)).set(stats.timely_throughput(n));
    registry.gauge(link_metric("link.debt", n)).set(network.debts().debt(n));
    // The node's carrier-sense view: fraction of sim time during which some
    // link it can hear (itself included) was on the air. On a complete
    // topology every node's value equals the global phy.busy_fraction; under
    // partial sensing they diverge — the gap is what the hidden terminal
    // cannot hear. Exact on both engines: cross-cell cut activity is
    // injected into the listening views at window barriers.
    registry.gauge(node_metric("medium.busy_fraction", n))
        .set(sim_seconds > 0.0 ? network.node_sense_busy_time(n).seconds_f() / sim_seconds
                               : 0.0);
    // Who this link actually collided with: the owning Medium's pair ledger
    // for intra-cell pairs, the cut resolver's ledger for cross-cell pairs.
    std::uint64_t partners = 0;
    for (LinkId other = 0; other < n_links; ++other) {
      const std::uint64_t pairs = network.collision_pair_count(n, other);
      if (other != n && pairs > 0) ++partners;
      // Emit each unordered pair once (self-pairs cover same-link overlap).
      if (other >= n && pairs > 0) {
        registry.counter(link_metric(link_metric("phy.collision_pair", n), other)).inc(pairs);
      }
    }
    registry.gauge(link_metric("link.collision_partners", n))
        .set(static_cast<double>(partners));
  }

  // DP-specific state, read straight from the batch kernel's SoA arrays
  // (DESIGN §4g): the current priority permutation and the last interval's
  // backoff counts, plus whether the batch path (vs the scalar reference
  // path) served the run. Sharded runs hold one DpScheme per cell; kernel
  // indices are cell-local, so names are mapped through cell_links.
  for (std::size_t ci = 0; ci < network.cell_count(); ++ci) {
    const auto* dp = dynamic_cast<const mac::DpScheme*>(&network.cell_scheme(ci));
    if (dp == nullptr) continue;
    if (ci == 0) registry.gauge("mac.dp.batch_path").set(dp->batch_path() ? 1.0 : 0.0);
    const mac::DpBatchKernel& kernel = dp->kernel();
    const std::span<const LinkId> links = network.cell_links(ci);
    for (std::size_t j = 0; j < links.size(); ++j) {
      registry.gauge(link_metric("mac.dp.priority", links[j]))
          .set(static_cast<double>(kernel.priority(static_cast<LinkId>(j))));
      registry.gauge(link_metric("mac.dp.backoff_slots", links[j]))
          .set(static_cast<double>(kernel.backoff_count(static_cast<LinkId>(j))));
    }
  }

  // Per-cell medium/MAC instruments (busy-period histograms, access-delay
  // sketches, ...) live in private registries on the sharded path; fold
  // them in exactly once, here. No-op on the legacy path.
  network.merge_cell_metrics_into(registry);

  if (network.sharded()) {
    registry.gauge("net.cells").set(static_cast<double>(network.cell_count()));
    registry.gauge("net.groups").set(static_cast<double>(network.group_count()));
    registry.counter("sim.coordinator_rounds").inc(network.coordinator_rounds());
  }

  // Per-subsystem byte accounting (DESIGN §4j): mem.arena_* describe the
  // shared arena itself; the per-subsystem gauges attribute the bytes to
  // whoever asked for them (arena spans count under their subsystem).
  // Process-wide peak RSS is deliberately NOT exported here — it depends on
  // what else the process did and would break byte-identical metrics files
  // across --jobs counts; it belongs to the bench reports and the sweep
  // progress heartbeat (util::peak_rss_kb()).
  {
    const net::Network::MemoryBreakdown mem = network.memory_breakdown();
    registry.gauge("mem.arena_reserved_bytes").set(static_cast<double>(mem.arena_reserved));
    registry.gauge("mem.arena_used_bytes").set(static_cast<double>(mem.arena_used));
    registry.gauge("mem.arrivals_bytes").set(static_cast<double>(mem.arrivals));
    registry.gauge("mem.sim_events_bytes").set(static_cast<double>(mem.sim_events));
    registry.gauge("mem.phy_bytes").set(static_cast<double>(mem.phy));
    registry.gauge("mem.mac_bytes").set(static_cast<double>(mem.mac));
  }

  registry.gauge("net.deficiency")
      .set(stats::total_deficiency(stats, network.config().requirements.q()));
  registry.gauge("net.intervals").set(static_cast<double>(stats.intervals()));
  registry.counter("sim.events_executed").inc(network.events_executed());
  registry.gauge("sim.virtual_seconds").set(sim_seconds);
  // Event-storage growth after the NetworkConfig-derived reserve; 0 proves
  // the engine ran the whole experiment without touching the allocator for
  // its own bookkeeping (summed over cells on the sharded path).
  registry.counter("engine.events.reallocs").inc(network.event_reallocs());
  // Contract-failure count (util/check.hpp). Almost always zero — a failure
  // aborts unless a test handler intervened — but exporting it means any run
  // that *did* survive a handled failure is visibly tainted in its metrics.
  registry.counter("checks.failed").inc(check_failures());
}

}  // namespace rtmac::obs
