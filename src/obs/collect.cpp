#include "obs/collect.hpp"

#include "mac/dp_link_mac.hpp"
#include "net/network.hpp"
#include "stats/deficiency.hpp"
#include "util/check.hpp"

namespace rtmac::obs {

void collect_network_metrics(MetricsRegistry& registry, const net::Network& network) {
  const auto& counters = network.medium().counters();
  const auto& stats = network.stats();
  const double sim_seconds = network.simulator().now().seconds_f();

  registry.counter("phy.tx_data").inc(counters.data_tx);
  registry.counter("phy.tx_empty").inc(counters.empty_tx);
  registry.counter("phy.delivered").inc(counters.delivered);
  registry.counter("phy.collisions").inc(counters.collisions);
  registry.counter("phy.channel_losses").inc(counters.channel_losses);
  // Occupancy must come from the global sense view (union of busy periods):
  // counters.busy_time sums per-transmission airtime, so overlapping
  // (colliding) transmissions double-count and the "fraction" exceeds 1.
  registry.gauge("phy.busy_fraction")
      .set(sim_seconds > 0.0
               ? network.medium().sense_busy_time(phy::Medium::kAllNodes).seconds_f() /
                     sim_seconds
               : 0.0);
  // Summed airtime over sim time: > busy_fraction measures overlap, and the
  // empty-packet share of it is the DP priority-claim overhead.
  registry.gauge("phy.airtime_fraction")
      .set(sim_seconds > 0.0 ? counters.busy_time.seconds_f() / sim_seconds : 0.0);
  registry.gauge("phy.collided_fraction")
      .set(sim_seconds > 0.0 ? counters.collided_time.seconds_f() / sim_seconds : 0.0);

  const std::size_t n_links = network.config().num_links();
  for (LinkId n = 0; n < n_links; ++n) {
    const auto& lc = network.medium().link_counters(n);
    const std::uint64_t tx = lc.data_tx + lc.empty_tx;
    registry.gauge(link_metric("link.delivery_rate", n)).set(stats.delivery_ratio(n));
    registry.gauge(link_metric("link.collision_rate", n))
        .set(tx > 0 ? static_cast<double>(lc.collisions) / static_cast<double>(tx) : 0.0);
    registry.gauge(link_metric("link.timely_throughput", n)).set(stats.timely_throughput(n));
    registry.gauge(link_metric("link.debt", n)).set(network.debts().debt(n));
    // The node's carrier-sense view: fraction of sim time during which some
    // link it can hear (itself included) was on the air. On a complete
    // topology every node's value equals the global phy.busy_fraction; under
    // partial sensing they diverge — the gap is what the hidden terminal
    // cannot hear.
    registry.gauge(node_metric("medium.busy_fraction", n))
        .set(sim_seconds > 0.0
                 ? network.medium().sense_busy_time(n).seconds_f() / sim_seconds
                 : 0.0);
    // Who this link actually collided with, from the Medium's pair ledger.
    std::uint64_t partners = 0;
    for (LinkId other = 0; other < n_links; ++other) {
      const std::uint64_t pairs = network.medium().collision_pair_count(n, other);
      if (other != n && pairs > 0) ++partners;
      // Emit each unordered pair once (self-pairs cover same-link overlap).
      if (other >= n && pairs > 0) {
        registry.counter(link_metric(link_metric("phy.collision_pair", n), other)).inc(pairs);
      }
    }
    registry.gauge(link_metric("link.collision_partners", n))
        .set(static_cast<double>(partners));
  }

  // DP-specific state, read straight from the batch kernel's SoA arrays
  // (DESIGN §4g): the current priority permutation and the last interval's
  // backoff counts, plus whether the batch path (vs the scalar reference
  // path) served the run.
  if (const auto* dp = dynamic_cast<const mac::DpScheme*>(&network.scheme())) {
    registry.gauge("mac.dp.batch_path").set(dp->batch_path() ? 1.0 : 0.0);
    const mac::DpBatchKernel& kernel = dp->kernel();
    for (LinkId n = 0; n < n_links; ++n) {
      registry.gauge(link_metric("mac.dp.priority", n))
          .set(static_cast<double>(kernel.priority(n)));
      registry.gauge(link_metric("mac.dp.backoff_slots", n))
          .set(static_cast<double>(kernel.backoff_count(n)));
    }
  }

  registry.gauge("net.deficiency")
      .set(stats::total_deficiency(stats, network.config().requirements.q()));
  registry.gauge("net.intervals").set(static_cast<double>(stats.intervals()));
  registry.counter("sim.events_executed").inc(network.simulator().events_executed());
  registry.gauge("sim.virtual_seconds").set(sim_seconds);
  // Event-storage growth after the NetworkConfig-derived reserve; 0 proves
  // the engine ran the whole experiment without touching the allocator for
  // its own bookkeeping.
  registry.counter("engine.events.reallocs").inc(network.simulator().event_reallocs());
  // Contract-failure count (util/check.hpp). Almost always zero — a failure
  // aborts unless a test handler intervened — but exporting it means any run
  // that *did* survive a handled failure is visibly tainted in its metrics.
  registry.counter("checks.failed").inc(check_failures());
}

}  // namespace rtmac::obs
