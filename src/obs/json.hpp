// Minimal JSON building blocks for the observability exporters.
//
// The exporters emit machine-readable JSON/JSONL without pulling in a JSON
// library dependency: this header provides deterministic value formatting
// (shortest round-trip doubles via std::to_chars, so exports are
// byte-identical across runs and thread counts) plus a flat-object parser
// just rich enough for round-trip tests and CI well-formedness checks.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace rtmac::obs {

/// Escapes `s` per RFC 8259 and wraps it in double quotes.
[[nodiscard]] std::string json_quote(std::string_view s);

/// Shortest round-trip decimal rendering of `v`. Non-finite values (which
/// JSON cannot represent) render as null.
[[nodiscard]] std::string json_number(double v);
[[nodiscard]] std::string json_number(std::int64_t v);
[[nodiscard]] std::string json_number(std::uint64_t v);

/// Incremental builder for one flat JSON object: field() calls accumulate
/// `"key":value` pairs; str() closes and returns `{...}`. Keys are emitted
/// in call order (deterministic output).
class JsonObject {
 public:
  JsonObject& field(std::string_view key, std::string_view string_value);
  JsonObject& field(std::string_view key, double v);
  JsonObject& field(std::string_view key, std::int64_t v);
  JsonObject& field(std::string_view key, std::uint64_t v);
  JsonObject& field(std::string_view key, int v) {
    return field(key, static_cast<std::int64_t>(v));
  }
  /// Splices a pre-rendered JSON value (array, nested object) verbatim.
  JsonObject& raw(std::string_view key, std::string_view json_value);

  [[nodiscard]] std::string str() const { return body_ + "}"; }

 private:
  void key(std::string_view k);
  std::string body_ = "{";
};

/// Parses one flat JSON object (no nested objects; arrays are returned as
/// raw text spans) into key -> raw-value-text. Returns std::nullopt on
/// malformed input. Value text keeps quotes for strings; use
/// json_unquote() to decode them.
[[nodiscard]] std::optional<std::map<std::string, std::string>> parse_flat_json(
    std::string_view line);

/// Decodes a quoted JSON string produced by json_quote (basic escapes only).
/// Returns std::nullopt when `s` is not a quoted string.
[[nodiscard]] std::optional<std::string> json_unquote(std::string_view s);

}  // namespace rtmac::obs
