// Structured exporters for sim::Tracer event streams.
//
// Two formats, both schema-versioned (sim::kTraceSchemaVersion):
//  * JSONL — one self-describing JSON object per event, preceded by a
//    header line; greppable, streamable, and parseable without a JSON
//    library (see obs/json.hpp).
//  * Chrome trace-event JSON — loadable directly in Perfetto or
//    chrome://tracing: transmissions become duration slices on one track
//    per link, backoff/swap events become instants, interval boundaries
//    get their own track, so a whole interval timeline can be inspected
//    visually (paper Figs. 3–10 all hinge on what these timelines show).
#pragma once

#include <ostream>

#include "sim/trace.hpp"

namespace rtmac::obs {

/// Writes a schema header line then one JSON object per retained event:
///   {"schema":"rtmac.trace","version":1,"dropped":0,"total":123}
///   {"t_ns":12000,"kind":"tx-start","link":3,"a":330000,"b":0}
/// Events not tied to a link omit the "link" field.
void write_trace_jsonl(std::ostream& out, const sim::Tracer& tracer);

/// Writes the Chrome trace-event format (JSON object form, with an
/// otherData metadata block carrying the schema version). Tracks:
/// tid 0 = interval boundaries, tid n+1 = link n. Timestamps are virtual
/// microseconds. Open tx slices at the trace end are closed at the last
/// event's timestamp so the file always loads.
void write_chrome_trace(std::ostream& out, const sim::Tracer& tracer);

}  // namespace rtmac::obs
