// Streaming sinks for in-run time-series metric export.
//
// MetricsRegistry::stream_to() points the registry at one of these; every
// cadence interval the network's interval loop triggers a schema-versioned
// JSONL snapshot of the whole registry into the sink. Sinks carry only
// sim-domain bytes (wall-clock profiling stays quarantined in
// profile.jsonl), so a streamed file is byte-identical across --jobs when
// the per-task blocks are concatenated in deterministic task order — the
// same contract metrics.jsonl already meets.
//
// Threading: a sink is single-owner — each sweep task writes to its own
// StringStreamSink, and the FileStreamSink concatenation happens after the
// pool has joined. Nothing here is locked, and nothing may be shared across
// concurrently running tasks; the sweep engine's per-task-slot block scheme
// (see expfw/runner.cpp) is what keeps output deterministic.
#pragma once

#include <fstream>
#include <ostream>
#include <sstream>
#include <streambuf>
#include <string>

namespace rtmac::obs {

/// Version of the streamed time-series schema; the header line of every
/// stream file carries it: {"schema":"rtmac.metrics-stream","version":N}.
inline constexpr int kMetricsStreamSchemaVersion = 1;

/// Writes the stream schema header line (once per stream file).
void write_stream_header(std::ostream& out);

/// Destination for streamed snapshots. Implementations own their buffering;
/// flush() is called after every snapshot so in-flight runs stay readable.
class StreamSink {
 public:
  StreamSink() = default;
  StreamSink(const StreamSink&) = delete;
  StreamSink& operator=(const StreamSink&) = delete;
  virtual ~StreamSink() = default;

  [[nodiscard]] virtual std::ostream& stream() = 0;
  virtual void flush() {}
};

/// Buffered file sink. Creates parent directories; check ok() after
/// construction (a failed open degrades to dropping output, not throwing,
/// so observability can never kill a run).
class FileStreamSink final : public StreamSink {
 public:
  explicit FileStreamSink(const std::string& path);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }
  [[nodiscard]] std::ostream& stream() override { return out_; }
  void flush() override { out_.flush(); }

 private:
  std::ofstream out_;
};

/// In-memory sink; the sweep engine gives each task one of these and
/// concatenates the blocks in deterministic task order afterwards.
class StringStreamSink final : public StreamSink {
 public:
  [[nodiscard]] std::ostream& stream() override { return out_; }
  [[nodiscard]] std::string str() const { return out_.str(); }

 private:
  std::ostringstream out_;
};

/// Discards everything; lets callers keep streaming wired unconditionally.
class NullStreamSink final : public StreamSink {
 public:
  NullStreamSink() : out_{&buf_} {}
  [[nodiscard]] std::ostream& stream() override { return out_; }

 private:
  struct DiscardBuf final : std::streambuf {
    int overflow(int c) override { return c == traits_type::eof() ? 0 : c; }
    std::streamsize xsputn(const char*, std::streamsize n) override { return n; }
  };
  DiscardBuf buf_;
  std::ostream out_;
};

}  // namespace rtmac::obs
