// Per-link packet-loss processes.
//
// The paper's base model is i.i.d. Bernoulli(p_n) per clean transmission
// (StaticChannel). GilbertElliottChannel adds the classic two-state bursty
// loss model — each link flips between a Good and a Bad state with given
// per-attempt transition probabilities and state-dependent success rates —
// used by the robustness ablation: the protocols are configured with the
// long-run mean reliability and must tolerate the fluctuation around it.
#pragma once

#include <cstdint>
#include <functional>  // lint-ok: std-function factory type below, config-time only
#include <memory>
#include <vector>

#include "core/types.hpp"
#include "util/rng.hpp"

namespace rtmac::phy {

/// Decides the fate of each interference-free data transmission.
class ChannelModel {
 public:
  virtual ~ChannelModel() = default;

  /// Draws the outcome of one clean transmission attempt on `link`.
  [[nodiscard]] virtual bool attempt_succeeds(LinkId link, Rng& rng) = 0;

  /// Long-run success probability of `link` (what a transmitter would learn
  /// from probing; the p_n handed to the scheduling policies).
  [[nodiscard]] virtual double mean_success(LinkId link) const = 0;

  [[nodiscard]] virtual std::size_t num_links() const = 0;
};

/// The paper's base channel: i.i.d. Bernoulli(p_n).
class StaticChannel final : public ChannelModel {
 public:
  explicit StaticChannel(ProbabilityVector p);
  [[nodiscard]] bool attempt_succeeds(LinkId link, Rng& rng) override;
  [[nodiscard]] double mean_success(LinkId link) const override { return p_[link]; }
  [[nodiscard]] std::size_t num_links() const override { return p_.size(); }
  /// Direct view of the per-link probabilities. The Medium caches this at
  /// construction so the per-completion loss draw inlines to the identical
  /// rng.bernoulli(p_[link]) without the virtual dispatch.
  [[nodiscard]] const ProbabilityVector& probs() const { return p_; }

 private:
  ProbabilityVector p_;
};

/// Parameters of one link's two-state loss chain.
struct GilbertElliottParams {
  double p_good = 0.95;      ///< success probability in the Good state
  double p_bad = 0.2;        ///< success probability in the Bad state
  double good_to_bad = 0.02; ///< per-attempt transition probability
  double bad_to_good = 0.1;  ///< per-attempt transition probability

  /// Long-run stationary success probability of the chain.
  [[nodiscard]] double mean_success() const {
    const double pi_bad = good_to_bad / (good_to_bad + bad_to_good);
    return (1.0 - pi_bad) * p_good + pi_bad * p_bad;
  }
};

/// Bursty loss: each link carries an independent Good/Bad Markov chain that
/// steps once per transmission attempt on that link.
class GilbertElliottChannel final : public ChannelModel {
 public:
  explicit GilbertElliottChannel(std::vector<GilbertElliottParams> params);
  [[nodiscard]] bool attempt_succeeds(LinkId link, Rng& rng) override;
  [[nodiscard]] double mean_success(LinkId link) const override;
  [[nodiscard]] std::size_t num_links() const override { return params_.size(); }

  /// Current state of a link's chain (true = Good); exposed for tests.
  [[nodiscard]] bool in_good_state(LinkId link) const { return good_[link]; }

 private:
  std::vector<GilbertElliottParams> params_;
  std::vector<bool> good_;
};

/// Factory signature used by NetworkConfig to defer model construction.
// Factories must be copyable (NetworkConfig::clone shares them), which
// InplaceFunction deliberately is not; they run once at setup, never in the
// event hot path.
using ChannelModelFactory = std::function<std::unique_ptr<ChannelModel>()>;  // lint-ok: std-function copyable config-time factory

}  // namespace rtmac::phy
