// Pluggable interference topology: which links collide and who hears whom.
//
// The paper's channel (Section II-A) is one fully-interfering collision
// domain: every overlap collides and every device senses every busy/idle
// transition. That is only one point in the space this class spans. An
// InterferenceGraph separates the two relations that a single-cell model
// conflates:
//
//   * conflict(a, b)  — overlapping transmissions on links a and b destroy
//     each other (interference at the receivers). Symmetric by model
//     definition: a collision fails every participant.
//   * senses(n, l)    — the transmitter of link n can carrier-sense
//     activity on link l. Not necessarily symmetric (asymmetric transmit
//     powers), and crucially NOT implied by conflict: a pair that
//     conflicts without sensing is a classic hidden terminal, where
//     listen-before-talk silently fails.
//
// The complete graph reproduces the paper's model exactly; the other
// builders open the partial-interference regime (hidden terminals,
// multi-cell spatial reuse) that the complete-graph assumption makes
// structurally unreachable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace rtmac::phy {

struct SparseTopology;

/// Immutable, copyable value type. Self-relations are forced: a link always
/// conflicts with itself (two overlapping transmissions on one link fail)
/// and always senses its own transmissions.
class InterferenceGraph {
 public:
  /// 2D placement of one link's endpoints for the unit-disk builder.
  struct Point {
    double x = 0.0;
    double y = 0.0;
  };
  struct LinkPlacement {
    Point tx;  ///< transmitter position
    Point rx;  ///< receiver position
  };

  /// The paper's Section II-A channel: everyone conflicts with and senses
  /// everyone. Precondition: num_links >= 1.
  [[nodiscard]] static InterferenceGraph complete(std::size_t num_links);

  /// Explicit conflict/sense lists. `conflict_lists[a]` names the links
  /// whose overlapping transmissions destroy a's (symmetrized: listing b
  /// under a conflicts both directions). `sense_lists[n]` names the links
  /// whose activity link n's transmitter can hear (taken as given, so
  /// asymmetric sensing is expressible). Self-entries are implied and need
  /// not be listed. Out-of-range ids abort in debug builds.
  [[nodiscard]] static InterferenceGraph from_lists(
      std::size_t num_links, const std::vector<std::vector<LinkId>>& conflict_lists,
      const std::vector<std::vector<LinkId>>& sense_lists);

  /// Geometric builder: links conflict when either transmitter lies within
  /// `interference_range` of the other link's receiver; link n senses link l
  /// when their transmitters are within `sense_range` of each other.
  /// Distances compare inclusively (<= range).
  [[nodiscard]] static InterferenceGraph unit_disk(const std::vector<LinkPlacement>& links,
                                                   double interference_range,
                                                   double sense_range);

  [[nodiscard]] std::size_t num_links() const { return n_; }

  /// Do overlapping transmissions on a and b collide? Symmetric.
  [[nodiscard]] bool conflicts(LinkId a, LinkId b) const { return conflict_[idx(a, b)]; }

  /// Can link `node`'s transmitter hear activity on link `link`?
  [[nodiscard]] bool senses(LinkId node, LinkId link) const { return sense_[idx(node, link)]; }

  /// All nodes whose sense view includes `link` (always contains `link`
  /// itself), ascending. The Medium iterates this on every transmission
  /// start/end, so it is precomputed.
  [[nodiscard]] const std::vector<LinkId>& sensed_by(LinkId link) const {
    return sensed_by_[link];
  }

  /// Every pair of links conflicts (the paper's collision rule).
  [[nodiscard]] bool complete_conflicts() const { return complete_conflicts_; }
  /// Every node senses every link (the paper's carrier-sense rule). The DP
  /// protocol's collision-freedom guarantee holds exactly under this flag.
  [[nodiscard]] bool complete_sensing() const { return complete_sensing_; }
  /// Both relations complete: byte-identical to the pre-topology Medium.
  [[nodiscard]] bool is_complete() const { return complete_conflicts_ && complete_sensing_; }

  /// Completeness-flag policy for induced subgraphs. A shard cell with ANY
  /// cut relation has external interference, so the complete-graph fast
  /// paths (shared loss stream, batch DP, burst mode, single-view sensing)
  /// must stay off for behavior to match the unsharded run — that is
  /// kClearCompleteness, the safe default. A CUT-FREE cell whose subgraph
  /// is a clique genuinely satisfies the complete-graph contract (its links
  /// interact with nothing outside, and the shard machinery re-keys the
  /// loss streams by global id either way), so kKeepCompleteness lets the
  /// honestly-computed flags stand and unlocks the O(1) single-view fast
  /// paths for dense-cell city topologies.
  enum class SubgraphFlags : std::uint8_t { kClearCompleteness, kKeepCompleteness };

  /// Dense subgraph induced by `links` (ascending global ids); completeness
  /// flags per `flags` (see SubgraphFlags).
  [[nodiscard]] InterferenceGraph induced(
      std::span<const LinkId> links,
      SubgraphFlags flags = SubgraphFlags::kClearCompleteness) const;

 private:
  friend InterferenceGraph induced_subgraph(const SparseTopology& topology,
                                            std::span<const LinkId> links,
                                            SubgraphFlags flags);

  InterferenceGraph(std::size_t n, std::vector<bool> conflict, std::vector<bool> sense);

  [[nodiscard]] std::size_t idx(LinkId a, LinkId b) const {
    return static_cast<std::size_t>(a) * n_ + b;
  }
  void finalize();  ///< force self-relations, build sensed_by_, set flags

  std::size_t n_ = 0;
  std::vector<bool> conflict_;  ///< n x n, symmetric, diagonal true
  std::vector<bool> sense_;     ///< n x n, diagonal true
  std::vector<std::vector<LinkId>> sensed_by_;
  bool complete_conflicts_ = false;
  bool complete_sensing_ = false;
};

/// Adjacency-list interference topology for city-scale networks. The dense
/// InterferenceGraph stores two n x n matrices, which is fine up to a few
/// thousand links and hopeless at 10^5-10^6; sharded execution builds small
/// dense subgraphs per cell from this sparse form instead. Self-relations
/// are implicit (never listed).
struct SparseTopology {
  std::size_t num_links = 0;
  /// conflict[a] = links whose overlapping transmissions destroy a's
  /// (symmetric: b appears under a iff a appears under b; ascending).
  std::vector<std::vector<LinkId>> conflict;
  /// sense[n] = links whose activity link n's transmitter hears (directed;
  /// ascending).
  std::vector<std::vector<LinkId>> sense;
};

/// Geometric sparse builder with the same semantics as
/// InterferenceGraph::unit_disk, but grid-bucketed so construction is
/// expected O(n) for bounded-density placements instead of O(n^2).
[[nodiscard]] SparseTopology sparse_unit_disk(
    const std::vector<InterferenceGraph::LinkPlacement>& links, double interference_range,
    double sense_range);

/// Dense subgraph of a sparse topology induced by `links` (ascending global
/// ids); completeness flags per `flags` — see
/// InterferenceGraph::SubgraphFlags.
[[nodiscard]] InterferenceGraph induced_subgraph(
    const SparseTopology& topology, std::span<const LinkId> links,
    InterferenceGraph::SubgraphFlags flags =
        InterferenceGraph::SubgraphFlags::kClearCompleteness);

}  // namespace rtmac::phy
