#include "phy/medium.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace rtmac::phy {

Medium::Medium(sim::Simulator& simulator, ProbabilityVector success_prob, std::uint64_t seed)
    : Medium{simulator, std::make_unique<StaticChannel>(std::move(success_prob)), seed} {}

Medium::Medium(sim::Simulator& simulator, std::unique_ptr<ChannelModel> channel,
               std::uint64_t seed)
    : sim_{simulator},
      channel_{std::move(channel)},
      loss_rng_{seed, /*stream_id=*/0x4d454449554dULL /* "MEDIUM" */} {
  assert(channel_ != nullptr && channel_->num_links() > 0);
  link_counters_.resize(channel_->num_links());
}

void Medium::add_listener(MediumListener* listener) {
  assert(listener != nullptr);
  listeners_.push_back(listener);
}

void Medium::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  // Busy periods span microseconds (one claim packet) to a whole interval
  // (tens of ms of back-to-back traffic): log-spaced buckets cover the range.
  busy_period_hist_ =
      registry == nullptr
          ? nullptr
          : &registry->histogram("phy.busy_period_us", obs::log_bounds(1.0, 65536.0, 2.0));
}

void Medium::start_transmission(LinkId link, Duration airtime, PacketKind kind, TxDone done) {
  assert(link < channel_->num_links());
  assert(airtime > Duration{} && "zero-airtime transmission");

  const TimePoint now = sim_.now();
  const bool was_idle = (active_count_ == 0);

  // Transmissions occupy half-open intervals [start, start+airtime): an
  // active record whose end instant equals `now` is merely awaiting its
  // same-timestamp completion event and does NOT overlap the newcomer.
  bool overlaps = false;
  for (auto& tx : active_) {
    if (tx.start + tx.airtime > now) {
      tx.collided = true;
      overlaps = true;
    }
  }

  const std::uint64_t tx_id = next_tx_id_++;
  active_.push_back(ActiveTx{link, kind, now, airtime, overlaps, std::move(done), tx_id});
  ++active_count_;

  if (kind == PacketKind::kData) {
    ++counters_.data_tx;
    ++link_counters_[link].data_tx;
  } else {
    ++counters_.empty_tx;
    ++link_counters_[link].empty_tx;
  }

  sim_.schedule_in(airtime, [this, tx_id] { finish_transmission(tx_id); });

  if (tracer_ != nullptr) {
    tracer_->record(now, sim::TraceKind::kTxStart, link, airtime.ns(),
                    kind == PacketKind::kEmpty ? 1 : 0);
  }

  (void)was_idle;
  if (!notified_busy_) {
    notified_busy_ = true;
    busy_since_ = now;
    for (auto* l : listeners_) l->on_medium_busy(now);
  }
}

void Medium::finish_transmission(std::uint64_t tx_id) {
  const auto it = std::find_if(active_.begin(), active_.end(),
                               [tx_id](const ActiveTx& tx) { return tx.id == tx_id; });
  assert(it != active_.end() && "unknown transmission id");

  // Move the record out before invoking user code: the completion callback
  // may immediately start another transmission (back-to-back bursts).
  ActiveTx tx = std::move(*it);
  active_.erase(it);
  --active_count_;

  counters_.busy_time += tx.airtime;
  link_counters_[tx.link].airtime += tx.airtime;

  TxOutcome outcome;
  if (tx.collided) {
    outcome = TxOutcome::kCollision;
    ++counters_.collisions;
    ++link_counters_[tx.link].collisions;
    counters_.collided_time += tx.airtime;
  } else if (tx.kind == PacketKind::kData && channel_->attempt_succeeds(tx.link, loss_rng_)) {
    outcome = TxOutcome::kDelivered;
    ++counters_.delivered;
    ++link_counters_[tx.link].delivered;
  } else if (tx.kind == PacketKind::kEmpty) {
    // Empty packets carry no payload; a clean empty transmission counts as
    // delivered for protocol purposes (the claim was heard as channel
    // activity), and is never subject to the payload loss process.
    outcome = TxOutcome::kDelivered;
  } else {
    outcome = TxOutcome::kChannelLoss;
    ++counters_.channel_losses;
  }

  const TimePoint now = sim_.now();
  if (tracer_ != nullptr) {
    tracer_->record(now, sim::TraceKind::kTxEnd, tx.link, static_cast<std::int64_t>(outcome),
                    tx.kind == PacketKind::kEmpty ? 1 : 0);
  }

  // Notify the transmitter first (it may chain the next packet of a burst,
  // keeping the medium busy with no idle gap), then carrier-sense listeners
  // if the medium actually went idle.
  if (tx.done) tx.done(outcome);

  if (active_count_ == 0 && notified_busy_) {
    notified_busy_ = false;
    if (busy_period_hist_ != nullptr) busy_period_hist_->observe((now - busy_since_).us_f());
    for (auto* l : listeners_) l->on_medium_idle(now);
  }
}

}  // namespace rtmac::phy
