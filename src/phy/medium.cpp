#include "phy/medium.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/check.hpp"

namespace rtmac::phy {

Medium::Medium(sim::Simulator& simulator, ProbabilityVector success_prob, std::uint64_t seed,
               util::Arena* arena)
    : Medium{simulator, std::make_unique<StaticChannel>(std::move(success_prob)), seed, arena} {}

Medium::Medium(sim::Simulator& simulator, ProbabilityVector success_prob,
               InterferenceGraph topology, std::uint64_t seed, util::Arena* arena)
    : Medium{simulator, std::make_unique<StaticChannel>(std::move(success_prob)),
             std::move(topology), seed, arena} {}

namespace {

/// Stream id of link `global`'s private loss stream ("LOSS" + id). Partial
/// topologies draw per-link so the sequence is independent of how
/// transmissions on other links interleave — the property that makes
/// sharded and single-engine runs bit-identical.
std::uint64_t loss_stream_id(LinkId global) { return mix64(0x4c4f5353ULL, global); }

}  // namespace

Medium::Medium(sim::Simulator& simulator, std::unique_ptr<ChannelModel> channel,
               std::uint64_t seed, util::Arena* arena)
    : sim_{simulator},
      channel_{std::move(channel)},
      graph_{InterferenceGraph::complete(channel_ != nullptr ? channel_->num_links() : 1)},
      seed_{seed},
      loss_rng_{seed, /*stream_id=*/0x4d454449554dULL /* "MEDIUM" */} {
  RTMAC_REQUIRE(channel_ != nullptr && channel_->num_links() > 0);
  complete_sensing_ = graph_.complete_sensing();
  num_links_ = channel_->num_links();
  arena_ = arena;
  init_link_state();
}

Medium::Medium(sim::Simulator& simulator, std::unique_ptr<ChannelModel> channel,
               InterferenceGraph topology, std::uint64_t seed, util::Arena* arena)
    : sim_{simulator},
      channel_{std::move(channel)},
      graph_{std::move(topology)},
      seed_{seed},
      loss_rng_{seed, /*stream_id=*/0x4d454449554dULL /* "MEDIUM" */} {
  RTMAC_REQUIRE(channel_ != nullptr && channel_->num_links() > 0);
  const std::size_t n = channel_->num_links();
  RTMAC_ASSERT(graph_.num_links() == n, "interference graph size must match the channel");
  complete_sensing_ = graph_.complete_sensing();
  num_links_ = n;
  arena_ = arena;
  init_link_state();
  if (!graph_.is_complete()) {
    loss_rngs_.reserve(n);
    for (LinkId link = 0; link < n; ++link) {
      loss_rngs_.emplace_back(seed_, loss_stream_id(link));
    }
  }
}

void Medium::init_link_state() {
  if (arena_ == nullptr) {
    // Legacy/test construction: no shared arena, bring a private one.
    own_arena_ = std::make_unique<util::Arena>();
    arena_ = own_arena_.get();
  }
  static_probs_ = [this]() -> const double* {
    auto* static_channel = dynamic_cast<StaticChannel*>(channel_.get());
    return static_channel != nullptr ? static_channel->probs().data() : nullptr;
  }();
  const std::size_t n = num_links_;
  link_counters_ = arena_->make_span<LinkCounters>(n);
  views_ = arena_->make_span<SenseView>(n);
  marks_ = arena_->make_span<std::uint8_t>(n + 1);
  if (graph_.complete_conflicts()) {
    // Every pair can collide; the dense matrix is exactly the CSR payload
    // without the offsets. Complete graphs are the paper's small cells, so
    // n^2 here is cheap.
    pair_dense_ = arena_->make_span<std::uint64_t>(n * n);
    return;
  }
  // CSR over the conflict adjacency ({a} + conflicts(a) per row, ascending —
  // the diagonal is forced true, so self collisions always have a cell).
  std::size_t entries = 0;
  for (LinkId a = 0; a < n; ++a) {
    for (LinkId b = 0; b < n; ++b) entries += graph_.conflicts(a, b) ? 1 : 0;
  }
  pair_row_ = arena_->make_span<std::uint32_t>(n + 1);
  pair_col_ = arena_->make_span<LinkId>(entries);
  pair_count_ = arena_->make_span<std::uint64_t>(entries);
  std::uint32_t at = 0;
  for (LinkId a = 0; a < n; ++a) {
    pair_row_[a] = at;
    for (LinkId b = 0; b < n; ++b) {
      if (graph_.conflicts(a, b)) pair_col_[at++] = b;
    }
  }
  pair_row_[n] = at;
}

std::size_t Medium::memory_bytes() const {
  return link_counters_.size_bytes() + views_.size_bytes() + marks_.size_bytes() +
         pair_dense_.size_bytes() + pair_row_.size_bytes() + pair_col_.size_bytes() +
         pair_count_.size_bytes() + loss_rngs_.capacity() * sizeof(Rng) +
         active_.capacity() * sizeof(ActiveTx) + listeners_.capacity() * sizeof(ListenerEntry) +
         outbox_.capacity() * sizeof(CutTxExport) +
         shard_.global_ids.capacity() * sizeof(LinkId) + shard_.conflict_cut.capacity() +
         shard_.exported.capacity();
}

void Medium::configure_shard(ShardMediumConfig config) {
  // A cell keeping its completeness flags must be cut-free: complete
  // sensing collapses everything onto the single global view, which is only
  // equivalent to the unsharded run when no external interference exists.
  if (complete_sensing_) {
    bool cut_free = true;
    for (std::size_t i = 0; i < config.conflict_cut.size(); ++i) {
      if (config.conflict_cut[i] != 0 || config.exported[i] != 0) {
        cut_free = false;
        break;
      }
    }
    RTMAC_REQUIRE(cut_free, "complete sensing in shard mode requires a cut-free cell");
  }
  RTMAC_REQUIRE(config.global_ids.size() == num_links_, "global id map size mismatch");
  RTMAC_REQUIRE(config.conflict_cut.size() == num_links_ && config.exported.size() == num_links_,
                "cut flag size mismatch");
  shard_mode_ = true;
  shard_ = std::move(config);
  // Re-key the loss streams by global id: the draws a link sees must not
  // depend on which cell it landed in.
  loss_rngs_.clear();
  for (LinkId link = 0; link < num_links_; ++link) {
    loss_rngs_.emplace_back(seed_, loss_stream_id(shard_.global_ids[link]));
  }
  resolution_horizon_ = sim::Simulator::no_run_limit();
}

void Medium::register_remote_sense(LinkId speaker, std::vector<LinkId> nodes) {
  RTMAC_REQUIRE(shard_mode_, "register_remote_sense outside shard mode");
  // remote_mark drives per-node views, which the complete-sensing fast path
  // never reads — a cell that keeps its flags must have no remote speakers.
  RTMAC_REQUIRE(!complete_sensing_, "remote sense injection needs per-node views");
  remote_sense_[speaker] = std::move(nodes);
}

void Medium::set_resolution_horizon(TimePoint bound) {
  RTMAC_ASSERT(shard_mode_, "set_resolution_horizon outside shard mode");
  resolution_horizon_ = bound;
  // The run limit is the earliest active cut-conflict completion past the
  // bound; completions blocked last window stay blocked until their
  // neighbors' clocks catch up. Starts are never blocked, so new cut
  // transmissions tighten the limit on the fly (see start_transmission).
  TimePoint limit = sim::Simulator::no_run_limit();
  for (const ActiveTx& tx : active_) {
    if (shard_.conflict_cut[tx.link] == 0) continue;
    const TimePoint end = tx.start + tx.airtime;
    if (end > bound && end < limit) limit = end;
  }
  sim_.set_run_limit(limit);
}

void Medium::drain_cut_outbox(std::vector<CutTxExport>& into) {
  into.insert(into.end(), outbox_.begin(), outbox_.end());
  outbox_.clear();
}

void Medium::inject_remote_activity(LinkId speaker, TimePoint start, TimePoint end) {
  RTMAC_REQUIRE(shard_mode_, "inject_remote_activity outside shard mode");
  const auto it = remote_sense_.find(speaker);
  if (it == remote_sense_.end()) return;
  const TimePoint now = sim_.now();
  if (end <= now) return;  // fully stale: the busy period is already over
  const std::vector<LinkId>* nodes = &it->second;
  const TimePoint busy_at = start > now ? start : now;
  sim_.schedule_at(busy_at, [this, nodes] { remote_mark(*nodes, /*to_busy=*/true); });
  sim_.schedule_at(end, [this, nodes] { remote_mark(*nodes, /*to_busy=*/false); });
}

void Medium::remote_mark(const std::vector<LinkId>& nodes, bool to_busy) {
  const TimePoint now = sim_.now();
  for (LinkId node : nodes) {
    SenseView& view = views_[node];
    if (to_busy) {
      ++view.active;
      if (!view.notified_busy) {
        view.notified_busy = true;
        view.busy_since = now;
        marks_[node] = 1;
        any_marked_ = true;
      }
    } else {
      RTMAC_ASSERT(view.active > 0, "unbalanced remote idle edge");
      --view.active;
      if (view.active == 0 && view.notified_busy) {
        view.notified_busy = false;
        view.busy_time += now - view.busy_since;
        marks_[node] = 1;
        any_marked_ = true;
      }
    }
  }
  dispatch_marked(to_busy, now);
}

void Medium::add_listener(MediumListener* listener, LinkId node) {
  RTMAC_REQUIRE(listener != nullptr);
  RTMAC_REQUIRE(node == kAllNodes || node < num_links());
  listeners_.push_back(ListenerEntry{listener, node});
}

void Medium::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    busy_period_sketch_ = nullptr;
    delivery_latency_sketch_ = nullptr;
    return;
  }
  // Busy periods span microseconds (one claim packet) to a whole interval
  // (tens of ms of back-to-back traffic); delivery latency spans the same
  // range, measured from the interval's release instant. Both are quantile
  // sketches: no bucket bounds to pick, bounded memory on any horizon.
  busy_period_sketch_ = &registry->sketch("phy.busy_period_us");
  delivery_latency_sketch_ = &registry->sketch("phy.delivery_latency_us");
}

void Medium::mark_transitions(LinkId link, bool to_busy, TimePoint now) {
  const std::size_t n = num_links();
  const std::vector<LinkId>& sensing = graph_.sensed_by(link);
  // The global view behaves like a node that senses every link.
  for (std::size_t i = 0; i <= sensing.size(); ++i) {
    const bool is_global = (i == sensing.size());
    SenseView& view = is_global ? global_view_ : views_[sensing[i]];
    const std::size_t mark_idx = is_global ? n : sensing[i];
    if (to_busy) {
      ++view.active;
      if (!view.notified_busy) {
        view.notified_busy = true;
        view.busy_since = now;
        marks_[mark_idx] = 1;
        any_marked_ = true;
      }
    } else if (view.active == 0 && view.notified_busy) {
      view.notified_busy = false;
      view.busy_time += now - view.busy_since;
      if (is_global && busy_period_sketch_ != nullptr) {
        busy_period_sketch_->update((now - view.busy_since).us_f());
      }
      marks_[mark_idx] = 1;
      any_marked_ = true;
    }
  }
}

void Medium::notify_all(bool to_busy, TimePoint now) {
  dispatching_listeners_ = true;
  for (const ListenerEntry& entry : listeners_) {
    if (to_busy) {
      entry.listener->on_medium_busy(now);
    } else {
      entry.listener->on_medium_idle(now);
    }
  }
  dispatching_listeners_ = false;
}

void Medium::dispatch_marked(bool to_busy, TimePoint now) {
  if (!any_marked_) return;
  const std::size_t n = num_links();
  dispatching_listeners_ = true;
  for (const ListenerEntry& entry : listeners_) {
    const std::size_t mark_idx = entry.node == kAllNodes ? n : entry.node;
    if (marks_[mark_idx] == 0) continue;
    if (to_busy) {
      entry.listener->on_medium_busy(now);
    } else {
      entry.listener->on_medium_idle(now);
    }
  }
  dispatching_listeners_ = false;
  std::fill(marks_.begin(), marks_.end(), std::uint8_t{0});
  any_marked_ = false;
}

void Medium::start_transmission(LinkId link, Duration airtime, PacketKind kind, TxDone done) {
  RTMAC_REQUIRE(link < channel_->num_links());
  RTMAC_REQUIRE(airtime > Duration{}, "zero-airtime transmission");
  RTMAC_ASSERT(!burst_active_, "start_transmission while a burst holds the medium");
  if (dispatching_listeners_) {
    // Re-entrancy rule (see MediumListener): transmitting synchronously from
    // a busy/idle callback would let later listeners observe transitions out
    // of order. Always enforced — the cost is one branch per transmission.
    std::fprintf(stderr,
                 "rtmac: Medium::start_transmission called synchronously from a "
                 "MediumListener callback (link %u); schedule through the Simulator "
                 "instead\n",
                 link);
    std::abort();
  }

  const TimePoint now = sim_.now();

  // Transmissions occupy half-open intervals [start, start+airtime): an
  // active record whose end instant equals `now` is merely awaiting its
  // same-timestamp completion event and does NOT overlap the newcomer.
  // Only overlaps on CONFLICTING links collide.
  bool collided = false;
  for (auto& tx : active_) {
    if (tx.start + tx.airtime > now && graph_.conflicts(link, tx.link)) {
      tx.collided = true;
      collided = true;
      count_collision_pair(link, tx.link);
    }
  }

  const std::uint64_t tx_id = next_tx_id_++;
  active_.push_back(ActiveTx{link, kind, now, airtime, collided, std::move(done), tx_id});
  ++active_count_;

  if (kind == PacketKind::kData) {
    ++counters_.data_tx;
    ++link_counters_[link].data_tx;
  } else {
    ++counters_.empty_tx;
    ++link_counters_[link].empty_tx;
  }

  sim_.schedule_in(airtime, [this, tx_id] { finish_transmission(tx_id); });

  if (shard_mode_) {
    const TimePoint end = now + airtime;
    if (shard_.exported[link] != 0) {
      outbox_.push_back(CutTxExport{shard_.global_ids[link], now, end});
    }
    // A new cut-conflict transmission ending beyond the resolution bound
    // must not complete this window; tighten the run limit if it is now
    // the earliest blocked completion.
    if (shard_.conflict_cut[link] != 0 && end > resolution_horizon_ && end < sim_.run_limit()) {
      sim_.set_run_limit(end);
    }
  }

  if (tracer_ != nullptr) {
    tracer_->record(now, sim::TraceKind::kTxStart, link, airtime.ns(),
                    kind == PacketKind::kEmpty ? 1 : 0);
  }

  if (complete_sensing_) {
    // Fast path: one shared view, maintained inline; listeners are visited
    // only on an actual busy edge (chained back-to-back packets keep the
    // view busy and skip the whole notification machinery).
    SenseView& view = global_view_;
    ++view.active;
    if (!view.notified_busy) {
      view.notified_busy = true;
      view.busy_since = now;
      notify_all(/*to_busy=*/true, now);
    }
  } else {
    mark_transitions(link, /*to_busy=*/true, now);
    dispatch_marked(/*to_busy=*/true, now);
  }
}

void Medium::finish_transmission(std::uint64_t tx_id) {
  const auto it = std::find_if(active_.begin(), active_.end(),
                               [tx_id](const ActiveTx& tx) { return tx.id == tx_id; });
  RTMAC_ASSERT(it != active_.end(), "unknown transmission id");

  // Move the record out before invoking user code: the completion callback
  // may immediately start another transmission (back-to-back bursts).
  ActiveTx tx = std::move(*it);
  active_.erase(it);
  --active_count_;
  --global_view_.active;
  if (!complete_sensing_) {
    for (LinkId node : graph_.sensed_by(tx.link)) --views_[node].active;
  }

  counters_.busy_time += tx.airtime;
  link_counters_[tx.link].airtime += tx.airtime;

  // Cross-shard overlaps: by the time this completion executes, the
  // coordinator guarantees every conflicting neighbor cell has advanced
  // past it, so the resolver's answer is exact. Consulted even when a
  // local overlap already collided the packet — the cross-shard pair
  // ledger must count either way, exactly like the local pair ledger.
  if (shard_mode_ && shard_.conflict_cut[tx.link] != 0 && shard_.resolver != nullptr) {
    const bool remote_collision = shard_.resolver->resolve_cut_tx(
        shard_.global_ids[tx.link], tx.start, tx.start + tx.airtime);
    tx.collided = tx.collided || remote_collision;
  }

  TxOutcome outcome;
  if (tx.collided) {
    outcome = TxOutcome::kCollision;
    ++counters_.collisions;
    ++link_counters_[tx.link].collisions;
    counters_.collided_time += tx.airtime;
  } else if (tx.kind == PacketKind::kData && attempt_succeeds(tx.link)) {
    outcome = TxOutcome::kDelivered;
    ++counters_.delivered;
    ++link_counters_[tx.link].delivered;
    if (delivery_latency_sketch_ != nullptr) {
      delivery_latency_sketch_->update((sim_.now() - interval_start_).us_f());
    }
  } else if (tx.kind == PacketKind::kEmpty) {
    // Empty packets carry no payload; a clean empty transmission counts as
    // delivered for protocol purposes (the claim was heard as channel
    // activity), and is never subject to the payload loss process.
    outcome = TxOutcome::kDelivered;
  } else {
    outcome = TxOutcome::kChannelLoss;
    ++counters_.channel_losses;
  }

  const TimePoint now = sim_.now();
  if (tracer_ != nullptr) {
    tracer_->record(now, sim::TraceKind::kTxEnd, tx.link, static_cast<std::int64_t>(outcome),
                    tx.kind == PacketKind::kEmpty ? 1 : 0);
  }

  // Notify the transmitter first (it may chain the next packet of a burst,
  // keeping its sense views busy with no idle gap), then carrier-sense
  // listeners of every view that actually went idle.
  if (tx.done) tx.done(outcome);

  if (complete_sensing_) {
    SenseView& view = global_view_;
    if (view.active == 0 && view.notified_busy) {
      view.notified_busy = false;
      const Duration period = now - view.busy_since;
      view.busy_time += period;
      if (busy_period_sketch_ != nullptr) busy_period_sketch_->update(period.us_f());
      notify_all(/*to_busy=*/false, now);
    }
  } else {
    mark_transitions(tx.link, /*to_busy=*/false, now);
    dispatch_marked(/*to_busy=*/false, now);
  }
}

void Medium::begin_burst(LinkId link) {
  RTMAC_REQUIRE(link < num_links_);
  RTMAC_ASSERT(burst_available(), "begin_burst without burst_available()");
  burst_active_ = true;
  ++active_count_;
  ++global_view_.active;
}

TxOutcome Medium::burst_tx(LinkId link, TimePoint at, Duration airtime, PacketKind kind) {
  RTMAC_ASSERT(burst_active_, "burst_tx outside a burst");
  RTMAC_REQUIRE(airtime > Duration{}, "zero-airtime transmission");

  if (kind == PacketKind::kData) {
    ++counters_.data_tx;
    ++link_counters_[link].data_tx;
  } else {
    ++counters_.empty_tx;
    ++link_counters_[link].empty_tx;
  }
  if (tracer_ != nullptr) {
    tracer_->record(at, sim::TraceKind::kTxStart, link, airtime.ns(),
                    kind == PacketKind::kEmpty ? 1 : 0);
  }

  // First packet of the burst: emit the busy edge, exactly where the
  // per-event path does (after the kTxStart record, before the outcome).
  SenseView& view = global_view_;
  if (!view.notified_busy) {
    view.notified_busy = true;
    view.busy_since = at;
    notify_all(/*to_busy=*/true, at);
  }

  counters_.busy_time += airtime;
  link_counters_[link].airtime += airtime;

  // No collision branch: the burst holds the medium exclusively, so the
  // outcome depends only on the channel — drawn from the same loss stream,
  // in the same order, as the per-event path would at the completion event.
  TxOutcome outcome;
  if (kind == PacketKind::kData && attempt_succeeds(link)) {
    outcome = TxOutcome::kDelivered;
    ++counters_.delivered;
    ++link_counters_[link].delivered;
    // Virtual burst timestamp: the packet completes at `at + airtime`, the
    // same instant the per-event path would observe at its completion event.
    if (delivery_latency_sketch_ != nullptr) {
      delivery_latency_sketch_->update((at + airtime - interval_start_).us_f());
    }
  } else if (kind == PacketKind::kEmpty) {
    outcome = TxOutcome::kDelivered;
  } else {
    outcome = TxOutcome::kChannelLoss;
    ++counters_.channel_losses;
  }

  if (tracer_ != nullptr) {
    tracer_->record(at + airtime, sim::TraceKind::kTxEnd, link,
                    static_cast<std::int64_t>(outcome), kind == PacketKind::kEmpty ? 1 : 0);
  }
  return outcome;
}

void Medium::end_burst(TimePoint end) {
  RTMAC_ASSERT(burst_active_, "end_burst outside a burst");
  RTMAC_ASSERT(end >= sim_.now(), "burst ends in the past");
  // The idle transition runs synchronously with the burst-end timestamp
  // rather than through an event at `end`: the burst froze every other
  // device at its busy edge (the shared backoff clock cancelled its expiry),
  // so the event queue holds nothing that could observe the medium before
  // `end` — asserted below. Listeners receive the future timestamp and
  // schedule their resumed expiries at absolute times >= `end`, which is
  // exactly what they would have computed inside an event at `end`.
  RTMAC_ASSERT(sim_.no_event_before(end), "event pending inside the burst window");
  burst_active_ = false;
  --active_count_;
  SenseView& view = global_view_;
  --view.active;
  if (view.active == 0 && view.notified_busy) {
    view.notified_busy = false;
    const Duration period = end - view.busy_since;
    view.busy_time += period;
    if (busy_period_sketch_ != nullptr) busy_period_sketch_->update(period.us_f());
    notify_all(/*to_busy=*/false, end);
  }
}

}  // namespace rtmac::phy
