// MAC/PHY timing constants.
//
// The paper evaluates on IEEE 802.11a at 54 Mbps and quotes three airtimes
// that drive the entire capacity analysis:
//   * 330 us — 1500 B data packet + ACK + interframe spacing (video profile)
//   * 120 us — 100 B control packet + ACK + interframe spacing
//   *  70 us — zero-payload "empty packet" used for priority claiming
//   *   9 us — one backoff slot (non-instantaneous carrier sensing)
// We take these as given constants rather than re-deriving them from OFDM
// symbol timing: the protocol logic only ever consumes the totals.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace rtmac::phy {

/// Immutable bundle of channel timing constants for one experiment profile.
struct PhyParams {
  /// Airtime of one data packet including ACK and interframe spacing.
  Duration data_airtime;
  /// Airtime of one empty (priority-claim) packet including spacing.
  Duration empty_airtime;
  /// Width of one carrier-sense backoff slot.
  Duration backoff_slot;

  /// 802.11a @54 Mbps, 1500 B payload (paper SVI-A, real-time video).
  [[nodiscard]] static PhyParams video_80211a();
  /// 802.11a @54 Mbps, 100 B payload (paper SVI-B, low-latency control).
  [[nodiscard]] static PhyParams control_80211a();

  /// Number of whole data transmissions that fit into `deadline`
  /// (the paper's "up to 60 transmissions per 20 ms interval").
  [[nodiscard]] std::int64_t transmissions_per_interval(Duration deadline) const {
    return deadline.floor_div(data_airtime);
  }
};

}  // namespace rtmac::phy
