#include "phy/phy_params.hpp"

namespace rtmac::phy {

PhyParams PhyParams::video_80211a() {
  return PhyParams{
      .data_airtime = Duration::microseconds(330),
      .empty_airtime = Duration::microseconds(70),
      .backoff_slot = Duration::microseconds(9),
  };
}

PhyParams PhyParams::control_80211a() {
  return PhyParams{
      .data_airtime = Duration::microseconds(120),
      .empty_airtime = Duration::microseconds(70),
      .backoff_slot = Duration::microseconds(9),
  };
}

}  // namespace rtmac::phy
