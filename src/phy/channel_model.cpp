#include "phy/channel_model.hpp"

#include "util/check.hpp"

namespace rtmac::phy {

StaticChannel::StaticChannel(ProbabilityVector p) : p_{std::move(p)} {
  RTMAC_REQUIRE(!p_.empty());
  for (double pn : p_) {
    RTMAC_REQUIRE(pn > 0.0 && pn <= 1.0);
    (void)pn;
  }
}

bool StaticChannel::attempt_succeeds(LinkId link, Rng& rng) {
  RTMAC_REQUIRE(link < p_.size());
  return rng.bernoulli(p_[link]);
}

GilbertElliottChannel::GilbertElliottChannel(std::vector<GilbertElliottParams> params)
    : params_{std::move(params)}, good_(params_.size(), true) {
  RTMAC_REQUIRE(!params_.empty());
  for (const auto& p : params_) {
    RTMAC_REQUIRE(p.p_good >= 0.0 && p.p_good <= 1.0);
    RTMAC_REQUIRE(p.p_bad >= 0.0 && p.p_bad <= 1.0);
    RTMAC_REQUIRE(p.good_to_bad > 0.0 && p.good_to_bad < 1.0);
    RTMAC_REQUIRE(p.bad_to_good > 0.0 && p.bad_to_good < 1.0);
    (void)p;
  }
}

bool GilbertElliottChannel::attempt_succeeds(LinkId link, Rng& rng) {
  RTMAC_REQUIRE(link < params_.size());
  const auto& p = params_[link];
  // Step the state chain first, then draw the attempt in the new state
  // (order is a modeling convention; the stationary mean is unaffected).
  if (good_[link]) {
    if (rng.bernoulli(p.good_to_bad)) good_[link] = false;
  } else {
    if (rng.bernoulli(p.bad_to_good)) good_[link] = true;
  }
  return rng.bernoulli(good_[link] ? p.p_good : p.p_bad);
}

double GilbertElliottChannel::mean_success(LinkId link) const {
  RTMAC_REQUIRE(link < params_.size());
  return params_[link].mean_success();
}

}  // namespace rtmac::phy
