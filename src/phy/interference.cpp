#include "phy/interference.hpp"

#include "util/check.hpp"

namespace rtmac::phy {

InterferenceGraph::InterferenceGraph(std::size_t n, std::vector<bool> conflict,
                                     std::vector<bool> sense)
    : n_{n}, conflict_{std::move(conflict)}, sense_{std::move(sense)} {
  RTMAC_ASSERT(n_ >= 1);
  RTMAC_ASSERT(conflict_.size() == n_ * n_ && sense_.size() == n_ * n_);
  finalize();
}

void InterferenceGraph::finalize() {
  for (LinkId a = 0; a < n_; ++a) {
    conflict_[idx(a, a)] = true;
    sense_[idx(a, a)] = true;
    for (LinkId b = 0; b < a; ++b) {
      // Conflict is symmetric by model definition: a collision fails every
      // participant, so either direction listed implies both.
      const bool c = conflict_[idx(a, b)] || conflict_[idx(b, a)];
      conflict_[idx(a, b)] = c;
      conflict_[idx(b, a)] = c;
    }
  }
  sensed_by_.assign(n_, {});
  complete_conflicts_ = true;
  complete_sensing_ = true;
  for (LinkId link = 0; link < n_; ++link) {
    for (LinkId node = 0; node < n_; ++node) {
      if (sense_[idx(node, link)]) sensed_by_[link].push_back(node);
      complete_sensing_ = complete_sensing_ && sense_[idx(node, link)];
      complete_conflicts_ = complete_conflicts_ && conflict_[idx(node, link)];
    }
  }
}

InterferenceGraph InterferenceGraph::complete(std::size_t num_links) {
  RTMAC_REQUIRE(num_links >= 1);
  return InterferenceGraph{num_links, std::vector<bool>(num_links * num_links, true),
                           std::vector<bool>(num_links * num_links, true)};
}

InterferenceGraph InterferenceGraph::from_lists(
    std::size_t num_links, const std::vector<std::vector<LinkId>>& conflict_lists,
    const std::vector<std::vector<LinkId>>& sense_lists) {
  RTMAC_REQUIRE(num_links >= 1);
  RTMAC_REQUIRE(conflict_lists.size() == num_links && sense_lists.size() == num_links);
  std::vector<bool> conflict(num_links * num_links, false);
  std::vector<bool> sense(num_links * num_links, false);
  for (LinkId a = 0; a < num_links; ++a) {
    for (LinkId b : conflict_lists[a]) {
      RTMAC_REQUIRE(b < num_links, "conflict list names an unknown link");
      conflict[static_cast<std::size_t>(a) * num_links + b] = true;
    }
    for (LinkId l : sense_lists[a]) {
      RTMAC_REQUIRE(l < num_links, "sense list names an unknown link");
      sense[static_cast<std::size_t>(a) * num_links + l] = true;
    }
  }
  return InterferenceGraph{num_links, std::move(conflict), std::move(sense)};
}

namespace {

double dist2(InterferenceGraph::Point a, InterferenceGraph::Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace

InterferenceGraph InterferenceGraph::unit_disk(const std::vector<LinkPlacement>& links,
                                               double interference_range,
                                               double sense_range) {
  const std::size_t n = links.size();
  RTMAC_REQUIRE(n >= 1);
  RTMAC_REQUIRE(interference_range >= 0.0 && sense_range >= 0.0);
  const double ir2 = interference_range * interference_range;
  const double sr2 = sense_range * sense_range;
  std::vector<bool> conflict(n * n, false);
  std::vector<bool> sense(n * n, false);
  for (LinkId a = 0; a < n; ++a) {
    for (LinkId b = 0; b < n; ++b) {
      // A transmitter close enough to the other link's receiver corrupts it.
      conflict[static_cast<std::size_t>(a) * n + b] =
          dist2(links[a].tx, links[b].rx) <= ir2 || dist2(links[b].tx, links[a].rx) <= ir2;
      sense[static_cast<std::size_t>(a) * n + b] = dist2(links[a].tx, links[b].tx) <= sr2;
    }
  }
  return InterferenceGraph{n, std::move(conflict), std::move(sense)};
}

}  // namespace rtmac::phy
