#include "phy/interference.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "util/check.hpp"

namespace rtmac::phy {

InterferenceGraph::InterferenceGraph(std::size_t n, std::vector<bool> conflict,
                                     std::vector<bool> sense)
    : n_{n}, conflict_{std::move(conflict)}, sense_{std::move(sense)} {
  RTMAC_ASSERT(n_ >= 1);
  RTMAC_ASSERT(conflict_.size() == n_ * n_ && sense_.size() == n_ * n_);
  finalize();
}

void InterferenceGraph::finalize() {
  for (LinkId a = 0; a < n_; ++a) {
    conflict_[idx(a, a)] = true;
    sense_[idx(a, a)] = true;
    for (LinkId b = 0; b < a; ++b) {
      // Conflict is symmetric by model definition: a collision fails every
      // participant, so either direction listed implies both.
      const bool c = conflict_[idx(a, b)] || conflict_[idx(b, a)];
      conflict_[idx(a, b)] = c;
      conflict_[idx(b, a)] = c;
    }
  }
  sensed_by_.assign(n_, {});
  complete_conflicts_ = true;
  complete_sensing_ = true;
  for (LinkId link = 0; link < n_; ++link) {
    for (LinkId node = 0; node < n_; ++node) {
      if (sense_[idx(node, link)]) sensed_by_[link].push_back(node);
      complete_sensing_ = complete_sensing_ && sense_[idx(node, link)];
      complete_conflicts_ = complete_conflicts_ && conflict_[idx(node, link)];
    }
  }
}

InterferenceGraph InterferenceGraph::complete(std::size_t num_links) {
  RTMAC_REQUIRE(num_links >= 1);
  return InterferenceGraph{num_links, std::vector<bool>(num_links * num_links, true),
                           std::vector<bool>(num_links * num_links, true)};
}

InterferenceGraph InterferenceGraph::from_lists(
    std::size_t num_links, const std::vector<std::vector<LinkId>>& conflict_lists,
    const std::vector<std::vector<LinkId>>& sense_lists) {
  RTMAC_REQUIRE(num_links >= 1);
  RTMAC_REQUIRE(conflict_lists.size() == num_links && sense_lists.size() == num_links);
  std::vector<bool> conflict(num_links * num_links, false);
  std::vector<bool> sense(num_links * num_links, false);
  for (LinkId a = 0; a < num_links; ++a) {
    for (LinkId b : conflict_lists[a]) {
      RTMAC_REQUIRE(b < num_links, "conflict list names an unknown link");
      conflict[static_cast<std::size_t>(a) * num_links + b] = true;
    }
    for (LinkId l : sense_lists[a]) {
      RTMAC_REQUIRE(l < num_links, "sense list names an unknown link");
      sense[static_cast<std::size_t>(a) * num_links + l] = true;
    }
  }
  return InterferenceGraph{num_links, std::move(conflict), std::move(sense)};
}

namespace {

double dist2(InterferenceGraph::Point a, InterferenceGraph::Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace

InterferenceGraph InterferenceGraph::unit_disk(const std::vector<LinkPlacement>& links,
                                               double interference_range,
                                               double sense_range) {
  const std::size_t n = links.size();
  RTMAC_REQUIRE(n >= 1);
  RTMAC_REQUIRE(interference_range >= 0.0 && sense_range >= 0.0);
  const double ir2 = interference_range * interference_range;
  const double sr2 = sense_range * sense_range;
  std::vector<bool> conflict(n * n, false);
  std::vector<bool> sense(n * n, false);
  for (LinkId a = 0; a < n; ++a) {
    for (LinkId b = 0; b < n; ++b) {
      // A transmitter close enough to the other link's receiver corrupts it.
      conflict[static_cast<std::size_t>(a) * n + b] =
          dist2(links[a].tx, links[b].rx) <= ir2 || dist2(links[b].tx, links[a].rx) <= ir2;
      sense[static_cast<std::size_t>(a) * n + b] = dist2(links[a].tx, links[b].tx) <= sr2;
    }
  }
  return InterferenceGraph{n, std::move(conflict), std::move(sense)};
}

InterferenceGraph InterferenceGraph::induced(std::span<const LinkId> links,
                                             SubgraphFlags flags) const {
  const std::size_t k = links.size();
  RTMAC_REQUIRE(k >= 1, "induced subgraph needs at least one link");
  std::vector<bool> conflict(k * k, false);
  std::vector<bool> sense(k * k, false);
  for (std::size_t a = 0; a < k; ++a) {
    RTMAC_REQUIRE(links[a] < n_, "induced subgraph names an unknown link");
    for (std::size_t b = 0; b < k; ++b) {
      conflict[a * k + b] = conflicts(links[a], links[b]);
      sense[a * k + b] = senses(links[a], links[b]);
    }
  }
  InterferenceGraph g{k, std::move(conflict), std::move(sense)};
  if (flags == SubgraphFlags::kClearCompleteness) {
    g.complete_conflicts_ = false;
    g.complete_sensing_ = false;
  }
  return g;
}

namespace {

/// Packs a 2D grid coordinate into a hashable key.
std::int64_t grid_key(std::int64_t ix, std::int64_t iy) {
  return (ix << 32) ^ (iy & 0xffffffff);
}

std::int64_t grid_floor(double v, double cell) {
  return static_cast<std::int64_t>(std::floor(v / cell));
}

}  // namespace

SparseTopology sparse_unit_disk(const std::vector<InterferenceGraph::LinkPlacement>& links,
                                double interference_range, double sense_range) {
  const std::size_t n = links.size();
  RTMAC_REQUIRE(n >= 1);
  RTMAC_REQUIRE(interference_range >= 0.0 && sense_range >= 0.0);
  const double ir2 = interference_range * interference_range;
  const double sr2 = sense_range * sense_range;

  // Neighbor search radius: two links can only be related when their
  // transmitters are within max(sense_range, interference_range + longest
  // tx->rx extent) of each other, so bucketing transmitters on a grid of
  // that pitch makes a 3x3 neighborhood scan exhaustive.
  double max_extent2 = 0.0;
  for (const auto& link : links) {
    max_extent2 = std::max(max_extent2, dist2(link.tx, link.rx));
  }
  const double reach =
      std::max(sense_range, interference_range + std::sqrt(max_extent2));
  const double pitch = std::max(reach, 1e-9);

  std::unordered_map<std::int64_t, std::vector<LinkId>> buckets;
  buckets.reserve(n);
  for (LinkId a = 0; a < n; ++a) {
    buckets[grid_key(grid_floor(links[a].tx.x, pitch), grid_floor(links[a].tx.y, pitch))]
        .push_back(a);
  }

  SparseTopology out;
  out.num_links = n;
  out.conflict.resize(n);
  out.sense.resize(n);
  for (LinkId a = 0; a < n; ++a) {
    const std::int64_t ix = grid_floor(links[a].tx.x, pitch);
    const std::int64_t iy = grid_floor(links[a].tx.y, pitch);
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const auto it = buckets.find(grid_key(ix + dx, iy + dy));
        if (it == buckets.end()) continue;
        for (LinkId b : it->second) {
          if (b == a) continue;
          if (dist2(links[a].tx, links[b].rx) <= ir2 || dist2(links[b].tx, links[a].rx) <= ir2) {
            // Record each undirected conflict once (from the lower id) and
            // mirror it, keeping the lists exactly symmetric.
            if (a < b) {
              out.conflict[a].push_back(b);
              out.conflict[b].push_back(a);
            }
          }
          if (dist2(links[a].tx, links[b].tx) <= sr2) out.sense[a].push_back(b);
        }
      }
    }
  }
  for (auto& list : out.conflict) std::sort(list.begin(), list.end());
  for (auto& list : out.sense) std::sort(list.begin(), list.end());
  return out;
}

InterferenceGraph induced_subgraph(const SparseTopology& topology,
                                   std::span<const LinkId> links,
                                   InterferenceGraph::SubgraphFlags flags) {
  const std::size_t k = links.size();
  RTMAC_REQUIRE(k >= 1, "induced subgraph needs at least one link");
  const auto local_of = [&](LinkId global) -> std::size_t {
    const auto it = std::lower_bound(links.begin(), links.end(), global);
    return (it != links.end() && *it == global)
               ? static_cast<std::size_t>(it - links.begin())
               : k;
  };
  std::vector<bool> conflict(k * k, false);
  std::vector<bool> sense(k * k, false);
  for (std::size_t a = 0; a < k; ++a) {
    RTMAC_REQUIRE(links[a] < topology.num_links, "induced subgraph names an unknown link");
    for (LinkId partner : topology.conflict[links[a]]) {
      const std::size_t b = local_of(partner);
      if (b < k) conflict[a * k + b] = true;
    }
    for (LinkId heard : topology.sense[links[a]]) {
      const std::size_t b = local_of(heard);
      if (b < k) sense[a * k + b] = true;
    }
  }
  InterferenceGraph g{k, std::move(conflict), std::move(sense)};
  if (flags == InterferenceGraph::SubgraphFlags::kClearCompleteness) {
    g.complete_conflicts_ = false;
    g.complete_sensing_ = false;
  }
  return g;
}

}  // namespace rtmac::phy
