// The shared wireless medium: a single fully-interfering collision domain.
//
// This models exactly the channel of the paper's Section II-A:
//   * the conflict graph is complete — any two overlapping transmissions
//     collide and ALL overlapping transmissions fail;
//   * an interference-free transmission on link n is delivered with
//     probability p_n (i.i.d. across transmissions, the "unreliable
//     transmissions" of the title);
//   * every device can carrier-sense the medium (busy/idle) but cannot
//     decode other devices' packets.
// Transmission intervals are half-open [start, start+airtime): a packet
// ending at t does not collide with one starting at t.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "phy/channel_model.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace rtmac::phy {

/// Result of one transmission attempt.
enum class TxOutcome : std::uint8_t {
  kDelivered,    ///< interference-free and passed the Bernoulli(p_n) draw
  kChannelLoss,  ///< interference-free but lost to the unreliable channel
  kCollision,    ///< overlapped with at least one other transmission
};

/// What is being transmitted. Empty packets claim priority in the DP
/// protocol; they occupy airtime but carry no payload to deliver.
enum class PacketKind : std::uint8_t { kData, kEmpty };

/// Observer interface for carrier sensing. Devices register to learn about
/// busy/idle transitions of the medium; that is all a paper-compliant
/// device may learn about other links.
///
/// Re-entrancy rule: listener callbacks must NOT call
/// Medium::start_transmission synchronously (other listeners would observe
/// transitions out of order). Schedule the transmission through the
/// Simulator instead — protocol timing always implies at least a zero-delay
/// event boundary.
class MediumListener {
 public:
  virtual ~MediumListener() = default;
  /// The medium transitioned idle -> busy at virtual time `t`.
  virtual void on_medium_busy(TimePoint t) = 0;
  /// The medium transitioned busy -> idle at virtual time `t`.
  virtual void on_medium_idle(TimePoint t) = 0;
};

/// Aggregate channel accounting, exposed for capacity/overhead analysis.
struct MediumCounters {
  std::uint64_t data_tx = 0;         ///< data transmission attempts
  std::uint64_t empty_tx = 0;        ///< empty (priority-claim) transmissions
  std::uint64_t delivered = 0;       ///< data packets delivered
  std::uint64_t channel_losses = 0;  ///< clean data tx lost to Bernoulli(p)
  std::uint64_t collisions = 0;      ///< transmissions that overlapped
  Duration busy_time;                ///< total time the medium was busy
  Duration collided_time;            ///< busy time wasted in collisions
};

/// Per-link slice of the channel accounting (airtime-fairness analysis).
struct LinkCounters {
  std::uint64_t data_tx = 0;
  std::uint64_t empty_tx = 0;
  std::uint64_t delivered = 0;
  std::uint64_t collisions = 0;
  Duration airtime;  ///< total airtime used by this link (all outcomes)
};

/// The shared channel. Owns the loss process; notifies listeners of
/// busy/idle transitions; reports each transmission's outcome to its
/// initiator via callback at the end of the airtime.
class Medium {
 public:
  using TxDone = std::function<void(TxOutcome)>;

  /// `success_prob[n]` is the paper's p_n for link n (i.i.d. Bernoulli loss).
  Medium(sim::Simulator& simulator, ProbabilityVector success_prob, std::uint64_t seed);

  /// Custom loss process (e.g. GilbertElliottChannel). The model also
  /// provides the long-run p_n reported by success_prob().
  Medium(sim::Simulator& simulator, std::unique_ptr<ChannelModel> channel, std::uint64_t seed);

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Begins a transmission on `link` lasting `airtime`. `done` fires exactly
  /// once, at now()+airtime, with the outcome. Overlap with any concurrent
  /// transmission marks every participant collided.
  void start_transmission(LinkId link, Duration airtime, PacketKind kind, TxDone done);

  /// Carrier-sense: is any transmission in flight right now?
  [[nodiscard]] bool busy() const { return active_count_ > 0; }

  /// Registers a carrier-sense observer (not owned; must outlive the run).
  void add_listener(MediumListener* listener);

  [[nodiscard]] const MediumCounters& counters() const { return counters_; }
  [[nodiscard]] const LinkCounters& link_counters(LinkId link) const {
    return link_counters_[link];
  }

  /// Attaches a protocol tracer (not owned; null detaches). The medium is
  /// the natural distribution point: MAC components that already hold a
  /// Medium& read the tracer from here, so attaching once traces the whole
  /// stack.
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] sim::Tracer* tracer() const { return tracer_; }

  /// Attaches a metrics registry (not owned; null detaches). Like the
  /// tracer, the medium is the distribution point: MAC components that hold
  /// a Medium& read the registry from here, so attaching once instruments
  /// the whole stack. The medium itself contributes a busy-period duration
  /// histogram (channel-occupancy burst structure, which the aggregate
  /// MediumCounters cannot reconstruct); everything else it accounts is
  /// exported from MediumCounters by obs::collect_network_metrics.
  void set_metrics(obs::MetricsRegistry* registry);
  [[nodiscard]] obs::MetricsRegistry* metrics() const { return metrics_; }
  [[nodiscard]] std::size_t num_links() const { return channel_->num_links(); }
  /// Long-run reliability p_n (what policies are configured with).
  [[nodiscard]] double success_prob(LinkId link) const {
    return channel_->mean_success(link);
  }

 private:
  struct ActiveTx {
    LinkId link;
    PacketKind kind;
    TimePoint start;
    Duration airtime;
    bool collided;
    TxDone done;
    std::uint64_t id;
  };

  void finish_transmission(std::uint64_t tx_id);

  sim::Simulator& sim_;
  std::unique_ptr<ChannelModel> channel_;
  Rng loss_rng_;
  std::vector<ActiveTx> active_;  // small: rarely more than a handful in flight
  std::size_t active_count_ = 0;
  // Listeners' view of the channel. A completion callback may chain the next
  // packet of a burst with zero idle gap; in that case no idle/busy pair is
  // emitted and listeners correctly perceive one continuous busy period.
  bool notified_busy_ = false;
  TimePoint busy_since_;  ///< start of the current busy period (valid while notified_busy_)
  std::uint64_t next_tx_id_ = 1;
  std::vector<MediumListener*> listeners_;
  MediumCounters counters_;
  std::vector<LinkCounters> link_counters_;
  sim::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Histogram* busy_period_hist_ = nullptr;  ///< cached handle, null when detached
};

}  // namespace rtmac::phy
