// The shared wireless medium: a channel core over a pluggable interference
// topology.
//
// The channel core owns the loss process and transmission bookkeeping; the
// InterferenceGraph decides which overlaps collide and who hears what:
//   * a transmission collides only with overlapping transmissions on
//     CONFLICTING links (the complete graph reproduces the paper's
//     Section II-A rule: every overlap collides);
//   * carrier sensing is a per-node view — node n's medium is busy iff some
//     link n senses is transmitting. With complete sensing every view
//     coincides with the global one, which is exactly the paper's model;
//   * an interference-free transmission on link n is delivered with
//     probability p_n (i.i.d. across transmissions, the "unreliable
//     transmissions" of the title);
//   * devices sense busy/idle but cannot decode other devices' packets.
// Transmission intervals are half-open [start, start+airtime): a packet
// ending at t does not collide with one starting at t, on any topology.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "phy/channel_model.hpp"
#include "phy/interference.hpp"
#include "sim/shard_barrier.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "util/arena.hpp"
#include "util/check.hpp"
#include "util/inplace_function.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace rtmac::phy {

/// Result of one transmission attempt.
enum class TxOutcome : std::uint8_t {
  kDelivered,    ///< interference-free and passed the Bernoulli(p_n) draw
  kChannelLoss,  ///< interference-free but lost to the unreliable channel
  kCollision,    ///< overlapped with at least one conflicting transmission
};

/// What is being transmitted. Empty packets claim priority in the DP
/// protocol; they occupy airtime but carry no payload to deliver.
enum class PacketKind : std::uint8_t { kData, kEmpty };

/// Observer interface for carrier sensing. Devices register to learn about
/// busy/idle transitions of one sense view (their own node's, or the global
/// any-transmission view); that is all a paper-compliant device may learn
/// about other links.
///
/// Re-entrancy rule: listener callbacks must NOT call
/// Medium::start_transmission synchronously (other listeners would observe
/// transitions out of order). Schedule the transmission through the
/// Simulator instead — protocol timing always implies at least a zero-delay
/// event boundary. The Medium enforces this: a synchronous
/// start_transmission from inside a listener callback aborts the process.
class MediumListener {
 public:
  virtual ~MediumListener() = default;
  /// The observed sense view transitioned idle -> busy at virtual time `t`.
  virtual void on_medium_busy(TimePoint t) = 0;
  /// The observed sense view transitioned busy -> idle at virtual time `t`.
  virtual void on_medium_idle(TimePoint t) = 0;
};

/// One exported cut-link transmission occupying [start, end), reported in
/// the link's GLOBAL id. Shard cells hand these to the coordinator at
/// window barriers; the coordinator feeds them back into neighbor cells as
/// remote sense activity and into the cross-shard collision ledger.
struct CutTxExport {
  LinkId link = 0;
  TimePoint start;
  TimePoint end;
};

/// Resolver for cross-shard conflicts, implemented by the sharded Network.
/// The conservative coordinator guarantees that when a cut-link completion
/// executes, every conflicting neighbor cell's clock has passed it, so all
/// overlapping remote transmissions are already in the mailbox and the
/// answer is exact.
class CutResolver {
 public:
  virtual ~CutResolver() = default;
  /// Did the transmission on `global_link` over [start, end) overlap any
  /// remote transmission on a conflicting cut partner? Also accounts the
  /// overlapping pairs into the cross-shard collision ledger.
  [[nodiscard]] virtual bool resolve_cut_tx(LinkId global_link, TimePoint start,
                                            TimePoint end) = 0;
};

/// Shard-mode wiring for a cell's Medium: the local->global id map (loss
/// streams are re-keyed by global id so results do not depend on the
/// partition), which local links have cross-cell conflict edges (their
/// completions consult the resolver and bound the engine's run limit), and
/// which local links' transmissions must be exported at barriers. Only the
/// sharded Network and the coordinator may touch this machinery — enforced
/// by the shard-isolation lint rule.
struct ShardMediumConfig {
  std::vector<LinkId> global_ids;          ///< local link -> global link
  std::vector<std::uint8_t> conflict_cut;  ///< local link has a cut conflict edge
  std::vector<std::uint8_t> exported;      ///< local link's txs go to the outbox
  CutResolver* resolver = nullptr;         ///< borrowed; may be null when no cuts
};

/// Aggregate channel accounting, exposed for capacity/overhead analysis.
struct MediumCounters {
  std::uint64_t data_tx = 0;         ///< data transmission attempts
  std::uint64_t empty_tx = 0;        ///< empty (priority-claim) transmissions
  std::uint64_t delivered = 0;       ///< data packets delivered
  std::uint64_t channel_losses = 0;  ///< clean data tx lost to Bernoulli(p)
  std::uint64_t collisions = 0;      ///< transmissions that collided
  Duration busy_time;                ///< summed transmission airtime; overlapping
                                     ///< transmissions double-count (use
                                     ///< sense_busy_time(kAllNodes) for occupancy)
  Duration collided_time;            ///< airtime wasted in collisions
};

/// Per-link slice of the channel accounting (airtime-fairness analysis).
struct LinkCounters {
  std::uint64_t data_tx = 0;
  std::uint64_t empty_tx = 0;
  std::uint64_t delivered = 0;
  std::uint64_t collisions = 0;
  Duration airtime;  ///< total airtime used by this link (all outcomes)
};

/// The shared channel. Owns the loss process; notifies listeners of their
/// sense view's busy/idle transitions; reports each transmission's outcome
/// to its initiator via callback at the end of the airtime.
class Medium {
 public:
  /// Outcome callback: inline-stored (util::InplaceFunction), so starting a
  /// transmission never allocates. Move-only; fired exactly once.
  using TxDone = util::InplaceFunction<void(TxOutcome)>;

  /// Sentinel node id selecting the global any-transmission view (senses
  /// every link, whatever the topology). Same value as sim::kNoLink.
  static constexpr LinkId kAllNodes = static_cast<LinkId>(-1);

  /// `success_prob[n]` is the paper's p_n for link n (i.i.d. Bernoulli loss).
  /// Without an explicit topology the graph is complete (the paper's model).
  /// `arena`, when given, backs the cold per-link state (counters, views,
  /// collision ledger) — the sharded Network shares one arena across all
  /// cell media; when null the Medium brings its own (borrowed, not owned,
  /// must outlive the Medium).
  Medium(sim::Simulator& simulator, ProbabilityVector success_prob, std::uint64_t seed,
         util::Arena* arena = nullptr);
  Medium(sim::Simulator& simulator, ProbabilityVector success_prob, InterferenceGraph topology,
         std::uint64_t seed, util::Arena* arena = nullptr);

  /// Custom loss process (e.g. GilbertElliottChannel). The model also
  /// provides the long-run p_n reported by success_prob().
  Medium(sim::Simulator& simulator, std::unique_ptr<ChannelModel> channel, std::uint64_t seed,
         util::Arena* arena = nullptr);
  Medium(sim::Simulator& simulator, std::unique_ptr<ChannelModel> channel,
         InterferenceGraph topology, std::uint64_t seed, util::Arena* arena = nullptr);

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Begins a transmission on `link` lasting `airtime`. `done` fires exactly
  /// once, at now()+airtime, with the outcome. Overlap with any concurrent
  /// transmission on a conflicting link marks every participant collided.
  void start_transmission(LinkId link, Duration airtime, PacketKind kind, TxDone done);

  // ---- burst fast path ------------------------------------------------------
  // A link that wins the channel under complete sensing transmits its whole
  // back-to-back chain with exclusive use of the medium: every other device
  // senses busy and freezes, so no event can interleave until the chain
  // ends. The burst API exploits that: the caller simulates the chain
  // synchronously (one burst_tx per packet, outcomes returned immediately
  // in the same loss-stream order the per-event path would draw them) and
  // the medium schedules a single idle-transition event at the end, instead
  // of one completion event per packet. Semantically identical to chained
  // start_transmission calls — the equivalence tests assert it bit-for-bit.

  /// True when the burst path may be used right now: complete sensing, the
  /// medium idle, and not inside a listener callback.
  [[nodiscard]] bool burst_available() const {
    return complete_sensing_ && active_count_ == 0 && !dispatching_listeners_;
  }

  /// Opens an exclusive burst at now(). Precondition: burst_available().
  void begin_burst(LinkId link);

  /// Transmits one packet of the open burst occupying [at, at+airtime);
  /// returns its outcome immediately. The first packet emits the busy
  /// transition to listeners (after its kTxStart trace record, exactly like
  /// the per-event path).
  TxOutcome burst_tx(LinkId link, TimePoint at, Duration airtime, PacketKind kind);

  /// Closes the burst: performs the idle transition with timestamp `end`
  /// (>= now()) synchronously — no event is needed, because the burst froze
  /// everything else and the queue holds no event before `end` (asserted).
  void end_burst(TimePoint end);

  /// Carrier-sense, global view: is any transmission in flight right now?
  [[nodiscard]] bool busy() const { return active_count_ > 0; }

  /// Carrier-sense as seen from `node`: is any link that `node` senses
  /// transmitting? `kAllNodes` selects the global view. Under complete
  /// sensing every per-node view coincides with the global one, so the
  /// Medium maintains only the global view and routes per-node queries to
  /// it (the fast path the batch DP kernel relies on).
  [[nodiscard]] bool sense_busy(LinkId node) const {
    return (node == kAllNodes || complete_sensing_) ? busy() : views_[node].active > 0;
  }

  /// Registers a carrier-sense observer of the global view (not owned; must
  /// outlive the run).
  void add_listener(MediumListener* listener) { add_listener(listener, kAllNodes); }

  /// Registers an observer of `node`'s sense view. Listeners are notified
  /// in registration order whenever their view transitions.
  void add_listener(MediumListener* listener, LinkId node);

  [[nodiscard]] const InterferenceGraph& topology() const { return graph_; }

  [[nodiscard]] const MediumCounters& counters() const { return counters_; }
  [[nodiscard]] const LinkCounters& link_counters(LinkId link) const {
    return link_counters_[link];
  }

  /// Cumulative time `node`'s sense view has been busy (closed busy periods;
  /// an in-flight busy period is not included until it ends). `kAllNodes`
  /// reports the global view.
  [[nodiscard]] Duration sense_busy_time(LinkId node) const {
    return (node == kAllNodes || complete_sensing_) ? global_view_.busy_time
                                                    : views_[node].busy_time;
  }

  /// Number of pairwise collision events between links a and b (each
  /// conflicting overlap of one transmission pair counts once, symmetric).
  /// Dense n x n storage only when every pair conflicts (the paper's small
  /// complete graphs); partial topologies use a CSR ledger over the conflict
  /// adjacency — non-conflicting pairs can never collide, so their count is
  /// identically zero and needs no cell.
  [[nodiscard]] std::uint64_t collision_pair_count(LinkId a, LinkId b) const {
    if (!pair_dense_.empty()) {
      return pair_dense_[static_cast<std::size_t>(a) * num_links() + b];
    }
    const std::uint64_t* cell = pair_cell(a, b);
    return cell != nullptr ? *cell : 0;
  }

  /// Bytes of per-link cold state this Medium holds (counters, sense views,
  /// collision ledger, loss streams, listener table) — feeds the mem.phy
  /// gauge. Arena-backed spans are counted here, not double-counted by the
  /// arena owner.
  [[nodiscard]] std::size_t memory_bytes() const;

  // ---- shard mode -----------------------------------------------------------
  // A cell's Medium is a regular Medium over the induced subgraph, plus:
  // exported cut-link transmissions (drained by the coordinator at window
  // barriers), injected remote activity (phantom busy periods on the local
  // sense views of cross-cell speakers), and a resolution horizon that
  // converts the coordinator's conservative bound into a Simulator run
  // limit. None of this exists on the legacy single-engine path.
  //
  // The per-window entry points REQUIRE the sim::shard_barrier phantom
  // capability: they mutate cross-shard state and are only sound inside the
  // coordinator's serial barrier phase. configure_shard/register_remote_sense
  // run at construction time, before any parallel phase exists, and are
  // deliberately unannotated.

  /// Enters shard mode. Precondition: the topology's completeness flags are
  /// cleared (the safe default for cell subgraphs — see
  /// InterferenceGraph::SubgraphFlags), EXCEPT for a cut-free cell (no cut
  /// conflicts, no exports, and never a register_remote_sense target): such
  /// a cell interacts with nothing outside itself, so a clique cell may keep
  /// complete sensing and its O(1) fast paths. Loss streams are re-keyed by
  /// global id either way, so results stay partition-independent.
  void configure_shard(ShardMediumConfig config);

  /// Declares that local `nodes` sense the remote global link `speaker`;
  /// inject_remote_activity(speaker, ...) will drive their views.
  void register_remote_sense(LinkId speaker, std::vector<LinkId> nodes);

  /// Arms the window's resolution bound: completions of cut-conflict
  /// transmissions ending after `bound` may not execute yet, so the engine
  /// run limit is set to the earliest such end (or cleared). Called by the
  /// coordinator at every window barrier.
  void set_resolution_horizon(TimePoint bound) RTMAC_REQUIRES(sim::shard_barrier);

  /// Appends and clears the exported cut transmissions (start-time order).
  void drain_cut_outbox(std::vector<CutTxExport>& into)
      RTMAC_REQUIRES(sim::shard_barrier);

  /// Schedules a phantom busy period [start, end) on the views of the local
  /// nodes registered for `speaker`. Stale parts before now() are clipped;
  /// a fully stale record is dropped. No-op for unregistered speakers.
  void inject_remote_activity(LinkId speaker, TimePoint start, TimePoint end)
      RTMAC_REQUIRES(sim::shard_barrier);

  /// Attaches a protocol tracer (not owned; null detaches). The medium is
  /// the natural distribution point: MAC components that already hold a
  /// Medium& read the tracer from here, so attaching once traces the whole
  /// stack.
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] sim::Tracer* tracer() const { return tracer_; }

  /// Attaches a metrics registry (not owned; null detaches). Like the
  /// tracer, the medium is the distribution point: MAC components that hold
  /// a Medium& read the registry from here, so attaching once instruments
  /// the whole stack. The medium itself contributes a busy-period duration
  /// histogram (channel-occupancy burst structure, which the aggregate
  /// MediumCounters cannot reconstruct); everything else it accounts is
  /// exported from MediumCounters by obs::collect_network_metrics.
  void set_metrics(obs::MetricsRegistry* registry);
  [[nodiscard]] obs::MetricsRegistry* metrics() const { return metrics_; }
  /// Interval anchor for the delivery-latency series: the Network stamps
  /// every interval start here so delivered data packets can be measured
  /// against their interval's release time (the medium itself has no
  /// notion of the interval structure). One store per interval.
  void note_interval_start(TimePoint t) { interval_start_ = t; }
  /// Cached at construction: the channel's answer never changes, and this is
  /// queried from per-transmission hot paths (a virtual call would show up).
  [[nodiscard]] std::size_t num_links() const { return num_links_; }
  /// Long-run reliability p_n (what policies are configured with).
  [[nodiscard]] double success_prob(LinkId link) const {
    return channel_->mean_success(link);
  }

 private:
  struct ActiveTx {
    LinkId link;
    PacketKind kind;
    TimePoint start;
    Duration airtime;
    bool collided;
    TxDone done;
    std::uint64_t id;
  };

  /// One sense view's state. A completion callback may chain the next
  /// packet of a burst with zero idle gap; in that case `notified_busy`
  /// stays set, no idle/busy pair is emitted, and listeners correctly
  /// perceive one continuous busy period.
  struct SenseView {
    std::size_t active = 0;      ///< sensed transmissions in flight
    bool notified_busy = false;  ///< inside a (possibly chained) busy period
    TimePoint busy_since;        ///< start of the period (valid while notified_busy)
    Duration busy_time;          ///< total closed busy-period time
  };

  struct ListenerEntry {
    MediumListener* listener;
    LinkId node;  ///< kAllNodes = global view
  };

  void finish_transmission(std::uint64_t tx_id);
  [[nodiscard]] SenseView& view_of(LinkId node) {
    return node == kAllNodes ? global_view_ : views_[node];
  }
  /// The loss stream for `link`. Complete graphs draw from one shared
  /// stream in completion order (the paper's model, frozen by the golden
  /// CSVs); partial topologies use per-link streams keyed by the link's
  /// global id, so the draw sequence is independent of both event
  /// interleaving across cells and of the partition itself.
  [[nodiscard]] Rng& loss_rng_for(LinkId link) {
    return loss_rngs_.empty() ? loss_rng_ : loss_rngs_[link];
  }
  /// One clean-attempt loss draw for `link`. For the common StaticChannel
  /// the virtual dispatch is bypassed: the draw inlines to the identical
  /// rng.bernoulli(p) call the model would make, consuming the same stream
  /// state — same bits, less call overhead on the per-completion hot path.
  [[nodiscard]] bool attempt_succeeds(LinkId link) {
    return static_probs_ != nullptr ? loss_rng_for(link).bernoulli(static_probs_[link])
                                    : channel_->attempt_succeeds(link, loss_rng_for(link));
  }
  /// Allocates the pair ledger (dense or CSR per the conflict relation) and
  /// the per-link SoA blocks from the arena.
  void init_link_state();
  /// CSR cell for the (a, b) pair; null when a and b never conflict.
  [[nodiscard]] const std::uint64_t* pair_cell(LinkId a, LinkId b) const {
    const std::uint32_t lo = pair_row_[a];
    const std::uint32_t hi = pair_row_[a + 1];
    const LinkId* first = pair_col_.data() + lo;
    const LinkId* last = pair_col_.data() + hi;
    const LinkId* it = std::lower_bound(first, last, b);
    if (it == last || *it != b) return nullptr;
    return pair_count_.data() + (it - pair_col_.data());
  }
  [[nodiscard]] std::uint64_t* pair_cell(LinkId a, LinkId b) {
    return const_cast<std::uint64_t*>(std::as_const(*this).pair_cell(a, b));
  }
  /// Counts one pairwise collision event between a and b (symmetric; the
  /// self pair a == b counts once).
  void count_collision_pair(LinkId a, LinkId b) {
    if (!pair_dense_.empty()) {
      ++pair_dense_[static_cast<std::size_t>(a) * num_links_ + b];
      if (a != b) ++pair_dense_[static_cast<std::size_t>(b) * num_links_ + a];
      return;
    }
    std::uint64_t* ab = pair_cell(a, b);
    RTMAC_ASSERT(ab != nullptr, "collision between non-conflicting links");
    ++*ab;
    if (a != b) ++*pair_cell(b, a);
  }
  /// Applies a phantom busy/idle edge to the given local views (remote
  /// cut-edge activity; the global view and active_count_ stay untouched).
  void remote_mark(const std::vector<LinkId>& nodes, bool to_busy);
  /// Marks views of `link`'s sensing nodes (plus the global view) that
  /// transition in the given direction, updating their busy accounting.
  void mark_transitions(LinkId link, bool to_busy, TimePoint now);
  /// Notifies listeners (in registration order) whose view is marked, then
  /// clears the marks. Aborts re-entrant start_transmission while running.
  void dispatch_marked(bool to_busy, TimePoint now);
  /// Complete-sensing fast path: every view coincides with the global one,
  /// so a global-view edge notifies every listener unconditionally.
  void notify_all(bool to_busy, TimePoint now);

  sim::Simulator& sim_;
  std::unique_ptr<ChannelModel> channel_;
  InterferenceGraph graph_;
  /// Cached graph_.complete_sensing(): selects the single-view fast path
  /// (per-node views are never touched; all listeners share the global
  /// view's transitions, which is exactly what a complete graph implies).
  bool complete_sensing_ = false;
  std::size_t num_links_ = 0;  ///< cached channel_->num_links()
  std::uint64_t seed_ = 0;     ///< root seed (loss streams re-key in shard mode)
  /// Non-null iff the channel is a StaticChannel: borrowed view of its p_n
  /// vector, enabling the devirtualized loss draw in attempt_succeeds().
  const double* static_probs_ = nullptr;
  Rng loss_rng_;               ///< shared stream (complete graphs only)
  std::vector<Rng> loss_rngs_;  ///< per-link streams (partial topologies)
  std::vector<ActiveTx> active_;  // small: rarely more than a handful in flight
  std::size_t active_count_ = 0;
  /// Cold per-link SoA blocks live in `arena_` (caller-shared, or the
  /// fallback `own_arena_` on the legacy path), sized once at construction.
  util::Arena* arena_ = nullptr;
  std::unique_ptr<util::Arena> own_arena_;
  std::span<SenseView> views_;  ///< one per node (= per link)
  SenseView global_view_;         ///< the kAllNodes view; feeds busy-period hist
  std::span<std::uint8_t> marks_;  ///< per-view transition scratch; [n_] = global
  bool any_marked_ = false;
  bool dispatching_listeners_ = false;  ///< re-entrancy guard (always enforced)
  bool burst_active_ = false;           ///< inside a begin_burst/end_burst pair
  std::uint64_t next_tx_id_ = 1;
  std::vector<ListenerEntry> listeners_;
  MediumCounters counters_;
  std::span<LinkCounters> link_counters_;  ///< arena-backed, one per link
  // Pairwise collision ledger: exactly one of the two forms is populated.
  std::span<std::uint64_t> pair_dense_;  ///< n x n (complete conflicts only)
  std::span<std::uint32_t> pair_row_;    ///< CSR row offsets, size n + 1
  std::span<LinkId> pair_col_;           ///< CSR columns: {a} + conflicts(a), sorted
  std::span<std::uint64_t> pair_count_;  ///< CSR values, parallel to pair_col_
  sim::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  // Cached instrument handles, null when detached. Quantile sketches, not
  // fixed-bucket histograms: busy periods and delivery latencies span four
  // orders of magnitude and the sketches stay memory-bounded on any horizon.
  obs::QuantileSketch* busy_period_sketch_ = nullptr;
  obs::QuantileSketch* delivery_latency_sketch_ = nullptr;
  TimePoint interval_start_;  ///< anchor for delivery latency (note_interval_start)

  // Shard mode (empty/default on the legacy path).
  bool shard_mode_ = false;
  ShardMediumConfig shard_;
  TimePoint resolution_horizon_;
  std::vector<CutTxExport> outbox_;
  /// speaker global id -> local nodes whose views it drives.
  std::unordered_map<LinkId, std::vector<LinkId>> remote_sense_;
};

}  // namespace rtmac::phy
