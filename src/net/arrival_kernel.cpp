#include "net/arrival_kernel.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rtmac::net {

ArrivalKernel::Row ArrivalKernel::classify(const traffic::ArrivalProcess& process,
                                           Kind& kind) {
  Row row;
  if (const auto* b = dynamic_cast<const traffic::BernoulliArrivals*>(&process)) {
    kind = Kind::kBernoulli;
    row.x = b->mean();  // mean() returns lambda verbatim
    return row;
  }
  if (const auto* u = dynamic_cast<const traffic::UniformBurstyArrivals*>(&process)) {
    kind = Kind::kUniformBursty;
    row.x = u->alpha();
    row.a = u->lo();
    row.b = u->hi();
    return row;
  }
  if (const auto* c = dynamic_cast<const traffic::ConstantArrivals*>(&process)) {
    kind = Kind::kConstant;
    row.a = c->max_arrivals();  // max == count for a point mass
    return row;
  }
  if (const auto* g = dynamic_cast<const traffic::GeneralDiscreteArrivals*>(&process)) {
    // The cdf bits are copied verbatim from the process (same doubles, same
    // upper_bound semantics), so the inverse-cdf draw below is bit-equal to
    // the scalar sample().
    kind = Kind::kGeneral;
    const std::vector<double>& cdf = g->cdf();
    row.a = static_cast<std::int32_t>(cdf_pool_.size());
    row.b = static_cast<std::int32_t>(cdf.size());
    cdf_pool_.insert(cdf_pool_.end(), cdf.begin(), cdf.end());
    return row;
  }
  // Unknown subclass: its draw pattern is its own business — delegate.
  kind = Kind::kVirtual;
  row.a = static_cast<std::int32_t>(fallback_.size());
  fallback_.push_back(&process);
  return row;
}

void ArrivalKernel::build(
    std::span<const std::unique_ptr<traffic::ArrivalProcess>> processes,
    util::Arena& arena) {
  RTMAC_REQUIRE(num_links_ == 0, "kernel is built exactly once");
  num_links_ = processes.size();
  uniform_ = false;
  kinds_ = arena.make_span<Kind>(num_links_);
  rows_ = arena.make_span<Row>(num_links_);
  for (std::size_t n = 0; n < num_links_; ++n) {
    RTMAC_REQUIRE(processes[n] != nullptr, "null arrival process");
    rows_[n] = classify(*processes[n], kinds_[n]);
  }
}

void ArrivalKernel::build_uniform(const traffic::ArrivalProcess& proto,
                                  std::size_t num_links, util::Arena&) {
  RTMAC_REQUIRE(num_links_ == 0, "kernel is built exactly once");
  RTMAC_REQUIRE(num_links > 0, "uniform kernel needs at least one link");
  num_links_ = num_links;
  uniform_ = true;
  uniform_row_ = classify(proto, uniform_kind_);
}

int ArrivalKernel::sample_row(Kind kind, const Row& row, Rng& rng) const {
  switch (kind) {
    case Kind::kBernoulli:
      return rng.bernoulli(row.x) ? 1 : 0;
    case Kind::kUniformBursty:
      if (!rng.bernoulli(row.x)) return 0;
      return static_cast<int>(rng.uniform_int(row.a, row.b));
    case Kind::kConstant:
      return static_cast<int>(row.a);
    case Kind::kGeneral: {
      const double* first = cdf_pool_.data() + row.a;
      const double* last = first + row.b;
      const double u = rng.next_double();
      const double* it = std::upper_bound(first, last, u);
      const auto idx = static_cast<std::ptrdiff_t>(it - first);
      return static_cast<int>(
          std::min<std::ptrdiff_t>(idx, static_cast<std::ptrdiff_t>(row.b) - 1));
    }
    case Kind::kVirtual:
      return fallback_[static_cast<std::size_t>(row.a)]->sample(rng);
  }
  RTMAC_UNREACHABLE("bad arrival kernel row kind");
}

void ArrivalKernel::sample_into(Rng& rng, std::span<int> out) const {
  RTMAC_REQUIRE(out.size() == num_links_, "output span size mismatch");
  if (uniform_) {
    // One row broadcast over the network; hoist the common cases so the
    // per-link work is a branch and one or two inlined draws.
    switch (uniform_kind_) {
      case Kind::kBernoulli: {
        const double lambda = uniform_row_.x;
        for (std::size_t n = 0; n < num_links_; ++n) {
          out[n] = rng.bernoulli(lambda) ? 1 : 0;
        }
        return;
      }
      case Kind::kConstant: {
        std::fill(out.begin(), out.end(), static_cast<int>(uniform_row_.a));
        return;
      }
      default:
        for (std::size_t n = 0; n < num_links_; ++n) {
          out[n] = sample_row(uniform_kind_, uniform_row_, rng);
        }
        return;
    }
  }
  for (std::size_t n = 0; n < num_links_; ++n) {
    out[n] = sample_row(kinds_[n], rows_[n], rng);
  }
}

std::size_t ArrivalKernel::memory_bytes() const {
  return kinds_.size_bytes() + rows_.size_bytes() +
         cdf_pool_.capacity() * sizeof(double) +
         fallback_.capacity() * sizeof(const traffic::ArrivalProcess*);
}

}  // namespace rtmac::net
