#include "net/network.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <utility>

#include "sim/shard_barrier.hpp"
#include "sim/shard_partitioner.hpp"
#include "sim/sharded_simulator.hpp"
#include "stats/deficiency.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace rtmac::net {

// ---- CutState ---------------------------------------------------------------

/// Cross-shard conflict resolver and collision ledger. Cut-link records are
/// appended only at serial coordinator barriers; during the parallel phase
/// cells read them concurrently (immutable between barriers) and each cell
/// writes pair counts only into its own per-cell buffer, so the resolver is
/// race-free without locks.
class Network::CutState final : public phy::CutResolver {
 public:
  static constexpr std::uint32_t kNoSlot = static_cast<std::uint32_t>(-1);

  void build(const sim::ShardPlan& plan) {
    edges_ = plan.cut_conflicts;
    slot_of_.assign(plan.num_links(), kNoSlot);
    auto slot = [this, &plan](LinkId g) {
      if (slot_of_[g] == kNoSlot) {
        slot_of_[g] = static_cast<std::uint32_t>(partners_.size());
        partners_.emplace_back();
        records_.emplace_back();
        owner_cell_.push_back(plan.cell_of[g]);
      }
      return slot_of_[g];
    };
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      const sim::CutEdge e = edges_[i];
      const std::uint32_t sa = slot(e.a);
      partners_[sa].push_back(PairRef{e.b, i});
      const std::uint32_t sb = slot(e.b);
      partners_[sb].push_back(PairRef{e.a, i});
    }
    pair_counts_.assign(plan.cells.size(), std::vector<std::uint64_t>(edges_.size(), 0));
  }

  /// Barrier phase (serial): remember one exported cut transmission.
  /// Records of sense-only speakers (no cut conflict edge) are not needed
  /// for resolution and are dropped here.
  void add_record(const sim::CutTxRecord& r) RTMAC_REQUIRES(sim::shard_barrier) {
    const std::uint32_t slot = slot_of_[r.link];
    if (slot != kNoSlot) records_[slot].push_back(r);
  }

  /// Interval boundary (serial): the gap rule guarantees no transmission
  /// crosses it, so all records are dead. Serial like the barrier phase, so
  /// it borrows the same phantom capability.
  void clear_records() RTMAC_REQUIRES(sim::shard_barrier) {
    for (auto& v : records_) v.clear();
  }

  // phy::CutResolver. Called by a cell's Medium when a cut-link completion
  // executes; the conservative window protocol guarantees every overlapping
  // remote transmission has already been recorded, so the answer is exact.
  [[nodiscard]] bool resolve_cut_tx(LinkId link, TimePoint start, TimePoint end) override {
    const std::uint32_t slot = slot_of_[link];
    RTMAC_ASSERT(slot != kNoSlot, "cut resolution for a non-cut link");
    bool collided = false;
    std::vector<std::uint64_t>& counts = pair_counts_[owner_cell_[slot]];
    for (const PairRef& pr : partners_[slot]) {
      for (const sim::CutTxRecord& r : records_[slot_of_[pr.partner]]) {
        if (r.start < end && start < r.end) {
          collided = true;
          // Each overlapping transmission pair is counted exactly once: by
          // the lower-id side's completion (the other side sees the mirror
          // overlap and skips).
          if (link < pr.partner) ++counts[pr.pair_idx];
        }
      }
    }
    return collided;
  }

  /// Cross-cell pairwise collision events (GLOBAL ids; 0 for non-cut pairs).
  [[nodiscard]] std::uint64_t pair_count(LinkId a, LinkId b) const {
    const sim::CutEdge e{std::min(a, b), std::max(a, b)};
    const auto it = std::lower_bound(
        edges_.begin(), edges_.end(), e, [](const sim::CutEdge& x, const sim::CutEdge& y) {
          return x.a != y.a ? x.a < y.a : x.b < y.b;
        });
    if (it == edges_.end() || !(*it == e)) return 0;
    const std::size_t idx = static_cast<std::size_t>(it - edges_.begin());
    std::uint64_t total = 0;
    for (const auto& counts : pair_counts_) total += counts[idx];
    return total;
  }

 private:
  struct PairRef {
    LinkId partner;         ///< the other endpoint (global id)
    std::size_t pair_idx;   ///< index into edges_ / pair_counts_ rows
  };

  std::vector<sim::CutEdge> edges_;                   ///< sorted cut conflicts
  std::vector<std::uint32_t> slot_of_;                ///< global link -> slot
  std::vector<std::vector<PairRef>> partners_;        ///< per slot
  std::vector<std::vector<sim::CutTxRecord>> records_;  ///< per slot, in drain order
  std::vector<std::uint32_t> owner_cell_;             ///< per slot
  std::vector<std::vector<std::uint64_t>> pair_counts_;  ///< [cell][pair] — no races
};

// ---- Cell -------------------------------------------------------------------

/// One shard cell: a full engine stack (Simulator + Medium + scheme + debt
/// slice) over the induced subgraph of one partition cell. Member order is
/// load-bearing: the scheme holds references to success_prob and debts.
struct Network::Cell final : public sim::ShardCell {
  Network& net;
  std::uint32_t index;
  std::vector<LinkId> links;       ///< global ids, ascending
  ProbabilityVector success_prob;  ///< sliced by global id
  core::DebtTracker debts;         ///< sliced; mirrors the global ledger
  sim::Simulator sim;
  std::unique_ptr<phy::Medium> medium;
  std::unique_ptr<mac::MacScheme> scheme;
  std::unique_ptr<obs::MetricsRegistry> registry;  ///< private per-cell instruments
  std::vector<int> arrivals;
  std::vector<int> delivered;
  std::vector<phy::CutTxExport> outbox_scratch;

  Cell(Network& n, std::uint32_t idx, std::vector<LinkId> ls, RateVector q_slice,
       ProbabilityVector p_slice)
      : net{n},
        index{idx},
        links{std::move(ls)},
        success_prob{std::move(p_slice)},
        debts{std::move(q_slice)},
        arrivals(links.size(), 0),
        delivered(links.size(), 0) {}

  // sim::ShardCell. The thread-safety analysis does not inherit attributes
  // from the base-class declarations, so the phase annotations are repeated
  // here — without them the bodies could not call the Medium's
  // barrier-phase-only entry points.
  [[nodiscard]] TimePoint clock() const override { return sim.now(); }
  void drain_outbox(std::vector<sim::CutTxRecord>& into) override
      RTMAC_REQUIRES(sim::shard_barrier);
  void deliver_remote(const sim::CutTxRecord& record) override
      RTMAC_REQUIRES(sim::shard_barrier) {
    medium->inject_remote_activity(record.link, record.start, record.end);
  }
  void begin_window(TimePoint bound) override RTMAC_REQUIRES(sim::shard_barrier) {
    medium->set_resolution_horizon(bound);
  }
  /// Adaptive-lookahead probe: nothing observable happens in this cell
  /// before its next pending event, so neighbors may run up to that instant
  /// (see sim/sharded_simulator.hpp for the exactness argument). An idle
  /// cell reports no_run_limit() and stops throttling its neighbors.
  [[nodiscard]] TimePoint next_activity_bound() override RTMAC_REQUIRES(sim::shard_barrier) {
    return sim.next_event_time();
  }
  void run_window(TimePoint horizon) override RTMAC_EXCLUDES(sim::shard_barrier) {
    sim.run_until(horizon);
  }
};

// ---- Shard ------------------------------------------------------------------

/// Everything the sharded engine owns beyond the legacy members.
struct Network::Shard {
  sim::ShardPlan plan;
  std::vector<LinkId> local_of;  ///< global id -> index within its cell
  std::unique_ptr<CutState> cut;
  std::vector<std::unique_ptr<Cell>> cells;
  std::vector<sim::ShardCell*> cell_ptrs;
  std::unique_ptr<ThreadPool> pool;                  ///< null = serial groups
  std::unique_ptr<sim::ShardCoordinator> coordinator;  ///< null = cut-free fast path
};

void Network::Cell::drain_outbox(std::vector<sim::CutTxRecord>& into)
    RTMAC_REQUIRES(sim::shard_barrier) {
  outbox_scratch.clear();
  medium->drain_cut_outbox(outbox_scratch);
  for (const phy::CutTxExport& e : outbox_scratch) {
    const sim::CutTxRecord r{e.link, index, e.start, e.end};
    net.shard_->cut->add_record(r);
    into.push_back(r);
  }
}

// ---- construction -----------------------------------------------------------

Network::Network(NetworkConfig config, const mac::SchemeFactory& scheme_factory)
    : config_{std::move(config)},
      medium_{nullptr},
      debts_{config_.requirements.q()},
      stats_{config_.num_links()},
      arrival_rng_{config_.seed, /*stream_id=*/0xA221BA15ULL},
      arrivals_(config_.interval_buffer_hint(), 0),
      delivered_(config_.interval_buffer_hint(), 0) {
  std::string error;
  if (!config_.validate(&error)) {
    std::fprintf(stderr, "rtmac: invalid NetworkConfig: %s\n", error.c_str());
    std::abort();
  }
  // Central arrival sampling is table-driven on every non-joint run; the
  // kernel reproduces the scalar per-link draw sequence exactly (see
  // net/arrival_kernel.hpp).
  if (config_.joint_arrivals == nullptr) {
    if (!config_.arrivals.empty()) {
      arrival_kernel_.build(config_.arrivals, arena_);
    } else {
      arrival_kernel_.build_uniform(*config_.uniform_arrivals, config_.num_links(), arena_);
    }
  }
  const std::size_t target =
      config_.shards > 0
          ? config_.shards
          : (config_.auto_shard ? ThreadPool::hardware_threads() : 0);
  if (target >= 1 &&
      (config_.topology.has_value() || config_.sparse_topology != nullptr)) {
    build_shard(target, scheme_factory);
  }
  if (shard_ != nullptr) return;

  // Legacy single-engine path. A sparse topology whose partition came out
  // trivial (one cell, no cuts) is densified so the single Medium can serve
  // it — behavior is identical by construction.
  if (config_.sparse_topology != nullptr && !config_.topology.has_value()) {
    config_.topology = phy::InterferenceGraph::from_lists(
        config_.num_links(), config_.sparse_topology->conflict, config_.sparse_topology->sense);
  }
  identity_links_.resize(config_.num_links());
  for (std::size_t i = 0; i < identity_links_.size(); ++i) {
    identity_links_[i] = static_cast<LinkId>(i);
  }
  // Pre-size the engine's slot pool and heap so a steady-state run never
  // reallocates (engine.events.reallocs proves it in the metrics export).
  sim_.reserve_events(config_.event_capacity_hint());
  if (config_.channel_factory) {
    auto channel = config_.channel_factory();
    RTMAC_REQUIRE(channel != nullptr && channel->num_links() == config_.num_links(), "channel model size must match the network");
    if (config_.topology.has_value()) {
      medium_ = std::make_unique<phy::Medium>(sim_, std::move(channel), *config_.topology,
                                              config_.seed, &arena_);
    } else {
      medium_ = std::make_unique<phy::Medium>(sim_, std::move(channel), config_.seed, &arena_);
    }
  } else if (config_.topology.has_value()) {
    medium_ = std::make_unique<phy::Medium>(sim_, config_.success_prob, *config_.topology,
                                            config_.seed, &arena_);
  } else {
    medium_ = std::make_unique<phy::Medium>(sim_, config_.success_prob, config_.seed, &arena_);
  }
  mac::SchemeContext ctx{sim_,
                         *medium_,
                         config_.phy,
                         config_.interval_length,
                         config_.num_links(),
                         config_.success_prob,
                         debts_,
                         config_.seed};
  ctx.arena = &arena_;
  scheme_ = scheme_factory(ctx);
  RTMAC_REQUIRE(scheme_ != nullptr);
}

Network::~Network() = default;

void Network::build_shard(std::size_t target_shards, const mac::SchemeFactory& scheme_factory) {
  const std::size_t n = config_.num_links();
  // Partition from the sparse lists in place — a 10^6-link topology's
  // adjacency is hundreds of MB, so no deep copy on this path.
  sim::AdjacencyLists conflict_storage;
  sim::AdjacencyLists sense_storage;
  const sim::AdjacencyLists* conflict = nullptr;
  const sim::AdjacencyLists* sense = nullptr;
  if (config_.sparse_topology != nullptr) {
    conflict = &config_.sparse_topology->conflict;
    sense = &config_.sparse_topology->sense;
  } else if (config_.topology.has_value()) {
    // The has_value() guard is local on purpose: the caller checks it too,
    // but flow-sensitive analyzers (bugprone-unchecked-optional-access) only
    // see in-function guards.
    const phy::InterferenceGraph& g = *config_.topology;
    conflict_storage.resize(n);
    sense_storage.resize(n);
    for (LinkId a = 0; a < n; ++a) {
      for (LinkId b = 0; b < n; ++b) {
        if (a == b) continue;
        if (g.conflicts(a, b)) conflict_storage[a].push_back(b);
        if (g.senses(a, b)) sense_storage[a].push_back(b);
      }
    }
    conflict = &conflict_storage;
    sense = &sense_storage;
  } else {
    RTMAC_UNREACHABLE("build_shard requires a topology");
  }
  sim::ShardPlan plan = sim::partition_topology(*conflict, *sense, target_shards);
  if (plan.trivial()) return;  // caller falls back to the legacy engine

  shard_ = std::make_unique<Shard>();
  Shard& sh = *shard_;
  sh.plan = std::move(plan);
  const std::size_t num_cells = sh.plan.cells.size();
  sh.local_of.assign(n, 0);
  for (std::size_t ci = 0; ci < num_cells; ++ci) {
    const std::vector<LinkId>& links = sh.plan.cells[ci];
    for (std::size_t j = 0; j < links.size(); ++j) {
      sh.local_of[links[j]] = static_cast<LinkId>(j);
    }
  }
  sh.cut = std::make_unique<CutState>();
  sh.cut->build(sh.plan);

  std::vector<std::uint8_t> has_cut_conflict(n, 0);
  std::vector<std::uint8_t> is_cut_speaker(n, 0);
  for (const sim::CutEdge& e : sh.plan.cut_conflicts) {
    has_cut_conflict[e.a] = 1;
    has_cut_conflict[e.b] = 1;
  }
  for (const sim::CutSense& s : sh.plan.cut_senses) is_cut_speaker[s.speaker] = 1;

  // Remote-sense registrations grouped per listening cell: (speaker global
  // id, local listener node).
  std::vector<std::vector<std::pair<LinkId, LinkId>>> remote(num_cells);
  for (const sim::CutSense& s : sh.plan.cut_senses) {
    remote[sh.plan.cell_of[s.listener]].emplace_back(s.speaker, sh.local_of[s.listener]);
  }

  const RateVector q = config_.requirements.q();
  sh.cells.reserve(num_cells);
  for (std::size_t ci = 0; ci < num_cells; ++ci) {
    const std::vector<LinkId>& links = sh.plan.cells[ci];
    RateVector q_slice;
    ProbabilityVector p_slice;
    q_slice.reserve(links.size());
    p_slice.reserve(links.size());
    for (const LinkId g : links) {
      q_slice.push_back(q[g]);
      p_slice.push_back(config_.success_prob[g]);
    }
    auto cell = std::make_unique<Cell>(*this, static_cast<std::uint32_t>(ci), links,
                                       std::move(q_slice), std::move(p_slice));

    // A cut-free cell (no cut conflicts, no exported speakers, no remote
    // listeners) interacts with nothing outside itself, so its subgraph may
    // keep honestly-computed completeness flags: a clique cell then runs
    // the O(1) complete-sensing fast paths — the per-event win that makes
    // dense-cell city topologies scale (DESIGN §4j).
    bool cut_free = remote[ci].empty();
    for (const LinkId g : links) {
      if (has_cut_conflict[g] != 0 || is_cut_speaker[g] != 0) {
        cut_free = false;
        break;
      }
    }
    const auto flags = cut_free ? phy::InterferenceGraph::SubgraphFlags::kKeepCompleteness
                                : phy::InterferenceGraph::SubgraphFlags::kClearCompleteness;
    phy::InterferenceGraph cell_graph =
        config_.sparse_topology != nullptr
            ? phy::induced_subgraph(*config_.sparse_topology, cell->links, flags)
            : config_.topology->induced(cell->links, flags);
    cell->medium = std::make_unique<phy::Medium>(cell->sim, cell->success_prob,
                                                 std::move(cell_graph), config_.seed, &arena_);

    phy::ShardMediumConfig smc;
    smc.global_ids = cell->links;
    smc.conflict_cut.resize(links.size(), 0);
    smc.exported.resize(links.size(), 0);
    for (std::size_t j = 0; j < links.size(); ++j) {
      smc.conflict_cut[j] = has_cut_conflict[links[j]];
      smc.exported[j] =
          static_cast<std::uint8_t>(has_cut_conflict[links[j]] | is_cut_speaker[links[j]]);
    }
    smc.resolver = sh.cut.get();
    cell->medium->configure_shard(std::move(smc));

    std::vector<std::pair<LinkId, LinkId>>& regs = remote[ci];
    std::sort(regs.begin(), regs.end());
    std::size_t num_speakers = 0;
    for (std::size_t i = 0; i < regs.size();) {
      const LinkId speaker = regs[i].first;
      std::vector<LinkId> nodes;
      for (; i < regs.size() && regs[i].first == speaker; ++i) nodes.push_back(regs[i].second);
      cell->medium->register_remote_sense(speaker, std::move(nodes));
      ++num_speakers;
    }
    mac::SchemeContext ctx{cell->sim,
                           *cell->medium,
                           config_.phy,
                           config_.interval_length,
                           links.size(),
                           cell->success_prob,
                           cell->debts,
                           config_.seed,
                           std::span<const LinkId>{cell->links},
                           n};
    ctx.arena = &arena_;
    cell->scheme = scheme_factory(ctx);
    RTMAC_REQUIRE(cell->scheme != nullptr);
    RTMAC_REQUIRE(cell->scheme->shardable(),
                  "scheme requires global knowledge and cannot run on shard cells");
    // The reserve covers the PEAK number of simultaneously pending events,
    // not the per-interval total: the scheme declares its per-link timer
    // bound (batch shared-clock schemes keep ONE domain expiry event plus at
    // most one in-flight completion per link; scalar engines add parked
    // per-link expiries), and each remote speaker holds at most two edges
    // (busy + idle) per in-flight injection. Sized AFTER scheme construction
    // so the bound can depend on the layout the scheme chose; at 10^5+ cells
    // the pool is the dominant per-cell footprint, so a tight bound is worth
    // real memory at the million-link scale.
    // engine.events.reallocs == 0 in the bench gate proves the bound holds.
    cell->sim.reserve_events(links.size() * cell->scheme->pending_events_per_link() + 16 +
                             4 * num_speakers);
    sh.cells.push_back(std::move(cell));
  }
  sh.cell_ptrs.reserve(num_cells);
  for (const auto& cell : sh.cells) sh.cell_ptrs.push_back(cell.get());

  std::size_t jobs =
      config_.shard_jobs != 0 ? config_.shard_jobs : ThreadPool::hardware_threads();
  jobs = std::min(jobs, sh.plan.groups.size());
  if (jobs > 1) sh.pool = std::make_unique<ThreadPool>(jobs);

  if (!sh.plan.cut_conflicts.empty() || !sh.plan.cut_senses.empty()) {
    // Cells coupled by ANY cut relation bound each other's windows. Sense
    // cuts only require listener-waits-for-speaker, but the symmetric form
    // is simpler and merely conservative.
    std::vector<std::vector<std::uint32_t>> cut_neighbors(num_cells);
    auto couple = [&sh, &cut_neighbors](LinkId x, LinkId y) {
      const std::uint32_t cx = sh.plan.cell_of[x];
      const std::uint32_t cy = sh.plan.cell_of[y];
      if (cx != cy) {
        cut_neighbors[cx].push_back(cy);
        cut_neighbors[cy].push_back(cx);
      }
    };
    for (const sim::CutEdge& e : sh.plan.cut_conflicts) couple(e.a, e.b);
    for (const sim::CutSense& s : sh.plan.cut_senses) couple(s.listener, s.speaker);
    for (auto& v : cut_neighbors) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    }
    sh.coordinator = std::make_unique<sim::ShardCoordinator>(
        sh.cell_ptrs, std::move(cut_neighbors), sh.plan.groups, sh.pool.get(),
        config_.adaptive_lookahead);
  }
}

// ---- interval loop ----------------------------------------------------------

void Network::add_observer(IntervalObserver observer) {
  observers_.push_back(std::move(observer));
}

void Network::attach_tracer(sim::Tracer* tracer) {
  RTMAC_REQUIRE(tracer == nullptr || !sharded(),
                "protocol tracing requires the single-engine path");
  tracer_ = tracer;
  if (medium_ != nullptr) medium_->set_tracer(tracer);
}

void Network::attach_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (shard_ != nullptr) {
    // Each cell's medium/MAC instruments go to a private registry so the
    // parallel phase never shares one; merge_cell_metrics_into folds them.
    for (auto& cell : shard_->cells) {
      if (registry != nullptr) {
        cell->registry = std::make_unique<obs::MetricsRegistry>();
        cell->medium->set_metrics(cell->registry.get());
      } else {
        cell->medium->set_metrics(nullptr);
        cell->registry.reset();
      }
    }
  } else {
    medium_->set_metrics(registry);
  }
  debt_gauges_.clear();
  debt_sketches_.clear();
  if (registry == nullptr) {
    debt_linf_gauge_ = nullptr;
    debt_linf_sketch_ = nullptr;
    deliveries_sketch_ = nullptr;
    return;
  }
  debt_linf_gauge_ = &registry->gauge("core.debt_linf");
  // Per-interval distributions are quantile sketches: bounded memory with a
  // distribution-independent rank guarantee, so they survive any horizon
  // and any debt scale without hand-picked bucket bounds.
  debt_linf_sketch_ = &registry->sketch("core.debt_linf_per_interval");
  deliveries_sketch_ = &registry->sketch("net.deliveries_per_interval");
  debt_gauges_.reserve(config_.num_links());
  debt_sketches_.reserve(config_.num_links());
  // Per-link debt series use a smaller compactor: one sketch per link must
  // stay cheap at large N, and per-link debt spans a narrower range than
  // the network-wide L-inf series.
  const obs::SketchOptions per_link{/*k=*/64, /*exact_threshold=*/256};
  for (LinkId n = 0; n < config_.num_links(); ++n) {
    debt_gauges_.push_back(&registry->gauge(obs::link_metric("core.debt", n)));
    debt_sketches_.push_back(
        &registry->sketch(obs::link_metric("core.debt_per_interval", n), per_link));
  }
}

void Network::run(IntervalIndex intervals) {
  const std::size_t n_links = config_.num_links();
  const std::span<int> arrivals{arrivals_};

  for (IntervalIndex i = 0; i < intervals; ++i) {
    const IntervalIndex k = next_interval_++;
    const TimePoint start = TimePoint::origin() +
                            static_cast<std::int64_t>(k) * config_.interval_length;
    const TimePoint end = start + config_.interval_length;

    // Arrivals are sampled centrally in global link order on BOTH engines,
    // so the sampled sequence is independent of the partition. The kernel
    // consumes the stream exactly as the per-link virtual loop would.
    if (config_.joint_arrivals != nullptr) {
      config_.joint_arrivals->sample_into(arrival_rng_, arrivals);
    } else {
      arrival_kernel_.sample_into(arrival_rng_, arrivals.first(n_links));
    }

    if (shard_ != nullptr) {
      run_sharded_interval(k, start, end);
    } else {
      run_legacy_interval(k, start, end);
    }
    finish_interval(k, end);
  }
}

void Network::run_legacy_interval(IntervalIndex k, TimePoint start, TimePoint end) {
  RTMAC_ASSERT(sim_.now() == start, "interval boundaries drifted");
  medium_->note_interval_start(start);  // anchors the delivery-latency series
  if (tracer_ != nullptr) {
    tracer_->record(start, sim::TraceKind::kIntervalStart, sim::kNoLink,
                    static_cast<std::int64_t>(k));
  }
  scheme_->begin_interval(k, arrivals_, end);
  sim_.run_until(end);
  RTMAC_ASSERT(!medium_->busy(), "a transmission overran the interval boundary (gap rule)");
  scheme_->end_interval(delivered_);
  if (tracer_ != nullptr) {
    tracer_->record(end, sim::TraceKind::kIntervalEnd, sim::kNoLink,
                    static_cast<std::int64_t>(k));
  }
}

void Network::run_sharded_interval(IntervalIndex k, TimePoint start, TimePoint end) {
  Shard& sh = *shard_;
  for (auto& cell : sh.cells) {
    for (std::size_t j = 0; j < cell->links.size(); ++j) {
      cell->arrivals[j] = arrivals_[cell->links[j]];
    }
  }

  if (sh.coordinator != nullptr) {
    // Cut path: serial interval-edge work, windowed parallel advancement.
    for (auto& cell : sh.cells) {
      RTMAC_ASSERT(cell->sim.now() == start, "interval boundaries drifted");
      cell->medium->note_interval_start(start);
      cell->scheme->begin_interval(k, cell->arrivals, end);
    }
    sh.coordinator->advance_to(end);
    for (auto& cell : sh.cells) {
      RTMAC_ASSERT(!cell->medium->busy(),
                   "a transmission overran the interval boundary (gap rule)");
      cell->scheme->end_interval(cell->delivered);
      cell->debts.on_interval_end(cell->delivered);
    }
    {
      // Interval boundary is serial — same discipline as the window barrier.
      const util::PhantomLock barrier{sim::shard_barrier};
      sh.cut->clear_records();
    }
  } else {
    // Cut-free fast path: cells are fully independent, so the whole interval
    // (begin / run / end / debts) folds into one task per group.
    auto run_group = [&](const std::vector<std::uint32_t>& group) {
      for (const std::uint32_t ci : group) {
        Cell& cell = *sh.cells[ci];
        RTMAC_ASSERT(cell.sim.now() == start, "interval boundaries drifted");
        cell.medium->note_interval_start(start);
        cell.scheme->begin_interval(k, cell.arrivals, end);
        cell.sim.run_until(end);
        RTMAC_ASSERT(!cell.medium->busy(),
                     "a transmission overran the interval boundary (gap rule)");
        cell.scheme->end_interval(cell.delivered);
        cell.debts.on_interval_end(cell.delivered);
      }
    };
    if (sh.pool != nullptr && sh.plan.groups.size() > 1) {
      std::vector<std::future<void>> futures;
      futures.reserve(sh.plan.groups.size());
      for (const auto& group : sh.plan.groups) {
        futures.push_back(sh.pool->submit([&run_group, &group] { run_group(group); }));
      }
      sh.pool->wait_all(futures);
      for (auto& f : futures) f.get();  // surface worker exceptions
    } else {
      for (const auto& group : sh.plan.groups) run_group(group);
    }
  }

  for (auto& cell : sh.cells) {
    for (std::size_t j = 0; j < cell->links.size(); ++j) {
      delivered_[cell->links[j]] = cell->delivered[j];
    }
  }
}

void Network::finish_interval(IntervalIndex k, TimePoint end) {
  const std::size_t n_links = config_.num_links();
  debts_.on_interval_end(delivered_);
  stats_.record(arrivals_, delivered_);
  if (metrics_ != nullptr) {
    int total_delivered = 0;
    for (std::size_t n = 0; n < n_links; ++n) {
      total_delivered += delivered_[n];
      const double debt = debts_.debt(static_cast<LinkId>(n));
      debt_gauges_[n]->set(debt);
      debt_sketches_[n]->update(debt);
    }
    debt_linf_gauge_->set(debts_.linf());
    debt_linf_sketch_->update(debts_.linf());
    deliveries_sketch_->update(static_cast<double>(total_delivered));
    // In-run time-series export: one whole-registry snapshot every
    // cadence intervals, stamped with sim time only (stream_tick is a
    // single branch when no stream sink is attached).
    metrics_->stream_tick(k, end.ns());
  }
  for (const auto& obs : observers_) obs(k, arrivals_, delivered_);
}

// ---- accessors and facades --------------------------------------------------

const phy::Medium& Network::medium() const {
  RTMAC_REQUIRE(!sharded(), "medium(): sharded networks have per-cell media");
  return *medium_;
}

mac::MacScheme& Network::scheme() {
  RTMAC_REQUIRE(!sharded(), "scheme(): sharded networks have per-cell schemes");
  return *scheme_;
}

const mac::MacScheme& Network::scheme() const {
  RTMAC_REQUIRE(!sharded(), "scheme(): sharded networks have per-cell schemes");
  return *scheme_;
}

const sim::Simulator& Network::simulator() const {
  RTMAC_REQUIRE(!sharded(), "simulator(): sharded networks have per-cell engines");
  return sim_;
}

std::size_t Network::cell_count() const { return shard_ != nullptr ? shard_->cells.size() : 1; }

std::size_t Network::group_count() const {
  return shard_ != nullptr ? shard_->plan.groups.size() : 1;
}

std::span<const LinkId> Network::cell_links(std::size_t cell) const {
  if (shard_ == nullptr) {
    RTMAC_REQUIRE(cell == 0);
    return identity_links_;
  }
  return shard_->cells[cell]->links;
}

const mac::MacScheme& Network::cell_scheme(std::size_t cell) const {
  if (shard_ == nullptr) {
    RTMAC_REQUIRE(cell == 0);
    return *scheme_;
  }
  return *shard_->cells[cell]->scheme;
}

std::uint64_t Network::coordinator_rounds() const {
  return (shard_ != nullptr && shard_->coordinator != nullptr) ? shard_->coordinator->rounds()
                                                               : 0;
}

TimePoint Network::now() const {
  return shard_ != nullptr ? shard_->cells.front()->sim.now() : sim_.now();
}

std::uint64_t Network::events_executed() const {
  if (shard_ == nullptr) return sim_.events_executed();
  std::uint64_t total = 0;
  for (const auto& cell : shard_->cells) total += cell->sim.events_executed();
  return total;
}

std::uint64_t Network::event_reallocs() const {
  if (shard_ == nullptr) return sim_.event_reallocs();
  std::uint64_t total = 0;
  for (const auto& cell : shard_->cells) total += cell->sim.event_reallocs();
  return total;
}

phy::MediumCounters Network::medium_counters() const {
  if (shard_ == nullptr) return medium_->counters();
  phy::MediumCounters out;
  for (const auto& cell : shard_->cells) {
    const phy::MediumCounters& c = cell->medium->counters();
    out.data_tx += c.data_tx;
    out.empty_tx += c.empty_tx;
    out.delivered += c.delivered;
    out.channel_losses += c.channel_losses;
    out.collisions += c.collisions;
    out.busy_time += c.busy_time;
    out.collided_time += c.collided_time;
  }
  return out;
}

const phy::LinkCounters& Network::link_counters(LinkId link) const {
  if (shard_ == nullptr) return medium_->link_counters(link);
  const Shard& sh = *shard_;
  return sh.cells[sh.plan.cell_of[link]]->medium->link_counters(sh.local_of[link]);
}

Duration Network::global_sense_busy_time() const {
  if (shard_ == nullptr) return medium_->sense_busy_time(phy::Medium::kAllNodes);
  Duration total;
  for (const auto& cell : shard_->cells) {
    total += cell->medium->sense_busy_time(phy::Medium::kAllNodes);
  }
  return total;
}

Duration Network::node_sense_busy_time(LinkId node) const {
  if (shard_ == nullptr) return medium_->sense_busy_time(node);
  const Shard& sh = *shard_;
  return sh.cells[sh.plan.cell_of[node]]->medium->sense_busy_time(sh.local_of[node]);
}

std::uint64_t Network::collision_pair_count(LinkId a, LinkId b) const {
  if (shard_ == nullptr) return medium_->collision_pair_count(a, b);
  const Shard& sh = *shard_;
  if (sh.plan.cell_of[a] == sh.plan.cell_of[b]) {
    return sh.cells[sh.plan.cell_of[a]]->medium->collision_pair_count(sh.local_of[a],
                                                                      sh.local_of[b]);
  }
  return sh.cut->pair_count(a, b);
}

void Network::merge_cell_metrics_into(obs::MetricsRegistry& target) const {
  if (shard_ == nullptr) return;
  for (const auto& cell : shard_->cells) {
    if (cell->registry != nullptr) target.merge_from(*cell->registry);
  }
}

Network::MemoryBreakdown Network::memory_breakdown() const {
  MemoryBreakdown mb;
  mb.arena_reserved = arena_.bytes_reserved();
  mb.arena_used = arena_.bytes_used();
  mb.arrivals = arrival_kernel_.memory_bytes();
  if (shard_ == nullptr) {
    mb.sim_events = sim_.event_memory_bytes();
    if (medium_ != nullptr) mb.phy = medium_->memory_bytes();
    if (scheme_ != nullptr) mb.mac = scheme_->memory_bytes();
    return mb;
  }
  for (const auto& cell : shard_->cells) {
    mb.sim_events += cell->sim.event_memory_bytes();
    mb.phy += cell->medium->memory_bytes();
    mb.mac += cell->scheme->memory_bytes();
  }
  return mb;
}

double Network::total_deficiency() const {
  return stats::total_deficiency(stats_, config_.requirements.q());
}

}  // namespace rtmac::net
