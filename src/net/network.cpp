#include "net/network.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "stats/deficiency.hpp"
#include "util/check.hpp"

namespace rtmac::net {

Network::Network(NetworkConfig config, const mac::SchemeFactory& scheme_factory)
    : config_{std::move(config)},
      medium_{nullptr},
      debts_{config_.requirements.q()},
      stats_{config_.num_links()},
      arrival_rng_{config_.seed, /*stream_id=*/0xA221BA15ULL},
      arrivals_(config_.interval_buffer_hint(), 0),
      delivered_(config_.interval_buffer_hint(), 0) {
  std::string error;
  if (!config_.validate(&error)) {
    std::fprintf(stderr, "rtmac: invalid NetworkConfig: %s\n", error.c_str());
    std::abort();
  }
  // Pre-size the engine's slot pool and heap so a steady-state run never
  // reallocates (engine.events.reallocs proves it in the metrics export).
  sim_.reserve_events(config_.event_capacity_hint());
  if (config_.channel_factory) {
    auto channel = config_.channel_factory();
    RTMAC_REQUIRE(channel != nullptr && channel->num_links() == config_.num_links(), "channel model size must match the network");
    if (config_.topology.has_value()) {
      medium_ = std::make_unique<phy::Medium>(sim_, std::move(channel), *config_.topology,
                                              config_.seed);
    } else {
      medium_ = std::make_unique<phy::Medium>(sim_, std::move(channel), config_.seed);
    }
  } else if (config_.topology.has_value()) {
    medium_ = std::make_unique<phy::Medium>(sim_, config_.success_prob, *config_.topology,
                                            config_.seed);
  } else {
    medium_ = std::make_unique<phy::Medium>(sim_, config_.success_prob, config_.seed);
  }
  const mac::SchemeContext ctx{sim_,
                               *medium_,
                               config_.phy,
                               config_.interval_length,
                               config_.num_links(),
                               config_.success_prob,
                               debts_,
                               config_.seed};
  scheme_ = scheme_factory(ctx);
  RTMAC_REQUIRE(scheme_ != nullptr);
}

void Network::add_observer(IntervalObserver observer) {
  observers_.push_back(std::move(observer));
}

void Network::attach_tracer(sim::Tracer* tracer) {
  tracer_ = tracer;
  medium_->set_tracer(tracer);
}

void Network::attach_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  medium_->set_metrics(registry);
  debt_gauges_.clear();
  debt_sketches_.clear();
  if (registry == nullptr) {
    debt_linf_gauge_ = nullptr;
    debt_linf_sketch_ = nullptr;
    deliveries_sketch_ = nullptr;
    return;
  }
  debt_linf_gauge_ = &registry->gauge("core.debt_linf");
  // Per-interval distributions are quantile sketches: bounded memory with a
  // distribution-independent rank guarantee, so they survive any horizon
  // and any debt scale without hand-picked bucket bounds.
  debt_linf_sketch_ = &registry->sketch("core.debt_linf_per_interval");
  deliveries_sketch_ = &registry->sketch("net.deliveries_per_interval");
  debt_gauges_.reserve(config_.num_links());
  debt_sketches_.reserve(config_.num_links());
  // Per-link debt series use a smaller compactor: one sketch per link must
  // stay cheap at large N, and per-link debt spans a narrower range than
  // the network-wide L-inf series.
  const obs::SketchOptions per_link{/*k=*/64, /*exact_threshold=*/256};
  for (LinkId n = 0; n < config_.num_links(); ++n) {
    debt_gauges_.push_back(&registry->gauge(obs::link_metric("core.debt", n)));
    debt_sketches_.push_back(
        &registry->sketch(obs::link_metric("core.debt_per_interval", n), per_link));
  }
}

void Network::run(IntervalIndex intervals) {
  const std::size_t n_links = config_.num_links();
  const std::span<int> arrivals{arrivals_};
  const std::span<int> delivered{delivered_};

  for (IntervalIndex i = 0; i < intervals; ++i) {
    const IntervalIndex k = next_interval_++;
    const TimePoint start = TimePoint::origin() +
                            static_cast<std::int64_t>(k) * config_.interval_length;
    const TimePoint end = start + config_.interval_length;
    RTMAC_ASSERT(sim_.now() == start, "interval boundaries drifted");
    medium_->note_interval_start(start);  // anchors the delivery-latency series

    if (config_.joint_arrivals != nullptr) {
      config_.joint_arrivals->sample_into(arrival_rng_, arrivals);
    } else {
      for (std::size_t n = 0; n < n_links; ++n) {
        arrivals[n] = config_.arrivals[n]->sample(arrival_rng_);
      }
    }

    if (tracer_ != nullptr) {
      tracer_->record(start, sim::TraceKind::kIntervalStart, sim::kNoLink,
                      static_cast<std::int64_t>(k));
    }
    scheme_->begin_interval(k, arrivals, end);
    sim_.run_until(end);
    RTMAC_ASSERT(!medium_->busy(), "a transmission overran the interval boundary (gap rule)");

    scheme_->end_interval(delivered);
    if (tracer_ != nullptr) {
      tracer_->record(end, sim::TraceKind::kIntervalEnd, sim::kNoLink,
                      static_cast<std::int64_t>(k));
    }
    debts_.on_interval_end(delivered);
    stats_.record(arrivals, delivered);
    if (metrics_ != nullptr) {
      int total_delivered = 0;
      for (std::size_t n = 0; n < n_links; ++n) {
        total_delivered += delivered[n];
        const double debt = debts_.debt(static_cast<LinkId>(n));
        debt_gauges_[n]->set(debt);
        debt_sketches_[n]->update(debt);
      }
      debt_linf_gauge_->set(debts_.linf());
      debt_linf_sketch_->update(debts_.linf());
      deliveries_sketch_->update(static_cast<double>(total_delivered));
      // In-run time-series export: one whole-registry snapshot every
      // cadence intervals, stamped with sim time only (stream_tick is a
      // single branch when no stream sink is attached).
      metrics_->stream_tick(k, end.ns());
    }
    for (const auto& obs : observers_) obs(k, arrivals, delivered);
  }
}

double Network::total_deficiency() const {
  return stats::total_deficiency(stats_, config_.requirements.q());
}

}  // namespace rtmac::net
