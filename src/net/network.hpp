// The experiment orchestrator: wires Simulator + Medium + traffic + one
// MacScheme + debt/statistics, and drives the interval structure.
//
// Per interval k (paper Section II-B): at t = kT arrivals are sampled and
// handed to the scheme; the scheme contends on the medium until (k+1)T;
// at the boundary the network collects on-time deliveries S(k), advances
// the debt ledger (eq. 1), and records statistics. Undelivered packets are
// dropped by the scheme (hard per-packet deadline = interval end).
//
// Execution engines (DESIGN §4i):
//   * legacy (shards == 0, or a trivial partition): one Simulator + one
//     Medium over the whole link set — the original single-domain path,
//     byte-identical to every release before sharding existed;
//   * sharded (shards >= 1 on a partitionable topology): the conflict graph
//     is cut into cells (sim/shard_partitioner), each cell owns a full
//     engine stack over its induced subgraph, and cells advance under the
//     conservative window protocol of sim/sharded_simulator. Arrivals are
//     sampled centrally in global link order and all RNG streams are keyed
//     by global link ids, so results do not depend on the partition or on
//     the worker count.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/debt.hpp"
#include "mac/link_mac.hpp"
#include "net/arrival_kernel.hpp"
#include "net/network_config.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "stats/link_stats.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace rtmac::net {

/// Observer invoked after every interval with (k, arrivals, deliveries);
/// used by convergence/starvation experiments to record time series. The
/// spans view the Network's interval buffers — valid only during the call.
using IntervalObserver =
    std::function<void(IntervalIndex, std::span<const int>, std::span<const int>)>;

/// Owns the full simulation stack for one run of one scheme.
class Network {
 public:
  /// Takes ownership of `config` (validated; aborts on inconsistent input).
  Network(NetworkConfig config, const mac::SchemeFactory& scheme_factory);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Simulates `intervals` further deadline intervals (resumable).
  void run(IntervalIndex intervals);

  /// Registers an end-of-interval observer (may be called multiple times).
  void add_observer(IntervalObserver observer);

  /// Attaches a protocol tracer to the whole stack (medium + MAC layers).
  /// Not owned; pass nullptr to detach. Interval boundaries are recorded by
  /// the network itself. Tracing is a single-engine feature: attaching a
  /// non-null tracer to a sharded network aborts.
  void attach_tracer(sim::Tracer* tracer);

  /// Attaches a metrics registry to the whole stack (medium + MAC layers;
  /// not owned; pass nullptr to detach). While attached, the network
  /// snapshots the debt vector and delivery counts into the registry at
  /// every interval boundary; derived end-of-run rates come from
  /// obs::collect_network_metrics. Zero overhead when detached (one null
  /// check per interval). On the sharded path each cell writes its
  /// medium/MAC instruments into a private registry (no cross-thread
  /// sharing); merge_cell_metrics_into() folds them into an export target.
  void attach_metrics(obs::MetricsRegistry* registry);

  [[nodiscard]] const stats::LinkStatsCollector& stats() const { return stats_; }
  /// Network-wide debt ledger, maintained on both engines (the sharded path
  /// mirrors the per-cell trackers — per-link debt arithmetic is local, so
  /// the mirror is exact).
  [[nodiscard]] const core::DebtTracker& debts() const { return debts_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  // ---- legacy-engine accessors (abort on the sharded path) -----------------
  [[nodiscard]] const phy::Medium& medium() const;
  [[nodiscard]] mac::MacScheme& scheme();
  [[nodiscard]] const mac::MacScheme& scheme() const;
  [[nodiscard]] const sim::Simulator& simulator() const;

  // ---- sharding topology ---------------------------------------------------
  /// True when this network runs the sharded engine.
  [[nodiscard]] bool sharded() const { return shard_ != nullptr; }
  /// Number of cells (1 on the legacy path).
  [[nodiscard]] std::size_t cell_count() const;
  /// Number of parallel groups (1 on the legacy path).
  [[nodiscard]] std::size_t group_count() const;
  /// Global link ids of one cell, ascending (legacy: all links).
  [[nodiscard]] std::span<const LinkId> cell_links(std::size_t cell) const;
  /// The MacScheme instance serving one cell (legacy: the single scheme).
  [[nodiscard]] const mac::MacScheme& cell_scheme(std::size_t cell) const;
  /// Coordinator barrier rounds so far (0 on the legacy path and on
  /// cut-free plans, which skip the coordinator entirely).
  [[nodiscard]] std::uint64_t coordinator_rounds() const;

  // ---- engine/medium facades (valid on both paths) -------------------------
  [[nodiscard]] TimePoint now() const;
  [[nodiscard]] std::uint64_t events_executed() const;  ///< summed over cells
  [[nodiscard]] std::uint64_t event_reallocs() const;   ///< summed over cells
  /// Channel accounting summed over cells.
  [[nodiscard]] phy::MediumCounters medium_counters() const;
  /// Per-link accounting, addressed by GLOBAL link id.
  [[nodiscard]] const phy::LinkCounters& link_counters(LinkId link) const;
  /// Global-view busy time. Sharded: the per-cell global views summed —
  /// concurrent activity in different cells double-counts relative to the
  /// legacy union (a documented approximation; CSV outputs never read it).
  [[nodiscard]] Duration global_sense_busy_time() const;
  /// One node's carrier-sense busy time (GLOBAL id). Exact on both paths:
  /// remote cut-edge activity is injected into the listening views.
  [[nodiscard]] Duration node_sense_busy_time(LinkId node) const;
  /// Pairwise collision ledger (GLOBAL ids). Cross-cell pairs come from the
  /// cut resolver's ledger, intra-cell pairs from the owning Medium.
  [[nodiscard]] std::uint64_t collision_pair_count(LinkId a, LinkId b) const;

  /// Folds every cell's private metrics registry into `target` (counters
  /// add, gauges last-write-win, histograms/sketches merge). No-op on the
  /// legacy path. Call exactly once per run, at collect time.
  void merge_cell_metrics_into(obs::MetricsRegistry& target) const;

  /// Per-subsystem byte accounting of the network's long-lived state
  /// (DESIGN §4j). `arena_*` cover the shared arena backing the SoA blocks;
  /// the per-subsystem figures attribute who asked for the bytes (arena
  /// spans count under their subsystem, not double-counted as arena).
  struct MemoryBreakdown {
    std::size_t arena_reserved = 0;  ///< bytes the arena holds from malloc
    std::size_t arena_used = 0;      ///< bytes handed out to subsystems
    std::size_t arrivals = 0;        ///< arrival kernel tables
    std::size_t sim_events = 0;      ///< event-queue slot pools + heaps
    std::size_t phy = 0;             ///< per-link medium state, all cells
    std::size_t mac = 0;             ///< per-link scheme state, all cells
  };
  [[nodiscard]] MemoryBreakdown memory_breakdown() const;

  /// Total timely-throughput deficiency so far (Definition 1).
  [[nodiscard]] double total_deficiency() const;

 private:
  struct Cell;
  class CutState;
  struct Shard;

  void build_shard(std::size_t target_shards, const mac::SchemeFactory& scheme_factory);
  void run_legacy_interval(IntervalIndex k, TimePoint start, TimePoint end);
  void run_sharded_interval(IntervalIndex k, TimePoint start, TimePoint end);
  void finish_interval(IntervalIndex k, TimePoint end);

  NetworkConfig config_;
  /// Backs every cell's cold per-link SoA blocks and the arrival kernel
  /// tables; declared before the consumers so it outlives them (members
  /// destroy in reverse order).
  util::Arena arena_;
  sim::Simulator sim_;  ///< legacy engine (idle when sharded)
  std::unique_ptr<phy::Medium> medium_;
  core::DebtTracker debts_;
  stats::LinkStatsCollector stats_;
  Rng arrival_rng_;
  ArrivalKernel arrival_kernel_;  ///< central arrival sampling (non-joint runs)
  std::unique_ptr<mac::MacScheme> scheme_;
  std::unique_ptr<Shard> shard_;  ///< non-null iff the sharded engine runs
  std::vector<LinkId> identity_links_;  ///< cell_links() result on legacy
  std::vector<IntervalObserver> observers_;
  sim::Tracer* tracer_ = nullptr;
  IntervalIndex next_interval_ = 0;

  // Caller-owned interval buffers (buffer-ownership convention, DESIGN §4g):
  // pre-sized from NetworkConfig at construction so the per-interval loop
  // never allocates; schemes and observers see spans over them.
  std::vector<int> arrivals_;
  std::vector<int> delivered_;

  // Metric handles cached at attach time; all null when detached. The
  // per-interval series (debt L-inf, total deliveries, per-link debt) are
  // quantile sketches rather than fixed-bucket histograms: no hand-picked
  // bounds, bounded memory on arbitrary horizons, and mergeable across
  // replications (DESIGN §4h).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Gauge* debt_linf_gauge_ = nullptr;
  obs::QuantileSketch* debt_linf_sketch_ = nullptr;
  obs::QuantileSketch* deliveries_sketch_ = nullptr;
  std::vector<obs::Gauge*> debt_gauges_;             ///< one per link
  std::vector<obs::QuantileSketch*> debt_sketches_;  ///< one per link
};

}  // namespace rtmac::net
