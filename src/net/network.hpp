// The experiment orchestrator: wires Simulator + Medium + traffic + one
// MacScheme + debt/statistics, and drives the interval structure.
//
// Per interval k (paper Section II-B): at t = kT arrivals are sampled and
// handed to the scheme; the scheme contends on the medium until (k+1)T;
// at the boundary the network collects on-time deliveries S(k), advances
// the debt ledger (eq. 1), and records statistics. Undelivered packets are
// dropped by the scheme (hard per-packet deadline = interval end).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/debt.hpp"
#include "mac/link_mac.hpp"
#include "net/network_config.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "stats/link_stats.hpp"
#include "util/rng.hpp"

namespace rtmac::net {

/// Observer invoked after every interval with (k, arrivals, deliveries);
/// used by convergence/starvation experiments to record time series. The
/// spans view the Network's interval buffers — valid only during the call.
using IntervalObserver =
    std::function<void(IntervalIndex, std::span<const int>, std::span<const int>)>;

/// Owns the full simulation stack for one run of one scheme.
class Network {
 public:
  /// Takes ownership of `config` (validated; aborts on inconsistent input).
  Network(NetworkConfig config, const mac::SchemeFactory& scheme_factory);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Simulates `intervals` further deadline intervals (resumable).
  void run(IntervalIndex intervals);

  /// Registers an end-of-interval observer (may be called multiple times).
  void add_observer(IntervalObserver observer);

  /// Attaches a protocol tracer to the whole stack (medium + MAC layers).
  /// Not owned; pass nullptr to detach. Interval boundaries are recorded by
  /// the network itself.
  void attach_tracer(sim::Tracer* tracer);

  /// Attaches a metrics registry to the whole stack (medium + MAC layers;
  /// not owned; pass nullptr to detach). While attached, the network
  /// snapshots the debt vector and delivery counts into the registry at
  /// every interval boundary; derived end-of-run rates come from
  /// obs::collect_network_metrics. Zero overhead when detached (one null
  /// check per interval).
  void attach_metrics(obs::MetricsRegistry* registry);

  [[nodiscard]] const stats::LinkStatsCollector& stats() const { return stats_; }
  [[nodiscard]] const core::DebtTracker& debts() const { return debts_; }
  [[nodiscard]] const phy::Medium& medium() const { return *medium_; }
  [[nodiscard]] mac::MacScheme& scheme() { return *scheme_; }
  [[nodiscard]] const mac::MacScheme& scheme() const { return *scheme_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  [[nodiscard]] const sim::Simulator& simulator() const { return sim_; }

  /// Total timely-throughput deficiency so far (Definition 1).
  [[nodiscard]] double total_deficiency() const;

 private:
  NetworkConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<phy::Medium> medium_;
  core::DebtTracker debts_;
  stats::LinkStatsCollector stats_;
  Rng arrival_rng_;
  std::unique_ptr<mac::MacScheme> scheme_;
  std::vector<IntervalObserver> observers_;
  sim::Tracer* tracer_ = nullptr;
  IntervalIndex next_interval_ = 0;

  // Caller-owned interval buffers (buffer-ownership convention, DESIGN §4g):
  // pre-sized from NetworkConfig at construction so the per-interval loop
  // never allocates; schemes and observers see spans over them.
  std::vector<int> arrivals_;
  std::vector<int> delivered_;

  // Metric handles cached at attach time; all null when detached. The
  // per-interval series (debt L-inf, total deliveries, per-link debt) are
  // quantile sketches rather than fixed-bucket histograms: no hand-picked
  // bounds, bounded memory on arbitrary horizons, and mergeable across
  // replications (DESIGN §4h).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Gauge* debt_linf_gauge_ = nullptr;
  obs::QuantileSketch* debt_linf_sketch_ = nullptr;
  obs::QuantileSketch* deliveries_sketch_ = nullptr;
  std::vector<obs::Gauge*> debt_gauges_;             ///< one per link
  std::vector<obs::QuantileSketch*> debt_sketches_;  ///< one per link
};

}  // namespace rtmac::net
