#include "net/network_config.hpp"

#include <cmath>
#include <string>

namespace rtmac::net {

bool NetworkConfig::validate(std::string* error) const {
  auto fail = [error](const char* msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  const std::size_t n = success_prob.size();
  if (n == 0) return fail("network has no links");
  if (joint_arrivals != nullptr) {
    if (joint_arrivals->num_links() != n) return fail("joint arrivals size != number of links");
    const RateVector joint_mean = joint_arrivals->mean();
    for (std::size_t i = 0; i < n; ++i) {
      if (std::abs(joint_mean[i] - requirements.lambda[i]) > 1e-9) {
        return fail("declared lambda does not match joint arrival process mean");
      }
    }
  } else if (!arrivals.empty()) {
    // Per-link processes win over the uniform shortcut when both are set
    // (covers configs built symmetric and then specialized per link).
    if (arrivals.size() != n) return fail("arrivals size != number of links");
  } else if (uniform_arrivals != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      if (std::abs(uniform_arrivals->mean() - requirements.lambda[i]) > 1e-9) {
        return fail("declared lambda does not match uniform arrival process mean");
      }
    }
  } else {
    return fail("no arrival specification (arrivals, uniform_arrivals, or joint_arrivals)");
  }
  if (requirements.lambda.size() != n || requirements.rho.size() != n) {
    return fail("requirements size != number of links");
  }
  if (topology.has_value() && topology->num_links() != n) {
    return fail("interference topology size != number of links");
  }
  if (sparse_topology != nullptr) {
    if (topology.has_value()) return fail("topology and sparse_topology are mutually exclusive");
    if (sparse_topology->num_links != n) return fail("sparse topology size != number of links");
    if (shards == 0 && !auto_shard) {
      return fail("sparse_topology requires the sharded engine (shards >= 1 or auto_shard)");
    }
  }
  if ((shards > 0 || auto_shard) && channel_factory != nullptr) {
    return fail("sharded execution requires the default Bernoulli channel");
  }
  if (interval_length <= Duration{}) return fail("interval length must be positive");
  if (phy.data_airtime <= Duration{} || phy.backoff_slot <= Duration{}) {
    return fail("airtimes and slot width must be positive");
  }
  if (interval_length < phy.data_airtime) {
    return fail("interval shorter than one packet airtime: nothing can ever be delivered");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (success_prob[i] <= 0.0 || success_prob[i] > 1.0) {
      return fail("success probabilities must lie in (0, 1]");
    }
    if (joint_arrivals == nullptr && !arrivals.empty()) {
      if (arrivals[i] == nullptr) return fail("null arrival process");
      if (std::abs(arrivals[i]->mean() - requirements.lambda[i]) > 1e-9) {
        return fail("declared lambda does not match arrival process mean");
      }
    }
    if (requirements.rho[i] < 0.0 || requirements.rho[i] > 1.0) {
      return fail("delivery ratios must lie in [0, 1]");
    }
  }
  return true;
}

std::size_t NetworkConfig::event_capacity_hint() const {
  // Per-link per-interval transmission budget (>= 1 by validate()'s
  // interval >= data_airtime rule), plus a couple of slots per link for the
  // backoff expiry and completion event that can be pending simultaneously,
  // plus fixed slack for harness events (interval boundaries, observers).
  const auto per_link =
      static_cast<std::size_t>(phy.transmissions_per_interval(interval_length)) + 2;
  return num_links() * per_link + 16;
}

NetworkConfig NetworkConfig::clone() const {
  NetworkConfig copy;
  copy.interval_length = interval_length;
  copy.phy = phy;
  copy.success_prob = success_prob;
  copy.arrivals.reserve(arrivals.size());
  for (const auto& a : arrivals) copy.arrivals.push_back(a->clone());
  if (uniform_arrivals != nullptr) copy.uniform_arrivals = uniform_arrivals->clone();
  copy.requirements = requirements;
  copy.seed = seed;
  copy.channel_factory = channel_factory;
  if (joint_arrivals != nullptr) copy.joint_arrivals = joint_arrivals->clone();
  copy.topology = topology;
  copy.sparse_topology = sparse_topology;  // immutable, shared
  copy.shards = shards;
  copy.auto_shard = auto_shard;
  copy.shard_jobs = shard_jobs;
  copy.adaptive_lookahead = adaptive_lookahead;
  return copy;
}

NetworkConfig symmetric_network(std::size_t num_links, Duration interval_length,
                                const phy::PhyParams& phy, double p,
                                const traffic::ArrivalProcess& arrivals, double rho,
                                std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.interval_length = interval_length;
  cfg.phy = phy;
  cfg.success_prob.assign(num_links, p);
  // One shared spec, not num_links clones: the arrival kernel broadcasts a
  // single row, and a 10^6-link config stays a 10^6-double config.
  cfg.uniform_arrivals = arrivals.clone();
  cfg.requirements = core::Requirements::symmetric(num_links, arrivals.mean(), rho);
  cfg.seed = seed;
  return cfg;
}

}  // namespace rtmac::net
