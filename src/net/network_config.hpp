// Experiment-level network description: (N, A, T, p) plus requirements.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/requirements.hpp"
#include "core/types.hpp"
#include "phy/channel_model.hpp"
#include "phy/interference.hpp"
#include "phy/phy_params.hpp"
#include "traffic/arrival_process.hpp"
#include "traffic/joint_arrivals.hpp"
#include "util/time.hpp"

namespace rtmac::net {

/// Full specification of one simulated network. Move-only (owns the arrival
/// processes). Mirrors the paper's tuple (N, A, T, p) plus the requirement
/// vector q expressed as (lambda, rho).
struct NetworkConfig {
  Duration interval_length;                  ///< the deadline T
  phy::PhyParams phy;                        ///< airtimes and slot width
  ProbabilityVector success_prob;            ///< p_n per link (policy-visible)
  std::vector<std::unique_ptr<traffic::ArrivalProcess>> arrivals;  ///< A_n per link
  /// Uniform-network shortcut: one shared arrival spec for all links. When
  /// set (and `arrivals` is empty) the Network samples every link from this
  /// process via a single broadcast kernel row instead of materializing
  /// num_links() clones — at 10^6 links that is the difference between one
  /// object and ~50 MB of identical ones. Draw-for-draw equivalent to the
  /// per-link layout; symmetric_network() now produces this form.
  std::unique_ptr<traffic::ArrivalProcess> uniform_arrivals;
  core::Requirements requirements;           ///< lambda_n and rho_n
  std::uint64_t seed = 1;                    ///< root seed for the whole run
  /// Optional loss-process override (e.g. a GilbertElliottChannel for the
  /// bursty-loss robustness ablation). When unset, the channel is the
  /// paper's i.i.d. Bernoulli(success_prob). The policies always see
  /// `success_prob` as their p_n estimate, so a model whose long-run mean
  /// differs from it deliberately exercises estimation mismatch.
  phy::ChannelModelFactory channel_factory;
  /// Optional cross-link correlated traffic (Section II-B permits arrival
  /// counts correlated across links within an interval). When set it
  /// replaces the per-link `arrivals` sampling; `requirements.lambda` must
  /// match its per-link means.
  std::unique_ptr<traffic::JointArrivalProcess> joint_arrivals;
  /// Optional interference topology. When unset, the Medium uses the
  /// paper's complete collision domain (every pair of links conflicts and
  /// every device hears every transmission). A partial graph enables
  /// hidden-terminal and spatial-reuse experiments; its size must equal
  /// num_links().
  std::optional<phy::InterferenceGraph> topology;
  /// Adjacency-list topology for city-scale runs where the dense n x n
  /// InterferenceGraph is unaffordable. Requires `shards >= 1` (the sharded
  /// engine builds small dense graphs per cell); mutually exclusive with
  /// `topology`. Shared (immutable) across clones.
  std::shared_ptr<const phy::SparseTopology> sparse_topology;
  /// Sharded execution: 0 = legacy single-domain engine; S >= 1 partitions
  /// the conflict graph into cells and runs them on up to S parallel groups
  /// (deterministically — results are independent of S and of shard_jobs on
  /// disconnected topologies). Requires the default Bernoulli channel.
  std::size_t shards = 0;
  /// When true and `shards == 0`, pick a shard count automatically
  /// (hardware concurrency, capped by the number of cells).
  bool auto_shard = false;
  /// Worker threads driving shard groups; 0 = min(groups, hardware).
  std::size_t shard_jobs = 0;
  /// Adaptive coordinator lookahead: cut windows extend to each neighbor
  /// cell's next pending event instead of its bare clock, skipping barrier
  /// rounds for cells that provably cannot interact yet. Results are
  /// bit-identical either way (see sharded_simulator.hpp); the toggle
  /// exists for A/B round-count measurement and as a bisection aid.
  bool adaptive_lookahead = true;

  [[nodiscard]] std::size_t num_links() const { return success_prob.size(); }

  /// Upper bound on concurrently-pending engine events, used to pre-size the
  /// Simulator's slot pool and heap so steady state never reallocates
  /// (engine.events.reallocs stays 0). Derived from the interval structure:
  /// per link at most one backoff expiry plus one in-flight completion is
  /// pending at any instant, but we budget a full per-interval transmission
  /// schedule per link (links x transmissions-per-interval, the paper's "up
  /// to 60 per 20 ms"), which dominates every protocol's real working set
  /// while staying a few kilobytes of slots.
  [[nodiscard]] std::size_t event_capacity_hint() const;

  /// Size of the caller-owned per-interval buffers (arrivals in, deliveries
  /// out) the Network pre-allocates so the interval hot loop never touches
  /// the heap: one int slot per link. Split out from num_links() so any
  /// future padding/alignment tweak of the SoA buffers has one home.
  [[nodiscard]] std::size_t interval_buffer_hint() const { return num_links(); }

  /// Validates internal consistency (sizes match, probabilities in range,
  /// declared lambda equals each arrival process's mean). Returns true and
  /// leaves `error` untouched on success.
  [[nodiscard]] bool validate(std::string* error = nullptr) const;

  /// Deep copy (arrival processes cloned) — configs are templates reused
  /// across sweep points and schemes.
  [[nodiscard]] NetworkConfig clone() const;
};

/// Convenience builder for symmetric networks: every link shares the same
/// reliability, arrival process, and delivery ratio.
[[nodiscard]] NetworkConfig symmetric_network(std::size_t num_links, Duration interval_length,
                                              const phy::PhyParams& phy, double p,
                                              const traffic::ArrivalProcess& arrivals,
                                              double rho, std::uint64_t seed);

}  // namespace rtmac::net
