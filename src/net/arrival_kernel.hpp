// Table-driven batch sampling of the central per-interval arrival loop.
//
// The legacy loop does one virtual sample() call per link per interval —
// at 10^6 links that is a million indirect calls through a million
// heap-scattered ArrivalProcess objects before any protocol work starts.
// The kernel flattens the processes into SoA rows (a 1-byte kind tag plus a
// 16-byte parameter record, arena-backed) at construction and samples the
// whole network with one tight switch-per-row loop.
//
// RNG contract (load-bearing): for every link, the kernel issues exactly
// the draw sequence the scalar sample() would — same methods, same
// argument bits, same order, consuming the shared arrival stream in global
// link order. Golden figure CSVs and the shards x jobs determinism diffs
// depend on this; arrival_kernel_test locks it with per-draw equality
// across seeds, rates, and link counts. Processes the kernel does not
// recognize fall back to the virtual call, preserving the sequence by
// construction.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "traffic/arrival_process.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace rtmac::net {

class ArrivalKernel {
 public:
  ArrivalKernel() = default;

  /// Flattens one process per link (the NetworkConfig::arrivals layout).
  /// Row storage comes from `arena`; `processes` must outlive the kernel
  /// (unrecognized subclasses keep a borrowed pointer for the fallback).
  void build(std::span<const std::unique_ptr<traffic::ArrivalProcess>> processes,
             util::Arena& arena);

  /// One shared process spec for all `num_links` links (uniform networks):
  /// a single row, broadcast — no per-link storage at all.
  void build_uniform(const traffic::ArrivalProcess& proto, std::size_t num_links,
                     util::Arena& arena);

  [[nodiscard]] bool empty() const { return num_links_ == 0; }
  [[nodiscard]] std::size_t num_links() const { return num_links_; }

  /// Samples every link's arrival count into `out` (size num_links()),
  /// consuming `rng` exactly as the scalar per-link sample() loop would.
  void sample_into(Rng& rng, std::span<int> out) const;

  /// Bytes of arena/heap storage behind the flattened tables (the `mem.*`
  /// attribution for the arrival subsystem).
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  enum class Kind : std::uint8_t {
    kBernoulli,      ///< row.x = lambda
    kUniformBursty,  ///< row.x = alpha, row.a = lo, row.b = hi
    kConstant,       ///< row.a = count; consumes no draws
    kGeneral,        ///< cdf_pool_[row.a .. row.a + row.b); inverse-cdf draw
    kVirtual,        ///< fallback_[row.a]->sample(rng)
  };
  struct Row {
    double x = 0.0;
    std::int32_t a = 0;
    std::int32_t b = 0;
  };
  static_assert(sizeof(Row) == 16, "Row is the SoA unit; keep it dense");

  Row classify(const traffic::ArrivalProcess& process, Kind& kind);
  [[nodiscard]] int sample_row(Kind kind, const Row& row, Rng& rng) const;

  std::size_t num_links_ = 0;
  bool uniform_ = false;
  Kind uniform_kind_ = Kind::kConstant;
  Row uniform_row_;
  std::span<Kind> kinds_;  ///< arena-backed, one per link (empty if uniform)
  std::span<Row> rows_;    ///< arena-backed, parallel to kinds_
  std::vector<double> cdf_pool_;  ///< concatenated general-discrete cdfs
  std::vector<const traffic::ArrivalProcess*> fallback_;  ///< borrowed
};

}  // namespace rtmac::net
