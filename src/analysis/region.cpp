#include "analysis/region.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace rtmac::analysis {

namespace {

/// Largest s >= 0 with s*q on or below the segment a--b extended by its
/// axis-aligned downward closure. Helper for both public methods.
double scale_to_boundary(const RegionPoint& a, const RegionPoint& b, const RegionPoint& q) {
  RTMAC_REQUIRE(q.q0 >= 0.0 && q.q1 >= 0.0);
  RTMAC_REQUIRE(q.q0 > 0.0 || q.q1 > 0.0);
  // The region is { (x,y) >= 0 : exists t in [0,1] with x <= a0 + t(b0-a0),
  // y <= a1 + t(b1-a1) }. Ray r(s) = s*q exits through either the segment
  // or one of the two rectangle edges at the extreme points.
  // Candidate 1: cap by the best single-ordering rectangle corners.
  double best = 0.0;
  for (const RegionPoint& corner : {a, b}) {
    double s = std::numeric_limits<double>::infinity();
    if (q.q0 > 0.0) s = std::min(s, corner.q0 / q.q0);
    if (q.q1 > 0.0) s = std::min(s, corner.q1 / q.q1);
    best = std::max(best, s);
  }
  // Candidate 2: intersection with the open segment (time-sharing mixes).
  // Solve s*q = a + t(b - a) for (s, t), keep t in [0,1], s > 0.
  const double d0 = b.q0 - a.q0;
  const double d1 = b.q1 - a.q1;
  const double det = q.q0 * (-d1) - q.q1 * (-d0);
  if (std::abs(det) > 1e-15) {
    const double s = (a.q0 * (-d1) + a.q1 * d0) / det;
    double t;
    if (std::abs(d0) > std::abs(d1)) {
      t = (s * q.q0 - a.q0) / d0;
    } else if (std::abs(d1) > 0.0) {
      t = (s * q.q1 - a.q1) / d1;
    } else {
      t = 0.0;  // degenerate segment
    }
    if (s > 0.0 && t >= -1e-12 && t <= 1.0 + 1e-12) best = std::max(best, s);
  }
  return best;
}

}  // namespace

bool TwoLinkRegion::contains(const RegionPoint& q, double tol) const {
  if (q.q0 <= tol && q.q1 <= tol) return true;
  return scale_to_boundary(link0_first, link1_first, q) >= 1.0 - tol;
}

double TwoLinkRegion::boundary_scale(const RegionPoint& q) const {
  return scale_to_boundary(link0_first, link1_first, q);
}

TwoLinkRegion two_link_region(const ProbabilityVector& p,
                              const std::vector<std::vector<double>>& arrival_pmfs,
                              int slots) {
  RTMAC_REQUIRE(p.size() == 2 && arrival_pmfs.size() == 2);
  PriorityEvaluator eval{p, slots};
  const auto first = eval.evaluate({0, 1}, arrival_pmfs);
  const auto second = eval.evaluate({1, 0}, arrival_pmfs);
  return TwoLinkRegion{
      RegionPoint{first.expected_deliveries[0], first.expected_deliveries[1]},
      RegionPoint{second.expected_deliveries[0], second.expected_deliveries[1]},
  };
}

}  // namespace rtmac::analysis
