// Exact analysis of the DP protocol's priority Markov chain {sigma(k)}.
//
// Under Algorithm 2 with constant coin biases mu and condition (C1), the
// permutation process is a reversible Markov chain on S_N with transition
// law eq. (9) and product-form stationary distribution eq. (10):
//
//   pi*(sigma) ∝ prod_n (mu_n / (1 - mu_n))^(N - sigma_n)
//
// This module builds the N! x N! transition matrix explicitly (small N),
// computes the analytic stationary law, verifies detailed balance, and
// measures mixing — the machinery behind the theory benches and property
// tests validating Propositions 2 and 3.
#pragma once

#include <cstdint>
#include <vector>

#include "core/mu.hpp"
#include "core/permutation.hpp"
#include "core/types.hpp"

namespace rtmac::analysis {

/// Dense row-stochastic matrix over S_N indexed by Permutation::rank().
using TransitionMatrix = std::vector<std::vector<double>>;

/// Exact chain for a fixed coin-bias vector mu (Proposition 2 setting).
class PriorityChain {
 public:
  /// `mu[n]` strictly inside (0,1); `transmit_prob` is P{R_i + R_j >= 1} of
  /// eq. (9) — 1.0 in the idealized protocol where candidates always manage
  /// to claim on the air. Intended for num_links <= 7 (N! states).
  explicit PriorityChain(std::vector<double> mu, double transmit_prob = 1.0);

  [[nodiscard]] std::size_t num_links() const { return mu_.size(); }
  [[nodiscard]] std::size_t num_states() const { return states_.size(); }
  [[nodiscard]] const std::vector<core::Permutation>& states() const { return states_; }

  /// Eq. (9) plus the complementary diagonal.
  [[nodiscard]] const TransitionMatrix& transition_matrix() const { return matrix_; }

  /// Analytic stationary law, eq. (10)-(12), indexed by rank.
  [[nodiscard]] std::vector<double> stationary_analytic() const;

  /// Stationary law by power iteration on the transition matrix; converges
  /// by irreducibility + aperiodicity (Lemma 4).
  [[nodiscard]] std::vector<double> stationary_numeric(int iterations = 20000,
                                                       double tol = 1e-13) const;

  /// Max over state pairs of |pi(s) X[s][t] - pi(t) X[t][s]| — zero (up to
  /// float noise) iff the chain is reversible w.r.t. pi.
  [[nodiscard]] double detailed_balance_residual(const std::vector<double>& pi) const;

  /// Total-variation distance to stationarity after `steps` steps from the
  /// distribution concentrated at `start`.
  [[nodiscard]] double tv_from_start(const core::Permutation& start, int steps) const;

  /// Second-largest eigenvalue modulus (SLEM) of the transition matrix,
  /// computed by power iteration on the pi-symmetrized chain with the top
  /// eigenvector deflated. Governs the geometric convergence rate: a larger
  /// spectral gap 1 - SLEM means faster mixing.
  [[nodiscard]] double second_eigenvalue_modulus(int iterations = 5000) const;

  /// Standard reversible-chain mixing-time upper bound
  ///   t_mix(eps) <= log(1 / (eps * pi_min)) / (1 - SLEM).
  [[nodiscard]] double mixing_time_bound(double eps = 0.25) const;

 private:
  std::vector<double> mu_;
  double transmit_prob_;
  std::vector<core::Permutation> states_;
  TransitionMatrix matrix_;
};

/// The DB-DP quasi-stationary law of eq. (15)-(17): pi*(sigma) ∝
/// exp(sum_n g(sigma_n) f(d_n^+) p_n) with g(j) = N - j. Indexed by rank.
[[nodiscard]] std::vector<double> dbdp_stationary_law(const core::DebtMu& formula,
                                                      const std::vector<double>& debts,
                                                      const ProbabilityVector& p);

}  // namespace rtmac::analysis
