// Feasibility probing: locating the boundary of the feasible region Q.
//
// The exact region (Definition 4) is a polytope that is expensive to write
// down for general arrivals, so experiments locate its boundary empirically:
// a requirement vector is declared achievable by a scheme when the total
// timely-throughput deficiency after a burn-in run falls below a threshold.
// Bisection over a scalar load knob then finds each scheme's supported load
// — the "knee" positions compared across Figs. 3/7/9.
//
// A quick analytic necessary condition (sum q_n / p_n <= slots) is provided
// by core::workload_utilization and used to bracket the search.
#pragma once

#include <functional>

#include "mac/link_mac.hpp"
#include "net/network_config.hpp"

namespace rtmac::analysis {

/// Builds the network for a given value of the load knob (e.g. alpha*).
using ConfigForLoad = std::function<net::NetworkConfig(double)>;

/// Parameters for the empirical feasibility probe.
struct ProbeParams {
  IntervalIndex intervals = 2000;    ///< simulated intervals per probe point
  double deficiency_threshold = 0.02;  ///< "fulfilled" when total deficiency below this
  int bisection_steps = 12;
  double lo = 0.0;                   ///< load known achievable
  double hi = 1.0;                   ///< load known (or suspected) unachievable
};

/// True iff `scheme` fulfills the requirements of `config` empirically.
[[nodiscard]] bool achieves(net::NetworkConfig config, const mac::SchemeFactory& scheme,
                            IntervalIndex intervals, double deficiency_threshold);

/// Largest load in [lo, hi] the scheme supports, by bisection. The returned
/// value is accurate to (hi - lo) / 2^bisection_steps.
[[nodiscard]] double max_supported_load(const ConfigForLoad& config_for_load,
                                        const mac::SchemeFactory& scheme,
                                        const ProbeParams& params);

}  // namespace rtmac::analysis
