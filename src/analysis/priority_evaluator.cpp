#include "analysis/priority_evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"
#include "util/math.hpp"

namespace rtmac::analysis {

double EvaluationResult::total() const {
  return std::accumulate(expected_deliveries.begin(), expected_deliveries.end(), 0.0);
}

PriorityEvaluator::PriorityEvaluator(ProbabilityVector success_prob, int slots_per_interval)
    : p_{std::move(success_prob)}, slots_{slots_per_interval} {
  RTMAC_REQUIRE(slots_ >= 0);
  for (double p : p_) {
    RTMAC_REQUIRE(p > 0.0 && p <= 1.0);
    (void)p;
  }
}

double PriorityEvaluator::serve_link(std::vector<double>& slot_dist,
                                     const std::vector<double>& pmf, double p) const {
  // slot_dist[r] = P(r slots remain when this link's turn starts).
  std::vector<double> next(slot_dist.size(), 0.0);
  double expected = 0.0;

  for (std::size_t r = 0; r < slot_dist.size(); ++r) {
    const double pr = slot_dist[r];
    if (pr == 0.0) continue;
    for (std::size_t b = 0; b < pmf.size(); ++b) {
      const double pb = pmf[b];
      if (pb == 0.0) continue;
      const double mass = pr * pb;
      if (b == 0 || r == 0) {
        next[r] += mass;  // nothing to send or no time: slots pass through
        continue;
      }
      // Case 1: b-th success at trial t (negative binomial), t in [b, r]:
      // delivers all b, leaves r - t slots.
      double finish_prob = 0.0;
      for (std::size_t t = b; t <= r; ++t) {
        const double nb = binomial(static_cast<unsigned>(t - 1), static_cast<unsigned>(b - 1)) *
                          std::pow(p, static_cast<double>(b)) *
                          std::pow(1.0 - p, static_cast<double>(t - b));
        finish_prob += nb;
        next[r - t] += mass * nb;
        expected += mass * nb * static_cast<double>(b);
      }
      // Case 2: fewer than b successes in all r trials: delivers j < b and
      // exhausts the interval.
      for (std::size_t j = 0; j < b && j <= r; ++j) {
        const double bin = binomial_pmf(static_cast<unsigned>(r), static_cast<unsigned>(j), p);
        next[0] += mass * bin;
        expected += mass * bin * static_cast<double>(j);
      }
      // Consistency (debug): P(finish) + P(Bin(r,p) < b) must be ~1.
      (void)finish_prob;
    }
  }
  slot_dist.swap(next);
  return expected;
}

EvaluationResult PriorityEvaluator::evaluate(
    const std::vector<LinkId>& ordering,
    const std::vector<std::vector<double>>& arrival_pmfs) const {
  RTMAC_REQUIRE(ordering.size() == p_.size());
  RTMAC_REQUIRE(arrival_pmfs.size() == p_.size());

  std::vector<double> slot_dist(static_cast<std::size_t>(slots_) + 1, 0.0);
  slot_dist[static_cast<std::size_t>(slots_)] = 1.0;

  EvaluationResult result;
  result.expected_deliveries.assign(p_.size(), 0.0);
  for (LinkId link : ordering) {
    RTMAC_REQUIRE(link < p_.size());
    result.expected_deliveries[link] = serve_link(slot_dist, arrival_pmfs[link], p_[link]);
  }
  return result;
}

EvaluationResult PriorityEvaluator::evaluate_fixed(const std::vector<LinkId>& ordering,
                                                   const std::vector<int>& arrivals) const {
  RTMAC_REQUIRE(arrivals.size() == p_.size());
  std::vector<std::vector<double>> pmfs(arrivals.size());
  for (std::size_t n = 0; n < arrivals.size(); ++n) {
    RTMAC_REQUIRE(arrivals[n] >= 0);
    pmfs[n].assign(static_cast<std::size_t>(arrivals[n]) + 1, 0.0);
    pmfs[n].back() = 1.0;
  }
  return evaluate(ordering, pmfs);
}

double PriorityEvaluator::objective(const EvaluationResult& result,
                                    const std::vector<double>& weights) {
  RTMAC_REQUIRE(weights.size() == result.expected_deliveries.size());
  double obj = 0.0;
  for (std::size_t n = 0; n < weights.size(); ++n) {
    obj += weights[n] * result.expected_deliveries[n];
  }
  return obj;
}

std::vector<LinkId> PriorityEvaluator::eldf_ordering(const std::vector<double>& weights) const {
  RTMAC_REQUIRE(weights.size() == p_.size());
  std::vector<LinkId> order(p_.size());
  std::iota(order.begin(), order.end(), LinkId{0});
  std::stable_sort(order.begin(), order.end(), [&](LinkId a, LinkId b) {
    return weights[a] * p_[a] > weights[b] * p_[b];
  });
  return order;
}

}  // namespace rtmac::analysis
