#include "analysis/priority_chain.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/math.hpp"

namespace rtmac::analysis {

PriorityChain::PriorityChain(std::vector<double> mu, double transmit_prob)
    : mu_{std::move(mu)}, transmit_prob_{transmit_prob} {
  RTMAC_REQUIRE(mu_.size() >= 2 && mu_.size() <= 7, "exact chain intended for small N");
  for (double m : mu_) {
    RTMAC_REQUIRE(m > 0.0 && m < 1.0);
    (void)m;
  }
  RTMAC_ASSERT(transmit_prob_ > 0.0 && transmit_prob_ <= 1.0);

  const std::size_t n = mu_.size();
  states_ = core::Permutation::all(n);
  const std::size_t s = states_.size();
  matrix_.assign(s, std::vector<double>(s, 0.0));

  // Eq. (9): from sigma, for each candidate pair priority m in {1..N-1},
  // the link i at priority m moves down and the link j at priority m+1
  // moves up with probability (1-mu_i) mu_j / (N-1) * P{R_i+R_j >= 1}.
  for (std::size_t a = 0; a < s; ++a) {
    const core::Permutation& sigma = states_[a];
    double off_diagonal = 0.0;
    for (PriorityIndex m = 1; m < n; ++m) {
      const LinkId i = sigma.link_with_priority(m);
      const LinkId j = sigma.link_with_priority(m + 1);
      core::Permutation target = sigma;
      target.swap_adjacent_priorities(m);
      const double prob = (1.0 - mu_[i]) * mu_[j] /
                          static_cast<double>(n - 1) * transmit_prob_;
      matrix_[a][target.rank()] += prob;
      off_diagonal += prob;
    }
    matrix_[a][a] += 1.0 - off_diagonal;
  }
}

std::vector<double> PriorityChain::stationary_analytic() const {
  const std::size_t n = mu_.size();
  std::vector<double> pi(states_.size());
  for (std::size_t a = 0; a < states_.size(); ++a) {
    double log_w = 0.0;
    for (LinkId link = 0; link < n; ++link) {
      const double g = static_cast<double>(n - states_[a].priority_of(link));  // eq. (12)
      log_w += g * std::log(mu_[link] / (1.0 - mu_[link]));
    }
    pi[a] = std::exp(log_w);
  }
  normalize(pi);
  return pi;
}

std::vector<double> PriorityChain::stationary_numeric(int iterations, double tol) const {
  const std::size_t s = states_.size();
  std::vector<double> pi(s, 1.0 / static_cast<double>(s));
  std::vector<double> next(s);
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t a = 0; a < s; ++a) {
      const double pa = pi[a];
      if (pa == 0.0) continue;
      for (std::size_t b = 0; b < s; ++b) {
        if (matrix_[a][b] != 0.0) next[b] += pa * matrix_[a][b];
      }
    }
    double delta = 0.0;
    for (std::size_t a = 0; a < s; ++a) delta = std::max(delta, std::abs(next[a] - pi[a]));
    pi.swap(next);
    if (delta < tol) break;
  }
  return pi;
}

double PriorityChain::detailed_balance_residual(const std::vector<double>& pi) const {
  RTMAC_ASSERT(pi.size() == states_.size());
  double residual = 0.0;
  for (std::size_t a = 0; a < states_.size(); ++a) {
    for (std::size_t b = 0; b < states_.size(); ++b) {
      residual = std::max(residual, std::abs(pi[a] * matrix_[a][b] - pi[b] * matrix_[b][a]));
    }
  }
  return residual;
}

double PriorityChain::tv_from_start(const core::Permutation& start, int steps) const {
  RTMAC_REQUIRE(start.size() == mu_.size());
  const std::size_t s = states_.size();
  std::vector<double> dist(s, 0.0);
  dist[start.rank()] = 1.0;
  std::vector<double> next(s);
  for (int it = 0; it < steps; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t a = 0; a < s; ++a) {
      const double pa = dist[a];
      if (pa == 0.0) continue;
      for (std::size_t b = 0; b < s; ++b) {
        if (matrix_[a][b] != 0.0) next[b] += pa * matrix_[a][b];
      }
    }
    dist.swap(next);
  }
  const std::vector<double> pi = stationary_analytic();
  return total_variation(dist, pi);
}

double PriorityChain::second_eigenvalue_modulus(int iterations) const {
  const std::size_t s = states_.size();
  const std::vector<double> pi = stationary_analytic();

  // Reversibility makes S = D^{1/2} X D^{-1/2} symmetric with the same
  // spectrum as X and top eigenvector v1[i] = sqrt(pi[i]).
  std::vector<double> sqrt_pi(s);
  for (std::size_t i = 0; i < s; ++i) sqrt_pi[i] = std::sqrt(pi[i]);

  auto apply_s = [&](const std::vector<double>& v, std::vector<double>& out) {
    for (std::size_t i = 0; i < s; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < s; ++j) {
        if (matrix_[i][j] != 0.0) acc += sqrt_pi[i] * matrix_[i][j] / sqrt_pi[j] * v[j];
      }
      out[i] = acc;
    }
  };
  auto deflate_and_normalize = [&](std::vector<double>& v) {
    double dot = 0.0;
    for (std::size_t i = 0; i < s; ++i) dot += v[i] * sqrt_pi[i];
    for (std::size_t i = 0; i < s; ++i) v[i] -= dot * sqrt_pi[i];
    double norm = 0.0;
    for (double x : v) norm += x * x;
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (double& x : v) x /= norm;
    }
    return norm;
  };

  // Deterministic non-degenerate start vector.
  std::vector<double> v(s);
  for (std::size_t i = 0; i < s; ++i) v[i] = 1.0 + 0.37 * static_cast<double>(i % 7);
  deflate_and_normalize(v);
  std::vector<double> next(s);
  double lambda = 0.0;
  for (int it = 0; it < iterations; ++it) {
    apply_s(v, next);
    v.swap(next);
    const double norm = deflate_and_normalize(v);
    if (it > 10 && std::abs(norm - lambda) < 1e-13) {
      lambda = norm;
      break;
    }
    lambda = norm;
  }
  return lambda;
}

double PriorityChain::mixing_time_bound(double eps) const {
  const auto pi = stationary_analytic();
  double pi_min = 1.0;
  for (double p : pi) pi_min = std::min(pi_min, p);
  const double slem = second_eigenvalue_modulus();
  const double gap = 1.0 - slem;
  RTMAC_REQUIRE(gap > 0.0);
  return std::log(1.0 / (eps * pi_min)) / gap;
}

std::vector<double> dbdp_stationary_law(const core::DebtMu& formula,
                                        const std::vector<double>& debts,
                                        const ProbabilityVector& p) {
  RTMAC_REQUIRE(debts.size() == p.size());
  const std::size_t n = debts.size();
  const auto states = core::Permutation::all(n);
  std::vector<double> pi(states.size());
  for (std::size_t a = 0; a < states.size(); ++a) {
    double exponent = 0.0;
    for (LinkId link = 0; link < n; ++link) {
      const double g = static_cast<double>(n - states[a].priority_of(link));
      exponent += g * formula.weight(debts[link], p[link]);  // f(d^+) p
    }
    pi[a] = std::exp(exponent);
  }
  normalize(pi);
  return pi;
}

}  // namespace rtmac::analysis
