// Exact optimal control of one deadline interval (the Lemma 2/3 benchmark).
//
// Within one interval the scheduling problem is a finite-horizon MDP:
// state = (remaining transmission slots, per-link buffer contents), action =
// which link transmits next (or idle), reward w_n per successful delivery on
// link n. Lemma 3 asserts that the ELDF priority ordering — a NON-adaptive
// policy fixed at the interval start — already attains
//     max over ALL history-dependent policies of E[sum_n w_n S_n].
// This module computes that adaptive optimum exactly by backward induction,
// so the claim can be checked numerically (tests + theory bench) instead of
// taken on faith. It also exposes the optimal action, letting examples show
// WHY greedy-by-w*p is optimal (the argmax never changes as buffers drain).
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace rtmac::analysis {

/// Finite-horizon MDP for one interval with fixed buffer contents.
class IntervalMdp {
 public:
  /// `weights[n]` is the per-delivery reward w_n = f(d_n^+); `slots` the
  /// number of transmission opportunities T.
  IntervalMdp(ProbabilityVector success_prob, std::vector<double> weights, int slots);

  /// max_pi E[sum w_n S_n] over all adaptive policies, starting from
  /// `initial_buffers` packets per link. Exact (backward induction).
  [[nodiscard]] double optimal_value(const std::vector<int>& initial_buffers) const;

  /// The optimal first action from the given state: the link to transmit
  /// (or -1 to idle, possible only when all buffers are empty).
  /// `slots_left` defaults to the full horizon.
  [[nodiscard]] int optimal_action(const std::vector<int>& buffers, int slots_left) const;

  [[nodiscard]] int slots() const { return slots_; }

 private:
  [[nodiscard]] double value(const std::vector<int>& caps, std::vector<int>& buffers,
                             int slots_left, std::vector<double>& memo,
                             const std::vector<std::uint64_t>& strides) const;

  ProbabilityVector p_;
  std::vector<double> w_;
  int slots_;
};

}  // namespace rtmac::analysis
