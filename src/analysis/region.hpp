// The timely-throughput feasible region (Definition 4) for two links.
//
// For a fully-interfering network the achievable per-interval delivery
// vectors are exactly the downward closure of the convex hull of the
// priority-ordering outcomes {E[S | ordering]} (Lemma 1 + Lemma 3: optimal
// policies are priority policies, and stationary randomization time-shares
// between orderings). With two links that hull is a single segment between
// the "link 0 first" and "link 1 first" outcomes, so the exact frontier and
// a membership test are closed-form given the exact evaluator.
//
// Used by bench/region_two_link to overlay the EXACT region boundary with
// the empirically probed boundaries of LDF and DB-DP: feasibility
// optimality means all three coincide (up to finite-horizon fuzz).
#pragma once

#include <vector>

#include "analysis/priority_evaluator.hpp"
#include "core/types.hpp"

namespace rtmac::analysis {

/// A point (q_0, q_1) in timely-throughput space.
struct RegionPoint {
  double q0 = 0.0;
  double q1 = 0.0;
};

/// Exact two-link frontier: the two extreme outcomes (each link prioritized)
/// whose connecting segment, plus its downward closure, is the region.
struct TwoLinkRegion {
  RegionPoint link0_first;  ///< E[S] when link 0 has priority
  RegionPoint link1_first;  ///< E[S] when link 1 has priority

  /// True iff q is inside the region (on or below the frontier segment and
  /// the axis-aligned extensions).
  [[nodiscard]] bool contains(const RegionPoint& q, double tol = 1e-9) const;

  /// Largest s such that s*q stays inside the region (q != origin).
  [[nodiscard]] double boundary_scale(const RegionPoint& q) const;
};

/// Computes the exact region for two links with independent per-interval
/// arrival pmfs and `slots` transmission opportunities.
[[nodiscard]] TwoLinkRegion two_link_region(const ProbabilityVector& p,
                                            const std::vector<std::vector<double>>& arrival_pmfs,
                                            int slots);

}  // namespace rtmac::analysis
