#include "analysis/interval_mdp.hpp"

#include <cmath>

#include "util/check.hpp"

namespace rtmac::analysis {

IntervalMdp::IntervalMdp(ProbabilityVector success_prob, std::vector<double> weights,
                         int slots)
    : p_{std::move(success_prob)}, w_{std::move(weights)}, slots_{slots} {
  RTMAC_REQUIRE(p_.size() == w_.size());
  RTMAC_REQUIRE(!p_.empty());
  RTMAC_REQUIRE(slots >= 0);
  for (double p : p_) {
    RTMAC_REQUIRE(p > 0.0 && p <= 1.0);
    (void)p;
  }
}

double IntervalMdp::value(const std::vector<int>& caps, std::vector<int>& buffers,
                          int slots_left, std::vector<double>& memo,
                          const std::vector<std::uint64_t>& strides) const {
  if (slots_left == 0) return 0.0;
  // Dense memo index: mixed-radix buffer encoding x horizon.
  std::uint64_t idx = static_cast<std::uint64_t>(slots_left);
  for (std::size_t n = 0; n < buffers.size(); ++n) {
    idx += strides[n] * static_cast<std::uint64_t>(buffers[n]);
  }
  if (memo[idx] >= 0.0) return memo[idx];

  double best = 0.0;  // idling is always available (and optimal only when empty)
  for (std::size_t n = 0; n < buffers.size(); ++n) {
    if (buffers[n] == 0) continue;
    --buffers[n];
    const double on_success = w_[n] + value(caps, buffers, slots_left - 1, memo, strides);
    ++buffers[n];
    const double on_failure = value(caps, buffers, slots_left - 1, memo, strides);
    const double q = p_[n] * on_success + (1.0 - p_[n]) * on_failure;
    if (q > best) best = q;
  }
  memo[idx] = best;
  return best;
}

double IntervalMdp::optimal_value(const std::vector<int>& initial_buffers) const {
  RTMAC_REQUIRE(initial_buffers.size() == p_.size());
  std::vector<int> caps = initial_buffers;
  std::vector<std::uint64_t> strides(p_.size());
  std::uint64_t stride = static_cast<std::uint64_t>(slots_) + 1;
  for (std::size_t n = 0; n < p_.size(); ++n) {
    RTMAC_REQUIRE(initial_buffers[n] >= 0);
    strides[n] = stride;
    stride *= static_cast<std::uint64_t>(caps[n]) + 1;
  }
  std::vector<double> memo(stride, -1.0);
  std::vector<int> buffers = initial_buffers;
  return value(caps, buffers, slots_, memo, strides);
}

int IntervalMdp::optimal_action(const std::vector<int>& buffers, int slots_left) const {
  RTMAC_ASSERT(buffers.size() == p_.size());
  RTMAC_ASSERT(slots_left >= 0 && slots_left <= slots_);
  if (slots_left == 0) return -1;

  std::vector<int> caps = buffers;
  std::vector<std::uint64_t> strides(p_.size());
  std::uint64_t stride = static_cast<std::uint64_t>(slots_) + 1;
  for (std::size_t n = 0; n < p_.size(); ++n) {
    strides[n] = stride;
    stride *= static_cast<std::uint64_t>(caps[n]) + 1;
  }
  std::vector<double> memo(stride, -1.0);
  std::vector<int> state = buffers;

  int best_action = -1;
  double best = 0.0;
  for (std::size_t n = 0; n < state.size(); ++n) {
    if (state[n] == 0) continue;
    --state[n];
    const double on_success = w_[n] + value(caps, state, slots_left - 1, memo, strides);
    ++state[n];
    const double on_failure = value(caps, state, slots_left - 1, memo, strides);
    const double q = p_[n] * on_success + (1.0 - p_[n]) * on_failure;
    if (q > best + 1e-15) {
      best = q;
      best_action = static_cast<int>(n);
    }
  }
  return best_action;
}

}  // namespace rtmac::analysis
