// Exact evaluation of priority-based policies (supports Lemma 3 / Prop. 4).
//
// Under a fixed transmission priority ordering in a fully-interfering
// network, the interval unfolds as: the highest-priority link transmits its
// packets (each attempt an independent Bernoulli(p) trial) until drained,
// then the next link, ..., until the T transmission slots run out. This
// module computes E[S_n] for every link EXACTLY, by propagating the
// distribution of remaining slots down the priority chain:
//
//   link with b buffered packets and r remaining slots:
//     * delivers all b iff the b-th success arrives within r trials
//       (negative-binomial timing), leaving r - t slots;
//     * otherwise delivers j < b (binomial tail) and the interval is spent.
//
// Used to verify that the ELDF ordering maximizes sum_n w_n E[S_n] over all
// N! orderings (Lemma 3) and as the ground truth for simulator validation.
#pragma once

#include <vector>

#include "core/types.hpp"

namespace rtmac::analysis {

/// Exact per-link expected deliveries under one priority ordering.
struct EvaluationResult {
  std::vector<double> expected_deliveries;  ///< E[S_n], indexed by link

  [[nodiscard]] double total() const;
};

/// Evaluator for a fixed network (p, T); orderings and traffic vary per call.
class PriorityEvaluator {
 public:
  /// `slots_per_interval` is the deadline in units of packet airtime
  /// (the paper's T when one unit time = one transmission).
  PriorityEvaluator(ProbabilityVector success_prob, int slots_per_interval);

  /// Independent arrivals: `arrival_pmfs[n]` over {0..A_max_n}.
  [[nodiscard]] EvaluationResult evaluate(const std::vector<LinkId>& ordering,
                                          const std::vector<std::vector<double>>& arrival_pmfs) const;

  /// Deterministic buffer contents (exact conditional on arrivals —
  /// also the building block for arbitrary JOINT arrival laws).
  [[nodiscard]] EvaluationResult evaluate_fixed(const std::vector<LinkId>& ordering,
                                                const std::vector<int>& arrivals) const;

  /// sum_n weights[n] * E[S_n] — the Lemma 2/3 objective with w = f(d^+).
  [[nodiscard]] static double objective(const EvaluationResult& result,
                                        const std::vector<double>& weights);

  /// The ELDF ordering (eq. 4): links sorted by weights[n] * p_n descending,
  /// ties by link id.
  [[nodiscard]] std::vector<LinkId> eldf_ordering(const std::vector<double>& weights) const;

  [[nodiscard]] int slots() const { return slots_; }
  [[nodiscard]] const ProbabilityVector& success_prob() const { return p_; }

 private:
  /// Serves one link: consumes `slot_dist` (distribution over remaining
  /// slots), returns the link's E[S] and writes the post-service slot
  /// distribution in place. `pmf` is the link's buffered-packet law.
  double serve_link(std::vector<double>& slot_dist, const std::vector<double>& pmf,
                    double p) const;

  ProbabilityVector p_;
  int slots_;
};

}  // namespace rtmac::analysis
