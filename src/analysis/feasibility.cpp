#include "analysis/feasibility.hpp"

#include "net/network.hpp"

namespace rtmac::analysis {

bool achieves(net::NetworkConfig config, const mac::SchemeFactory& scheme,
              IntervalIndex intervals, double deficiency_threshold) {
  net::Network network{std::move(config), scheme};
  network.run(intervals);
  return network.total_deficiency() < deficiency_threshold;
}

double max_supported_load(const ConfigForLoad& config_for_load,
                          const mac::SchemeFactory& scheme, const ProbeParams& params) {
  double lo = params.lo;
  double hi = params.hi;
  for (int step = 0; step < params.bisection_steps; ++step) {
    const double mid = 0.5 * (lo + hi);
    if (achieves(config_for_load(mid), scheme, params.intervals,
                 params.deficiency_threshold)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace rtmac::analysis
