// Structured protocol event tracing.
//
// A Tracer is a bounded ring buffer of typed protocol events — backoff
// lifecycle, transmissions, swap decisions, interval boundaries — recorded
// by the PHY/MAC layers when attached (zero overhead when absent: every
// recording site guards on a null pointer). Used by the trace examples, by
// tests asserting on protocol-internal behaviour, for debugging protocol
// changes (the swap-consistency bug in DESIGN.md §4b was found with exactly
// this kind of trace), and as the event source for the obs/trace_export
// exporters (JSONL and Chrome trace-event timelines).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "util/time.hpp"

namespace rtmac::sim {

/// What happened. Payload meanings are documented per kind.
enum class TraceKind : std::uint8_t {
  kIntervalStart,   ///< a = interval index
  kIntervalEnd,     ///< a = interval index
  kBackoffArmed,    ///< link; a = initial count
  kBackoffFrozen,   ///< link; a = remaining count at freeze
  kBackoffResumed,  ///< link; a = remaining count
  kBackoffExpired,  ///< link
  kTxStart,         ///< link; a = airtime ns; b = 1 for empty packets
  kTxEnd,           ///< link; a = outcome (0 delivered, 1 loss, 2 collision);
                    ///<       b = 1 for empty packets
  kSwapUp,          ///< link; a = old priority; b = new priority
  kSwapDown,        ///< link; a = old priority; b = new priority
};

/// Number of TraceKind values (kept in sync with the enum; checked by the
/// round-trip test over every kind).
inline constexpr std::size_t kTraceKindCount = 10;

/// Version of the exported trace schema (JSONL event export and the Chrome
/// trace metadata block both carry it); bumped whenever TraceKind values,
/// payload meanings, or export field names change.
inline constexpr int kTraceSchemaVersion = 1;

/// Stable machine-readable name of `kind` ("tx-start", "swap-up", ...).
[[nodiscard]] std::string_view to_string(TraceKind kind);

/// Inverse of to_string: parses an exported kind name back to the enum.
[[nodiscard]] std::optional<TraceKind> trace_kind_from_string(std::string_view name);

/// Sentinel for events that are not tied to one link.
inline constexpr LinkId kNoLink = static_cast<LinkId>(-1);

/// One trace record.
struct TraceEvent {
  TimePoint time;
  TraceKind kind;
  LinkId link = kNoLink;
  std::int64_t a = 0;
  std::int64_t b = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Bounded event sink. Oldest events are dropped once `capacity` is hit;
/// capacity 0 means unbounded (nothing is ever dropped). Drop accounting:
/// total_recorded() counts every record() ever made, events() holds the
/// retained suffix, and dropped() == total_recorded() - events().size() is
/// the number of oldest events lost to the ring bound.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 65536);

  void record(TraceEvent event);
  void record(TimePoint t, TraceKind kind, LinkId link = kNoLink, std::int64_t a = 0,
              std::int64_t b = 0) {
    record(TraceEvent{t, kind, link, a, b});
  }

  [[nodiscard]] const std::deque<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t total_recorded() const { return total_; }
  [[nodiscard]] std::size_t dropped() const { return total_ - events_.size(); }
  /// Configured bound (0 = unbounded).
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Events of one kind (optionally restricted to one link). Linear in the
  /// number of retained events (it materializes matches); use count() for
  /// O(1) cardinality checks.
  [[nodiscard]] std::vector<TraceEvent> filter(TraceKind kind, LinkId link = kNoLink) const;

  /// Number of retained events of `kind` (optionally on one link). O(1):
  /// served from counts maintained on record()/drop, not by scanning.
  [[nodiscard]] std::size_t count(TraceKind kind, LinkId link = kNoLink) const;

  /// Renders all retained events, one per line.
  [[nodiscard]] std::string render() const;

  void clear();

 private:
  /// Key packing (kind, link) for the per-link counts index.
  static constexpr std::uint64_t count_key(TraceKind kind, LinkId link) {
    return (static_cast<std::uint64_t>(kind) << 32) | static_cast<std::uint64_t>(link);
  }

  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::size_t total_ = 0;
  // Counts caches, kept exact across ring-buffer drops so count() stays O(1)
  // on arbitrarily long runs (Tracer::count is on the hot path of test
  // assertions that run after multi-thousand-interval simulations).
  std::size_t kind_counts_[kTraceKindCount] = {};
  std::unordered_map<std::uint64_t, std::size_t> kind_link_counts_;
};

}  // namespace rtmac::sim
