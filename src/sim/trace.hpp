// Structured protocol event tracing.
//
// A Tracer is a bounded ring buffer of typed protocol events — backoff
// lifecycle, transmissions, swap decisions, interval boundaries — recorded
// by the PHY/MAC layers when attached (zero overhead when absent: every
// recording site guards on a null pointer). Used by the trace examples, by
// tests asserting on protocol-internal behaviour, and for debugging
// protocol changes (the swap-consistency bug in DESIGN.md §4b was found
// with exactly this kind of trace).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "util/time.hpp"

namespace rtmac::sim {

/// What happened. Payload meanings are documented per kind.
enum class TraceKind : std::uint8_t {
  kIntervalStart,   ///< a = interval index
  kIntervalEnd,     ///< a = interval index
  kBackoffArmed,    ///< link; a = initial count
  kBackoffFrozen,   ///< link; a = remaining count at freeze
  kBackoffResumed,  ///< link; a = remaining count
  kBackoffExpired,  ///< link
  kTxStart,         ///< link; a = airtime ns; b = 1 for empty packets
  kTxEnd,           ///< link; a = outcome (0 delivered, 1 loss, 2 collision);
                    ///<       b = 1 for empty packets
  kSwapUp,          ///< link; a = old priority; b = new priority
  kSwapDown,        ///< link; a = old priority; b = new priority
};

/// Sentinel for events that are not tied to one link.
inline constexpr LinkId kNoLink = static_cast<LinkId>(-1);

/// One trace record.
struct TraceEvent {
  TimePoint time;
  TraceKind kind;
  LinkId link = kNoLink;
  std::int64_t a = 0;
  std::int64_t b = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Bounded event sink. Oldest events are dropped once `capacity` is hit.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 65536);

  void record(TraceEvent event);
  void record(TimePoint t, TraceKind kind, LinkId link = kNoLink, std::int64_t a = 0,
              std::int64_t b = 0) {
    record(TraceEvent{t, kind, link, a, b});
  }

  [[nodiscard]] const std::deque<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t total_recorded() const { return total_; }
  [[nodiscard]] std::size_t dropped() const { return total_ - events_.size(); }

  /// Events of one kind (optionally restricted to one link).
  [[nodiscard]] std::vector<TraceEvent> filter(TraceKind kind, LinkId link = kNoLink) const;
  [[nodiscard]] std::size_t count(TraceKind kind, LinkId link = kNoLink) const;

  /// Renders all retained events, one per line.
  [[nodiscard]] std::string render() const;

  void clear();

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::size_t total_ = 0;
};

}  // namespace rtmac::sim
