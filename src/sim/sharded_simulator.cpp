#include "sim/sharded_simulator.hpp"

#include <future>
#include <utility>

#include "util/check.hpp"

namespace rtmac::sim {

ShardCoordinator::ShardCoordinator(std::vector<ShardCell*> cells,
                                   std::vector<std::vector<std::uint32_t>> cut_neighbors,
                                   std::vector<std::vector<std::uint32_t>> groups,
                                   ThreadPool* pool, bool adaptive_lookahead)
    : cells_{std::move(cells)},
      cut_neighbors_{std::move(cut_neighbors)},
      groups_{std::move(groups)},
      pool_{pool},
      adaptive_{adaptive_lookahead} {
  RTMAC_REQUIRE(!cells_.empty(), "coordinator needs at least one cell");
  RTMAC_REQUIRE(cut_neighbors_.size() == cells_.size(), "cut_neighbors size mismatch");
  const util::PhantomLock barrier{shard_barrier};
  clock_snapshot_.resize(cells_.size());
  bound_snapshot_.resize(cells_.size());
}

void ShardCoordinator::advance_to(TimePoint horizon) {
  for (;;) {
    {
      // Serial barrier phase. The PhantomLock grants the shard_barrier
      // capability to this scope (coordinating thread only), which is what
      // entitles it to call the cells' barrier-phase methods and touch the
      // guarded scratch vectors.
      const util::PhantomLock barrier{shard_barrier};

      // Snapshot clocks once per round; R_i below uses the snapshot so the
      // round is independent of execution order inside the parallel phase.
      bool done = true;
      for (std::size_t c = 0; c < cells_.size(); ++c) {
        clock_snapshot_[c] = cells_[c]->clock();
        if (clock_snapshot_[c] < horizon) done = false;
      }
      if (done) break;

      // Drain outboxes in canonical cell order, then deliver each fresh
      // record to every other cell (the receiving cell filters for
      // relevance). Serial + ordered == deterministic mailbox contents.
      fresh_.clear();
      for (auto* cell : cells_) cell->drain_outbox(fresh_);
      for (const CutTxRecord& record : fresh_) {
        for (std::uint32_t c = 0; c < cells_.size(); ++c) {
          if (c != record.cell) cells_[c]->deliver_remote(record);
        }
      }
      // Activity bounds are probed AFTER the deliveries above: injections
      // schedule events, and a bound that ignored them could overshoot a
      // neighbor's reaction to fresh remote activity. With adaptive
      // lookahead off this degrades to the classic clock-based window.
      for (std::size_t c = 0; c < cells_.size(); ++c) {
        bound_snapshot_[c] =
            adaptive_ ? cells_[c]->next_activity_bound() : clock_snapshot_[c];
        RTMAC_ASSERT(bound_snapshot_[c] >= clock_snapshot_[c],
                     "activity bound trails the cell clock");
      }
      for (std::size_t c = 0; c < cells_.size(); ++c) {
        TimePoint bound = horizon;
        for (std::uint32_t nb : cut_neighbors_[c]) {
          if (bound_snapshot_[nb] < bound) bound = bound_snapshot_[nb];
        }
        cells_[c]->begin_window(bound);
      }
    }

    // Parallel phase: each group advances its cells toward the horizon.
    if (pool_ != nullptr && groups_.size() > 1) {
      std::vector<std::future<void>> futures;
      futures.reserve(groups_.size());
      for (const auto& group : groups_) {
        futures.push_back(pool_->submit([this, &group, horizon] {
          for (std::uint32_t c : group) {
            if (cells_[c]->clock() < horizon) cells_[c]->run_window(horizon);
          }
        }));
      }
      pool_->wait_all(futures);
      for (auto& f : futures) f.get();  // surface task exceptions
    } else {
      for (const auto& group : groups_) {
        for (std::uint32_t c : group) {
          if (cells_[c]->clock() < horizon) cells_[c]->run_window(horizon);
        }
      }
    }
    ++rounds_;

    // Safety net: the conservative bound guarantees the minimum clock
    // strictly advances each round; a stall means a lookahead bug, and
    // looping forever would be far harder to debug than this abort. The
    // parallel phase is over, so re-entering the barrier phase to read the
    // snapshot is legitimate.
    const util::PhantomLock barrier{shard_barrier};
    bool advanced = false;
    for (std::size_t c = 0; c < cells_.size(); ++c) {
      if (cells_[c]->clock() > clock_snapshot_[c]) advanced = true;
    }
    RTMAC_ASSERT(advanced, "shard coordinator made no progress in a round");
  }
}

}  // namespace rtmac::sim
