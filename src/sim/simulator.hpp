// The discrete-event simulator: virtual clock + event loop.
//
// This is the stand-in for ns-3's core in this reproduction: components
// schedule closures at absolute or relative virtual times; run() executes
// them in deterministic (time, insertion) order while advancing the clock.
// There is no real-time pacing — a 100 s experiment runs as fast as the CPU
// allows.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>

#include "sim/event_queue.hpp"
#include "util/check.hpp"
#include "util/time.hpp"

namespace rtmac::sim {

/// Single-threaded discrete-event executor with a virtual clock.
///
/// Not thread-safe by design (CP.1 does not apply: the engine is inherently
/// sequential; determinism is the feature).
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time. Starts at the origin (t = 0).
  [[nodiscard]] TimePoint now() const { return now_; }

  // Scheduling is inline: it happens once per simulated transmission and
  // backoff expiry, and a cross-TU call forces an extra move of the inline
  // callback storage.

  /// Schedules `cb` at absolute virtual time `at`.
  /// Precondition: at >= now() (events cannot be scheduled in the past).
  EventId schedule_at(TimePoint at, EventQueue::Callback cb) {
    RTMAC_REQUIRE(at >= now_, "cannot schedule into the past");
    return queue_.push(at, std::move(cb));
  }

  /// Schedules `cb` after `delay` from now. Precondition: delay >= 0.
  EventId schedule_in(Duration delay, EventQueue::Callback cb) {
    RTMAC_REQUIRE(!delay.is_negative(), "negative delay");
    return queue_.push(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event; no effect on fired/cancelled handles.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Moves a pending event to `at`, ordering-equivalent to cancel() +
  /// schedule_at() of the same callback (fresh FIFO tie-break) but without
  /// the slot churn. The handle stays valid. Returns false on stale handles.
  bool reschedule(EventId id, TimePoint at) {
    RTMAC_REQUIRE(at >= now_, "cannot reschedule into the past");
    return queue_.reschedule(id, at);
  }

  /// True when no pending event fires strictly before `t`. Used by debug
  /// invariant checks (e.g. the Medium burst fast path); non-const because
  /// inspecting the queue front skims cancelled events.
  [[nodiscard]] bool no_event_before(TimePoint t) {
    return queue_.empty() || queue_.next_time() >= t;
  }

  /// Time of the earliest pending event, or no_run_limit() when the queue
  /// is empty. Non-const for the same reason as no_event_before(). This is
  /// the shard coordinator's adaptive-lookahead probe: events only execute
  /// at or after this instant, so nothing observable — in particular no
  /// transmission start — can happen in this engine before it.
  [[nodiscard]] TimePoint next_event_time() {
    return queue_.empty() ? no_run_limit() : queue_.next_time();
  }
  [[nodiscard]] bool is_pending(EventId id) const { return queue_.is_pending(id); }

  /// Runs until the event queue is exhausted or stop() is called.
  void run();

  /// Runs events with time <= horizon, then sets the clock to the horizon.
  /// When a run limit is armed (sharded execution), only events strictly
  /// before the limit execute and the clock stops at min(horizon, limit).
  void run_until(TimePoint horizon);

  /// Sentinel meaning "no run limit armed".
  [[nodiscard]] static constexpr TimePoint no_run_limit() {
    return TimePoint::from_ns(std::numeric_limits<std::int64_t>::max());
  }

  /// Arms a conservative execution bound for run_until(): events at
  /// time >= `limit` stay queued and the clock never passes the limit.
  /// Used by the shard coordinator to block cross-shard completions whose
  /// resolution window has not been reached yet. May be re-armed (tightened
  /// or relaxed) from inside event callbacks; run_until re-reads it every
  /// iteration. Does not affect run().
  void set_run_limit(TimePoint limit) { run_limit_ = limit; }
  void clear_run_limit() { run_limit_ = no_run_limit(); }
  [[nodiscard]] TimePoint run_limit() const { return run_limit_; }

  /// Requests termination of a run in progress (callable from callbacks).
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Pre-sizes the event queue for `events` concurrently-pending events
  /// (e.g. a NetworkConfig-derived hint), so steady state never reallocates.
  void reserve_events(std::size_t events) { queue_.reserve(events); }

  /// Event-storage growth events since construction; 0 for a run whose
  /// working set stayed under the reserve_events() hint. Exported by the
  /// obs layer as `engine.events.reallocs`.
  [[nodiscard]] std::uint64_t event_reallocs() const { return queue_.reallocs(); }

  /// Bytes owned by the event queue's pool and heap; see
  /// EventQueue::memory_bytes().
  [[nodiscard]] std::size_t event_memory_bytes() const { return queue_.memory_bytes(); }

 private:
  void dispatch(EventQueue::Popped popped) {
    RTMAC_ASSERT(popped.time >= now_, "event queue returned an out-of-order event");
    now_ = popped.time;
    ++executed_;
    popped.callback();
  }

  EventQueue queue_;
  TimePoint now_ = TimePoint::origin();
  TimePoint run_limit_ = no_run_limit();
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace rtmac::sim
