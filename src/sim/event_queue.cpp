#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rtmac::sim {

std::uint32_t EventQueue::allocate_slot_slow() {
  RTMAC_ASSERT(pool_.size() < kNilSlot, "event slot pool exhausted");
  const auto slot = static_cast<std::uint32_t>(pool_.size());
  push_counted(pool_, Slot{});
  ++pool_[slot].gen;  // 0 -> 1: occupied
  return slot;
}

void EventQueue::skim_tombstones_slow() {
  while (!heap_.empty()) {
    const HeapItem& top = heap_.front();
    if (pool_[top.slot].gen == top.gen) return;  // live
    remove_top();
    --tombstones_;
  }
}

void EventQueue::compact() {
  const auto dead = [this](const HeapItem& item) {
    return pool_[item.slot].gen != item.gen;
  };
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), dead), heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  // make_heap moved records without maintaining positions; one pass fixes
  // them all (every survivor is live, so record_pos always writes).
  for (std::size_t i = 0; i < heap_.size(); ++i) record_pos(heap_[i], i);
  tombstones_ = 0;
}

void EventQueue::clear() {
  for (const HeapItem& item : heap_) {
    if (pool_[item.slot].gen == item.gen) release_slot(item.slot);
  }
  heap_.clear();
  live_ = 0;
  tombstones_ = 0;
}

void EventQueue::reserve(std::size_t events) {
  pool_.reserve(events);
  // Worst case between compactions: every live event plus an equal number
  // of tombstones (compaction triggers at dead > size/2).
  heap_.reserve(events * 2);
}

}  // namespace rtmac::sim
