#include "sim/event_queue.hpp"

#include <utility>

#include "util/check.hpp"

namespace rtmac::sim {

EventId EventQueue::push(TimePoint at, Callback cb) {
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq, std::move(cb)});
  pending_.insert(seq);
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  // Erasing from the pending set is the cancellation; the heap entry becomes
  // a tombstone that pop()/next_time() skip.
  return pending_.erase(id.seq_) > 0;
}

bool EventQueue::is_pending(EventId id) const {
  return id.valid() && pending_.contains(id.seq_);
}

void EventQueue::skim_tombstones() {
  while (!heap_.empty() && !pending_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

TimePoint EventQueue::next_time() {
  skim_tombstones();
  RTMAC_REQUIRE(!heap_.empty(), "next_time() on empty queue");
  return heap_.top().time;
}

EventQueue::Popped EventQueue::pop() {
  skim_tombstones();
  RTMAC_REQUIRE(!heap_.empty(), "pop() on empty queue");
  // priority_queue::top() is const&; move out via const_cast, which is safe
  // because we pop the entry immediately after and never compare by callback.
  Entry& top = const_cast<Entry&>(heap_.top());
  Popped out{top.time, std::move(top.callback)};
  pending_.erase(top.seq);
  heap_.pop();
  return out;
}

void EventQueue::clear() {
  heap_ = {};
  pending_.clear();
}

}  // namespace rtmac::sim
