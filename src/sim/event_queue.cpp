#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace rtmac::sim {

template <typename T>
void EventQueue::push_counted(std::vector<T>& v, T&& value) {
  if (v.size() == v.capacity()) ++reallocs_;
  v.push_back(std::move(value));
}

std::uint32_t EventQueue::allocate_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = pool_[slot].next_free;
    ++pool_[slot].gen;  // even -> odd: occupied
    return slot;
  }
  RTMAC_ASSERT(pool_.size() < kNilSlot, "event slot pool exhausted");
  const auto slot = static_cast<std::uint32_t>(pool_.size());
  push_counted(pool_, Slot{});
  ++pool_[slot].gen;  // 0 -> 1: occupied
  return slot;
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = pool_[slot];
  s.callback.reset();
  ++s.gen;  // odd -> even: free; stale handles can never match again
  s.next_free = free_head_;
  free_head_ = slot;
}

EventId EventQueue::push(TimePoint at, Callback cb) {
  const std::uint32_t slot = allocate_slot();
  pool_[slot].callback = std::move(cb);
  push_counted(heap_, HeapItem{at, next_seq_++, slot, pool_[slot].gen});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return EventId{slot, pool_[slot].gen};
}

bool EventQueue::cancel(EventId id) {
  if (!slot_matches(id)) return false;
  release_slot(id.slot_);
  --live_;
  // The heap record is now a tombstone (its generation no longer matches);
  // compact once dead records outnumber live ones, so cancel-heavy phases
  // cannot grow the heap without bound.
  ++tombstones_;
  if (tombstones_ > heap_.size() / 2 && heap_.size() >= kCompactMinHeap) compact();
  return true;
}

bool EventQueue::is_pending(EventId id) const { return slot_matches(id); }

void EventQueue::skim_tombstones() {
  while (!heap_.empty()) {
    const HeapItem& top = heap_.front();
    if (pool_[top.slot].gen == top.gen) return;  // live
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    --tombstones_;
  }
}

void EventQueue::compact() {
  const auto dead = [this](const HeapItem& item) {
    return pool_[item.slot].gen != item.gen;
  };
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), dead), heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  tombstones_ = 0;
}

TimePoint EventQueue::next_time() {
  skim_tombstones();
  RTMAC_REQUIRE(!heap_.empty(), "next_time() on empty queue");
  return heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  skim_tombstones();
  RTMAC_REQUIRE(!heap_.empty(), "pop() on empty queue");
  const HeapItem top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  Popped out{top.time, std::move(pool_[top.slot].callback)};
  release_slot(top.slot);
  --live_;
  return out;
}

void EventQueue::clear() {
  for (const HeapItem& item : heap_) {
    if (pool_[item.slot].gen == item.gen) release_slot(item.slot);
  }
  heap_.clear();
  live_ = 0;
  tombstones_ = 0;
}

void EventQueue::reserve(std::size_t events) {
  pool_.reserve(events);
  // Worst case between compactions: every live event plus an equal number
  // of tombstones (compaction triggers at dead > size/2).
  heap_.reserve(events * 2);
}

}  // namespace rtmac::sim
