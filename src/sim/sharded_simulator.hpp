// Conservative parallel coordination of per-shard event engines.
//
// Each shard cell owns a full engine stack (Simulator + Medium + MACs) over
// an induced subgraph of the topology; the only couplings left are the
// explicit cut edges from the ShardPlan. The coordinator advances all cells
// to a common horizon (the interval end) in rounds, Chandy–Misra style:
//
//   1. Barrier (serial, deterministic cell order): every cell drains its
//      outbox of finished/started cut-link transmissions into the shared
//      mailbox; fresh records are handed to the other cells (remote-sense
//      injection) and to the cross-shard collision ledger.
//   2. Each cell i gets a resolution bound R_i = min(horizon, min activity
//      bound of its cut-neighbor cells). A cut-link completion at time t
//      can be resolved exactly once no conflicting neighbor can still start
//      a transmission at a time < t — all overlapping remote transmissions
//      are then in the mailbox.
//   3. Parallel phase: groups of cells run concurrently, each cell's
//      Simulator bounded by a run limit = the earliest unresolvable
//      cut completion (end > R_i); the clock stops there.
//
// A neighbor's activity bound is at least its clock; with adaptive
// lookahead (the default) it is the neighbor's next pending event time.
// That is exact, not heuristic: transmissions start only inside event
// callbacks at the engine's current clock, so a neighbor whose next event
// is at time b cannot start a transmission before b, and every start
// before its clock was already exported (exports happen at start) and
// delivered at this barrier. A completion at t <= R_i therefore has every
// overlapping remote transmission in the mailbox — same invariant as the
// clock-based bound, reached in fewer rounds. An idle neighbor (empty
// queue) yields bound = +inf: it provably cannot interact this interval,
// so it stops throttling everyone else entirely.
//
// Progress: activity bounds never trail the clocks, so each round makes at
// least the progress of the clock-based scheme — the cell with the minimum
// clock c_min has R_i >= c_min, its earliest blocking completion lies
// strictly beyond c_min, and its clock strictly advances. No deadlock, and
// the adaptive round count is bounded above by the fixed-window round
// count (each barrier reaches at least as far).
//
// Determinism: per-cell execution is single-threaded and schedule-free; the
// barrier runs serially in canonical cell order; remote records are
// injected in drain order. The result is byte-identical for any worker
// count and any grouping of cells.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "sim/shard_barrier.hpp"
#include "util/thread_pool.hpp"
#include "util/time.hpp"

namespace rtmac::sim {

/// One cut-link transmission exported at a window barrier.
struct CutTxRecord {
  LinkId link = 0;          ///< global link id
  std::uint32_t cell = 0;   ///< originating cell
  TimePoint start;
  TimePoint end;
};

/// A shard cell as the coordinator sees it. Implemented by net::Network's
/// per-cell glue; the coordinator never touches a Medium or EventQueue
/// directly.
///
/// Phase discipline is compile-time checked via the `shard_barrier` phantom
/// capability: barrier-phase methods REQUIRE it (only the coordinator's
/// serial section holds it), the parallel-phase method EXCLUDES it.
/// Overrides must repeat the annotations — the analysis does not inherit
/// attributes through virtual dispatch declarations in derived classes.
class ShardCell {
 public:
  virtual ~ShardCell() = default;
  /// The cell's engine clock. Safe in either phase (each cell is advanced by
  /// exactly one thread, and the coordinator reads it only at barriers).
  [[nodiscard]] virtual TimePoint clock() const = 0;
  /// Barrier phase: appends cut-link transmissions recorded since the last
  /// drain (in start-time order) and forgets them locally.
  virtual void drain_outbox(std::vector<CutTxRecord>& into)
      RTMAC_REQUIRES(shard_barrier) = 0;
  /// Barrier phase: offers a fresh remote record; the cell injects it into
  /// its sense views if any of its links listens to `record.link`.
  virtual void deliver_remote(const CutTxRecord& record)
      RTMAC_REQUIRES(shard_barrier) = 0;
  /// Barrier phase: earliest instant at which this cell could still start
  /// a new transmission. Must never trail clock(); the conservative default
  /// is the clock itself (the fixed-window scheme). Engine-backed cells
  /// return their next pending event time — transmissions start only inside
  /// event callbacks, so neighbors may extend their resolution windows up
  /// to this bound (adaptive lookahead). Called after remote deliveries so
  /// freshly injected events are visible.
  [[nodiscard]] virtual TimePoint next_activity_bound() RTMAC_REQUIRES(shard_barrier) {
    return clock();
  }
  /// Barrier phase: arms the next window with resolution bound `bound`.
  virtual void begin_window(TimePoint bound) RTMAC_REQUIRES(shard_barrier) = 0;
  /// Parallel phase: runs the engine toward `horizon` (stopping early at
  /// the armed run limit).
  virtual void run_window(TimePoint horizon) RTMAC_EXCLUDES(shard_barrier) = 0;
};

/// Advances a set of shard cells to successive horizons.
class ShardCoordinator {
 public:
  /// `cut_neighbors[i]` = cells sharing at least one cut conflict edge with
  /// cell i (these bound cell i's resolution window). `groups[g]` = cell
  /// indices run by worker g in the parallel phase. `pool` may be null for
  /// serial execution; it is borrowed, not owned. `adaptive_lookahead`
  /// selects next_activity_bound() (default) over bare clocks when
  /// computing the per-round resolution bounds.
  ShardCoordinator(std::vector<ShardCell*> cells,
                   std::vector<std::vector<std::uint32_t>> cut_neighbors,
                   std::vector<std::vector<std::uint32_t>> groups, ThreadPool* pool,
                   bool adaptive_lookahead = true);

  /// Runs rounds until every cell's clock reaches `horizon`.
  void advance_to(TimePoint horizon);

  /// Barrier rounds executed so far (an observability counter; one round
  /// per interval on cut-free plans).
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }

 private:
  std::vector<ShardCell*> cells_;
  std::vector<std::vector<std::uint32_t>> cut_neighbors_;
  std::vector<std::vector<std::uint32_t>> groups_;
  ThreadPool* pool_;
  bool adaptive_;
  std::uint64_t rounds_ = 0;
  // Barrier scratch: touched only inside the coordinator's PhantomLock'd
  // serial sections, never by parallel-phase tasks.
  std::vector<CutTxRecord> fresh_ RTMAC_GUARDED_BY(shard_barrier);
  std::vector<TimePoint> clock_snapshot_ RTMAC_GUARDED_BY(shard_barrier);
  std::vector<TimePoint> bound_snapshot_ RTMAC_GUARDED_BY(shard_barrier);
};

}  // namespace rtmac::sim
