#include "sim/trace.hpp"

#include <cassert>
#include <cstdio>

namespace rtmac::sim {

namespace {

const char* kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kIntervalStart: return "interval-start";
    case TraceKind::kIntervalEnd: return "interval-end";
    case TraceKind::kBackoffArmed: return "backoff-armed";
    case TraceKind::kBackoffFrozen: return "backoff-frozen";
    case TraceKind::kBackoffResumed: return "backoff-resumed";
    case TraceKind::kBackoffExpired: return "backoff-expired";
    case TraceKind::kTxStart: return "tx-start";
    case TraceKind::kTxEnd: return "tx-end";
    case TraceKind::kSwapUp: return "swap-up";
    case TraceKind::kSwapDown: return "swap-down";
  }
  return "?";
}

}  // namespace

std::string TraceEvent::to_string() const {
  char buf[160];
  if (link == kNoLink) {
    std::snprintf(buf, sizeof buf, "[%11.6fs] %-16s a=%lld b=%lld", time.seconds_f(),
                  kind_name(kind), static_cast<long long>(a), static_cast<long long>(b));
  } else {
    std::snprintf(buf, sizeof buf, "[%11.6fs] %-16s link=%u a=%lld b=%lld",
                  time.seconds_f(), kind_name(kind), link, static_cast<long long>(a),
                  static_cast<long long>(b));
  }
  return buf;
}

Tracer::Tracer(std::size_t capacity) : capacity_{capacity} { assert(capacity > 0); }

void Tracer::record(TraceEvent event) {
  ++total_;
  events_.push_back(event);
  if (events_.size() > capacity_) events_.pop_front();
}

std::vector<TraceEvent> Tracer::filter(TraceKind kind, LinkId link) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.kind == kind && (link == kNoLink || e.link == link)) out.push_back(e);
  }
  return out;
}

std::size_t Tracer::count(TraceKind kind, LinkId link) const {
  std::size_t c = 0;
  for (const auto& e : events_) {
    if (e.kind == kind && (link == kNoLink || e.link == link)) ++c;
  }
  return c;
}

std::string Tracer::render() const {
  std::string out;
  out.reserve(events_.size() * 60);
  for (const auto& e : events_) {
    out += e.to_string();
    out += '\n';
  }
  return out;
}

void Tracer::clear() {
  events_.clear();
  total_ = 0;
}

}  // namespace rtmac::sim
