#include "sim/trace.hpp"

#include <cstdio>

namespace rtmac::sim {

namespace {

struct KindName {
  TraceKind kind;
  std::string_view name;
};

/// Single source of truth for the to_string/from_string round trip.
constexpr KindName kKindNames[kTraceKindCount] = {
    {TraceKind::kIntervalStart, "interval-start"},
    {TraceKind::kIntervalEnd, "interval-end"},
    {TraceKind::kBackoffArmed, "backoff-armed"},
    {TraceKind::kBackoffFrozen, "backoff-frozen"},
    {TraceKind::kBackoffResumed, "backoff-resumed"},
    {TraceKind::kBackoffExpired, "backoff-expired"},
    {TraceKind::kTxStart, "tx-start"},
    {TraceKind::kTxEnd, "tx-end"},
    {TraceKind::kSwapUp, "swap-up"},
    {TraceKind::kSwapDown, "swap-down"},
};

}  // namespace

std::string_view to_string(TraceKind kind) {
  for (const auto& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "?";
}

std::optional<TraceKind> trace_kind_from_string(std::string_view name) {
  for (const auto& entry : kKindNames) {
    if (entry.name == name) return entry.kind;
  }
  return std::nullopt;
}

std::string TraceEvent::to_string() const {
  char buf[160];
  if (link == kNoLink) {
    std::snprintf(buf, sizeof buf, "[%11.6fs] %-16s a=%lld b=%lld", time.seconds_f(),
                  std::string{sim::to_string(kind)}.c_str(), static_cast<long long>(a),
                  static_cast<long long>(b));
  } else {
    std::snprintf(buf, sizeof buf, "[%11.6fs] %-16s link=%u a=%lld b=%lld",
                  time.seconds_f(), std::string{sim::to_string(kind)}.c_str(), link,
                  static_cast<long long>(a), static_cast<long long>(b));
  }
  return buf;
}

Tracer::Tracer(std::size_t capacity) : capacity_{capacity} {}

void Tracer::record(TraceEvent event) {
  ++total_;
  events_.push_back(event);
  ++kind_counts_[static_cast<std::size_t>(event.kind)];
  ++kind_link_counts_[count_key(event.kind, event.link)];
  if (capacity_ != 0 && events_.size() > capacity_) {
    const TraceEvent& old = events_.front();
    --kind_counts_[static_cast<std::size_t>(old.kind)];
    --kind_link_counts_[count_key(old.kind, old.link)];
    events_.pop_front();
  }
}

std::vector<TraceEvent> Tracer::filter(TraceKind kind, LinkId link) const {
  std::vector<TraceEvent> out;
  out.reserve(count(kind, link));
  for (const auto& e : events_) {
    if (e.kind == kind && (link == kNoLink || e.link == link)) out.push_back(e);
  }
  return out;
}

std::size_t Tracer::count(TraceKind kind, LinkId link) const {
  if (link == kNoLink) return kind_counts_[static_cast<std::size_t>(kind)];
  const auto it = kind_link_counts_.find(count_key(kind, link));
  return it == kind_link_counts_.end() ? 0 : it->second;
}

std::string Tracer::render() const {
  std::string out;
  out.reserve(events_.size() * 60);
  for (const auto& e : events_) {
    out += e.to_string();
    out += '\n';
  }
  return out;
}

void Tracer::clear() {
  events_.clear();
  total_ = 0;
  for (auto& c : kind_counts_) c = 0;
  kind_link_counts_.clear();
}

}  // namespace rtmac::sim
