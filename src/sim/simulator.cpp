#include "sim/simulator.hpp"

#include <utility>

#include "util/check.hpp"

namespace rtmac::sim {

EventId Simulator::schedule_at(TimePoint at, EventQueue::Callback cb) {
  RTMAC_REQUIRE(at >= now_, "cannot schedule into the past");
  return queue_.push(at, std::move(cb));
}

EventId Simulator::schedule_in(Duration delay, EventQueue::Callback cb) {
  RTMAC_REQUIRE(!delay.is_negative(), "negative delay");
  return queue_.push(now_ + delay, std::move(cb));
}

void Simulator::dispatch(EventQueue::Popped popped) {
  RTMAC_ASSERT(popped.time >= now_, "event queue returned an out-of-order event");
  now_ = popped.time;
  ++executed_;
  popped.callback();
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    dispatch(queue_.pop());
  }
}

void Simulator::run_until(TimePoint horizon) {
  RTMAC_REQUIRE(horizon >= now_, "horizon is in the past");
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= horizon) {
    dispatch(queue_.pop());
  }
  if (!stopped_ && now_ < horizon) now_ = horizon;
}

}  // namespace rtmac::sim
