#include "sim/simulator.hpp"

#include "util/check.hpp"

namespace rtmac::sim {

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    dispatch(queue_.pop());
  }
}

void Simulator::run_until(TimePoint horizon) {
  RTMAC_REQUIRE(horizon >= now_, "horizon is in the past");
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= horizon &&
         queue_.next_time() < run_limit_) {
    dispatch(queue_.pop());
  }
  if (stopped_) return;
  const TimePoint resume = horizon < run_limit_ ? horizon : run_limit_;
  if (now_ < resume) now_ = resume;
}

}  // namespace rtmac::sim
