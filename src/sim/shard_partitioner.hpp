// Conflict-graph sharding: cut the interference topology into cells that
// can be simulated on independent engines.
//
// The partitioner works on plain adjacency lists (the union of the conflict
// and carrier-sense relations), so it has no dependency on phy/ and is
// trivially property-testable. Cells are the connected components of the
// union graph; a connected graph can additionally be bisected along a
// balanced edge cut when more parallelism is requested. Every cross-cell
// relation is reported explicitly in the cut set — the coordinator in
// sharded_simulator.{hpp,cpp} resolves exactly those edges at window
// barriers, everything else stays cell-local.
//
// Determinism is load-bearing: the whole algorithm is integer arithmetic
// over sorted adjacency lists (BFS visits neighbors in ascending id order,
// ties in the grouping heuristic break toward lower indices), so the same
// topology yields the same plan on every platform, run, and thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace rtmac::sim {

/// Symmetric/directed adjacency lists over links 0..n-1. Neighbor lists
/// need not be sorted or deduplicated on input; the partitioner normalizes.
using AdjacencyLists = std::vector<std::vector<LinkId>>;

/// An undirected cross-cell edge with a < b (global link ids).
struct CutEdge {
  LinkId a = 0;
  LinkId b = 0;
  friend bool operator==(const CutEdge&, const CutEdge&) = default;
};

/// A directed cross-cell sense relation: `listener` hears `speaker`'s
/// transmissions but lives in a different cell.
struct CutSense {
  LinkId listener = 0;
  LinkId speaker = 0;
  friend bool operator==(const CutSense&, const CutSense&) = default;
};

/// The sharding plan: a partition of the link set into cells, a balanced
/// assignment of cells to parallel groups, and the explicit cut sets.
struct ShardPlan {
  /// cell_of[link] = index into `cells`.
  std::vector<std::uint32_t> cell_of;
  /// Cells in ascending order of their smallest link id; each cell's link
  /// list is ascending. Cells partition {0..n-1}.
  std::vector<std::vector<LinkId>> cells;
  /// Cross-cell conflict edges (a < b), lexicographically sorted. Each
  /// one needs completion-time resolution by the coordinator.
  std::vector<CutEdge> cut_conflicts;
  /// Cross-cell sense relations, sorted by (listener, speaker). Each one
  /// needs remote-activity injection at window barriers.
  std::vector<CutSense> cut_senses;
  /// groups[g] = ascending cell indices simulated by parallel worker g.
  /// Balanced greedily by link count; size <= requested shard count.
  std::vector<std::vector<std::uint32_t>> groups;

  /// A trivial plan (one cell, nothing cut) — the caller should fall back
  /// to the plain single-engine path.
  [[nodiscard]] bool trivial() const {
    return cells.size() <= 1 && cut_conflicts.empty() && cut_senses.empty();
  }
  [[nodiscard]] std::size_t num_links() const { return cell_of.size(); }
};

/// Partitions a topology given its conflict relation (symmetric; self loops
/// ignored) and sense relation (directed: sense[n] lists the links n hears).
/// `target_shards` >= 1 is the requested number of parallel groups.
///
/// Guarantees (property-tested):
///  - cells are exactly the connected components of the conflict∪sense
///    union graph, except that a component may be BFS-bisected while there
///    are fewer cells than `target_shards`;
///  - complete components (every pair conflict-adjacent) are never split, so
///    a complete() graph always yields exactly one cell;
///  - every conflict edge is intra-cell or in `cut_conflicts`, every sense
///    relation intra-cell or in `cut_senses`;
///  - output is deterministic: pure integer arithmetic, no RNG, no
///    platform-dependent ordering.
[[nodiscard]] ShardPlan partition_topology(const AdjacencyLists& conflict,
                                           const AdjacencyLists& sense,
                                           std::size_t target_shards);

}  // namespace rtmac::sim
