// Cancellable pending-event set for the discrete-event engine.
//
// A binary heap keyed by (time, sequence number) gives deterministic FIFO
// ordering among events scheduled for the same instant — essential for
// reproducible simulations. Cancellation is lazy: cancelled entries stay in
// the heap as tombstones and are skipped on pop, which keeps cancel() O(1)
// (protocol state machines cancel backoff expiries constantly).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace rtmac::sim {

/// Opaque handle identifying a scheduled event; usable to cancel it.
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
  constexpr bool operator==(const EventId&) const = default;

 private:
  friend class EventQueue;
  constexpr explicit EventId(std::uint64_t seq) : seq_{seq} {}
  std::uint64_t seq_ = 0;  // 0 = invalid/never-scheduled
};

/// Priority queue of timed callbacks with lazy cancellation.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `at`. Returns a handle for cancel().
  EventId push(TimePoint at, Callback cb);

  /// Cancels a pending event. Safe on already-fired or already-cancelled
  /// handles (no effect). Returns true iff the event was still pending.
  bool cancel(EventId id);

  /// True iff the handle refers to an event that has not yet fired nor been
  /// cancelled.
  [[nodiscard]] bool is_pending(EventId id) const;

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return pending_.empty(); }
  [[nodiscard]] std::size_t size() const { return pending_.size(); }

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] TimePoint next_time();

  /// Removes and returns the earliest live event. Precondition: !empty().
  struct Popped {
    TimePoint time;
    Callback callback;
  };
  Popped pop();

  /// Drops all pending events.
  void clear();

 private:
  struct Entry {
    TimePoint time;
    std::uint64_t seq;
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pops cancelled tombstones off the heap front.
  void skim_tombstones();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> pending_;  // seqs neither fired nor cancelled
  std::uint64_t next_seq_ = 1;
};

}  // namespace rtmac::sim
