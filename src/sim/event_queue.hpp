// Cancellable pending-event set for the discrete-event engine.
//
// Two structures share the work:
//   * a SLOT POOL holds each pending event's callback in a stable slot.
//     Slots are recycled through a free list, and each carries a generation
//     counter bumped on every allocate AND every release, so an EventId
//     ({slot, generation}) from a previous occupancy can never alias the
//     current one (ABA protection). cancel() and is_pending() are O(1)
//     array probes — no hashing, no allocation.
//   * a BINARY HEAP of lightweight {time, seq, slot, gen} records gives
//     deterministic (time, insertion-order) FIFO ordering — essential for
//     reproducible simulations. Cancellation is lazy: the heap record of a
//     cancelled event becomes a tombstone (its generation no longer matches
//     the slot's), skipped on pop. When tombstones outnumber live records
//     the heap is compacted in one O(n) pass, bounding memory under the
//     cancel-heavy churn FCSMA/DCF backoff machines generate.
//
// In steady state (pool and heap at working-set capacity) no operation
// allocates: callbacks live inline in their slot (util::InplaceFunction),
// and both vectors only grow, never shrink, until clear().
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/inplace_function.hpp"
#include "util/time.hpp"

namespace rtmac::sim {

/// Opaque handle identifying a scheduled event; usable to cancel it. A
/// handle outlives its event harmlessly: once the event fires or is
/// cancelled, the slot's generation moves on and the stale handle no longer
/// matches anything (cancel() is a no-op, is_pending() is false), even after
/// the slot has been reused by a later event.
class EventId {
 public:
  constexpr EventId() = default;
  /// Generations are issued odd (live) and retired even, so a
  /// default-constructed handle (gen 0) is never valid.
  [[nodiscard]] constexpr bool valid() const { return (gen_ & 1U) != 0; }
  constexpr bool operator==(const EventId&) const = default;

 private:
  friend class EventQueue;
  constexpr EventId(std::uint32_t slot, std::uint32_t gen) : slot_{slot}, gen_{gen} {}
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// Priority queue of timed callbacks with O(1) cancellation.
class EventQueue {
 public:
  using Callback = util::InplaceFunction<void()>;

  // push/cancel/pop/next_time are defined inline below the class: they run
  // once or twice per simulated transmission, and the cross-TU call (plus
  // the callback moves it forces) is measurable in the interval hot path.

  /// Schedules `cb` at absolute time `at`. Returns a handle for cancel().
  EventId push(TimePoint at, Callback cb);

  /// Cancels a pending event. Safe on already-fired, already-cancelled, or
  /// stale (slot since reused) handles — no effect. Returns true iff the
  /// event was still pending. O(1) except when it trips heap compaction.
  bool cancel(EventId id);

  /// Moves a pending event to a new time, taking a FRESH sequence number —
  /// ordering-equivalent to cancel() followed by push() of the same
  /// callback at `at`, but with no tombstone, no slot churn, and no
  /// callback move: one O(log n) sift in place. The handle stays valid
  /// (the slot's generation does not change). Returns false on stale
  /// handles (event already fired or cancelled) — no effect then.
  bool reschedule(EventId id, TimePoint at);

  /// True iff the handle refers to an event that has not yet fired nor been
  /// cancelled. O(1).
  [[nodiscard]] bool is_pending(EventId id) const { return slot_matches(id); }

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }
  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] TimePoint next_time();

  /// Removes and returns the earliest live event. Precondition: !empty().
  struct Popped {
    TimePoint time;
    Callback callback;
  };
  Popped pop();

  /// Drops all pending events (slots are retired, storage is kept).
  void clear();

  /// Pre-sizes the slot pool and heap for `events` concurrently-pending
  /// events, so a run whose working set stays under the hint never
  /// reallocates (see reallocs()).
  void reserve(std::size_t events);

  /// Storage-growth events (slot-pool or heap vector reallocation) since
  /// construction. Exported as the `engine.events.reallocs` metric; a
  /// correctly-sized reserve() keeps it at zero for the whole run.
  [[nodiscard]] std::uint64_t reallocs() const { return reallocs_; }

  /// Heap records corresponding to cancelled events, not yet reclaimed by a
  /// skim or compaction. Exposed for tests of the compaction policy.
  [[nodiscard]] std::size_t tombstones() const { return tombstones_; }

  /// Bytes owned by the slot pool and binary heap (capacity, not size).
  /// Callback storage is inline in the slots, so this is the queue's whole
  /// footprint; the obs layer aggregates it into the `mem.sim` gauge.
  [[nodiscard]] std::size_t memory_bytes() const {
    return pool_.capacity() * sizeof(Slot) + heap_.capacity() * sizeof(HeapItem);
  }

 private:
  /// One pool slot. `gen` is odd while the slot holds a live event and even
  /// while free; it increments on every transition, so handles from earlier
  /// occupancies can never match. `next_free` threads the free list while
  /// the slot is unoccupied. `heap_pos` tracks the live event's current
  /// index in `heap_` (maintained by the sift operations) so reschedule()
  /// can find its record in O(1); it is meaningless while the slot is free.
  struct Slot {
    Callback callback;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNilSlot;
    std::uint32_t heap_pos = 0;
  };

  /// Lightweight heap record; callbacks stay in the pool so sift operations
  /// move 24 bytes, not whole closures.
  struct HeapItem {
    TimePoint time;
    std::uint64_t seq;  ///< global push order; ties on `time` break FIFO
    std::uint32_t slot;
    std::uint32_t gen;  ///< generation at push; mismatch = tombstone
  };
  struct Later {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  static constexpr std::uint32_t kNilSlot = static_cast<std::uint32_t>(-1);
  /// Compaction only pays off once the heap is past trivial size.
  static constexpr std::size_t kCompactMinHeap = 64;

  [[nodiscard]] bool slot_matches(EventId id) const {
    return id.valid() && id.slot_ < pool_.size() && pool_[id.slot_].gen == id.gen_;
  }
  std::uint32_t allocate_slot() {
    if (free_head_ != kNilSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = pool_[slot].next_free;
      ++pool_[slot].gen;  // even -> odd: occupied
      return slot;
    }
    return allocate_slot_slow();
  }
  std::uint32_t allocate_slot_slow();
  void release_slot(std::uint32_t slot) {
    Slot& s = pool_[slot];
    s.callback.reset();
    ++s.gen;  // odd -> even: free; stale handles can never match again
    s.next_free = free_head_;
    free_head_ = slot;
  }
  /// Pops tombstones off the heap front until the top is live (or empty).
  /// Inline fast path: next_time()+pop() both skim, so the common "top is
  /// already live" case must cost one compare, not a function call.
  void skim_tombstones() {
    if (heap_.empty() || pool_[heap_.front().slot].gen == heap_.front().gen) return;
    skim_tombstones_slow();
  }
  void skim_tombstones_slow();
  /// Removes every tombstone and re-heapifies; O(heap size).
  void compact();
  /// Records that `it` now lives at heap index `i`. Tombstones are skipped:
  /// their slot may since have been reused by a live event whose position
  /// must not be clobbered.
  void record_pos(const HeapItem& it, std::size_t i) {
    Slot& s = pool_[it.slot];
    if (s.gen == it.gen) s.heap_pos = static_cast<std::uint32_t>(i);
  }
  /// Manual sift operations (instead of std::push_heap/pop_heap) so every
  /// record move also updates its slot's heap_pos. The comparator orders by
  /// (time, seq) — a TOTAL order — so pop order never depends on heap
  /// layout, only on the records' keys.
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Replaces the top record with the last one and restores the heap.
  void remove_top() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
  /// Grows `v` by one element, counting the reallocation if capacity is
  /// exhausted.
  template <typename T>
  void push_counted(std::vector<T>& v, T&& value);

  std::vector<Slot> pool_;
  std::vector<HeapItem> heap_;        ///< binary min-heap under Later
  std::uint32_t free_head_ = kNilSlot;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;        ///< events neither fired nor cancelled
  std::size_t tombstones_ = 0;  ///< dead records still in heap_
  std::uint64_t reallocs_ = 0;
};

inline EventId EventQueue::push(TimePoint at, Callback cb) {
  const std::uint32_t slot = allocate_slot();
  pool_[slot].callback = std::move(cb);
  push_counted(heap_, HeapItem{at, next_seq_++, slot, pool_[slot].gen});
  sift_up(heap_.size() - 1);
  ++live_;
  return EventId{slot, pool_[slot].gen};
}

inline bool EventQueue::reschedule(EventId id, TimePoint at) {
  if (!slot_matches(id)) return false;
  const std::uint32_t pos = pool_[id.slot_].heap_pos;
  RTMAC_ASSERT(pos < heap_.size() && heap_[pos].slot == id.slot_ &&
                   heap_[pos].gen == id.gen_,
               "heap position out of sync");
  heap_[pos].time = at;
  heap_[pos].seq = next_seq_++;
  if (pos > 0 && Later{}(heap_[(pos - 1) / 2], heap_[pos])) {
    sift_up(pos);
  } else {
    sift_down(pos);
  }
  return true;
}

inline void EventQueue::sift_up(std::size_t i) {
  const HeapItem item = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!Later{}(heap_[parent], item)) break;
    heap_[i] = heap_[parent];
    record_pos(heap_[i], i);
    i = parent;
  }
  heap_[i] = item;
  record_pos(item, i);
}

inline void EventQueue::sift_down(std::size_t i) {
  const HeapItem item = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && Later{}(heap_[child], heap_[child + 1])) ++child;
    if (!Later{}(item, heap_[child])) break;
    heap_[i] = heap_[child];
    record_pos(heap_[i], i);
    i = child;
  }
  heap_[i] = item;
  record_pos(item, i);
}

inline bool EventQueue::cancel(EventId id) {
  if (!slot_matches(id)) return false;
  release_slot(id.slot_);
  --live_;
  // The heap record is now a tombstone (its generation no longer matches);
  // compact once dead records outnumber live ones, so cancel-heavy phases
  // cannot grow the heap without bound.
  ++tombstones_;
  if (tombstones_ > heap_.size() / 2 && heap_.size() >= kCompactMinHeap) compact();
  return true;
}

inline TimePoint EventQueue::next_time() {
  skim_tombstones();
  RTMAC_REQUIRE(!heap_.empty(), "next_time() on empty queue");
  return heap_.front().time;
}

inline EventQueue::Popped EventQueue::pop() {
  skim_tombstones();
  RTMAC_REQUIRE(!heap_.empty(), "pop() on empty queue");
  const HeapItem top = heap_.front();
  Popped out{top.time, std::move(pool_[top.slot].callback)};
  release_slot(top.slot);
  remove_top();
  --live_;
  return out;
}

template <typename T>
void EventQueue::push_counted(std::vector<T>& v, T&& value) {
  if (v.size() == v.capacity()) ++reallocs_;
  v.push_back(std::move(value));
}

}  // namespace rtmac::sim
