#pragma once

// Phantom capability modelling the sharded coordinator's window barrier.
//
// The Chandy–Misra style coordinator in sim/sharded_simulator alternates two
// phases: a serial *barrier* phase (on the coordinating thread: drain
// cut-crossing outboxes, deliver remote activity, open the next conflict-free
// window) and a parallel *window* phase (per-shard engines advance
// independently, possibly on pool threads). Cross-shard state — mailboxes,
// remote-sense injection, the resolution horizon — must only be touched in
// the barrier phase.
//
// There is no runtime lock enforcing that: the discipline is structural. The
// phantom capability below makes it compile-time checkable under clang
// -Wthread-safety: barrier-phase-only entry points carry
// RTMAC_REQUIRES(sim::shard_barrier) and the coordinator wraps its serial
// section in a util::PhantomLock. Calling a barrier-phase method from the
// parallel phase (or any unannotated context) is a compile error in the
// clang CI lanes. Zero runtime cost everywhere.

#include "util/thread_annotations.hpp"

namespace rtmac::sim {

inline constinit util::PhantomCapability shard_barrier{};

}  // namespace rtmac::sim
