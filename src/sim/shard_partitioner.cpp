#include "sim/shard_partitioner.hpp"

#include <algorithm>
#include <cstddef>

#include "util/check.hpp"

namespace rtmac::sim {
namespace {

/// Sorted, deduplicated, self-loop-free union of the conflict and sense
/// relations, symmetrized (connectivity is undirected even though sensing
/// is not).
AdjacencyLists build_union(const AdjacencyLists& conflict, const AdjacencyLists& sense) {
  const std::size_t n = conflict.size();
  AdjacencyLists u(n);
  auto add = [&](LinkId a, LinkId b) {
    if (a == b) return;
    u[a].push_back(b);
    u[b].push_back(a);
  };
  for (LinkId a = 0; a < n; ++a) {
    for (LinkId b : conflict[a]) add(a, b);
  }
  for (LinkId a = 0; a < sense.size(); ++a) {
    for (LinkId b : sense[a]) add(a, b);
  }
  for (auto& list : u) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return u;
}

/// Connected components of `u`, each as an ascending link list, ordered by
/// smallest member id. Iterative BFS with an explicit frontier; neighbor
/// lists are already sorted, so the visit order is fully determined.
std::vector<std::vector<LinkId>> connected_components(const AdjacencyLists& u) {
  const std::size_t n = u.size();
  std::vector<std::vector<LinkId>> comps;
  std::vector<bool> seen(n, false);
  std::vector<LinkId> frontier;
  for (LinkId root = 0; root < n; ++root) {
    if (seen[root]) continue;
    std::vector<LinkId> comp;
    frontier.assign(1, root);
    seen[root] = true;
    while (!frontier.empty()) {
      const LinkId v = frontier.back();
      frontier.pop_back();
      comp.push_back(v);
      for (LinkId w : u[v]) {
        if (!seen[w]) {
          seen[w] = true;
          frontier.push_back(w);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    comps.push_back(std::move(comp));
  }
  return comps;
}

/// True when every pair inside `cell` is adjacent in `u` (a clique). Clique
/// cells are never split: cutting a complete conflict graph would put every
/// transmission on the cut and serialize the shards anyway.
bool is_clique(const std::vector<LinkId>& cell, const AdjacencyLists& u) {
  if (cell.size() <= 1) return true;
  // Adjacency lists are sorted; membership by binary search keeps this
  // O(k * deg * log). Cells are small compared to the whole graph.
  for (LinkId v : cell) {
    const auto& nb = u[v];
    std::size_t inside = 0;
    for (LinkId w : cell) {
      if (w == v) continue;
      if (std::binary_search(nb.begin(), nb.end(), w)) ++inside;
    }
    if (inside + 1 < cell.size()) return false;
  }
  return true;
}

/// BFS order over `cell` (ascending-id tie-breaks, restarting from the
/// lowest unvisited id if the cell is internally disconnected), then takes
/// the first ceil(m/2) links as the first half. This is the "balanced
/// edge-cut" heuristic: BFS halves keep geometrically-near links together,
/// so the cut crosses the narrow waist of the component.
void bfs_bisect(const std::vector<LinkId>& cell, const AdjacencyLists& u,
                std::vector<LinkId>& first, std::vector<LinkId>& second) {
  std::vector<LinkId> order;
  order.reserve(cell.size());
  const LinkId max_id = cell.back();
  std::vector<std::uint8_t> in_cell_flags(static_cast<std::size_t>(max_id) + 1, 0);
  for (LinkId v : cell) in_cell_flags[v] = 1;
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(max_id) + 1, 0);
  std::vector<LinkId> queue;
  std::size_t head = 0;
  for (LinkId root : cell) {
    if (seen[root]) continue;
    seen[root] = 1;
    queue.push_back(root);
    while (head < queue.size()) {
      const LinkId v = queue[head++];
      order.push_back(v);
      for (LinkId w : u[v]) {
        if (w <= max_id && in_cell_flags[w] && !seen[w]) {
          seen[w] = 1;
          queue.push_back(w);
        }
      }
    }
  }
  RTMAC_ASSERT(order.size() == cell.size(), "BFS bisection lost links");
  const std::size_t half = (order.size() + 1) / 2;
  first.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(half));
  second.assign(order.begin() + static_cast<std::ptrdiff_t>(half), order.end());
  std::sort(first.begin(), first.end());
  std::sort(second.begin(), second.end());
}

}  // namespace

ShardPlan partition_topology(const AdjacencyLists& conflict, const AdjacencyLists& sense,
                             std::size_t target_shards) {
  RTMAC_REQUIRE(target_shards >= 1, "target_shards must be >= 1");
  RTMAC_REQUIRE(sense.size() == conflict.size() || sense.empty(),
                "sense adjacency size mismatch");
  const std::size_t n = conflict.size();

  const AdjacencyLists u = build_union(conflict, sense.empty() ? AdjacencyLists(n) : sense);
  std::vector<std::vector<LinkId>> cells = connected_components(u);

  // Bisect the largest non-clique cell while more parallelism is wanted.
  // Ties break toward the earliest cell, so the sequence of splits — and
  // therefore the whole plan — is deterministic.
  while (cells.size() < target_shards) {
    std::size_t pick = cells.size();
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (cells[c].size() < 2 || is_clique(cells[c], u)) continue;
      if (pick == cells.size() || cells[c].size() > cells[pick].size()) pick = c;
    }
    if (pick == cells.size()) break;  // nothing splittable left
    std::vector<LinkId> first;
    std::vector<LinkId> second;
    bfs_bisect(cells[pick], u, first, second);
    cells[pick] = std::move(first);
    cells.push_back(std::move(second));
  }

  // Canonical cell order: ascending smallest member id.
  std::sort(cells.begin(), cells.end(),
            [](const std::vector<LinkId>& a, const std::vector<LinkId>& b) {
              return a.front() < b.front();
            });

  ShardPlan plan;
  plan.cells = std::move(cells);
  plan.cell_of.assign(n, 0);
  for (std::uint32_t c = 0; c < plan.cells.size(); ++c) {
    for (LinkId v : plan.cells[c]) plan.cell_of[v] = c;
  }

  // Cut sets straight off the input relations.
  for (LinkId a = 0; a < n; ++a) {
    for (LinkId b : conflict[a]) {
      if (a < b && plan.cell_of[a] != plan.cell_of[b]) plan.cut_conflicts.push_back({a, b});
    }
  }
  std::sort(plan.cut_conflicts.begin(), plan.cut_conflicts.end(),
            [](const CutEdge& x, const CutEdge& y) {
              return x.a != y.a ? x.a < y.a : x.b < y.b;
            });
  plan.cut_conflicts.erase(std::unique(plan.cut_conflicts.begin(), plan.cut_conflicts.end()),
                           plan.cut_conflicts.end());
  for (LinkId listener = 0; listener < sense.size(); ++listener) {
    for (LinkId speaker : sense[listener]) {
      if (listener != speaker && plan.cell_of[listener] != plan.cell_of[speaker]) {
        plan.cut_senses.push_back({listener, speaker});
      }
    }
  }
  std::sort(plan.cut_senses.begin(), plan.cut_senses.end(),
            [](const CutSense& x, const CutSense& y) {
              return x.listener != y.listener ? x.listener < y.listener : x.speaker < y.speaker;
            });
  plan.cut_senses.erase(std::unique(plan.cut_senses.begin(), plan.cut_senses.end()),
                        plan.cut_senses.end());

  // Greedy balanced grouping: cells descending by link count (ties toward
  // the lower cell index) onto the least-loaded group (ties toward the
  // lower group index).
  const std::size_t num_groups = std::min(target_shards, plan.cells.size());
  plan.groups.assign(num_groups, {});
  if (num_groups > 0) {
    std::vector<std::uint32_t> by_size(plan.cells.size());
    for (std::uint32_t c = 0; c < by_size.size(); ++c) by_size[c] = c;
    std::sort(by_size.begin(), by_size.end(), [&](std::uint32_t x, std::uint32_t y) {
      const std::size_t sx = plan.cells[x].size();
      const std::size_t sy = plan.cells[y].size();
      return sx != sy ? sx > sy : x < y;
    });
    std::vector<std::size_t> load(num_groups, 0);
    for (std::uint32_t c : by_size) {
      std::size_t g = 0;
      for (std::size_t i = 1; i < num_groups; ++i) {
        if (load[i] < load[g]) g = i;
      }
      plan.groups[g].push_back(c);
      load[g] += plan.cells[c].size();
    }
    for (auto& group : plan.groups) std::sort(group.begin(), group.end());
  }
  return plan;
}

}  // namespace rtmac::sim
