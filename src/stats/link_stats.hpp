// Per-link delivery accounting across a whole experiment run.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace rtmac::stats {

/// Accumulates arrivals and on-time deliveries per link per interval.
class LinkStatsCollector {
 public:
  explicit LinkStatsCollector(std::size_t num_links);

  /// Records one completed interval.
  void record(std::span<const int> arrivals, std::span<const int> delivered);
  /// Braced-list convenience for tests; initializer_list does not convert
  /// to span implicitly.
  void record(std::initializer_list<int> arrivals, std::initializer_list<int> delivered) {
    record(std::span<const int>{arrivals.begin(), arrivals.size()},
           std::span<const int>{delivered.begin(), delivered.size()});
  }

  [[nodiscard]] std::size_t num_links() const { return total_delivered_.size(); }
  [[nodiscard]] IntervalIndex intervals() const { return intervals_; }

  [[nodiscard]] std::uint64_t total_arrivals(LinkId n) const { return total_arrivals_[n]; }
  [[nodiscard]] std::uint64_t total_delivered(LinkId n) const { return total_delivered_[n]; }

  /// Empirical timely-throughput: delivered packets per interval so far.
  [[nodiscard]] double timely_throughput(LinkId n) const;
  [[nodiscard]] std::vector<double> timely_throughputs() const;

  /// Empirical delivery ratio delivered/arrived (1.0 when nothing arrived).
  [[nodiscard]] double delivery_ratio(LinkId n) const;

  void reset();

 private:
  std::vector<std::uint64_t> total_arrivals_;
  std::vector<std::uint64_t> total_delivered_;
  IntervalIndex intervals_ = 0;
};

}  // namespace rtmac::stats
