// Interval-indexed time series and convergence measurement (Fig. 5 support).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/types.hpp"

namespace rtmac::stats {

/// A per-interval scalar series with running-average helpers.
class TimeSeries {
 public:
  void push(double value) { values_.push_back(value); }

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  /// Cumulative means: out[k] = mean(values[0..k]).
  [[nodiscard]] std::vector<double> cumulative_mean() const;

  /// Trailing moving average with the given window (shorter prefixes use
  /// what is available). Precondition: window >= 1.
  [[nodiscard]] std::vector<double> moving_average(std::size_t window) const;

 private:
  std::vector<double> values_;
};

/// First index k after which the cumulative mean stays within
/// `tolerance * target` of `target` forever (the paper's "within 1%
/// neighborhood of the timely-throughput requirement"). Empty when the
/// series never settles.
[[nodiscard]] std::optional<std::size_t> convergence_interval(const TimeSeries& series,
                                                              double target,
                                                              double tolerance);

}  // namespace rtmac::stats
