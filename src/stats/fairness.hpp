// Fairness metrics over per-link allocations.
//
// Used by the starvation analyses (Fig. 6) and the asymmetric-network
// experiments: Jain's index is 1 for a perfectly even allocation and 1/N
// when a single link receives everything.
#pragma once

#include <span>

namespace rtmac::stats {

/// Jain's fairness index: (sum x)^2 / (N * sum x^2). Returns 1.0 for an
/// empty or all-zero allocation (vacuously fair).
[[nodiscard]] double jain_index(std::span<const double> xs);

/// Min-max ratio: min(x)/max(x); 1.0 when empty or max is zero.
[[nodiscard]] double min_max_ratio(std::span<const double> xs);

}  // namespace rtmac::stats
