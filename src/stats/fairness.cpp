#include "stats/fairness.hpp"

#include <algorithm>

namespace rtmac::stats {

double jain_index(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;  // lint-ok: float-equality exact-zero guard (all-idle input)
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

double min_max_ratio(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  if (*mx == 0.0) return 1.0;  // lint-ok: float-equality exact-zero guard (division by max)
  return *mn / *mx;
}

}  // namespace rtmac::stats
