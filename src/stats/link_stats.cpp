#include "stats/link_stats.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rtmac::stats {

LinkStatsCollector::LinkStatsCollector(std::size_t num_links)
    : total_arrivals_(num_links, 0), total_delivered_(num_links, 0) {
  RTMAC_REQUIRE(num_links > 0);
}

void LinkStatsCollector::record(std::span<const int> arrivals,
                                std::span<const int> delivered) {
  RTMAC_REQUIRE(arrivals.size() == total_arrivals_.size());
  RTMAC_REQUIRE(delivered.size() == total_delivered_.size());
  for (std::size_t n = 0; n < arrivals.size(); ++n) {
    RTMAC_ASSERT(delivered[n] >= 0 && delivered[n] <= arrivals[n], "cannot deliver more than arrived (S_n(k) <= A_n(k))");
    total_arrivals_[n] += static_cast<std::uint64_t>(arrivals[n]);
    total_delivered_[n] += static_cast<std::uint64_t>(delivered[n]);
  }
  ++intervals_;
}

double LinkStatsCollector::timely_throughput(LinkId n) const {
  if (intervals_ == 0) return 0.0;
  return static_cast<double>(total_delivered_[n]) / static_cast<double>(intervals_);
}

std::vector<double> LinkStatsCollector::timely_throughputs() const {
  std::vector<double> out(total_delivered_.size());
  for (LinkId n = 0; n < out.size(); ++n) out[n] = timely_throughput(n);
  return out;
}

double LinkStatsCollector::delivery_ratio(LinkId n) const {
  if (total_arrivals_[n] == 0) return 1.0;
  return static_cast<double>(total_delivered_[n]) / static_cast<double>(total_arrivals_[n]);
}

void LinkStatsCollector::reset() {
  std::fill(total_arrivals_.begin(), total_arrivals_.end(), 0);
  std::fill(total_delivered_.begin(), total_delivered_.end(), 0);
  intervals_ = 0;
}

}  // namespace rtmac::stats
