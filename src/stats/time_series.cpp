#include "stats/time_series.hpp"

#include <cmath>

#include "util/check.hpp"

namespace rtmac::stats {

std::vector<double> TimeSeries::cumulative_mean() const {
  std::vector<double> out(values_.size());
  double running = 0.0;
  for (std::size_t k = 0; k < values_.size(); ++k) {
    running += values_[k];
    out[k] = running / static_cast<double>(k + 1);
  }
  return out;
}

std::vector<double> TimeSeries::moving_average(std::size_t window) const {
  RTMAC_REQUIRE(window >= 1);
  std::vector<double> out(values_.size());
  double running = 0.0;
  for (std::size_t k = 0; k < values_.size(); ++k) {
    running += values_[k];
    if (k >= window) running -= values_[k - window];
    out[k] = running / static_cast<double>(std::min(k + 1, window));
  }
  return out;
}

std::optional<std::size_t> convergence_interval(const TimeSeries& series, double target,
                                                double tolerance) {
  const auto means = series.cumulative_mean();
  const double band = std::abs(target) * tolerance;
  // Scan from the end: find the last index that violates the band.
  std::size_t first_settled = 0;
  for (std::size_t k = means.size(); k-- > 0;) {
    if (std::abs(means[k] - target) > band) {
      first_settled = k + 1;
      break;
    }
  }
  if (first_settled >= means.size()) return std::nullopt;
  return first_settled;
}

}  // namespace rtmac::stats
