#include "stats/deficiency.hpp"

#include "util/check.hpp"
#include "util/math.hpp"

namespace rtmac::stats {

std::vector<double> per_link_deficiency(const LinkStatsCollector& stats, const RateVector& q) {
  RTMAC_REQUIRE(q.size() == stats.num_links());
  std::vector<double> out(q.size());
  for (LinkId n = 0; n < q.size(); ++n) {
    out[n] = positive_part(q[n] - stats.timely_throughput(n));
  }
  return out;
}

double total_deficiency(const LinkStatsCollector& stats, const RateVector& q) {
  double total = 0.0;
  for (double d : per_link_deficiency(stats, q)) total += d;
  return total;
}

double group_deficiency(const LinkStatsCollector& stats, const RateVector& q,
                        const std::vector<LinkId>& group) {
  RTMAC_REQUIRE(q.size() == stats.num_links());
  double total = 0.0;
  for (LinkId n : group) {
    RTMAC_REQUIRE(n < q.size());
    total += positive_part(q[n] - stats.timely_throughput(n));
  }
  return total;
}

}  // namespace rtmac::stats
