// Timely-throughput deficiency (the paper's Definition 1).
//
// Deficiency of link n up to interval K:  (q_n - (1/K) sum_k S_n(k))^+.
// The total across links is the paper's headline metric: a requirement
// vector q is fulfilled iff the total deficiency converges to zero.
#pragma once

#include <vector>

#include "core/types.hpp"
#include "stats/link_stats.hpp"

namespace rtmac::stats {

/// Per-link deficiency given required timely-throughputs q.
[[nodiscard]] std::vector<double> per_link_deficiency(const LinkStatsCollector& stats,
                                                      const RateVector& q);

/// Total timely-throughput deficiency (Definition 1, summed over links).
[[nodiscard]] double total_deficiency(const LinkStatsCollector& stats, const RateVector& q);

/// Deficiency summed over an explicit subset of links (the paper's Figs. 7-8
/// report "group-wide" deficiency).
[[nodiscard]] double group_deficiency(const LinkStatsCollector& stats, const RateVector& q,
                                      const std::vector<LinkId>& group);

}  // namespace rtmac::stats
