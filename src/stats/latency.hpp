// Per-packet delivery latency analysis.
//
// The deadline model guarantees every delivered packet arrives within T of
// its release (packets are dropped at the interval boundary), but the
// DISTRIBUTION of delivery times inside the interval differs sharply across
// schemes: a centralized genie serves back-to-back from t = 0, while
// contention-based schemes pay backoff and collision delays. Latencies are
// reconstructed from a protocol trace — a delivered data packet's latency is
// its tx-end time minus the enclosing interval's start — so no extra
// plumbing is needed in the MAC layers.
#pragma once

#include <vector>

#include "sim/trace.hpp"
#include "util/time.hpp"

namespace rtmac::stats {

/// Simple exact-quantile sample collector (stores all samples; fine at
/// experiment scale).
class LatencySample {
 public:
  void add(Duration d) { samples_.push_back(d); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] Duration mean() const;
  [[nodiscard]] Duration max() const;
  /// q in [0, 1]; nearest-rank quantile. Precondition: count() > 0.
  [[nodiscard]] Duration quantile(double q) const;

 private:
  mutable std::vector<Duration> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Extracts the delivery latency (time since the enclosing interval's
/// start) of every delivered DATA packet in the trace. Empty-packet and
/// failed transmissions are ignored. `interval_length` must match the run.
[[nodiscard]] LatencySample delivery_latencies(const sim::Tracer& tracer,
                                               Duration interval_length);

}  // namespace rtmac::stats
