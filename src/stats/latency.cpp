#include "stats/latency.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rtmac::stats {

void LatencySample::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

Duration LatencySample::mean() const {
  if (samples_.empty()) return Duration{};
  // Sum in double nanoseconds: experiment-scale sums stay well inside the
  // 53-bit exact-integer range.
  double total = 0.0;
  for (Duration d : samples_) total += static_cast<double>(d.ns());
  return Duration::nanoseconds(
      static_cast<std::int64_t>(std::llround(total / static_cast<double>(samples_.size()))));
}

Duration LatencySample::max() const {
  Duration m{};
  for (Duration d : samples_) m = std::max(m, d);
  return m;
}

Duration LatencySample::quantile(double q) const {
  RTMAC_REQUIRE(!samples_.empty());
  RTMAC_REQUIRE(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(idx, samples_.size() - 1)];
}

LatencySample delivery_latencies(const sim::Tracer& tracer, Duration interval_length) {
  RTMAC_REQUIRE(interval_length > Duration{});
  LatencySample sample;
  for (const auto& e : tracer.events()) {
    if (e.kind != sim::TraceKind::kTxEnd) continue;
    if (e.a != 0 /* not delivered */ || e.b != 0 /* empty packet */) continue;
    const std::int64_t t = e.time.ns();
    std::int64_t offset = t % interval_length.ns();
    // A delivery exactly at the boundary belongs to the ENDING interval:
    // report the full interval length, not zero.
    if (offset == 0) offset = interval_length.ns();
    sample.add(Duration::nanoseconds(offset));
  }
  return sample;
}

}  // namespace rtmac::stats
