#include "traffic/arrival_process.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"
#include "util/math.hpp"

namespace rtmac::traffic {

// ---- BernoulliArrivals ------------------------------------------------------

BernoulliArrivals::BernoulliArrivals(double lambda) : lambda_{lambda} {
  RTMAC_REQUIRE(lambda >= 0.0 && lambda <= 1.0);
}

int BernoulliArrivals::sample(Rng& rng) const { return rng.bernoulli(lambda_) ? 1 : 0; }

std::vector<double> BernoulliArrivals::pmf() const { return {1.0 - lambda_, lambda_}; }

std::unique_ptr<ArrivalProcess> BernoulliArrivals::clone() const {
  return std::make_unique<BernoulliArrivals>(*this);
}

// ---- UniformBurstyArrivals --------------------------------------------------

UniformBurstyArrivals::UniformBurstyArrivals(double alpha, int lo, int hi)
    : alpha_{alpha}, lo_{lo}, hi_{hi} {
  RTMAC_REQUIRE(alpha >= 0.0 && alpha <= 1.0);
  RTMAC_REQUIRE(0 <= lo && lo <= hi);
}

int UniformBurstyArrivals::sample(Rng& rng) const {
  if (!rng.bernoulli(alpha_)) return 0;
  return static_cast<int>(rng.uniform_int(lo_, hi_));
}

double UniformBurstyArrivals::mean() const {
  return alpha_ * 0.5 * static_cast<double>(lo_ + hi_);
}

std::vector<double> UniformBurstyArrivals::pmf() const {
  std::vector<double> pmf(static_cast<std::size_t>(hi_) + 1, 0.0);
  const double per_value = alpha_ / static_cast<double>(hi_ - lo_ + 1);
  for (int v = lo_; v <= hi_; ++v) pmf[static_cast<std::size_t>(v)] += per_value;
  pmf[0] += 1.0 - alpha_;
  return pmf;
}

std::unique_ptr<ArrivalProcess> UniformBurstyArrivals::clone() const {
  return std::make_unique<UniformBurstyArrivals>(*this);
}

// ---- ConstantArrivals -------------------------------------------------------

ConstantArrivals::ConstantArrivals(int count) : count_{count} { RTMAC_REQUIRE(count >= 0); }

int ConstantArrivals::sample(Rng&) const { return count_; }

std::vector<double> ConstantArrivals::pmf() const {
  std::vector<double> pmf(static_cast<std::size_t>(count_) + 1, 0.0);
  pmf.back() = 1.0;
  return pmf;
}

std::unique_ptr<ArrivalProcess> ConstantArrivals::clone() const {
  return std::make_unique<ConstantArrivals>(*this);
}

// ---- GeneralDiscreteArrivals ------------------------------------------------

GeneralDiscreteArrivals::GeneralDiscreteArrivals(std::vector<double> pmf)
    : pmf_{std::move(pmf)} {
  RTMAC_REQUIRE(!pmf_.empty());
  for (double p : pmf_) {
    RTMAC_REQUIRE(p >= 0.0);
    (void)p;
  }
  const double total = normalize(pmf_);
  RTMAC_REQUIRE(total > 0.0, "pmf must have positive mass");
  (void)total;
  cdf_.resize(pmf_.size());
  std::partial_sum(pmf_.begin(), pmf_.end(), cdf_.begin());
  cdf_.back() = 1.0;  // guard against rounding drift at the top
}

int GeneralDiscreteArrivals::sample(Rng& rng) const {
  // upper_bound (first cdf entry strictly greater than u) makes value v win
  // exactly the interval [cdf[v-1], cdf[v]) of mass pmf[v], including v=0.
  const double u = rng.next_double();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int>(std::min<std::ptrdiff_t>(std::distance(cdf_.begin(), it),
                                                   static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

double GeneralDiscreteArrivals::mean() const {
  double m = 0.0;
  for (std::size_t v = 0; v < pmf_.size(); ++v) m += static_cast<double>(v) * pmf_[v];
  return m;
}

std::unique_ptr<ArrivalProcess> GeneralDiscreteArrivals::clone() const {
  return std::make_unique<GeneralDiscreteArrivals>(*this);
}

}  // namespace rtmac::traffic
