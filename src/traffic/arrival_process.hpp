// Per-interval packet arrival processes (the paper's A_n(k)).
//
// Arrivals happen at interval boundaries: A_n(k) packets appear in link n's
// buffer at time kT, each with absolute deadline (k+1)T. The paper assumes
// {A(k)} i.i.d. across intervals with bounded support (A_max < infinity);
// every process here reports its full pmf so the exact analysis tools can
// consume the same specification as the simulator.
//
// The two evaluation workloads of Section VI are provided directly:
//   * UniformBurstyArrivals — "video" traffic: U{1..6} w.p. alpha, else 0,
//     so lambda = 3.5 * alpha;
//   * BernoulliArrivals     — "control" traffic: 1 packet w.p. lambda.
#pragma once

#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace rtmac::traffic {

/// Interface for an i.i.d., bounded, nonnegative-integer arrival process.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Draws the number of packets arriving this interval.
  [[nodiscard]] virtual int sample(Rng& rng) const = 0;

  /// Mean arrivals per interval (the paper's lambda_n).
  [[nodiscard]] virtual double mean() const = 0;

  /// Largest possible arrival count (the paper's A_max). Finite by model.
  [[nodiscard]] virtual int max_arrivals() const = 0;

  /// Probability mass function over {0, 1, ..., max_arrivals()}.
  [[nodiscard]] virtual std::vector<double> pmf() const = 0;

  /// Deep copy (value semantics across a pointer boundary).
  [[nodiscard]] virtual std::unique_ptr<ArrivalProcess> clone() const = 0;
};

/// Exactly one packet w.p. `lambda`, zero otherwise (Section VI-B control
/// traffic). Precondition: lambda in [0, 1].
class BernoulliArrivals final : public ArrivalProcess {
 public:
  explicit BernoulliArrivals(double lambda);
  [[nodiscard]] int sample(Rng& rng) const override;
  [[nodiscard]] double mean() const override { return lambda_; }
  [[nodiscard]] int max_arrivals() const override { return 1; }
  [[nodiscard]] std::vector<double> pmf() const override;
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override;

 private:
  double lambda_;
};

/// With probability `alpha`, Uniform{lo..hi} packets; otherwise zero
/// (Section VI-A bursty video traffic; paper uses lo=1, hi=6 so the mean is
/// 3.5*alpha). Preconditions: alpha in [0,1], 0 <= lo <= hi.
class UniformBurstyArrivals final : public ArrivalProcess {
 public:
  UniformBurstyArrivals(double alpha, int lo = 1, int hi = 6);
  [[nodiscard]] int sample(Rng& rng) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] int max_arrivals() const override { return hi_; }
  [[nodiscard]] std::vector<double> pmf() const override;
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override;
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] int lo() const { return lo_; }
  [[nodiscard]] int hi() const { return hi_; }

 private:
  double alpha_;
  int lo_;
  int hi_;
};

/// Deterministic: exactly `count` packets every interval. The classic
/// "one packet per interval" model of Hou-Borkar-Kumar is ConstantArrivals(1).
class ConstantArrivals final : public ArrivalProcess {
 public:
  explicit ConstantArrivals(int count);
  [[nodiscard]] int sample(Rng& rng) const override;
  [[nodiscard]] double mean() const override { return count_; }
  [[nodiscard]] int max_arrivals() const override { return count_; }
  [[nodiscard]] std::vector<double> pmf() const override;
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override;

 private:
  int count_;
};

/// Arbitrary finite-support distribution given as a pmf over {0..K}.
/// The pmf is normalized on construction. Precondition: nonnegative entries
/// with a positive sum.
class GeneralDiscreteArrivals final : public ArrivalProcess {
 public:
  explicit GeneralDiscreteArrivals(std::vector<double> pmf);
  [[nodiscard]] int sample(Rng& rng) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] int max_arrivals() const override { return static_cast<int>(pmf_.size()) - 1; }
  [[nodiscard]] std::vector<double> pmf() const override { return pmf_; }
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override;
  /// The sampling cdf exactly as sample() consults it. The batched arrival
  /// kernel copies these bits verbatim so its inverse-cdf lookup agrees
  /// with the scalar path down to the last ulp.
  [[nodiscard]] const std::vector<double>& cdf() const { return cdf_; }

 private:
  std::vector<double> pmf_;
  std::vector<double> cdf_;
};

}  // namespace rtmac::traffic
