#include "traffic/joint_arrivals.hpp"

#include "util/check.hpp"

namespace rtmac::traffic {

IndependentArrivals::IndependentArrivals(
    std::vector<std::unique_ptr<ArrivalProcess>> marginals)
    : marginals_{std::move(marginals)} {
  RTMAC_REQUIRE(!marginals_.empty());
  for (const auto& m : marginals_) {
    RTMAC_REQUIRE(m != nullptr);
    (void)m;
  }
}

void IndependentArrivals::sample_into(Rng& rng, std::span<int> out) const {
  RTMAC_REQUIRE(out.size() == marginals_.size());
  for (std::size_t n = 0; n < marginals_.size(); ++n) out[n] = marginals_[n]->sample(rng);
}

RateVector IndependentArrivals::mean() const {
  RateVector out(marginals_.size());
  for (std::size_t n = 0; n < marginals_.size(); ++n) out[n] = marginals_[n]->mean();
  return out;
}

std::unique_ptr<JointArrivalProcess> IndependentArrivals::clone() const {
  std::vector<std::unique_ptr<ArrivalProcess>> copies;
  copies.reserve(marginals_.size());
  for (const auto& m : marginals_) copies.push_back(m->clone());
  return std::make_unique<IndependentArrivals>(std::move(copies));
}

CommonShockBurstyArrivals::CommonShockBurstyArrivals(std::size_t num_links, double alpha,
                                                     double shock, int lo, int hi)
    : num_links_{num_links}, alpha_{alpha}, shock_{shock}, lo_{lo}, hi_{hi} {
  RTMAC_REQUIRE(num_links >= 1);
  RTMAC_REQUIRE(alpha >= 0.0 && alpha <= 1.0);
  RTMAC_REQUIRE(shock >= 0.0 && shock <= alpha);
  RTMAC_REQUIRE(0 <= lo && lo <= hi);
  residual_alpha_ = shock_ >= 1.0 ? 0.0 : (alpha_ - shock_) / (1.0 - shock_);
}

void CommonShockBurstyArrivals::sample_into(Rng& rng, std::span<int> out) const {
  RTMAC_REQUIRE(out.size() == num_links_);
  const bool shock = rng.bernoulli(shock_);
  for (std::size_t n = 0; n < num_links_; ++n) {
    const bool burst = shock || rng.bernoulli(residual_alpha_);
    out[n] = burst ? static_cast<int>(rng.uniform_int(lo_, hi_)) : 0;
  }
}

RateVector CommonShockBurstyArrivals::mean() const {
  // P(burst) = shock + (1 - shock) * residual = alpha by construction.
  return RateVector(num_links_, alpha_ * 0.5 * static_cast<double>(lo_ + hi_));
}

std::unique_ptr<JointArrivalProcess> CommonShockBurstyArrivals::clone() const {
  return std::make_unique<CommonShockBurstyArrivals>(*this);
}

}  // namespace rtmac::traffic
