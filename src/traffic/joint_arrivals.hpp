// Joint (cross-link correlated) arrival processes.
//
// The paper's traffic model (Section II-B) requires {A(k)} i.i.d. across
// intervals but explicitly allows the per-link counts within one interval
// to be correlated. This module supplies the joint view: the Network can
// sample the whole arrival VECTOR at once instead of per-link independent
// draws, enabling e.g. synchronized video bursts across cameras.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "traffic/arrival_process.hpp"
#include "util/rng.hpp"

namespace rtmac::traffic {

/// One draw of the whole arrival vector A(k).
class JointArrivalProcess {
 public:
  virtual ~JointArrivalProcess() = default;

  /// Samples A(k) for all links into `out` (size num_links()). The primary
  /// entry point: the Network's interval loop calls it with a pre-sized
  /// buffer, so implementations must not allocate.
  virtual void sample_into(Rng& rng, std::span<int> out) const = 0;

  /// Allocating convenience wrapper (tests, analysis tooling).
  [[nodiscard]] std::vector<int> sample(Rng& rng) const {
    std::vector<int> out(num_links());
    sample_into(rng, out);
    return out;
  }

  /// Per-link means lambda_n.
  [[nodiscard]] virtual RateVector mean() const = 0;

  [[nodiscard]] virtual std::size_t num_links() const = 0;

  [[nodiscard]] virtual std::unique_ptr<JointArrivalProcess> clone() const = 0;
};

/// Product law: each link draws independently from its own marginal — the
/// behaviour the Network uses by default, exposed here so joint and
/// independent configurations flow through one code path.
class IndependentArrivals final : public JointArrivalProcess {
 public:
  explicit IndependentArrivals(std::vector<std::unique_ptr<ArrivalProcess>> marginals);
  void sample_into(Rng& rng, std::span<int> out) const override;
  [[nodiscard]] RateVector mean() const override;
  [[nodiscard]] std::size_t num_links() const override { return marginals_.size(); }
  [[nodiscard]] std::unique_ptr<JointArrivalProcess> clone() const override;

 private:
  std::vector<std::unique_ptr<ArrivalProcess>> marginals_;
};

/// Correlated video bursts with UNCHANGED per-link marginals:
/// with probability `shock` every link bursts simultaneously (each drawing
/// Uniform{lo..hi} packets); otherwise each link bursts independently with
/// the residual probability (alpha - shock) / (1 - shock). shock = 0 is the
/// independent UniformBurstyArrivals model; shock = alpha synchronizes all
/// bursts. Preconditions: 0 <= shock <= alpha <= 1.
class CommonShockBurstyArrivals final : public JointArrivalProcess {
 public:
  CommonShockBurstyArrivals(std::size_t num_links, double alpha, double shock, int lo = 1,
                            int hi = 6);
  void sample_into(Rng& rng, std::span<int> out) const override;
  [[nodiscard]] RateVector mean() const override;
  [[nodiscard]] std::size_t num_links() const override { return num_links_; }
  [[nodiscard]] std::unique_ptr<JointArrivalProcess> clone() const override;

  [[nodiscard]] double residual_alpha() const { return residual_alpha_; }

 private:
  std::size_t num_links_;
  double alpha_;
  double shock_;
  double residual_alpha_;
  int lo_;
  int hi_;
};

}  // namespace rtmac::traffic
