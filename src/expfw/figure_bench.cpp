#include "expfw/figure_bench.hpp"

#include "expfw/report.hpp"
#include "expfw/scenarios.hpp"

namespace rtmac::expfw {

std::vector<SweepResult> run_figure_sweep(std::ostream& out, const FigureSpec& spec,
                                          const ConfigAt& config_at,
                                          const std::vector<double>& grid,
                                          const BenchArgs& args) {
  print_figure_banner(out, spec.figure_id, spec.description, spec.expected_shape);

  const auto results = run_sweeps(spec.schemes, config_at, grid, args.intervals, spec.metric,
                                  spec.metric_names, args.sweep);

  print_sweep_table(out, spec.x_label, results);
  write_sweep_csv(bench_output_dir() + "/" + spec.csv_basename, spec.csv_column, results);
  out << "\n(" << args.intervals << " intervals/point; paper used " << spec.paper_intervals
      << ")\n";
  return results;
}

std::vector<SchemeSpec> paper_scheme_table() {
  return {{"LDF", ldf_factory()}, {"DB-DP", dbdp_factory()}, {"FCSMA", fcsma_factory()}};
}

}  // namespace rtmac::expfw
