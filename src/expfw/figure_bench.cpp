#include "expfw/figure_bench.hpp"

#include "expfw/report.hpp"
#include "expfw/scenarios.hpp"

namespace rtmac::expfw {

std::vector<SweepResult> run_figure_sweep(std::ostream& out, const FigureSpec& spec,
                                          const ConfigAt& config_at,
                                          const std::vector<double>& grid,
                                          const BenchArgs& args) {
  print_figure_banner(out, spec.figure_id, spec.description, spec.expected_shape);

  // Metrics-free sweeps write the CSV incrementally (rows land on disk as
  // grid points complete — satellite observability for long sweeps). With
  // --metrics-out the buffered writer runs instead: its per-task profile
  // comments are only known at the end. Either path emits identical bytes
  // for the same results.
  const std::string csv_path = bench_output_dir() + "/" + spec.csv_basename;
  SweepOptions sweep = args.sweep;
  const bool stream_csv = sweep.metrics_dir.empty();
  if (stream_csv) {
    sweep.csv_path = csv_path;
    sweep.csv_x = spec.csv_column;
  }

  const auto results = run_sweeps(spec.schemes, config_at, grid, args.intervals, spec.metric,
                                  spec.metric_names, sweep);

  print_sweep_table(out, spec.x_label, results);
  if (!stream_csv) write_sweep_csv(csv_path, spec.csv_column, results);
  out << "\n(" << args.intervals << " intervals/point; paper used " << spec.paper_intervals
      << ")\n";
  return results;
}

std::vector<SchemeSpec> paper_scheme_table() {
  return {{"LDF", ldf_factory()}, {"DB-DP", dbdp_factory()}, {"FCSMA", fcsma_factory()}};
}

}  // namespace rtmac::expfw
