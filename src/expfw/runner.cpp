#include "expfw/runner.hpp"

#include <cmath>
#include <future>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "stats/deficiency.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace rtmac::expfw {

namespace {

std::vector<double> replication_column(const std::vector<std::vector<double>>& point_samples,
                                       std::size_t m) {
  std::vector<double> xs;
  xs.reserve(point_samples.size());
  for (const auto& sample : point_samples) xs.push_back(sample[m]);
  return xs;
}

}  // namespace

double SweepResult::mean(std::size_t i, std::size_t m) const {
  return rtmac::mean(replication_column(samples[i], m));
}

double SweepResult::stddev(std::size_t i, std::size_t m) const {
  return std::sqrt(sample_variance(replication_column(samples[i], m)));
}

double SweepResult::ci95(std::size_t i, std::size_t m) const {
  if (reps < 2) return 0.0;
  return 1.96 * stddev(i, m) / std::sqrt(static_cast<double>(reps));
}

std::uint64_t sweep_seed(std::uint64_t base_seed, std::string_view scheme,
                         std::size_t x_index, std::size_t replication) {
  // FNV-1a folds the scheme name into the stream so every scheme sees
  // independent randomness even at the same (point, replication).
  std::uint64_t name_hash = 1469598103934665603ULL;
  for (const char c : scheme) {
    name_hash ^= static_cast<unsigned char>(c);
    name_hash *= 1099511628211ULL;
  }
  std::uint64_t seed = mix64(base_seed, name_hash);
  seed = mix64(seed, static_cast<std::uint64_t>(x_index));
  seed = mix64(seed, static_cast<std::uint64_t>(replication));
  return seed;
}

MetricFn total_deficiency_metric() {
  return [](const net::Network& network) {
    return std::vector<double>{stats::total_deficiency(network.stats(),
                                                       network.config().requirements.q())};
  };
}

MetricFn group_deficiency_metric(std::vector<std::vector<LinkId>> groups) {
  return [groups = std::move(groups)](const net::Network& network) {
    std::vector<double> out;
    out.reserve(groups.size());
    for (const auto& group : groups) {
      out.push_back(stats::group_deficiency(network.stats(),
                                            network.config().requirements.q(), group));
    }
    return out;
  };
}

std::vector<SweepResult> run_sweeps(const std::vector<SchemeSpec>& schemes,
                                    const ConfigAt& config_at, const std::vector<double>& grid,
                                    IntervalIndex intervals, const MetricFn& metric,
                                    std::vector<std::string> metric_names,
                                    const SweepOptions& opts) {
  if (schemes.empty()) throw std::invalid_argument{"run_sweeps: no schemes"};
  if (grid.empty()) throw std::invalid_argument{"run_sweeps: empty grid"};
  if (opts.reps == 0) throw std::invalid_argument{"run_sweeps: reps must be >= 1"};
  if (metric_names.empty()) throw std::invalid_argument{"run_sweeps: no metric names"};

  std::vector<SweepResult> results;
  results.reserve(schemes.size());
  for (const auto& scheme : schemes) {
    SweepResult r;
    r.scheme = scheme.name;
    r.metric_names = metric_names;
    r.xs = grid;
    r.reps = opts.reps;
    r.samples.assign(grid.size(),
                     std::vector<std::vector<double>>(opts.reps, std::vector<double>{}));
    results.push_back(std::move(r));
  }

  const std::size_t tasks = schemes.size() * grid.size() * opts.reps;
  const std::size_t requested = opts.jobs == 0 ? ThreadPool::hardware_threads() : opts.jobs;
  ThreadPool pool{std::min(requested, tasks)};
  // Config builders are user lambdas with no thread-safety contract beyond
  // order-independence; serialize them (building is trivial next to a run).
  std::mutex config_mutex;

  std::vector<std::future<void>> futures;
  futures.reserve(tasks);
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      for (std::size_t rep = 0; rep < opts.reps; ++rep) {
        futures.push_back(pool.submit([&, s, i, rep] {
          net::NetworkConfig config;
          {
            const std::lock_guard lock{config_mutex};
            config = config_at(grid[i]);
          }
          config.seed = sweep_seed(config.seed, schemes[s].name, i, rep);
          net::Network network{std::move(config), schemes[s].factory};
          network.run(intervals);
          std::vector<double> sample = metric(network);
          if (sample.size() != metric_names.size()) {
            throw std::runtime_error{"run_sweeps: metric returned " +
                                     std::to_string(sample.size()) + " values, expected " +
                                     std::to_string(metric_names.size())};
          }
          results[s].samples[i][rep] = std::move(sample);
        }));
      }
    }
  }
  pool.wait_all(futures);
  for (auto& f : futures) f.get();  // surface the first task failure
  return results;
}

SweepResult run_sweep(const std::string& scheme_name, const mac::SchemeFactory& scheme,
                      const ConfigAt& config_at, const std::vector<double>& grid,
                      IntervalIndex intervals, const MetricFn& metric,
                      std::vector<std::string> metric_names, const SweepOptions& opts) {
  auto results = run_sweeps({{scheme_name, scheme}}, config_at, grid, intervals, metric,
                            std::move(metric_names), opts);
  return std::move(results.front());
}

std::vector<double> linspace(double lo, double hi, std::size_t points) {
  if (points < 2) throw std::invalid_argument{"linspace: need at least 2 points"};
  std::vector<double> xs(points);
  for (std::size_t i = 0; i < points; ++i) {
    xs[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
  }
  return xs;
}

}  // namespace rtmac::expfw
