#include "expfw/runner.hpp"

#include <cassert>

#include "stats/deficiency.hpp"

namespace rtmac::expfw {

MetricFn total_deficiency_metric() {
  return [](const net::Network& network) {
    return std::vector<double>{stats::total_deficiency(network.stats(),
                                                       network.config().requirements.q())};
  };
}

MetricFn group_deficiency_metric(std::vector<std::vector<LinkId>> groups) {
  return [groups = std::move(groups)](const net::Network& network) {
    std::vector<double> out;
    out.reserve(groups.size());
    for (const auto& group : groups) {
      out.push_back(stats::group_deficiency(network.stats(),
                                            network.config().requirements.q(), group));
    }
    return out;
  };
}

SweepResult run_sweep(const std::string& scheme_name, const mac::SchemeFactory& scheme,
                      const ConfigAt& config_at, const std::vector<double>& grid,
                      IntervalIndex intervals, const MetricFn& metric,
                      std::vector<std::string> metric_names) {
  SweepResult result;
  result.scheme = scheme_name;
  result.metric_names = std::move(metric_names);
  result.xs = grid;
  result.values.reserve(grid.size());
  for (double x : grid) {
    net::Network network{config_at(x), scheme};
    network.run(intervals);
    std::vector<double> v = metric(network);
    assert(v.size() == result.metric_names.size());
    result.values.push_back(std::move(v));
  }
  return result;
}

std::vector<double> linspace(double lo, double hi, std::size_t points) {
  assert(points >= 2);
  std::vector<double> xs(points);
  for (std::size_t i = 0; i < points; ++i) {
    xs[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
  }
  return xs;
}

}  // namespace rtmac::expfw
