#include "expfw/runner.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "expfw/report.hpp"
#include "obs/collect.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/stream.hpp"
#include "obs/trace_export.hpp"
#include "sim/trace.hpp"
#include "stats/deficiency.hpp"
#include "util/math.hpp"
#include "util/resource.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace rtmac::expfw {

namespace {

std::vector<double> replication_column(const std::vector<std::vector<double>>& point_samples,
                                       std::size_t m) {
  std::vector<double> xs;
  xs.reserve(point_samples.size());
  for (const auto& sample : point_samples) xs.push_back(sample[m]);
  return xs;
}

/// Serializes calls to the user's config builder. Config builders are user
/// lambdas with no thread-safety contract beyond order-independence, so
/// every pool task builds under one lock (building is trivial next to a
/// run). Holding the callable as a GUARDED_BY member makes the discipline
/// compile-time checkable, which a bare local mutex never was.
class SerializedConfigAt {
 public:
  explicit SerializedConfigAt(const ConfigAt& fn) : fn_{fn} {}

  net::NetworkConfig operator()(double x) RTMAC_EXCLUDES(mutex_) {
    const util::LockGuard lock{mutex_};
    return fn_(x);
  }

 private:
  util::Mutex mutex_;
  const ConfigAt& fn_ RTMAC_GUARDED_BY(mutex_);
};

/// Completion bookkeeping behind one mutex: per-point done counters (CSV row
/// flushing + the heartbeat's grid-point count) and the wall-clock progress
/// aggregates. The mutex also orders each task's sample writes (sequenced
/// before its task_finished call) before any CSV row that reads them.
class ProgressBoard {
 public:
  ProgressBoard(const std::vector<SweepResult>& results, std::size_t grid_size,
                std::size_t tasks_per_point, std::size_t tasks, IntervalIndex intervals,
                bool progress, CsvWriter* csv, std::ofstream* csv_file)
      : results_{results},
        tasks_per_point_{tasks_per_point},
        tasks_{tasks},
        grid_size_{grid_size},
        intervals_{intervals},
        progress_{progress},
        csv_{csv},
        csv_file_{csv_file},
        sweep_start_{std::chrono::steady_clock::now()},
        point_done_(grid_size, 0) {}

  /// Called by each pool task after it stored its sample (and profile).
  void task_finished(std::size_t point, std::uint64_t events) RTMAC_EXCLUDES(mutex_) {
    const util::LockGuard lock{mutex_};
    ++point_done_[point];
    if (point_done_[point] == tasks_per_point_) ++points_done_;
    if (csv_ != nullptr) {
      // Incremental CSV: flush grid-point rows in ascending grid order as
      // soon as every task for the next point has finished.
      while (next_flush_ < grid_size_ && point_done_[next_flush_] == tasks_per_point_) {
        write_sweep_csv_row(*csv_, results_, next_flush_);
        csv_file_->flush();
        ++next_flush_;
      }
    }
    if (progress_) {
      ++tasks_done_;
      events_done_ += events;
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start_)
              .count();
      const double inv = elapsed > 0.0 ? 1.0 / elapsed : 0.0;
      const double eta = static_cast<double>(tasks_ - tasks_done_) * elapsed /
                         static_cast<double>(tasks_done_);
      // Heartbeat only: wall-clock rates on stderr, overwritten in place;
      // never written to any deterministic output (that is also why peak
      // RSS lives here and NOT in the metrics registry — it is a property
      // of the whole process, not of any one run).
      std::fprintf(stderr,
                   "\rsweep: %zu/%zu tasks, %zu/%zu points, %.3g events/s, "
                   "%.3g intervals/s, rss %ld KB, eta %.1fs   ",
                   tasks_done_, tasks_, points_done_, grid_size_,
                   static_cast<double>(events_done_) * inv,
                   static_cast<double>(tasks_done_) * static_cast<double>(intervals_) * inv,
                   util::peak_rss_kb(), eta);
      std::fflush(stderr);
    }
  }

 private:
  const std::vector<SweepResult>& results_;
  const std::size_t tasks_per_point_;
  const std::size_t tasks_;
  const std::size_t grid_size_;
  const IntervalIndex intervals_;
  const bool progress_;
  CsvWriter* const csv_ RTMAC_PT_GUARDED_BY(mutex_);        ///< null = no CSV
  std::ofstream* const csv_file_ RTMAC_PT_GUARDED_BY(mutex_);
  const std::chrono::steady_clock::time_point sweep_start_;

  util::Mutex mutex_;
  std::vector<std::size_t> point_done_ RTMAC_GUARDED_BY(mutex_);
  std::size_t next_flush_ RTMAC_GUARDED_BY(mutex_) = 0;
  std::size_t points_done_ RTMAC_GUARDED_BY(mutex_) = 0;
  std::size_t tasks_done_ RTMAC_GUARDED_BY(mutex_) = 0;
  std::uint64_t events_done_ RTMAC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

double SweepResult::mean(std::size_t i, std::size_t m) const {
  return rtmac::mean(replication_column(samples[i], m));
}

double SweepResult::stddev(std::size_t i, std::size_t m) const {
  return std::sqrt(sample_variance(replication_column(samples[i], m)));
}

double SweepResult::ci95(std::size_t i, std::size_t m) const {
  if (reps < 2) return 0.0;
  return 1.96 * stddev(i, m) / std::sqrt(static_cast<double>(reps));
}

std::uint64_t sweep_seed(std::uint64_t base_seed, std::string_view scheme,
                         std::size_t x_index, std::size_t replication) {
  // FNV-1a folds the scheme name into the stream so every scheme sees
  // independent randomness even at the same (point, replication).
  std::uint64_t name_hash = 1469598103934665603ULL;
  for (const char c : scheme) {
    name_hash ^= static_cast<unsigned char>(c);
    name_hash *= 1099511628211ULL;
  }
  std::uint64_t seed = mix64(base_seed, name_hash);
  seed = mix64(seed, static_cast<std::uint64_t>(x_index));
  seed = mix64(seed, static_cast<std::uint64_t>(replication));
  return seed;
}

MetricFn total_deficiency_metric() {
  return [](const net::Network& network) {
    return std::vector<double>{stats::total_deficiency(network.stats(),
                                                       network.config().requirements.q())};
  };
}

MetricFn group_deficiency_metric(std::vector<std::vector<LinkId>> groups) {
  return [groups = std::move(groups)](const net::Network& network) {
    std::vector<double> out;
    out.reserve(groups.size());
    for (const auto& group : groups) {
      out.push_back(stats::group_deficiency(network.stats(),
                                            network.config().requirements.q(), group));
    }
    return out;
  };
}

std::vector<SweepResult> run_sweeps(const std::vector<SchemeSpec>& schemes,
                                    const ConfigAt& config_at, const std::vector<double>& grid,
                                    IntervalIndex intervals, const MetricFn& metric,
                                    std::vector<std::string> metric_names,
                                    const SweepOptions& opts) {
  if (schemes.empty()) throw std::invalid_argument{"run_sweeps: no schemes"};
  if (grid.empty()) throw std::invalid_argument{"run_sweeps: empty grid"};
  if (opts.reps == 0) throw std::invalid_argument{"run_sweeps: reps must be >= 1"};
  if (metric_names.empty()) throw std::invalid_argument{"run_sweeps: no metric names"};
  if (opts.stream_every == 0) {
    throw std::invalid_argument{"run_sweeps: stream_every must be >= 1"};
  }

  const bool with_metrics = !opts.metrics_dir.empty();
  const bool with_trace = !opts.trace_out.empty();
  const bool with_stream = !opts.stream_path.empty();
  const bool with_csv = !opts.csv_path.empty();
  if (with_csv && with_metrics) {
    throw std::invalid_argument{
        "run_sweeps: csv_path is incompatible with metrics_dir (profile comments "
        "are only known at the end of the run; use write_sweep_csv instead)"};
  }

  std::vector<SweepResult> results;
  results.reserve(schemes.size());
  for (const auto& scheme : schemes) {
    SweepResult r;
    r.scheme = scheme.name;
    r.metric_names = metric_names;
    r.xs = grid;
    r.reps = opts.reps;
    r.samples.assign(grid.size(),
                     std::vector<std::vector<double>>(opts.reps, std::vector<double>{}));
    if (with_metrics) {
      r.profiles.assign(grid.size(), std::vector<TaskProfile>(opts.reps));
    }
    results.push_back(std::move(r));
  }

  const std::size_t tasks = schemes.size() * grid.size() * opts.reps;
  const std::size_t requested = opts.jobs == 0 ? ThreadPool::hardware_threads() : opts.jobs;
  ThreadPool pool{std::min(requested, tasks)};
  SerializedConfigAt serialized_config_at{config_at};

  // Per-task observability output, serialized JSONL held per task slot so
  // the concatenated files come out in deterministic (scheme, point, rep)
  // order whatever the thread schedule was. Sim-domain metrics and
  // wall-clock profile lines are kept apart: the former are byte-identical
  // across --jobs, the latter cannot be.
  std::vector<std::string> metric_blocks(with_metrics ? tasks : 0);
  std::vector<std::string> profile_blocks(with_metrics ? tasks : 0);
  // In-run metric snapshots, same per-task-slot scheme as metric_blocks:
  // each task streams into its own string sink and the blocks concatenate
  // in task order, so the streamed file is byte-identical across --jobs.
  std::vector<std::string> stream_blocks(with_stream ? tasks : 0);
  // The first task additionally records a protocol trace of its first
  // kTraceCaptureIntervals intervals for the timeline export.
  sim::Tracer trace_capture{0};

  // Incremental CSV: header up front, each grid-point row flushed (in
  // ascending grid order) once all tasks_per_point tasks for it finished.
  // Shares write_sweep_csv's column/row formatting, so the bytes match the
  // buffered writer exactly.
  const std::size_t tasks_per_point = schemes.size() * opts.reps;
  // unique_ptr rather than optional: the late-bound stream/writer pair is
  // all-or-nothing, and pointers keep flow-sensitive optional-access
  // analyzers (bugprone-unchecked-optional-access) out of the picture.
  std::unique_ptr<std::ofstream> csv_file;
  std::unique_ptr<CsvWriter> csv;
  if (with_csv) {
    if (const auto parent = std::filesystem::path{opts.csv_path}.parent_path();
        !parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);
    }
    csv_file = std::make_unique<std::ofstream>(opts.csv_path);
    if (!*csv_file) {
      throw std::runtime_error{"run_sweeps: cannot write csv to " + opts.csv_path};
    }
    csv = std::make_unique<CsvWriter>(*csv_file);
    if (opts.reps > 1) {
      csv->comment("reps=" + std::to_string(opts.reps) +
                   "; ci95 = 1.96*sd/sqrt(reps) (normal approximation)");
    }
    csv->header(sweep_csv_columns(opts.csv_x, results));
    csv_file->flush();
  }

  ProgressBoard board{results,      grid.size(), tasks_per_point, tasks,
                      intervals,    opts.progress, csv.get(),     csv_file.get()};

  std::vector<std::future<void>> futures;
  futures.reserve(tasks);
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      for (std::size_t rep = 0; rep < opts.reps; ++rep) {
        const std::size_t task_index = (s * grid.size() + i) * opts.reps + rep;
        futures.push_back(pool.submit([&, s, i, rep, task_index] {
          net::NetworkConfig config = serialized_config_at(grid[i]);
          config.seed = sweep_seed(config.seed, schemes[s].name, i, rep);
          // Engine-selection overrides: purely an execution knob (results
          // are partition-independent), so applying it after config_at is
          // safe for any scenario builder.
          if (opts.shards >= 0) {
            config.shards = static_cast<std::size_t>(opts.shards);
            config.auto_shard = false;
          }
          if (opts.shard_jobs >= 0) {
            config.shard_jobs = static_cast<std::size_t>(opts.shard_jobs);
          }
          net::Network network{std::move(config), schemes[s].factory};

          // Shared provenance fields of every observability line this task
          // emits (metrics.jsonl records and streamed snapshots alike).
          std::string context;
          if (with_metrics || with_stream) {
            context = "\"scheme\":" + obs::json_quote(schemes[s].name) +
                      ",\"x\":" + obs::json_number(grid[i]) +
                      ",\"x_index\":" + std::to_string(i) +
                      ",\"rep\":" + std::to_string(rep);
          }

          obs::MetricsRegistry registry;
          obs::StringStreamSink stream_sink;
          if (with_metrics || with_stream) network.attach_metrics(&registry);
          if (with_stream) registry.stream_to(&stream_sink, opts.stream_every, context);
          // Protocol tracing is a single-engine feature; a sharded task
          // simply goes untraced (the trace file stays empty).
          if (with_trace && task_index == 0 && !network.sharded()) {
            network.attach_tracer(&trace_capture);
            network.add_observer([&network](IntervalIndex k, std::span<const int>,
                                            std::span<const int>) {
              if (k + 1 >= kTraceCaptureIntervals) network.attach_tracer(nullptr);
            });
          }

          const auto wall_start = std::chrono::steady_clock::now();
          network.run(intervals);
          const double wall_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
                  .count();

          std::vector<double> sample = metric(network);
          if (sample.size() != metric_names.size()) {
            throw std::runtime_error{"run_sweeps: metric returned " +
                                     std::to_string(sample.size()) + " values, expected " +
                                     std::to_string(metric_names.size())};
          }
          results[s].samples[i][rep] = std::move(sample);

          if (with_stream) stream_blocks[task_index] = stream_sink.str();
          if (with_metrics) {
            network.attach_metrics(nullptr);
            obs::collect_network_metrics(registry, network);
            const TaskProfile profile{network.events_executed(), wall_seconds};
            results[s].profiles[i][rep] = profile;

            std::ostringstream block;
            registry.write_jsonl(block, context);
            metric_blocks[task_index] = std::move(block).str();
            profile_blocks[task_index] =
                obs::JsonObject{}
                    .field("name", "task_profile")
                    .raw("scheme", obs::json_quote(schemes[s].name))
                    .field("x", grid[i])
                    .field("x_index", static_cast<std::uint64_t>(i))
                    .field("rep", static_cast<std::uint64_t>(rep))
                    .field("events", profile.events)
                    .field("wall_seconds", profile.wall_seconds)
                    .field("events_per_sec", profile.events_per_sec())
                    .str() +
                "\n";
          }

          if (with_csv || opts.progress) {
            board.task_finished(i, network.events_executed());
          }
        }));
      }
    }
  }
  pool.wait_all(futures);
  for (auto& f : futures) f.get();  // surface the first task failure
  if (opts.progress) std::fprintf(stderr, "\n");

  if (with_stream) {
    obs::FileStreamSink stream_file{opts.stream_path};
    if (!stream_file.ok()) {
      throw std::runtime_error{"run_sweeps: cannot write metrics stream to " +
                               opts.stream_path};
    }
    obs::write_stream_header(stream_file.stream());
    for (const auto& block : stream_blocks) stream_file.stream() << block;
    stream_file.flush();
  }
  if (with_metrics) {
    std::error_code ec;
    std::filesystem::create_directories(opts.metrics_dir, ec);
    std::ofstream metrics_file{opts.metrics_dir + "/metrics.jsonl"};
    std::ofstream profile_file{opts.metrics_dir + "/profile.jsonl"};
    if (!metrics_file || !profile_file) {
      throw std::runtime_error{"run_sweeps: cannot write metrics files under " +
                               opts.metrics_dir};
    }
    obs::write_metrics_header(metrics_file);
    for (const auto& block : metric_blocks) metrics_file << block;
    obs::write_metrics_header(profile_file);
    for (const auto& block : profile_blocks) profile_file << block;
  }
  if (with_trace) {
    if (const auto parent = std::filesystem::path{opts.trace_out}.parent_path();
        !parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);
    }
    std::ofstream trace_file{opts.trace_out};
    if (!trace_file) {
      throw std::runtime_error{"run_sweeps: cannot write trace to " + opts.trace_out};
    }
    obs::write_chrome_trace(trace_file, trace_capture);
  }
  return results;
}

SweepResult run_sweep(const std::string& scheme_name, const mac::SchemeFactory& scheme,
                      const ConfigAt& config_at, const std::vector<double>& grid,
                      IntervalIndex intervals, const MetricFn& metric,
                      std::vector<std::string> metric_names, const SweepOptions& opts) {
  auto results = run_sweeps({{scheme_name, scheme}}, config_at, grid, intervals, metric,
                            std::move(metric_names), opts);
  return std::move(results.front());
}

std::vector<double> linspace(double lo, double hi, std::size_t points) {
  if (points < 2) throw std::invalid_argument{"linspace: need at least 2 points"};
  std::vector<double> xs(points);
  for (std::size_t i = 0; i < points; ++i) {
    xs[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
  }
  return xs;
}

}  // namespace rtmac::expfw
