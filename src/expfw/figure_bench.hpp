// One-call driver for the figure benches: banner -> sweep -> table -> CSV.
//
// Every bench/fig*.cpp used to repeat the same six statements (banner,
// grid, run_sweeps, table, CSV, footer) with only the constants changed.
// FigureSpec captures the constants; run_figure_sweep replays the exact
// sequence, byte-identically, so a new figure bench is the spec plus a
// config builder and nothing else.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "expfw/bench_cli.hpp"
#include "expfw/runner.hpp"

namespace rtmac::expfw {

/// Everything constant about one paper figure.
struct FigureSpec {
  std::string figure_id;       ///< banner heading, e.g. "Fig. 3"
  std::string description;     ///< banner: what the figure shows
  std::string expected_shape;  ///< banner: the paper's qualitative shape
  std::string x_label;         ///< table header for the grid variable
  std::string csv_column;      ///< CSV name for the grid variable
  std::string csv_basename;    ///< file under bench_output_dir(), e.g. "fig3.csv"
  std::vector<SchemeSpec> schemes;
  MetricFn metric;
  std::vector<std::string> metric_names;
  IntervalIndex paper_intervals = 0;  ///< horizon the paper used (footer)
};

/// The banner / run_sweeps / print_sweep_table / write_sweep_csv / footer
/// sequence shared by every figure bench, in that exact order. Returns the
/// sweep results so a bench can add figure-specific checks afterwards.
std::vector<SweepResult> run_figure_sweep(std::ostream& out, const FigureSpec& spec,
                                          const ConfigAt& config_at,
                                          const std::vector<double>& grid,
                                          const BenchArgs& args);

/// The scheme lineup of every Section VI comparison figure:
/// {LDF, DB-DP, FCSMA} with the paper's parameters.
[[nodiscard]] std::vector<SchemeSpec> paper_scheme_table();

}  // namespace rtmac::expfw
