// The paper's Section VI scenarios and scheme factories, in one place.
//
// Every bench and example builds its networks through these helpers so the
// constants (20 links / 20 ms / p=0.7 / ... ) exist exactly once and match
// the paper. See DESIGN.md section 4 for the experiment index.
#pragma once

#include <cstdint>

#include "core/influence.hpp"
#include "mac/dcf_mac.hpp"
#include "mac/dp_link_mac.hpp"
#include "mac/fcsma_mac.hpp"
#include "mac/link_mac.hpp"
#include "net/network_config.hpp"

namespace rtmac::expfw {

// ---- Paper constants (Section VI) ------------------------------------------

/// Video delivery (VI-A): 20 links, 1500 B / 330 us, deadline 20 ms
/// (up to 60 transmissions per interval), p* = 0.7, 5000 intervals.
struct VideoScenario {
  static constexpr std::size_t kNumLinks = 20;
  static constexpr double kReliability = 0.7;
  static constexpr IntervalIndex kIntervals = 5000;
  [[nodiscard]] static Duration deadline() { return Duration::milliseconds(20); }
};

/// Control delivery (VI-B): 10 links, 100 B / 120 us, deadline 2 ms
/// (16 transmissions per interval), p* = 0.7, rho = 0.99, 20000 intervals.
struct ControlScenario {
  static constexpr std::size_t kNumLinks = 10;
  static constexpr double kReliability = 0.7;
  static constexpr IntervalIndex kIntervals = 20000;
  [[nodiscard]] static Duration deadline() { return Duration::milliseconds(2); }
};

/// DB-DP parameters used throughout Section VI:
/// f(x) = log(max{1, 100(x+1)}), R = 10.
[[nodiscard]] core::Influence paper_influence();
inline constexpr double kPaperR = 10.0;

// ---- Network builders -------------------------------------------------------

/// Fig. 3/4/5/6 network: fully symmetric, bursty video arrivals
/// (U{1..6} w.p. alpha), reliability 0.7, delivery ratio rho.
[[nodiscard]] net::NetworkConfig video_symmetric(double alpha, double rho, std::uint64_t seed);

/// Fig. 7/8 network: 20 links in two groups of 10.
/// Group 1 (links 0-9): p = 0.5, alpha = 0.5 * alpha_star.
/// Group 2 (links 10-19): p = 0.8, alpha = alpha_star. Both need ratio rho.
[[nodiscard]] net::NetworkConfig video_asymmetric(double alpha_star, double rho,
                                                  std::uint64_t seed);

/// Link ids of the two asymmetric groups.
[[nodiscard]] std::vector<LinkId> asymmetric_group(int group);

/// Fig. 9/10 network: 10 links, Bernoulli(lambda) arrivals, deadline 2 ms.
[[nodiscard]] net::NetworkConfig control_symmetric(double lambda, double rho,
                                                   std::uint64_t seed);

// ---- Interference topologies ------------------------------------------------
//
// The paper's experiments all run on the complete collision domain (the
// Medium's default, equivalent to `phy::InterferenceGraph::complete(n)`).
// These builders cover the partial-interference regimes the refactored
// Medium opens up; attach one with `with_topology`.

/// The textbook hidden-terminal pair: two links whose transmissions destroy
/// each other (both share the receiver's neighborhood) but whose
/// transmitters are out of carrier-sense range. Listen-before-talk never
/// sees the other link, so every temporal overlap collides.
[[nodiscard]] phy::InterferenceGraph hidden_terminal_pair();

/// Generalized hidden terminals for `num_links` links in cells of
/// `cell_size`: every pair of links conflicts (one shared channel at the
/// receivers), but carrier sensing only works within a cell. Cross-cell
/// transmissions are invisible to the backoff engines — with one cell this
/// is exactly the complete graph; with more it scales the hidden-terminal
/// pair up to whole groups.
[[nodiscard]] phy::InterferenceGraph hidden_cells_topology(std::size_t num_links,
                                                           std::size_t cell_size);

/// Two spatially separated cells of `cell_size` links each with
/// `boundary_links` per cell near the border. Links interact (conflict AND
/// sense) within their own cell; the last `boundary_links` of each cell
/// also conflict with and sense the other cell's boundary links. Interior
/// links of different cells are fully independent — the spatial-reuse
/// regime where two transmissions can genuinely succeed at once.
[[nodiscard]] phy::InterferenceGraph two_cell_topology(std::size_t cell_size,
                                                       std::size_t boundary_links);

/// Fully disconnected cells: links interact (conflict AND sense, complete
/// within the cell) only with the other links of their own cell of
/// `cell_size`; cells are independent collision domains. The canonical
/// sharding benchmark topology — the partitioner recovers the cells exactly
/// and the cut sets are empty, so sharded results are byte-identical to the
/// single-engine run by construction.
[[nodiscard]] phy::InterferenceGraph disconnected_cells_topology(std::size_t num_links,
                                                                 std::size_t cell_size);

/// City-scale unit-disk placement: `num_cells` clusters on a widely spaced
/// grid, `links_per_cell` links jittered around each cluster center
/// (deterministic in `seed`). Ranges are chosen so each cluster is one
/// collision domain and clusters never interact — expected O(n)
/// construction via the grid-bucketed sparse builder, usable at 10^5-10^6
/// links where the dense InterferenceGraph cannot be materialized.
[[nodiscard]] phy::SparseTopology city_unit_disk_topology(std::size_t num_cells,
                                                          std::size_t links_per_cell,
                                                          std::uint64_t seed);

/// Chain of hidden-terminal-coupled cells: `num_cells` cells of `cell_size`
/// links, complete (conflict AND sense) within each cell; the LAST link of
/// cell i additionally conflicts with — but cannot sense — the FIRST link
/// of cell i+1. Every cut edge is conflict-only, so the partitioner keeps
/// one cell per clique and the coordinator must arbitrate each boundary
/// pair; this is the canonical topology for measuring adaptive-lookahead
/// round savings (results are bit-identical with the feature on or off).
[[nodiscard]] phy::SparseTopology chain_cells_topology(std::size_t num_cells,
                                                       std::size_t cell_size);

/// Returns `cfg` with the interference topology replaced. The graph's size
/// must match cfg.num_links().
[[nodiscard]] net::NetworkConfig with_topology(net::NetworkConfig cfg,
                                               phy::InterferenceGraph topology);

/// Returns `cfg` with a sparse (adjacency-list) topology attached; requires
/// the sharded engine (cfg.shards >= 1 or cfg.auto_shard).
[[nodiscard]] net::NetworkConfig with_sparse_topology(net::NetworkConfig cfg,
                                                      phy::SparseTopology topology);

// ---- Scheme factories -------------------------------------------------------

/// DB-DP: Algorithm 2 + eq. (14) with the paper's f and R.
[[nodiscard]] mac::SchemeFactory dbdp_factory();

/// DB-DP with explicit parameters (ablations).
[[nodiscard]] mac::SchemeFactory dbdp_factory(core::Influence influence, double r);

/// DB-DP with the Remark 6 multi-pair reordering (faster convergence).
[[nodiscard]] mac::SchemeFactory dbdp_multipair_factory(int max_swap_pairs);

/// DB-DP that LEARNS each link's reliability online from its own ACKs
/// (Section II-A's "learning from past transmissions") instead of being
/// given the oracle p_n.
[[nodiscard]] mac::SchemeFactory dbdp_estimated_p_factory(double initial_estimate = 0.5);

/// DP with fixed coin biases and multi-pair reordering (theory experiments).
[[nodiscard]] mac::SchemeFactory dp_fixed_mu_factory(std::vector<double> mu,
                                                     int max_swap_pairs);

/// DP with fixed coin biases (theory experiments, Proposition 2).
[[nodiscard]] mac::SchemeFactory dp_fixed_mu_factory(std::vector<double> mu);

/// DP with reordering disabled: priorities frozen at the identity
/// permutation — the Fig. 6 starvation experiment.
[[nodiscard]] mac::SchemeFactory dp_static_priority_factory();

/// Centralized LDF (Algorithm 1 with f(x) = x).
[[nodiscard]] mac::SchemeFactory ldf_factory();

/// Centralized ELDF with an explicit debt influence function.
[[nodiscard]] mac::SchemeFactory eldf_factory(core::Influence influence);

/// FCSMA baseline with default discretization.
[[nodiscard]] mac::SchemeFactory fcsma_factory();
[[nodiscard]] mac::SchemeFactory fcsma_factory(mac::FcsmaParams params);

/// 802.11-DCF-style exponential backoff (extension baseline).
[[nodiscard]] mac::SchemeFactory dcf_factory();

}  // namespace rtmac::expfw
