// Sweep execution: run schemes across parameter grids and collect metrics.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mac/link_mac.hpp"
#include "net/network.hpp"
#include "net/network_config.hpp"

namespace rtmac::expfw {

/// Builds the network config for one sweep point (x = alpha*, rho, ...).
using ConfigAt = std::function<net::NetworkConfig(double x)>;

/// Extracts one or more metric values from a finished run. The default
/// metric everywhere is total timely-throughput deficiency.
using MetricFn = std::function<std::vector<double>(const net::Network&)>;

/// Result of sweeping one scheme over a grid.
struct SweepResult {
  std::string scheme;
  std::vector<std::string> metric_names;   ///< one per metric column
  std::vector<double> xs;                  ///< grid
  std::vector<std::vector<double>> values; ///< values[i][m] at xs[i]
};

/// The standard metric: { total deficiency } (Definition 1).
[[nodiscard]] MetricFn total_deficiency_metric();

/// Group-wise deficiency metric for the asymmetric experiments.
[[nodiscard]] MetricFn group_deficiency_metric(std::vector<std::vector<LinkId>> groups);

/// Runs `scheme` at every grid point for `intervals` deadline intervals.
[[nodiscard]] SweepResult run_sweep(const std::string& scheme_name,
                                    const mac::SchemeFactory& scheme, const ConfigAt& config_at,
                                    const std::vector<double>& grid, IntervalIndex intervals,
                                    const MetricFn& metric, std::vector<std::string> metric_names);

/// Evenly spaced grid [lo, hi] with `points` points (inclusive).
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t points);

}  // namespace rtmac::expfw
