// Sweep execution: run schemes across parameter grids and collect metrics.
//
// The sweep engine fans (scheme x grid point x replication) tasks across a
// fixed-size thread pool. Each task derives its root RNG seed
// deterministically from (base seed, scheme name, x-index, replication), so
// the numbers are bit-identical regardless of --jobs or scheduling order,
// and every replication is an independent stream. Per-replication samples
// are kept so reports can show mean / stddev / 95% confidence intervals,
// matching how the paper's ns-3 evaluation averages independent runs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "mac/link_mac.hpp"
#include "net/network.hpp"
#include "net/network_config.hpp"

namespace rtmac::expfw {

/// Builds the network config for one sweep point (x = alpha*, rho, ...).
/// Must be safe to call from the sweep engine's worker threads; calls are
/// serialized, so a builder that reads shared state needs no locking of
/// its own, but it must not depend on call order.
using ConfigAt = std::function<net::NetworkConfig(double x)>;

/// Extracts one or more metric values from a finished run. The default
/// metric everywhere is total timely-throughput deficiency. Runs on worker
/// threads, possibly concurrently; must be stateless or internally locked.
using MetricFn = std::function<std::vector<double>(const net::Network&)>;

/// Execution knobs shared by every sweep (the --reps/--jobs flag pair plus
/// the observability outputs).
struct SweepOptions {
  std::size_t reps = 1;  ///< independent replications per grid point (>= 1)
  std::size_t jobs = 0;  ///< worker threads; 0 = all hardware threads

  /// Sharded-engine override applied to every task's config: -1 leaves the
  /// config's own shards/auto_shard untouched, 0 forces the legacy engine,
  /// >= 1 requests that many shards (net/network partitions the topology;
  /// results are byte-identical for any value by construction — the flag
  /// only moves work between engines).
  int shards = -1;
  /// Worker threads per sharded network (NetworkConfig::shard_jobs); -1
  /// leaves the config untouched. Keep the product with `jobs` near the
  /// hardware thread count.
  int shard_jobs = -1;

  /// When non-empty, every task runs with a metrics registry attached and
  /// the sweep writes <metrics_dir>/metrics.jsonl (sim-domain metrics,
  /// deterministic across --jobs) plus <metrics_dir>/profile.jsonl
  /// (wall-clock engine profiling, inherently nondeterministic — kept in a
  /// separate file so the deterministic one can be diffed byte-for-byte).
  std::string metrics_dir;
  /// When non-empty, the first task (first scheme, first grid point, rep 0)
  /// runs with a tracer attached for its first kTraceCaptureIntervals
  /// intervals and the sweep writes a Chrome trace-event timeline here
  /// (loadable in Perfetto / chrome://tracing).
  std::string trace_out;

  /// When non-empty, every task streams a whole-registry metrics snapshot
  /// every `stream_every` intervals and the sweep concatenates the per-task
  /// JSONL blocks here in deterministic task order — the in-run time series
  /// behind --metrics-stream. Snapshots carry sim-time stamps only, so the
  /// file is byte-identical across --jobs. Works with or without
  /// metrics_dir (a registry is attached either way).
  std::string stream_path;
  /// Snapshot cadence in intervals for stream_path (>= 1).
  std::uint64_t stream_every = 10;

  /// Prints a live heartbeat to stderr (tasks done, grid points done,
  /// events/s, intervals/s, ETA) as tasks finish — the --progress flag.
  /// Wall-clock by nature; never touches any deterministic output file.
  bool progress = false;

  /// When non-empty, the sweep writes the figure CSV incrementally to this
  /// path: the header goes out up front and each grid-point row is flushed
  /// as soon as every (scheme, rep) task for that point has finished, in
  /// ascending grid order. Byte-identical to write_sweep_csv for the same
  /// results. Incompatible with metrics_dir (the buffered writer prepends
  /// per-task profile comments that only exist at the end of the run);
  /// run_sweeps throws std::invalid_argument if both are set.
  std::string csv_path;
  /// First-column label of the incremental CSV (the grid variable name).
  std::string csv_x = "x";
};

/// How many intervals of the traced task a sweep captures (bounds the trace
/// file; one interval is enough to inspect, fifty show convergence).
inline constexpr IntervalIndex kTraceCaptureIntervals = 50;

/// Engine profile of one (scheme, grid point, replication) task.
struct TaskProfile {
  std::uint64_t events = 0;    ///< simulator events executed by the task
  double wall_seconds = 0.0;   ///< wall-clock time of Network::run
  [[nodiscard]] double events_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds : 0.0;
  }
};

/// One scheme to sweep: display name + factory.
struct SchemeSpec {
  std::string name;
  mac::SchemeFactory factory;
};

/// Result of sweeping one scheme over a grid, with all replications kept.
struct SweepResult {
  std::string scheme;
  std::vector<std::string> metric_names;  ///< one per metric column
  std::vector<double> xs;                 ///< grid
  std::size_t reps = 1;                   ///< replications per grid point
  /// samples[i][r][m]: metric m of replication r at grid point i.
  std::vector<std::vector<std::vector<double>>> samples;
  /// profiles[i][r]: engine profile of replication r at grid point i.
  /// Empty unless the sweep ran with SweepOptions::metrics_dir set.
  std::vector<std::vector<TaskProfile>> profiles;

  /// Mean over replications of metric m at grid point i.
  [[nodiscard]] double mean(std::size_t i, std::size_t m) const;
  /// Sample standard deviation (n-1); 0 when reps == 1.
  [[nodiscard]] double stddev(std::size_t i, std::size_t m) const;
  /// Half-width of the 95% confidence interval for the mean,
  /// 1.96 * stddev / sqrt(reps) (normal approximation); 0 when reps == 1.
  [[nodiscard]] double ci95(std::size_t i, std::size_t m) const;
};

/// Root seed for one simulation task. Chained SplitMix64 over
/// (base_seed, FNV-1a(scheme), x_index, replication): platform-independent,
/// collision-resistant, and independent of thread count by construction.
[[nodiscard]] std::uint64_t sweep_seed(std::uint64_t base_seed, std::string_view scheme,
                                       std::size_t x_index, std::size_t replication);

/// The standard metric: { total deficiency } (Definition 1).
[[nodiscard]] MetricFn total_deficiency_metric();

/// Group-wise deficiency metric for the asymmetric experiments.
[[nodiscard]] MetricFn group_deficiency_metric(std::vector<std::vector<LinkId>> groups);

/// Runs every scheme at every grid point for `opts.reps` replications of
/// `intervals` deadline intervals each, fanned across one shared thread
/// pool. The seed in the config produced by `config_at` is the base seed
/// of the per-task derivation. Returns one SweepResult per scheme, in
/// input order. Throws std::invalid_argument on an empty grid/scheme list,
/// reps == 0, or empty metric names; rethrows any task failure.
[[nodiscard]] std::vector<SweepResult> run_sweeps(
    const std::vector<SchemeSpec>& schemes, const ConfigAt& config_at,
    const std::vector<double>& grid, IntervalIndex intervals, const MetricFn& metric,
    std::vector<std::string> metric_names, const SweepOptions& opts = {});

/// Single-scheme convenience wrapper around run_sweeps.
[[nodiscard]] SweepResult run_sweep(const std::string& scheme_name,
                                    const mac::SchemeFactory& scheme, const ConfigAt& config_at,
                                    const std::vector<double>& grid, IntervalIndex intervals,
                                    const MetricFn& metric, std::vector<std::string> metric_names,
                                    const SweepOptions& opts = {});

/// Evenly spaced grid [lo, hi] with `points` points (inclusive). Throws
/// std::invalid_argument if points < 2 (also in NDEBUG builds).
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t points);

}  // namespace rtmac::expfw
