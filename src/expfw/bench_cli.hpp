// Shared command line for the bench binaries: the --reps/--jobs/--smoke
// triad plus --intervals and the observability outputs, so every figure
// bench exposes the same knobs.
//
//   --intervals N     deadline intervals per simulation (default per bench;
//                     a bare positional integer is accepted for backward
//                     compatibility with the pre-flag invocation style)
//   --reps N          independent replications per grid point (default 1)
//   --jobs N          sweep worker threads (default 0 = all hardware threads)
//   --smoke           CI mode: tiny grid + short horizon, exercises the full
//                     binary in seconds
//   --metrics-out D   write JSONL metrics (per-link delivery/collision
//                     rates, busy fraction, debt, engine profile) under
//                     directory D; default output stays byte-identical
//   --trace-out F     write a Chrome trace-event timeline of the first
//                     task's opening intervals to file F (Perfetto-loadable)
//   --metrics-stream F  stream whole-registry metric snapshots (JSONL, sim-time
//                     stamped, byte-identical across --jobs) to file F
//   --stream-every N  snapshot cadence in intervals (default 10)
//   --progress        live heartbeat on stderr: tasks/grid points done,
//                     events/s, intervals/s, ETA (wall-clock; stderr only)
//
// Unknown flags print a usage line and exit(2), so typos cannot silently
// run a multi-minute sweep with default settings.
#pragma once

#include <string>

#include "core/types.hpp"
#include "expfw/runner.hpp"

namespace rtmac::expfw {

/// Parsed bench command line.
struct BenchArgs {
  IntervalIndex intervals = 0;  ///< horizon per simulation (smoke-adjusted)
  SweepOptions sweep;           ///< reps + jobs, passed straight to run_sweeps
  bool smoke = false;           ///< tiny-grid CI mode

  /// Grid size to use: `full` normally, at most 3 points in smoke mode.
  [[nodiscard]] std::size_t grid_points(std::size_t full) const;
  /// Scales an auxiliary count (trials, burn-in, ...) down in smoke mode.
  [[nodiscard]] IntervalIndex scaled(IntervalIndex full, IntervalIndex smoke_value) const;
};

/// Parses the standard bench flags. `default_intervals` is the bench's
/// normal horizon; smoke mode caps it at `smoke_intervals`. Exits(2) with
/// a usage message on unknown flags; exits(0) on --help.
[[nodiscard]] BenchArgs parse_bench_args(int argc, const char* const* argv,
                                         IntervalIndex default_intervals,
                                         IntervalIndex smoke_intervals = 25);

}  // namespace rtmac::expfw
