#include "expfw/observe.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "obs/collect.hpp"
#include "obs/json.hpp"
#include "obs/trace_export.hpp"

namespace rtmac::expfw {

namespace {

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RunObserver::RunObserver(std::string metrics_dir, std::string trace_path,
                         std::string stream_path, std::uint64_t stream_every)
    : metrics_dir_{std::move(metrics_dir)},
      trace_path_{std::move(trace_path)},
      stream_path_{std::move(stream_path)},
      stream_every_{stream_every} {}

RunObserver::~RunObserver() {
  if (network_ != nullptr) {
    network_->attach_metrics(nullptr);
    network_->attach_tracer(nullptr);
  }
}

void RunObserver::attach(net::Network& network, const std::string& label) {
  if (!enabled()) return;
  network_ = &network;
  label_ = label;
  if (!metrics_dir_.empty() || !stream_path_.empty()) network.attach_metrics(&registry_);
  if (!stream_path_.empty()) {
    stream_sink_ = std::make_unique<obs::FileStreamSink>(stream_path_);
    if (!stream_sink_->ok()) {
      std::fprintf(stderr, "observability: cannot write %s\n", stream_path_.c_str());
      stream_sink_.reset();
    } else {
      obs::write_stream_header(stream_sink_->stream());
      const std::string context =
          label_.empty() ? std::string{} : "\"label\":" + obs::json_quote(label_);
      registry_.stream_to(stream_sink_.get(), stream_every_, context);
    }
  }
  if (!trace_path_.empty()) network.attach_tracer(&tracer_);
  wall_start_ = wall_now();
}

bool RunObserver::finish() {
  if (network_ == nullptr) return true;
  const double wall_seconds = wall_now() - wall_start_;
  net::Network& network = *network_;
  network.attach_metrics(nullptr);
  network.attach_tracer(nullptr);
  network_ = nullptr;

  bool ok = true;
  if (stream_sink_ != nullptr) {
    registry_.stream_to(nullptr);
    stream_sink_->flush();
    stream_sink_.reset();
  }
  if (!metrics_dir_.empty()) {
    obs::collect_network_metrics(registry_, network);
    // Wall-clock profile of the observed span (attach -> finish). Gauges,
    // like everything else in the registry, so one parser handles the file.
    const auto events = network.events_executed();
    registry_.gauge("profile.wall_seconds").set(wall_seconds);
    registry_.gauge("profile.events_per_sec")
        .set(wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds : 0.0);

    std::error_code ec;
    std::filesystem::create_directories(metrics_dir_, ec);
    const std::string path =
        metrics_dir_ + "/metrics" + (label_.empty() ? "" : "_" + label_) + ".jsonl";
    std::ofstream file{path};
    if (!file) {
      std::fprintf(stderr, "observability: cannot write %s\n", path.c_str());
      ok = false;
    } else {
      obs::write_metrics_header(file);
      const std::string context =
          label_.empty() ? std::string{}
                         : "\"label\":" + obs::json_quote(label_);
      registry_.write_jsonl(file, context);
    }
  }
  if (!trace_path_.empty()) {
    if (const auto parent = std::filesystem::path{trace_path_}.parent_path();
        !parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);
    }
    std::ofstream file{trace_path_};
    if (!file) {
      std::fprintf(stderr, "observability: cannot write %s\n", trace_path_.c_str());
      ok = false;
    } else {
      obs::write_chrome_trace(file, tracer_);
    }
  }
  return ok;
}

}  // namespace rtmac::expfw
