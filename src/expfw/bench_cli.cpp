#include "expfw/bench_cli.hpp"

#include <cstdlib>
#include <iostream>

#include "util/args.hpp"

namespace rtmac::expfw {

std::size_t BenchArgs::grid_points(std::size_t full) const {
  return smoke ? std::min<std::size_t>(full, 3) : full;
}

IntervalIndex BenchArgs::scaled(IntervalIndex full, IntervalIndex smoke_value) const {
  return smoke ? std::min(full, smoke_value) : full;
}

BenchArgs parse_bench_args(int argc, const char* const* argv,
                           IntervalIndex default_intervals, IntervalIndex smoke_intervals) {
  const ArgParser args{argc, argv};
  const auto usage = [&](std::ostream& out) {
    out << "usage: " << (argc > 0 ? argv[0] : "bench")
        << " [--intervals N] [--reps N] [--jobs N] [--smoke]\n"
        << "             [--shards N] [--shard-jobs N]\n"
        << "             [--metrics-out DIR] [--trace-out FILE]\n"
        << "             [--metrics-stream FILE] [--stream-every N] [--progress]\n"
        << "  --intervals N    deadline intervals per simulation (default "
        << default_intervals << ")\n"
        << "  --reps N         replications per grid point (default 1)\n"
        << "  --jobs N         sweep worker threads (default 0 = all cores)\n"
        << "  --shards N       partition each network into N shards (0 forces the\n"
        << "                   legacy engine; default: whatever the bench's configs\n"
        << "                   say). Results are byte-identical for any value.\n"
        << "  --shard-jobs N   worker threads per sharded network (default: one\n"
        << "                   per parallel group, capped at the core count)\n"
        << "  --smoke          tiny grid + short horizon for CI\n"
        << "  --metrics-out D  write JSONL metrics + engine profile under D\n"
        << "  --trace-out F    write a Perfetto-loadable Chrome trace to F\n"
        << "  --metrics-stream F  stream in-run metric snapshots (JSONL) to F\n"
        << "  --stream-every N    snapshot cadence in intervals (default 10)\n"
        << "  --progress       live heartbeat on stderr (tasks, rates, ETA)\n";
  };
  if (args.has("help")) {
    usage(std::cout);
    std::exit(0);
  }
  const auto unknown = args.unknown_flags({"intervals", "reps", "jobs", "smoke",
                                           "shards", "shard-jobs",
                                           "metrics-out", "trace-out", "metrics-stream",
                                           "stream-every", "progress", "help"});
  if (!unknown.empty()) {
    std::cerr << "unknown flag --" << unknown.front() << "\n";
    usage(std::cerr);
    std::exit(2);
  }

  // ArgParser's typed getters are best-effort (malformed values fall back
  // to the default); the bench flags must fail loudly instead, or a typo
  // silently reruns the default configuration.
  const auto require_int = [&](const char* name, std::int64_t def) -> std::int64_t {
    if (!args.has(name)) return def;
    const std::string raw = args.get(name, std::string{});
    char* end = nullptr;
    const long long v = raw.empty() ? 0 : std::strtoll(raw.c_str(), &end, 10);
    if (raw.empty() || end == nullptr || *end != '\0') {
      std::cerr << "--" << name << " expects an integer, got \"" << raw << "\"\n";
      usage(std::cerr);
      std::exit(2);
    }
    return v;
  };

  BenchArgs out;
  // Legacy style: a bare positional integer is the interval count.
  IntervalIndex intervals = default_intervals;
  if (!args.positional().empty()) {
    intervals = std::strtoull(args.positional().front().c_str(), nullptr, 10);
    if (intervals == 0) intervals = default_intervals;
  }
  intervals = static_cast<IntervalIndex>(
      require_int("intervals", static_cast<std::int64_t>(intervals)));
  out.smoke = args.get("smoke", false);
  out.intervals = out.smoke ? std::min(intervals, smoke_intervals) : intervals;
  const std::int64_t reps = require_int("reps", 1);
  const std::int64_t jobs = require_int("jobs", 0);
  if (reps < 1) {
    std::cerr << "--reps must be >= 1\n";
    std::exit(2);
  }
  if (jobs < 0) {
    std::cerr << "--jobs must be >= 0 (0 = all cores)\n";
    std::exit(2);
  }
  out.sweep.reps = static_cast<std::size_t>(reps);
  out.sweep.jobs = static_cast<std::size_t>(jobs);
  const std::int64_t shards = require_int("shards", -1);
  const std::int64_t shard_jobs = require_int("shard-jobs", -1);
  if (args.has("shards") && shards < 0) {
    std::cerr << "--shards must be >= 0 (0 forces the legacy engine)\n";
    std::exit(2);
  }
  if (args.has("shard-jobs") && shard_jobs < 0) {
    std::cerr << "--shard-jobs must be >= 0 (0 = one per group)\n";
    std::exit(2);
  }
  out.sweep.shards = static_cast<int>(shards);
  out.sweep.shard_jobs = static_cast<int>(shard_jobs);
  out.sweep.metrics_dir = args.get("metrics-out", std::string{});
  out.sweep.trace_out = args.get("trace-out", std::string{});
  out.sweep.stream_path = args.get("metrics-stream", std::string{});
  if ((args.has("metrics-out") && out.sweep.metrics_dir.empty()) ||
      (args.has("trace-out") && out.sweep.trace_out.empty()) ||
      (args.has("metrics-stream") && out.sweep.stream_path.empty())) {
    std::cerr << "--metrics-out/--trace-out/--metrics-stream expect a path\n";
    usage(std::cerr);
    std::exit(2);
  }
  const std::int64_t stream_every = require_int("stream-every", 10);
  if (stream_every < 1) {
    std::cerr << "--stream-every must be >= 1\n";
    std::exit(2);
  }
  out.sweep.stream_every = static_cast<std::uint64_t>(stream_every);
  out.sweep.progress = args.get("progress", false);
  return out;
}

}  // namespace rtmac::expfw
