// Observability wiring for a directly-run Network (the --metrics-out /
// --trace-out flags of benches and tools that drive one Network without
// going through run_sweeps; the sweep engine has its own per-task wiring).
//
// Usage:
//   expfw::RunObserver observer{args.sweep.metrics_dir, args.sweep.trace_out};
//   observer.attach(network, "dbdp");   // before network.run(...)
//   network.run(intervals);
//   observer.finish();                  // collects + writes the files
//
// With both output paths empty every call is a no-op, so benches can wire
// the observer unconditionally without perturbing default runs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/stream.hpp"
#include "sim/trace.hpp"

namespace rtmac::expfw {

/// One network's metrics registry + tracer + wall-clock profile, flushed to
/// disk on finish(). Movable-nothing: create it in the scope of the run.
class RunObserver {
 public:
  /// `metrics_dir`: directory for the JSONL metrics file ("" = disabled;
  /// created on finish). `trace_path`: Chrome trace-event output file
  /// ("" = disabled). `stream_path`: in-run JSONL metric snapshots, one
  /// whole-registry snapshot every `stream_every` intervals, written live
  /// during the run ("" = disabled; works without metrics_dir).
  RunObserver(std::string metrics_dir, std::string trace_path,
              std::string stream_path = {}, std::uint64_t stream_every = 10);

  RunObserver(const RunObserver&) = delete;
  RunObserver& operator=(const RunObserver&) = delete;
  ~RunObserver();  ///< detaches from the network if finish() was not called

  /// Attaches registry + tracer to `network` and starts the wall clock.
  /// `label` names the metrics file (metrics_<label>.jsonl, or
  /// metrics.jsonl when empty) and is spliced into every JSONL line.
  /// No-op when both outputs are disabled.
  void attach(net::Network& network, const std::string& label = {});

  /// Collects derived end-of-run metrics and writes all enabled outputs.
  /// Returns false (with a stderr warning) when a file cannot be written.
  /// Safe to call once per attach; no-op when nothing is attached.
  bool finish();

  [[nodiscard]] bool enabled() const {
    return !metrics_dir_.empty() || !trace_path_.empty() || !stream_path_.empty();
  }

 private:
  std::string metrics_dir_;
  std::string trace_path_;
  std::string stream_path_;
  std::uint64_t stream_every_ = 10;
  std::string label_;
  net::Network* network_ = nullptr;
  obs::MetricsRegistry registry_;
  std::unique_ptr<obs::FileStreamSink> stream_sink_;  // open while streaming
  sim::Tracer tracer_{0};  // unbounded: single runs are user-scoped
  double wall_start_ = 0.0;
};

}  // namespace rtmac::expfw
