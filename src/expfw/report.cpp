#include "expfw/report.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace rtmac::expfw {

namespace {

/// Column labels in result order: one mean column per (scheme, metric),
/// plus sd/ci95 columns for any result carrying replications.
std::vector<std::string> series_columns(const std::vector<SweepResult>& results) {
  std::vector<std::string> cols;
  for (const auto& r : results) {
    for (const auto& metric : r.metric_names) {
      const std::string base =
          r.metric_names.size() == 1 ? r.scheme : r.scheme + ":" + metric;
      cols.push_back(base);
      if (r.reps > 1) {
        cols.push_back(base + ":sd");
        cols.push_back(base + ":ci95");
      }
    }
  }
  return cols;
}

void check_shared_grid(const std::vector<SweepResult>& results) {
  if (results.empty()) throw std::invalid_argument{"report: no sweep results"};
  for (const auto& r : results) {
    if (r.xs != results.front().xs) {
      throw std::invalid_argument{"report: sweeps must share the grid"};
    }
  }
}

std::size_t max_reps(const std::vector<SweepResult>& results) {
  std::size_t reps = 1;
  for (const auto& r : results) reps = std::max(reps, r.reps);
  return reps;
}

}  // namespace

void print_figure_banner(std::ostream& out, const std::string& figure_id,
                         const std::string& description, const std::string& expected_shape) {
  out << "\n=== " << figure_id << " — " << description << " ===\n";
  out << "paper shape: " << expected_shape << "\n\n";
}

void print_sweep_table(std::ostream& out, const std::string& x_name,
                       const std::vector<SweepResult>& results) {
  check_shared_grid(results);
  std::vector<std::string> cols{x_name};
  for (auto& c : series_columns(results)) cols.push_back(std::move(c));
  TablePrinter table{std::move(cols)};

  const std::size_t rows = results.front().xs.size();
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row{TablePrinter::num(results.front().xs[i], 3)};
    for (const auto& r : results) {
      for (std::size_t m = 0; m < r.metric_names.size(); ++m) {
        row.push_back(TablePrinter::num(r.mean(i, m), 4));
        if (r.reps > 1) {
          row.push_back(TablePrinter::num(r.stddev(i, m), 4));
          row.push_back(TablePrinter::num(r.ci95(i, m), 4));
        }
      }
    }
    table.add_row(std::move(row));
  }
  table.print(out);
  if (max_reps(results) > 1) {
    out << "(" << max_reps(results)
        << " replications/point; ci95 = 1.96*sd/sqrt(reps), normal approx)\n";
  }
}

bool write_sweep_csv(const std::string& path, const std::string& x_name,
                     const std::vector<SweepResult>& results) {
  check_shared_grid(results);
  std::ofstream file{path};
  if (!file) return false;
  CsvWriter csv{file};
  if (max_reps(results) > 1) {
    csv.comment("reps=" + std::to_string(max_reps(results)) +
                "; ci95 = 1.96*sd/sqrt(reps) (normal approximation)");
  }
  std::vector<std::string> cols{x_name};
  for (auto& c : series_columns(results)) cols.push_back(std::move(c));
  csv.header(cols);
  const std::size_t rows = results.front().xs.size();
  for (std::size_t i = 0; i < rows; ++i) {
    csv.field(results.front().xs[i]);
    for (const auto& r : results) {
      for (std::size_t m = 0; m < r.metric_names.size(); ++m) {
        csv.field(r.mean(i, m));
        if (r.reps > 1) {
          csv.field(r.stddev(i, m));
          csv.field(r.ci95(i, m));
        }
      }
    }
    csv.end_row();
  }
  return true;
}

std::string bench_output_dir() {
  const std::string dir = "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

}  // namespace rtmac::expfw
