#include "expfw/report.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/table.hpp"

namespace rtmac::expfw {

namespace {

/// Column labels in result order: one mean column per (scheme, metric),
/// plus sd/ci95 columns for any result carrying replications.
std::vector<std::string> series_columns(const std::vector<SweepResult>& results) {
  std::vector<std::string> cols;
  for (const auto& r : results) {
    for (const auto& metric : r.metric_names) {
      const std::string base =
          r.metric_names.size() == 1 ? r.scheme : r.scheme + ":" + metric;
      cols.push_back(base);
      if (r.reps > 1) {
        cols.push_back(base + ":sd");
        cols.push_back(base + ":ci95");
      }
    }
  }
  return cols;
}

void check_shared_grid(const std::vector<SweepResult>& results) {
  if (results.empty()) throw std::invalid_argument{"report: no sweep results"};
  for (const auto& r : results) {
    if (r.xs != results.front().xs) {
      throw std::invalid_argument{"report: sweeps must share the grid"};
    }
  }
}

std::size_t max_reps(const std::vector<SweepResult>& results) {
  std::size_t reps = 1;
  for (const auto& r : results) reps = std::max(reps, r.reps);
  return reps;
}

bool has_profiles(const std::vector<SweepResult>& results) {
  for (const auto& r : results) {
    if (!r.profiles.empty()) return true;
  }
  return false;
}

TaskProfile profile_total(const std::vector<SweepResult>& results) {
  TaskProfile total;
  for (const auto& r : results) {
    for (const auto& point : r.profiles) {
      for (const auto& p : point) {
        total.events += p.events;
        total.wall_seconds += p.wall_seconds;
      }
    }
  }
  return total;
}

}  // namespace

std::vector<std::string> sweep_csv_columns(const std::string& x_name,
                                           const std::vector<SweepResult>& results) {
  std::vector<std::string> cols{x_name};
  for (auto& c : series_columns(results)) cols.push_back(std::move(c));
  return cols;
}

void write_sweep_csv_row(CsvWriter& csv, const std::vector<SweepResult>& results,
                         std::size_t i) {
  csv.field(results.front().xs[i]);
  for (const auto& r : results) {
    for (std::size_t m = 0; m < r.metric_names.size(); ++m) {
      csv.field(r.mean(i, m));
      if (r.reps > 1) {
        csv.field(r.stddev(i, m));
        csv.field(r.ci95(i, m));
      }
    }
  }
  csv.end_row();
}

void print_figure_banner(std::ostream& out, const std::string& figure_id,
                         const std::string& description, const std::string& expected_shape) {
  out << "\n=== " << figure_id << " — " << description << " ===\n";
  out << "paper shape: " << expected_shape << "\n\n";
}

void print_sweep_table(std::ostream& out, const std::string& x_name,
                       const std::vector<SweepResult>& results) {
  check_shared_grid(results);
  std::vector<std::string> cols{x_name};
  for (auto& c : series_columns(results)) cols.push_back(std::move(c));
  TablePrinter table{std::move(cols)};

  const std::size_t rows = results.front().xs.size();
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row{TablePrinter::num(results.front().xs[i], 3)};
    for (const auto& r : results) {
      for (std::size_t m = 0; m < r.metric_names.size(); ++m) {
        row.push_back(TablePrinter::num(r.mean(i, m), 4));
        if (r.reps > 1) {
          row.push_back(TablePrinter::num(r.stddev(i, m), 4));
          row.push_back(TablePrinter::num(r.ci95(i, m), 4));
        }
      }
    }
    table.add_row(std::move(row));
  }
  table.print(out);
  if (max_reps(results) > 1) {
    out << "(" << max_reps(results)
        << " replications/point; ci95 = 1.96*sd/sqrt(reps), normal approx)\n";
  }
  if (has_profiles(results)) {
    const TaskProfile total = profile_total(results);
    char line[160];
    std::snprintf(line, sizeof line,
                  "(engine: %llu events in %.3f s of simulation work, %.3g events/s)\n",
                  static_cast<unsigned long long>(total.events), total.wall_seconds,
                  total.events_per_sec());
    out << line;
  }
}

bool write_sweep_csv(const std::string& path, const std::string& x_name,
                     const std::vector<SweepResult>& results) {
  check_shared_grid(results);
  std::ofstream file{path};
  if (!file) return false;
  CsvWriter csv{file};
  if (max_reps(results) > 1) {
    csv.comment("reps=" + std::to_string(max_reps(results)) +
                "; ci95 = 1.96*sd/sqrt(reps) (normal approximation)");
  }
  // Per-task engine provenance, present only when the sweep ran with
  // --metrics-out (keeps default output byte-identical). Wall times are
  // wall-clock and therefore vary run to run; the simulated-event counts
  // are deterministic.
  if (has_profiles(results)) {
    for (const auto& r : results) {
      for (std::size_t i = 0; i < r.profiles.size(); ++i) {
        for (std::size_t rep = 0; rep < r.profiles[i].size(); ++rep) {
          const TaskProfile& p = r.profiles[i][rep];
          char line[200];
          std::snprintf(line, sizeof line,
                        "profile: scheme=%s x=%.6g rep=%zu events=%llu wall_ms=%.3f "
                        "events_per_sec=%.6g",
                        r.scheme.c_str(), r.xs[i], rep,
                        static_cast<unsigned long long>(p.events), p.wall_seconds * 1e3,
                        p.events_per_sec());
          csv.comment(line);
        }
      }
    }
  }
  csv.header(sweep_csv_columns(x_name, results));
  const std::size_t rows = results.front().xs.size();
  for (std::size_t i = 0; i < rows; ++i) write_sweep_csv_row(csv, results, i);
  return true;
}

std::string bench_output_dir() {
  const std::string dir = "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

}  // namespace rtmac::expfw
