#include "expfw/report.hpp"

#include <cassert>
#include <filesystem>
#include <fstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace rtmac::expfw {

namespace {

std::vector<std::string> series_columns(const std::vector<SweepResult>& results) {
  std::vector<std::string> cols;
  for (const auto& r : results) {
    for (const auto& metric : r.metric_names) {
      cols.push_back(r.metric_names.size() == 1 ? r.scheme : r.scheme + ":" + metric);
    }
  }
  return cols;
}

}  // namespace

void print_figure_banner(std::ostream& out, const std::string& figure_id,
                         const std::string& description, const std::string& expected_shape) {
  out << "\n=== " << figure_id << " — " << description << " ===\n";
  out << "paper shape: " << expected_shape << "\n\n";
}

void print_sweep_table(std::ostream& out, const std::string& x_name,
                       const std::vector<SweepResult>& results) {
  assert(!results.empty());
  std::vector<std::string> cols{x_name};
  for (auto& c : series_columns(results)) cols.push_back(std::move(c));
  TablePrinter table{std::move(cols)};

  const std::size_t rows = results.front().xs.size();
  for (const auto& r : results) {
    assert(r.xs == results.front().xs && "sweeps must share the grid");
    (void)r;
  }
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row{TablePrinter::num(results.front().xs[i], 3)};
    for (const auto& r : results) {
      for (double v : r.values[i]) row.push_back(TablePrinter::num(v, 4));
    }
    table.add_row(std::move(row));
  }
  table.print(out);
}

bool write_sweep_csv(const std::string& path, const std::string& x_name,
                     const std::vector<SweepResult>& results) {
  std::ofstream file{path};
  if (!file) return false;
  CsvWriter csv{file};
  std::vector<std::string> cols{x_name};
  for (auto& c : series_columns(results)) cols.push_back(std::move(c));
  csv.header(cols);
  const std::size_t rows = results.front().xs.size();
  for (std::size_t i = 0; i < rows; ++i) {
    csv.field(results.front().xs[i]);
    for (const auto& r : results) {
      for (double v : r.values[i]) csv.field(v);
    }
    csv.end_row();
  }
  return true;
}

std::string bench_output_dir() {
  const std::string dir = "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

}  // namespace rtmac::expfw
