// Figure regeneration output: aligned console tables + CSV series.
//
// Every bench prints one table per paper figure: the grid variable in the
// first column and one column per (scheme, metric) pair — the same series
// the paper plots. An optional CSV dump (under bench_out/) makes the series
// easy to re-plot.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "expfw/runner.hpp"
#include "util/csv.hpp"

namespace rtmac::expfw {

/// Column labels of the CSV series: the grid variable first, then one mean
/// column per (scheme, metric), plus `:sd`/`:ci95` columns for results
/// carrying replications. Shared by the buffered writer and the sweep
/// engine's incremental CSV stream so both emit identical headers.
[[nodiscard]] std::vector<std::string> sweep_csv_columns(
    const std::string& x_name, const std::vector<SweepResult>& results);

/// Writes grid-point row `i` (x value, then mean[/sd/ci95] per series).
/// The single row-formatting path of both CSV writers — what makes a
/// streamed CSV byte-identical to a buffered one.
void write_sweep_csv_row(CsvWriter& csv, const std::vector<SweepResult>& results,
                         std::size_t i);

/// Prints a figure header with the paper reference and expected shape.
void print_figure_banner(std::ostream& out, const std::string& figure_id,
                         const std::string& description, const std::string& expected_shape);

/// Renders sweep results side by side. All results must share the grid
/// (throws std::invalid_argument otherwise). Results carrying more than
/// one replication get extra `:sd` and `:ci95` columns after the mean.
void print_sweep_table(std::ostream& out, const std::string& x_name,
                       const std::vector<SweepResult>& results);

/// Writes the same data as CSV to `path` (directories must exist), with a
/// leading `# reps=...` provenance comment when replications are present.
/// Returns false (and prints a warning) if the file cannot be opened.
bool write_sweep_csv(const std::string& path, const std::string& x_name,
                     const std::vector<SweepResult>& results);

/// Ensures the bench output directory exists; returns its path.
[[nodiscard]] std::string bench_output_dir();

}  // namespace rtmac::expfw
