#include "expfw/scenarios.hpp"

#include <cmath>
#include <memory>

#include "mac/centralized_scheduler.hpp"
#include "mac/priority_provider.hpp"
#include "mac/reliability_estimator.hpp"
#include "traffic/arrival_process.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rtmac::expfw {

core::Influence paper_influence() { return core::Influence::paper_log(100.0); }

net::NetworkConfig video_symmetric(double alpha, double rho, std::uint64_t seed) {
  return net::symmetric_network(VideoScenario::kNumLinks, VideoScenario::deadline(),
                                phy::PhyParams::video_80211a(), VideoScenario::kReliability,
                                traffic::UniformBurstyArrivals{alpha}, rho, seed);
}

net::NetworkConfig video_asymmetric(double alpha_star, double rho, std::uint64_t seed) {
  constexpr std::size_t kGroupSize = 10;
  net::NetworkConfig cfg;
  cfg.interval_length = VideoScenario::deadline();
  cfg.phy = phy::PhyParams::video_80211a();
  cfg.seed = seed;
  for (std::size_t n = 0; n < 2 * kGroupSize; ++n) {
    const bool group1 = n < kGroupSize;
    const double p = group1 ? 0.5 : 0.8;
    const double alpha = group1 ? 0.5 * alpha_star : alpha_star;
    cfg.success_prob.push_back(p);
    cfg.arrivals.push_back(std::make_unique<traffic::UniformBurstyArrivals>(alpha));
    cfg.requirements.lambda.push_back(cfg.arrivals.back()->mean());
    cfg.requirements.rho.push_back(rho);
  }
  return cfg;
}

std::vector<LinkId> asymmetric_group(int group) {
  RTMAC_REQUIRE(group == 1 || group == 2);
  std::vector<LinkId> links;
  for (LinkId n = 0; n < 10; ++n) links.push_back(group == 1 ? n : n + 10);
  return links;
}

net::NetworkConfig control_symmetric(double lambda, double rho, std::uint64_t seed) {
  return net::symmetric_network(ControlScenario::kNumLinks, ControlScenario::deadline(),
                                phy::PhyParams::control_80211a(),
                                ControlScenario::kReliability,
                                traffic::BernoulliArrivals{lambda}, rho, seed);
}

phy::InterferenceGraph hidden_terminal_pair() {
  // Links 0 and 1 conflict but cannot hear each other.
  return phy::InterferenceGraph::from_lists(2, /*conflict_lists=*/{{1}, {0}},
                                            /*sense_lists=*/{{}, {}});
}

phy::InterferenceGraph hidden_cells_topology(std::size_t num_links, std::size_t cell_size) {
  RTMAC_REQUIRE(num_links >= 1 && cell_size >= 1);
  std::vector<std::vector<LinkId>> conflict(num_links);
  std::vector<std::vector<LinkId>> sense(num_links);
  for (std::size_t a = 0; a < num_links; ++a) {
    for (std::size_t b = 0; b < num_links; ++b) {
      if (a == b) continue;
      conflict[a].push_back(static_cast<LinkId>(b));
      if (a / cell_size == b / cell_size) sense[a].push_back(static_cast<LinkId>(b));
    }
  }
  return phy::InterferenceGraph::from_lists(num_links, conflict, sense);
}

phy::InterferenceGraph two_cell_topology(std::size_t cell_size, std::size_t boundary_links) {
  RTMAC_REQUIRE(cell_size >= 1 && boundary_links <= cell_size);
  const std::size_t n = 2 * cell_size;
  std::vector<std::vector<LinkId>> conflict(n);
  std::vector<std::vector<LinkId>> sense(n);
  // The last `boundary_links` of each cell sit near the border.
  const auto is_boundary = [&](std::size_t i) {
    return i % cell_size >= cell_size - boundary_links;
  };
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const bool same_cell = a / cell_size == b / cell_size;
      if (same_cell || (is_boundary(a) && is_boundary(b))) {
        conflict[a].push_back(static_cast<LinkId>(b));
        sense[a].push_back(static_cast<LinkId>(b));
      }
    }
  }
  return phy::InterferenceGraph::from_lists(n, conflict, sense);
}

phy::InterferenceGraph disconnected_cells_topology(std::size_t num_links,
                                                   std::size_t cell_size) {
  RTMAC_REQUIRE(num_links >= 1 && cell_size >= 1);
  std::vector<std::vector<LinkId>> conflict(num_links);
  std::vector<std::vector<LinkId>> sense(num_links);
  for (std::size_t a = 0; a < num_links; ++a) {
    for (std::size_t b = 0; b < num_links; ++b) {
      if (a == b || a / cell_size != b / cell_size) continue;
      conflict[a].push_back(static_cast<LinkId>(b));
      sense[a].push_back(static_cast<LinkId>(b));
    }
  }
  return phy::InterferenceGraph::from_lists(num_links, conflict, sense);
}

phy::SparseTopology city_unit_disk_topology(std::size_t num_cells, std::size_t links_per_cell,
                                            std::uint64_t seed) {
  RTMAC_REQUIRE(num_cells >= 1 && links_per_cell >= 1);
  // Cluster centers on a square grid with spacing far beyond both ranges;
  // links jitter within +-0.5 of the center, receivers within 0.25 of their
  // transmitter. Ranges of 3.0 cover any intra-cluster pair (diameter < 2.5)
  // and never reach the next cluster (spacing 10.0), so each cluster is one
  // complete collision domain and clusters are independent.
  constexpr double kSpacing = 10.0;
  constexpr double kRange = 3.0;
  const auto side = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(num_cells))));
  Rng rng{seed, /*stream_id=*/0xC17BED5ULL};
  std::vector<phy::InterferenceGraph::LinkPlacement> links;
  links.reserve(num_cells * links_per_cell);
  for (std::size_t c = 0; c < num_cells; ++c) {
    const double cx = static_cast<double>(c % side) * kSpacing;
    const double cy = static_cast<double>(c / side) * kSpacing;
    for (std::size_t l = 0; l < links_per_cell; ++l) {
      phy::InterferenceGraph::LinkPlacement p;
      p.tx.x = cx + rng.next_double() - 0.5;
      p.tx.y = cy + rng.next_double() - 0.5;
      p.rx.x = p.tx.x + 0.5 * (rng.next_double() - 0.5);
      p.rx.y = p.tx.y + 0.5 * (rng.next_double() - 0.5);
      links.push_back(p);
    }
  }
  return phy::sparse_unit_disk(links, kRange, kRange);
}

phy::SparseTopology chain_cells_topology(std::size_t num_cells, std::size_t cell_size) {
  RTMAC_REQUIRE(num_cells >= 1 && cell_size >= 1);
  phy::SparseTopology topo;
  topo.num_links = num_cells * cell_size;
  topo.conflict.resize(topo.num_links);
  topo.sense.resize(topo.num_links);
  for (std::size_t a = 0; a < topo.num_links; ++a) {
    for (std::size_t b = 0; b < topo.num_links; ++b) {
      if (a == b || a / cell_size != b / cell_size) continue;
      topo.conflict[a].push_back(static_cast<LinkId>(b));
      topo.sense[a].push_back(static_cast<LinkId>(b));
    }
  }
  // Hidden-terminal boundary pairs: conflict-only, never sensed, and added
  // in ascending order relative to the intra-cell neighbors above.
  for (std::size_t c = 0; c + 1 < num_cells; ++c) {
    const auto last = static_cast<LinkId>(c * cell_size + cell_size - 1);
    const auto first = static_cast<LinkId>((c + 1) * cell_size);
    topo.conflict[last].push_back(first);
    topo.conflict[first].insert(topo.conflict[first].begin(), last);
  }
  return topo;
}

net::NetworkConfig with_topology(net::NetworkConfig cfg, phy::InterferenceGraph topology) {
  RTMAC_REQUIRE(topology.num_links() == cfg.num_links());
  cfg.topology = std::move(topology);
  return cfg;
}

net::NetworkConfig with_sparse_topology(net::NetworkConfig cfg, phy::SparseTopology topology) {
  RTMAC_REQUIRE(topology.num_links == cfg.num_links());
  cfg.sparse_topology = std::make_shared<const phy::SparseTopology>(std::move(topology));
  return cfg;
}

namespace {

mac::DpLinkParams dp_params_from(const mac::SchemeContext& ctx, bool reordering,
                                 int max_swap_pairs = 1) {
  return mac::DpLinkParams{
      .data_airtime = ctx.phy.data_airtime,
      .empty_airtime = ctx.phy.empty_airtime,
      .backoff_slot = ctx.phy.backoff_slot,
      .reordering = reordering,
      .max_swap_pairs = max_swap_pairs,
  };
}

}  // namespace

mac::SchemeFactory dbdp_factory() { return dbdp_factory(paper_influence(), kPaperR); }

mac::SchemeFactory dbdp_factory(core::Influence influence, double r) {
  return [influence = std::move(influence), r](const mac::SchemeContext& ctx) {
    auto provider = std::make_unique<mac::DebtMuProvider>(
        core::DebtMu{influence, r}, ctx.debts, ctx.success_prob);
    return std::make_unique<mac::DpScheme>(ctx, std::move(provider),
                                           dp_params_from(ctx, /*reordering=*/true), "DB-DP");
  };
}

mac::SchemeFactory dbdp_multipair_factory(int max_swap_pairs) {
  return [max_swap_pairs](const mac::SchemeContext& ctx) {
    auto provider = std::make_unique<mac::DebtMuProvider>(
        core::DebtMu{paper_influence(), kPaperR}, ctx.debts, ctx.success_prob);
    return std::make_unique<mac::DpScheme>(
        ctx, std::move(provider), dp_params_from(ctx, /*reordering=*/true, max_swap_pairs),
        "DB-DP(x" + std::to_string(max_swap_pairs) + ")");
  };
}

mac::SchemeFactory dbdp_estimated_p_factory(double initial_estimate) {
  return [initial_estimate](const mac::SchemeContext& ctx) {
    auto provider = std::make_unique<mac::EstimatedMuProvider>(
        core::DebtMu{paper_influence(), kPaperR}, ctx.debts, ctx.num_links,
        initial_estimate);
    mac::ReliabilityEstimator* estimator = &provider->estimator();
    return std::make_unique<mac::DpScheme>(ctx, std::move(provider),
                                           dp_params_from(ctx, /*reordering=*/true),
                                           "DB-DP(learned-p)", std::nullopt, estimator);
  };
}

mac::SchemeFactory dp_fixed_mu_factory(std::vector<double> mu) {
  return dp_fixed_mu_factory(std::move(mu), 1);
}

mac::SchemeFactory dp_fixed_mu_factory(std::vector<double> mu, int max_swap_pairs) {
  return [mu = std::move(mu), max_swap_pairs](const mac::SchemeContext& ctx) {
    // mu is indexed by GLOBAL link id; slice it for shard cells (identity
    // mapping on the legacy path).
    RTMAC_ASSERT(mu.size() == ctx.priority_space());
    std::vector<double> local;
    local.reserve(ctx.num_links);
    for (std::size_t n = 0; n < ctx.num_links; ++n) local.push_back(mu[ctx.global_id(n)]);
    auto provider = std::make_unique<mac::FixedMuProvider>(std::move(local));
    return std::make_unique<mac::DpScheme>(
        ctx, std::move(provider), dp_params_from(ctx, /*reordering=*/true, max_swap_pairs),
        "DP(fixed-mu)");
  };
}

mac::SchemeFactory dp_static_priority_factory() {
  return [](const mac::SchemeContext& ctx) {
    // Coin biases are irrelevant with reordering disabled, but the provider
    // contract requires values strictly inside (0, 1).
    auto provider =
        std::make_unique<mac::FixedMuProvider>(std::vector<double>(ctx.num_links, 0.5));
    return std::make_unique<mac::DpScheme>(ctx, std::move(provider),
                                           dp_params_from(ctx, /*reordering=*/false),
                                           "DP(static)");
  };
}

mac::SchemeFactory ldf_factory() {
  return [](const mac::SchemeContext& ctx) {
    return std::make_unique<mac::CentralizedScheme>(
        ctx, mac::CentralizedParams{core::Influence::identity()}, "LDF");
  };
}

mac::SchemeFactory eldf_factory(core::Influence influence) {
  return [influence = std::move(influence)](const mac::SchemeContext& ctx) {
    return std::make_unique<mac::CentralizedScheme>(ctx, mac::CentralizedParams{influence},
                                                    "ELDF(" + influence.name() + ")");
  };
}

mac::SchemeFactory fcsma_factory() { return fcsma_factory(mac::FcsmaParams{}); }

mac::SchemeFactory fcsma_factory(mac::FcsmaParams params) {
  return [params = std::move(params)](const mac::SchemeContext& ctx) {
    return std::make_unique<mac::FcsmaScheme>(ctx, params, "FCSMA");
  };
}

mac::SchemeFactory dcf_factory() {
  return [](const mac::SchemeContext& ctx) {
    return std::make_unique<mac::DcfScheme>(ctx, mac::DcfParams{}, "DCF");
  };
}

}  // namespace rtmac::expfw
