// Byte-identity regression against golden figure CSVs.
//
// The interference-topology refactor promises that the default complete
// collision domain reproduces the pre-refactor Medium exactly — same RNG
// draw order, same listener notification order, same numbers. These tests
// re-run the fig3/fig9 smoke sweeps in-process and compare the CSV output
// byte-for-byte against goldens captured before the refactor
// (tests/golden/). Any diff means the complete-graph fast path changed
// observable behavior, which is a bug even if the new numbers look
// plausible.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"

#ifndef RTMAC_TEST_DATA_DIR
#error "RTMAC_TEST_DATA_DIR must point at the tests/ source directory"
#endif

namespace rtmac::expfw {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Replays a figure bench's --smoke invocation: 3 grid points, 25 intervals,
/// single replication, default thread count.
std::string smoke_csv(const std::vector<SchemeSpec>& schemes, const ConfigAt& config_at,
                      const std::vector<double>& grid, const std::string& x_name) {
  const auto results = run_sweeps(schemes, config_at, grid, /*intervals=*/25,
                                  total_deficiency_metric(), {"deficiency"}, SweepOptions{});
  const std::string path =
      testing::TempDir() + "golden_regression_" + x_name + ".csv";
  EXPECT_TRUE(write_sweep_csv(path, x_name, results));
  const std::string contents = read_file(path);
  std::remove(path.c_str());
  return contents;
}

TEST(GoldenRegressionTest, Fig3SmokeCsvIsByteIdenticalToPreRefactorBaseline) {
  const std::string csv = smoke_csv(
      {{"LDF", ldf_factory()}, {"DB-DP", dbdp_factory()}, {"FCSMA", fcsma_factory()}},
      [](double alpha) { return video_symmetric(alpha, 0.9, 1001); },
      linspace(0.40, 0.80, 3), "alpha");
  EXPECT_EQ(csv, read_file(std::string{RTMAC_TEST_DATA_DIR} + "/golden/fig3_smoke.csv"));
}

TEST(GoldenRegressionTest, Fig9SmokeCsvIsByteIdenticalToPreRefactorBaseline) {
  const std::string csv = smoke_csv(
      {{"LDF", ldf_factory()}, {"DB-DP", dbdp_factory()}, {"FCSMA", fcsma_factory()}},
      [](double l) { return control_symmetric(l, 0.99, 1009); },
      linspace(0.60, 1.00, 3), "lambda");
  EXPECT_EQ(csv, read_file(std::string{RTMAC_TEST_DATA_DIR} + "/golden/fig9_smoke.csv"));
}

TEST(GoldenRegressionTest, ExplicitCompleteTopologyMatchesDefaultByteForByte) {
  // Attaching InterferenceGraph::complete(n) explicitly must not perturb a
  // single byte either.
  const auto base = [](double alpha) { return video_symmetric(alpha, 0.9, 1001); };
  const auto with_complete = [&](double alpha) {
    return with_topology(base(alpha),
                         phy::InterferenceGraph::complete(VideoScenario::kNumLinks));
  };
  const std::vector<SchemeSpec> schemes{{"LDF", ldf_factory()},
                                        {"DB-DP", dbdp_factory()},
                                        {"FCSMA", fcsma_factory()}};
  const auto grid = linspace(0.40, 0.80, 3);
  EXPECT_EQ(smoke_csv(schemes, with_complete, grid, "alpha"),
            read_file(std::string{RTMAC_TEST_DATA_DIR} + "/golden/fig3_smoke.csv"));
}

}  // namespace
}  // namespace rtmac::expfw
