// End-to-end observability of the experiment framework: run_sweeps with
// --metrics-out/--trace-out must produce well-formed, schema-versioned
// JSONL whose sim-domain half is byte-identical across --jobs (the same
// determinism contract the CSV output honours), plus a structurally valid
// Chrome trace; RunObserver must do the same for directly-run networks.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "expfw/observe.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "obs/json.hpp"

namespace rtmac::expfw {
namespace {

std::string file_contents(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / ("rtmac_obs_test_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// Asserts every line of a JSONL file parses, and that the first line is
/// the rtmac.metrics schema header. Returns the parsed non-header lines'
/// "name" values (quotes stripped).
std::vector<std::string> check_jsonl(const std::string& path) {
  std::ifstream in{path};
  EXPECT_TRUE(in.is_open()) << path;
  std::string line;
  EXPECT_TRUE(std::getline(in, line));
  auto header = obs::parse_flat_json(line);
  EXPECT_TRUE(header.has_value());
  EXPECT_EQ(header->at("schema"), "\"rtmac.metrics\"");

  std::vector<std::string> names;
  while (std::getline(in, line)) {
    auto parsed = obs::parse_flat_json(line);
    EXPECT_TRUE(parsed.has_value()) << line;
    if (!parsed) continue;
    const auto name = obs::json_unquote(parsed->at("name"));
    EXPECT_TRUE(name.has_value());
    if (name) names.push_back(*name);
  }
  return names;
}

bool contains(const std::vector<std::string>& names, const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

SweepOptions observed_options(std::size_t jobs, const std::string& dir,
                              const std::string& trace) {
  SweepOptions opts;
  opts.reps = 2;
  opts.jobs = jobs;
  opts.metrics_dir = dir;
  opts.trace_out = trace;
  return opts;
}

std::vector<SweepResult> tiny_sweep(const SweepOptions& opts) {
  return run_sweeps({{"LDF", ldf_factory()}, {"DB-DP", dbdp_factory()}},
                    [](double a) { return video_symmetric(a, 0.9, 42); }, {0.4, 0.55},
                    /*intervals=*/10, total_deficiency_metric(), {"deficiency"}, opts);
}

TEST(SweepObservabilityTest, WritesWellFormedMetricsProfileAndTrace) {
  const std::string dir = temp_dir("sweep");
  const std::string trace = dir + "/trace.json";
  const auto results = tiny_sweep(observed_options(2, dir, trace));

  // Profiles are populated alongside the files.
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    ASSERT_EQ(r.profiles.size(), 2u);
    for (const auto& point : r.profiles) {
      ASSERT_EQ(point.size(), 2u);
      for (const auto& p : point) EXPECT_GT(p.events, 0u);
    }
  }

  const auto names = check_jsonl(dir + "/metrics.jsonl");
  EXPECT_TRUE(contains(names, "phy.busy_fraction"));
  EXPECT_TRUE(contains(names, "link.delivery_rate.link0"));
  EXPECT_TRUE(contains(names, "link.collision_rate.link19"));
  EXPECT_TRUE(contains(names, "net.deficiency"));
  EXPECT_TRUE(contains(names, "sim.events_executed"));
  // Wall-clock data lives in profile.jsonl, not the deterministic file.
  EXPECT_FALSE(contains(names, "task_profile"));
  const auto profile_names = check_jsonl(dir + "/profile.jsonl");
  // One profile line per (scheme, point, rep) task.
  EXPECT_EQ(profile_names.size(), 2u * 2u * 2u);

  const std::string trace_json = file_contents(trace);
  EXPECT_EQ(trace_json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(trace_json.find("\"schema\":\"rtmac.trace\""), std::string::npos);
}

TEST(SweepObservabilityTest, MetricsFileIsByteIdenticalAcrossJobCounts) {
  const std::string dir1 = temp_dir("jobs1");
  const std::string dirN = temp_dir("jobsN");
  (void)tiny_sweep(observed_options(1, dir1, {}));
  (void)tiny_sweep(observed_options(4, dirN, {}));
  const std::string serial = file_contents(dir1 + "/metrics.jsonl");
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, file_contents(dirN + "/metrics.jsonl"));
}

TEST(SweepObservabilityTest, DisabledObservabilityLeavesResultsLean) {
  SweepOptions opts;
  opts.reps = 1;
  opts.jobs = 1;
  const auto results = tiny_sweep(opts);
  for (const auto& r : results) EXPECT_TRUE(r.profiles.empty());
}

TEST(RunObserverTest, WritesLabeledMetricsAndTrace) {
  const std::string dir = temp_dir("observer");
  const std::string trace = dir + "/run_trace.json";
  net::Network network{video_symmetric(0.55, 0.9, 7), dbdp_factory()};
  RunObserver observer{dir, trace};
  EXPECT_TRUE(observer.enabled());
  observer.attach(network, "dbdp");
  network.run(10);
  ASSERT_TRUE(observer.finish());

  const auto names = check_jsonl(dir + "/metrics_dbdp.jsonl");
  EXPECT_TRUE(contains(names, "phy.busy_fraction"));
  EXPECT_TRUE(contains(names, "profile.wall_seconds"));
  EXPECT_TRUE(contains(names, "profile.events_per_sec"));
  // The label is spliced into every metric line.
  std::ifstream in{dir + "/metrics_dbdp.jsonl"};
  std::string header, line;
  std::getline(in, header);
  while (std::getline(in, line)) {
    const auto parsed = obs::parse_flat_json(line);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->at("label"), "\"dbdp\"");
  }

  const std::string trace_json = file_contents(trace);
  EXPECT_EQ(trace_json.find("{\"traceEvents\":["), 0u);
}

TEST(RunObserverTest, DisabledObserverIsANoOp) {
  net::Network network{video_symmetric(0.55, 0.9, 8), dbdp_factory()};
  RunObserver observer{{}, {}};
  EXPECT_FALSE(observer.enabled());
  observer.attach(network, "ignored");
  network.run(5);
  EXPECT_TRUE(observer.finish());
  EXPECT_GT(network.simulator().events_executed(), 0u);
}

}  // namespace
}  // namespace rtmac::expfw
