// The sweep engine's streaming outputs:
//  - the --metrics-stream file is byte-identical for ANY --jobs (per-task
//    string sinks concatenated in deterministic task order, sim-time
//    stamps only);
//  - the incrementally streamed CSV is byte-identical to the buffered
//    write_sweep_csv for the same results;
//  - validation: stream_every >= 1, csv_path xor metrics_dir.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"
#include "obs/json.hpp"
#include "obs/stream.hpp"

namespace rtmac::expfw {
namespace {

std::string file_contents(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<SweepResult> small_sweep(const SweepOptions& opts) {
  return run_sweeps(
      {{"LDF", ldf_factory()}, {"FCSMA", fcsma_factory()}},
      [](double a) { return video_symmetric(a, 0.9, 42); }, {0.4, 0.55, 0.7},
      /*intervals=*/15, total_deficiency_metric(), {"deficiency"}, opts);
}

TEST(StreamSweepTest, StreamedMetricsAreByteIdenticalAcrossJobCounts) {
  const std::string p1 = temp_path("rtmac_stream_jobs1.jsonl");
  const std::string pn = temp_path("rtmac_stream_jobsN.jsonl");

  SweepOptions opts;
  opts.reps = 2;
  opts.stream_every = 5;
  opts.jobs = 1;
  opts.stream_path = p1;
  (void)small_sweep(opts);
  opts.jobs = 4;
  opts.stream_path = pn;
  (void)small_sweep(opts);

  const std::string serial = file_contents(p1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, file_contents(pn));

  // Spot-check the shape: schema header first, then parseable snapshot
  // lines carrying the task context and sim-time stamps.
  std::istringstream in{serial};
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  auto header = obs::parse_flat_json(line);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->at("schema"), "\"rtmac.metrics-stream\"");
  std::size_t snapshot_lines = 0;
  while (std::getline(in, line)) {
    auto parsed = obs::parse_flat_json(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_TRUE(parsed->count("scheme"));
    EXPECT_TRUE(parsed->count("k"));
    EXPECT_TRUE(parsed->count("t_ns"));
    ++snapshot_lines;
  }
  // 15 intervals at cadence 5 -> 3 snapshots per task, 12 tasks, many
  // metric lines per snapshot.
  EXPECT_GT(snapshot_lines, 0u);

  std::remove(p1.c_str());
  std::remove(pn.c_str());
}

TEST(StreamSweepTest, StreamedCsvMatchesBufferedWriterByteForByte) {
  const std::string streamed_path = temp_path("rtmac_streamed.csv");
  const std::string buffered_path = temp_path("rtmac_buffered.csv");

  SweepOptions opts;
  opts.reps = 2;  // exercises the "# reps=" comment + sd/ci95 columns
  opts.jobs = 3;
  opts.csv_path = streamed_path;
  opts.csv_x = "alpha";
  const auto results = small_sweep(opts);
  ASSERT_TRUE(write_sweep_csv(buffered_path, "alpha", results));

  const std::string streamed = file_contents(streamed_path);
  ASSERT_FALSE(streamed.empty());
  EXPECT_EQ(streamed, file_contents(buffered_path));

  std::remove(streamed_path.c_str());
  std::remove(buffered_path.c_str());
}

TEST(StreamSweepTest, ValidationRejectsBadStreamingOptions) {
  const auto config_at = [](double a) { return video_symmetric(a, 0.9, 1); };
  const auto metric = total_deficiency_metric();

  SweepOptions zero_cadence;
  zero_cadence.stream_every = 0;
  EXPECT_THROW(run_sweeps({{"LDF", ldf_factory()}}, config_at, {0.4}, 1, metric, {"d"},
                          zero_cadence),
               std::invalid_argument);

  SweepOptions csv_and_metrics;
  csv_and_metrics.csv_path = temp_path("rtmac_never_written.csv");
  csv_and_metrics.metrics_dir = temp_path("rtmac_never_written_dir");
  EXPECT_THROW(run_sweeps({{"LDF", ldf_factory()}}, config_at, {0.4}, 1, metric, {"d"},
                          csv_and_metrics),
               std::invalid_argument);
}

}  // namespace
}  // namespace rtmac::expfw
