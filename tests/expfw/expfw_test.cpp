#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "net/network.hpp"

#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"

namespace rtmac::expfw {
namespace {

TEST(ScenariosTest, VideoSymmetricMatchesPaperParameters) {
  const auto cfg = video_symmetric(0.55, 0.9, 1);
  EXPECT_EQ(cfg.num_links(), 20u);
  EXPECT_EQ(cfg.interval_length, Duration::milliseconds(20));
  for (double p : cfg.success_prob) EXPECT_DOUBLE_EQ(p, 0.7);
  for (double l : cfg.requirements.lambda) EXPECT_NEAR(l, 3.5 * 0.55, 1e-12);
  for (double r : cfg.requirements.rho) EXPECT_DOUBLE_EQ(r, 0.9);
  EXPECT_TRUE(cfg.validate());
}

TEST(ScenariosTest, VideoAsymmetricGroups) {
  const auto cfg = video_asymmetric(0.7, 0.9, 1);
  EXPECT_EQ(cfg.num_links(), 20u);
  for (LinkId n : asymmetric_group(1)) {
    EXPECT_DOUBLE_EQ(cfg.success_prob[n], 0.5);
    EXPECT_NEAR(cfg.requirements.lambda[n], 3.5 * 0.35, 1e-12);
  }
  for (LinkId n : asymmetric_group(2)) {
    EXPECT_DOUBLE_EQ(cfg.success_prob[n], 0.8);
    EXPECT_NEAR(cfg.requirements.lambda[n], 3.5 * 0.7, 1e-12);
  }
  EXPECT_TRUE(cfg.validate());
}

TEST(ScenariosTest, ControlSymmetricMatchesPaperParameters) {
  const auto cfg = control_symmetric(0.78, 0.99, 1);
  EXPECT_EQ(cfg.num_links(), 10u);
  EXPECT_EQ(cfg.interval_length, Duration::milliseconds(2));
  EXPECT_TRUE(cfg.validate());
}

TEST(ScenariosTest, PaperInfluenceIsLog100) {
  const auto f = paper_influence();
  EXPECT_NEAR(f(0.0), std::log(100.0), 1e-12);
}

TEST(ScenariosTest, FactoriesProduceNamedSchemes) {
  auto cfg = video_symmetric(0.3, 0.9, 1);
  net::Network dbdp{cfg.clone(), dbdp_factory()};
  net::Network ldf{cfg.clone(), ldf_factory()};
  net::Network fcsma{cfg.clone(), fcsma_factory()};
  net::Network dcf{cfg.clone(), dcf_factory()};
  EXPECT_EQ(dbdp.scheme().name(), "DB-DP");
  EXPECT_EQ(ldf.scheme().name(), "LDF");
  EXPECT_EQ(fcsma.scheme().name(), "FCSMA");
  EXPECT_EQ(dcf.scheme().name(), "DCF");
}

TEST(RunnerTest, LinspaceEndpointsAndSpacing) {
  const auto xs = linspace(0.0, 1.0, 5);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 1.0);
  EXPECT_DOUBLE_EQ(xs[2], 0.5);
}

TEST(RunnerTest, SweepProducesOneValuePerPoint) {
  const auto grid = linspace(0.1, 0.3, 3);
  const auto result = run_sweep(
      "LDF", ldf_factory(),
      [](double a) { return video_symmetric(a, 0.9, 5); }, grid, 20,
      total_deficiency_metric(), {"deficiency"});
  EXPECT_EQ(result.scheme, "LDF");
  EXPECT_EQ(result.reps, 1u);
  ASSERT_EQ(result.samples.size(), 3u);
  for (std::size_t i = 0; i < result.samples.size(); ++i) {
    ASSERT_EQ(result.samples[i].size(), 1u);
    ASSERT_EQ(result.samples[i][0].size(), 1u);
    EXPECT_GE(result.mean(i, 0), 0.0);
  }
}

TEST(RunnerTest, GroupMetricReturnsPerGroupValues) {
  const auto metric = group_deficiency_metric({asymmetric_group(1), asymmetric_group(2)});
  const auto result = run_sweep(
      "LDF", ldf_factory(),
      [](double a) { return video_asymmetric(a, 0.9, 5); }, {0.2}, 20, metric,
      {"group1", "group2"});
  ASSERT_EQ(result.samples.size(), 1u);
  EXPECT_EQ(result.samples[0][0].size(), 2u);
}

TEST(ReportTest, TableRendersAllSeries) {
  SweepResult r1{"A", {"m"}, {0.1, 0.2}, 1, {{{1.0}}, {{2.0}}}, {}};
  SweepResult r2{"B", {"m"}, {0.1, 0.2}, 1, {{{3.0}}, {{4.0}}}, {}};
  std::ostringstream out;
  print_sweep_table(out, "x", {r1, r2});
  const std::string s = out.str();
  EXPECT_NE(s.find("A"), std::string::npos);
  EXPECT_NE(s.find("B"), std::string::npos);
  EXPECT_NE(s.find("0.100"), std::string::npos);
  EXPECT_NE(s.find("4.0000"), std::string::npos);
}

TEST(ReportTest, MultiMetricColumnsAreQualified) {
  SweepResult r{"FCSMA", {"g1", "g2"}, {0.1}, 1, {{{1.0, 2.0}}}, {}};
  std::ostringstream out;
  print_sweep_table(out, "x", {r});
  EXPECT_NE(out.str().find("FCSMA:g1"), std::string::npos);
  EXPECT_NE(out.str().find("FCSMA:g2"), std::string::npos);
}

TEST(ReportTest, BannerMentionsFigure) {
  std::ostringstream out;
  print_figure_banner(out, "Fig. 3", "symmetric sweep", "DB-DP ~ LDF");
  EXPECT_NE(out.str().find("Fig. 3"), std::string::npos);
  EXPECT_NE(out.str().find("DB-DP ~ LDF"), std::string::npos);
}

TEST(ReportTest, CsvWriterWritesFile) {
  SweepResult r{"A", {"m"}, {0.5}, 1, {{{7.0}}}, {}};
  const std::string path = bench_output_dir() + "/expfw_test_tmp.csv";
  ASSERT_TRUE(write_sweep_csv(path, "x", {r}));
  std::ifstream in{path};
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,A");
  std::getline(in, line);
  EXPECT_EQ(line, "0.5,7");
}

}  // namespace
}  // namespace rtmac::expfw
