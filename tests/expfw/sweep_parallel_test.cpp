// The tentpole guarantees of the parallel sweep engine:
//  - results are bit-identical regardless of --jobs (scheduling order must
//    not leak into the numbers), which is what makes parallel replication
//    trustworthy;
//  - seeds derive deterministically from (base, scheme, x-index, rep);
//  - replication statistics (mean/sd/ci95) are computed correctly;
//  - argument validation survives NDEBUG (real exceptions, not asserts).
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "expfw/report.hpp"
#include "expfw/runner.hpp"
#include "expfw/scenarios.hpp"

namespace rtmac::expfw {
namespace {

std::string file_contents(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

SweepOptions sweep_options(std::size_t reps, std::size_t jobs) {
  SweepOptions opts;
  opts.reps = reps;
  opts.jobs = jobs;
  return opts;
}

std::vector<SweepResult> small_sweep(const SweepOptions& opts) {
  return run_sweeps(
      {{"LDF", ldf_factory()}, {"FCSMA", fcsma_factory()}},
      [](double a) { return video_symmetric(a, 0.9, 42); }, {0.4, 0.55, 0.7},
      /*intervals=*/15, total_deficiency_metric(), {"deficiency"}, opts);
}

TEST(SweepSeedTest, DeterministicAndSensitiveToEveryInput) {
  const auto s = sweep_seed(1, "LDF", 2, 3);
  EXPECT_EQ(s, sweep_seed(1, "LDF", 2, 3));
  EXPECT_NE(s, sweep_seed(2, "LDF", 2, 3));
  EXPECT_NE(s, sweep_seed(1, "DB-DP", 2, 3));
  EXPECT_NE(s, sweep_seed(1, "LDF", 1, 3));
  EXPECT_NE(s, sweep_seed(1, "LDF", 2, 4));
}

TEST(SweepSeedTest, ReplicationsAreDistinctStreams) {
  for (std::size_t r = 1; r < 16; ++r) {
    EXPECT_NE(sweep_seed(7, "DB-DP", 0, 0), sweep_seed(7, "DB-DP", 0, r));
  }
}

TEST(ParallelSweepTest, ResultsAreIdenticalAcrossJobCounts) {
  const auto serial = small_sweep(sweep_options(2, 1));
  const auto parallel = small_sweep(sweep_options(2, 4));
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t s = 0; s < serial.size(); ++s) {
    EXPECT_EQ(serial[s].scheme, parallel[s].scheme);
    EXPECT_EQ(serial[s].xs, parallel[s].xs);
    // Bit-identical, not approximately equal: the task seed depends only on
    // (base, scheme, x-index, rep), never on which thread ran the task.
    EXPECT_EQ(serial[s].samples, parallel[s].samples);
  }
}

TEST(ParallelSweepTest, CsvOutputIsByteIdenticalAcrossJobCounts) {
  const auto serial = small_sweep(sweep_options(2, 1));
  const auto parallel = small_sweep(sweep_options(2, 3));
  const std::string p1 = bench_output_dir() + "/determinism_jobs1.csv";
  const std::string pn = bench_output_dir() + "/determinism_jobsN.csv";
  ASSERT_TRUE(write_sweep_csv(p1, "alpha", serial));
  ASSERT_TRUE(write_sweep_csv(pn, "alpha", parallel));
  const std::string serial_csv = file_contents(p1);
  EXPECT_FALSE(serial_csv.empty());
  EXPECT_EQ(serial_csv, file_contents(pn));
}

TEST(ParallelSweepTest, ReplicationStatisticsMatchSamples) {
  const auto results = small_sweep(sweep_options(3, 2));
  const auto& r = results.front();
  ASSERT_EQ(r.reps, 3u);
  for (std::size_t i = 0; i < r.xs.size(); ++i) {
    ASSERT_EQ(r.samples[i].size(), 3u);
    double sum = 0.0;
    for (const auto& sample : r.samples[i]) {
      ASSERT_EQ(sample.size(), 1u);
      sum += sample[0];
    }
    EXPECT_DOUBLE_EQ(r.mean(i, 0), sum / 3.0);
    EXPECT_GE(r.stddev(i, 0), 0.0);
    EXPECT_NEAR(r.ci95(i, 0), 1.96 * r.stddev(i, 0) / std::sqrt(3.0), 1e-12);
  }
}

TEST(ParallelSweepTest, SingleRepHasDegenerateStats) {
  const auto results = small_sweep(sweep_options(1, 2));
  const auto& r = results.front();
  EXPECT_EQ(r.reps, 1u);
  EXPECT_DOUBLE_EQ(r.stddev(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r.ci95(0, 0), 0.0);
}

TEST(ParallelSweepTest, ReportShowsCiColumnsForReplicatedSweeps) {
  const auto results = small_sweep(sweep_options(2, 2));
  std::ostringstream out;
  print_sweep_table(out, "alpha*", results);
  EXPECT_NE(out.str().find("LDF:sd"), std::string::npos);
  EXPECT_NE(out.str().find("LDF:ci95"), std::string::npos);
  EXPECT_NE(out.str().find("replications/point"), std::string::npos);
}

// Validation must throw real exceptions (assert-only checks vanish under
// NDEBUG and the Release CI leg would sail past bad arguments).
TEST(SweepValidationTest, LinspaceRejectsDegenerateGrids) {
  EXPECT_THROW(linspace(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(linspace(0.0, 1.0, 1), std::invalid_argument);
}

TEST(SweepValidationTest, RunSweepsRejectsBadArguments) {
  const auto config_at = [](double a) { return video_symmetric(a, 0.9, 1); };
  const auto metric = total_deficiency_metric();
  EXPECT_THROW(run_sweeps({}, config_at, {0.4}, 1, metric, {"d"}), std::invalid_argument);
  EXPECT_THROW(run_sweeps({{"LDF", ldf_factory()}}, config_at, {}, 1, metric, {"d"}),
               std::invalid_argument);
  EXPECT_THROW(run_sweeps({{"LDF", ldf_factory()}}, config_at, {0.4}, 1, metric, {}),
               std::invalid_argument);
  EXPECT_THROW(run_sweeps({{"LDF", ldf_factory()}}, config_at, {0.4}, 1, metric, {"d"},
                          sweep_options(0, 1)),
               std::invalid_argument);
}

TEST(SweepValidationTest, MetricArityMismatchSurfacesFromWorkers) {
  const auto config_at = [](double a) { return video_symmetric(a, 0.9, 1); };
  EXPECT_THROW((void)run_sweep("LDF", ldf_factory(), config_at, {0.4}, 1,
                               total_deficiency_metric(), {"a", "b"}),
               std::runtime_error);
}

TEST(SweepValidationTest, ReportRejectsMismatchedGrids) {
  SweepResult a{"A", {"m"}, {0.1}, 1, {{{1.0}}}, {}};
  SweepResult b{"B", {"m"}, {0.2}, 1, {{{2.0}}}, {}};
  std::ostringstream out;
  EXPECT_THROW(print_sweep_table(out, "x", {a, b}), std::invalid_argument);
  EXPECT_THROW(print_sweep_table(out, "x", {}), std::invalid_argument);
}

}  // namespace
}  // namespace rtmac::expfw
