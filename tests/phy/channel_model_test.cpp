#include "phy/channel_model.hpp"

#include <gtest/gtest.h>

#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "traffic/arrival_process.hpp"

namespace rtmac::phy {
namespace {

TEST(StaticChannelTest, MeanSuccessReportsP) {
  StaticChannel ch{{0.7, 0.3}};
  EXPECT_DOUBLE_EQ(ch.mean_success(0), 0.7);
  EXPECT_DOUBLE_EQ(ch.mean_success(1), 0.3);
  EXPECT_EQ(ch.num_links(), 2u);
}

TEST(StaticChannelTest, EmpiricalRateMatchesP) {
  StaticChannel ch{{0.7}};
  Rng rng{5};
  int ok = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) ok += ch.attempt_succeeds(0, rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ok) / kN, 0.7, 0.01);
}

TEST(GilbertElliottTest, StationaryMeanFormula) {
  // pi_bad = g2b / (g2b + b2g); mean = (1 - pi_bad) p_g + pi_bad p_b.
  GilbertElliottParams p{.p_good = 0.9, .p_bad = 0.1, .good_to_bad = 0.1, .bad_to_good = 0.3};
  const double pi_bad = 0.1 / 0.4;
  EXPECT_NEAR(p.mean_success(), 0.75 * 0.9 + pi_bad * 0.1, 1e-12);
}

TEST(GilbertElliottTest, EmpiricalRateMatchesStationaryMean) {
  GilbertElliottParams p{.p_good = 0.95, .p_bad = 0.2, .good_to_bad = 0.02, .bad_to_good = 0.1};
  GilbertElliottChannel ch{{p}};
  Rng rng{99};
  int ok = 0;
  constexpr int kN = 400000;
  for (int i = 0; i < kN; ++i) ok += ch.attempt_succeeds(0, rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ok) / kN, p.mean_success(), 0.01);
}

TEST(GilbertElliottTest, LossesAreBursty) {
  // Consecutive-attempt outcomes must be positively correlated: the
  // probability of failure immediately after a failure is much higher than
  // the marginal failure rate.
  GilbertElliottParams p{.p_good = 0.98, .p_bad = 0.05, .good_to_bad = 0.01, .bad_to_good = 0.05};
  GilbertElliottChannel ch{{p}};
  Rng rng{7};
  int failures = 0;
  int fail_after_fail = 0;
  bool prev_failed = false;
  constexpr int kN = 300000;
  for (int i = 0; i < kN; ++i) {
    const bool failed = !ch.attempt_succeeds(0, rng);
    if (prev_failed) {
      if (failed) ++fail_after_fail;
    }
    if (failed) ++failures;
    prev_failed = failed;
  }
  const double marginal = static_cast<double>(failures) / kN;
  const double conditional = static_cast<double>(fail_after_fail) / failures;
  EXPECT_GT(conditional, 2.0 * marginal);
}

TEST(GilbertElliottTest, IndependentChainsPerLink) {
  GilbertElliottParams p{.p_good = 1.0, .p_bad = 0.0, .good_to_bad = 0.5, .bad_to_good = 0.5};
  GilbertElliottChannel ch{{p, p}};
  Rng rng{3};
  // Drive only link 0; link 1's state must remain Good (initial).
  for (int i = 0; i < 100; ++i) (void)ch.attempt_succeeds(0, rng);
  EXPECT_TRUE(ch.in_good_state(1));
}

TEST(GilbertElliottTest, NetworkRunsWithBurstyChannel) {
  // End-to-end: DB-DP on a GE channel whose mean matches the configured p.
  GilbertElliottParams gep{.p_good = 0.9, .p_bad = 0.2, .good_to_bad = 0.05,
                           .bad_to_good = 0.15};
  const double mean = gep.mean_success();  // = 0.725
  auto cfg = net::symmetric_network(6, Duration::milliseconds(20),
                                    PhyParams::video_80211a(), mean,
                                    traffic::UniformBurstyArrivals{0.3}, 0.9, 8);
  cfg.channel_factory = [gep] {
    return std::make_unique<GilbertElliottChannel>(
        std::vector<GilbertElliottParams>(6, gep));
  };
  net::Network net{std::move(cfg), expfw::dbdp_factory()};
  net.run(800);
  // Light load: the requirement must still be met despite burstiness.
  EXPECT_LT(net.total_deficiency(), 0.1);
  EXPECT_EQ(net.medium().counters().collisions, 0u);
}

TEST(GilbertElliottTest, MediumReportsModelMean) {
  sim::Simulator sim;
  GilbertElliottParams p{.p_good = 0.9, .p_bad = 0.1, .good_to_bad = 0.1, .bad_to_good = 0.1};
  Medium medium{sim, std::make_unique<GilbertElliottChannel>(
                         std::vector<GilbertElliottParams>{p}),
                11};
  EXPECT_NEAR(medium.success_prob(0), p.mean_success(), 1e-12);
  EXPECT_EQ(medium.num_links(), 1u);
}

}  // namespace
}  // namespace rtmac::phy
