#include "phy/phy_params.hpp"

#include <gtest/gtest.h>

namespace rtmac::phy {
namespace {

TEST(PhyParamsTest, VideoProfileMatchesPaperConstants) {
  const PhyParams p = PhyParams::video_80211a();
  EXPECT_EQ(p.data_airtime, Duration::microseconds(330));
  EXPECT_EQ(p.empty_airtime, Duration::microseconds(70));
  EXPECT_EQ(p.backoff_slot, Duration::microseconds(9));
}

TEST(PhyParamsTest, ControlProfileMatchesPaperConstants) {
  const PhyParams p = PhyParams::control_80211a();
  EXPECT_EQ(p.data_airtime, Duration::microseconds(120));
  EXPECT_EQ(p.empty_airtime, Duration::microseconds(70));
  EXPECT_EQ(p.backoff_slot, Duration::microseconds(9));
}

TEST(PhyParamsTest, VideoInterval60Transmissions) {
  // Paper Section VI-A: "under LDF, there are up to 60 transmissions in each
  // interval" with 20 ms deadline / 330 us airtime.
  EXPECT_EQ(PhyParams::video_80211a().transmissions_per_interval(Duration::milliseconds(20)),
            60);
}

TEST(PhyParamsTest, ControlInterval16Transmissions) {
  // Paper Section VI-B: "under LDF there are 16 available transmissions" with
  // 2 ms deadline / 120 us airtime.
  EXPECT_EQ(PhyParams::control_80211a().transmissions_per_interval(Duration::milliseconds(2)),
            16);
}

}  // namespace
}  // namespace rtmac::phy
