#include "phy/interference.hpp"

#include <gtest/gtest.h>

namespace rtmac::phy {
namespace {

TEST(InterferenceGraphTest, CompleteGraphConflictsAndSensesEverywhere) {
  const auto g = InterferenceGraph::complete(4);
  EXPECT_EQ(g.num_links(), 4u);
  for (LinkId a = 0; a < 4; ++a) {
    for (LinkId b = 0; b < 4; ++b) {
      EXPECT_TRUE(g.conflicts(a, b));
      EXPECT_TRUE(g.senses(a, b));
    }
  }
  EXPECT_TRUE(g.complete_conflicts());
  EXPECT_TRUE(g.complete_sensing());
  EXPECT_TRUE(g.is_complete());
}

TEST(InterferenceGraphTest, SingleLinkIsComplete) {
  const auto g = InterferenceGraph::complete(1);
  EXPECT_TRUE(g.is_complete());
  EXPECT_TRUE(g.conflicts(0, 0));
  EXPECT_TRUE(g.senses(0, 0));
}

TEST(InterferenceGraphTest, SelfRelationsAreForced) {
  // Empty lists: every link still conflicts with and senses itself.
  const auto g = InterferenceGraph::from_lists(3, {{}, {}, {}}, {{}, {}, {}});
  for (LinkId n = 0; n < 3; ++n) {
    EXPECT_TRUE(g.conflicts(n, n));
    EXPECT_TRUE(g.senses(n, n));
    ASSERT_EQ(g.sensed_by(n).size(), 1u);
    EXPECT_EQ(g.sensed_by(n)[0], n);
  }
  EXPECT_FALSE(g.conflicts(0, 1));
  EXPECT_FALSE(g.senses(0, 1));
  EXPECT_FALSE(g.complete_conflicts());
  EXPECT_FALSE(g.complete_sensing());
}

TEST(InterferenceGraphTest, ConflictIsSymmetrized) {
  // b listed under a only: the conflict must hold in both directions.
  const auto g = InterferenceGraph::from_lists(2, {{1}, {}}, {{}, {}});
  EXPECT_TRUE(g.conflicts(0, 1));
  EXPECT_TRUE(g.conflicts(1, 0));
}

TEST(InterferenceGraphTest, SensingMayBeAsymmetric) {
  // Node 0 hears link 1, node 1 does not hear link 0 (power asymmetry).
  const auto g = InterferenceGraph::from_lists(2, {{}, {}}, {{1}, {}});
  EXPECT_TRUE(g.senses(0, 1));
  EXPECT_FALSE(g.senses(1, 0));
  // sensed_by inverts the relation: link 1 is heard by nodes 0 and 1.
  ASSERT_EQ(g.sensed_by(1).size(), 2u);
  EXPECT_EQ(g.sensed_by(1)[0], 0u);
  EXPECT_EQ(g.sensed_by(1)[1], 1u);
  ASSERT_EQ(g.sensed_by(0).size(), 1u);
  EXPECT_EQ(g.sensed_by(0)[0], 0u);
}

TEST(InterferenceGraphTest, HiddenTerminalIsConflictWithoutSensing) {
  const auto g = InterferenceGraph::from_lists(2, {{1}, {0}}, {{}, {}});
  EXPECT_TRUE(g.conflicts(0, 1));
  EXPECT_FALSE(g.senses(0, 1));
  EXPECT_FALSE(g.senses(1, 0));
  EXPECT_TRUE(g.complete_conflicts());
  EXPECT_FALSE(g.complete_sensing());
  EXPECT_FALSE(g.is_complete());
}

TEST(InterferenceGraphTest, UnitDiskBuildsExpectedRelations) {
  // Two link pairs far apart, one in the middle conflicting with both.
  //   link 0: tx (0,0)  rx (1,0)
  //   link 1: tx (10,0) rx (11,0)
  //   link 2: tx (5,0)  rx (6,0)
  const std::vector<InterferenceGraph::LinkPlacement> links{
      {{0.0, 0.0}, {1.0, 0.0}},
      {{10.0, 0.0}, {11.0, 0.0}},
      {{5.0, 0.0}, {6.0, 0.0}},
  };
  const auto g = InterferenceGraph::unit_disk(links, /*interference_range=*/5.0,
                                              /*sense_range=*/5.0);
  // 0 and 1: tx-rx distances 10 and 11 — independent.
  EXPECT_FALSE(g.conflicts(0, 1));
  EXPECT_FALSE(g.senses(0, 1));
  // 0 and 2: tx0 (0,0) to rx2 (6,0) = 6 > 5, but tx2 (5,0) to rx0 (1,0) = 4.
  EXPECT_TRUE(g.conflicts(0, 2));
  EXPECT_TRUE(g.conflicts(2, 0));
  // Sensing: tx0-tx2 distance 5, inclusive comparison.
  EXPECT_TRUE(g.senses(0, 2));
  EXPECT_TRUE(g.senses(2, 0));
  // tx1 (10,0) to tx2 (5,0) = 5: also in range.
  EXPECT_TRUE(g.senses(1, 2));
  EXPECT_FALSE(g.is_complete());
}

TEST(InterferenceGraphTest, SensedByIsSortedAndIncludesSelf) {
  const auto g = InterferenceGraph::complete(5);
  for (LinkId l = 0; l < 5; ++l) {
    const auto& nodes = g.sensed_by(l);
    ASSERT_EQ(nodes.size(), 5u);
    for (LinkId n = 0; n < 5; ++n) EXPECT_EQ(nodes[n], n);
  }
}

TEST(InterferenceGraphTest, CopyableValueType) {
  const auto g = InterferenceGraph::from_lists(2, {{1}, {}}, {{}, {}});
  const InterferenceGraph copy = g;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(copy.conflicts(1, 0));
  EXPECT_EQ(copy.num_links(), 2u);
}

}  // namespace
}  // namespace rtmac::phy
