#include "phy/medium.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace rtmac::phy {
namespace {

class RecordingListener final : public MediumListener {
 public:
  void on_medium_busy(TimePoint t) override { events.emplace_back('B', t.ns()); }
  void on_medium_idle(TimePoint t) override { events.emplace_back('I', t.ns()); }
  std::vector<std::pair<char, std::int64_t>> events;
};

TEST(MediumTest, StartsIdle) {
  sim::Simulator sim;
  Medium medium{sim, {1.0}, 1};
  EXPECT_FALSE(medium.busy());
}

TEST(MediumTest, BusyDuringTransmission) {
  sim::Simulator sim;
  Medium medium{sim, {1.0}, 1};
  bool done = false;
  sim.schedule_in(Duration{}, [&] {
    medium.start_transmission(0, Duration::microseconds(330), PacketKind::kData,
                              [&](TxOutcome o) {
                                done = true;
                                EXPECT_EQ(o, TxOutcome::kDelivered);
                              });
  });
  sim.run_until(TimePoint::origin() + Duration::microseconds(100));
  EXPECT_TRUE(medium.busy());
  sim.run();
  EXPECT_FALSE(medium.busy());
  EXPECT_TRUE(done);
}

TEST(MediumTest, ReliableChannelAlwaysDelivers) {
  sim::Simulator sim;
  Medium medium{sim, {1.0}, 7};
  int delivered = 0;
  for (int i = 0; i < 50; ++i) {
    sim.schedule_in(Duration::microseconds(400 * i), [&] {
      medium.start_transmission(0, Duration::microseconds(330), PacketKind::kData,
                                [&](TxOutcome o) {
                                  if (o == TxOutcome::kDelivered) ++delivered;
                                });
    });
  }
  sim.run();
  EXPECT_EQ(delivered, 50);
  EXPECT_EQ(medium.counters().delivered, 50u);
  EXPECT_EQ(medium.counters().channel_losses, 0u);
}

TEST(MediumTest, UnreliableChannelLossRateMatchesP) {
  sim::Simulator sim;
  Medium medium{sim, {0.7}, 42};
  int delivered = 0;
  constexpr int kTx = 20000;
  for (int i = 0; i < kTx; ++i) {
    sim.schedule_in(Duration::microseconds(10 * i), [&] {
      medium.start_transmission(0, Duration::microseconds(5), PacketKind::kData,
                                [&](TxOutcome o) {
                                  if (o == TxOutcome::kDelivered) ++delivered;
                                });
    });
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(delivered) / kTx, 0.7, 0.02);
}

TEST(MediumTest, OverlappingTransmissionsAllCollide) {
  sim::Simulator sim;
  Medium medium{sim, {1.0, 1.0}, 3};
  std::vector<TxOutcome> outcomes;
  sim.schedule_in(Duration{}, [&] {
    medium.start_transmission(0, Duration::microseconds(100), PacketKind::kData,
                              [&](TxOutcome o) { outcomes.push_back(o); });
  });
  sim.schedule_in(Duration::microseconds(50), [&] {
    medium.start_transmission(1, Duration::microseconds(100), PacketKind::kData,
                              [&](TxOutcome o) { outcomes.push_back(o); });
  });
  sim.run();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0], TxOutcome::kCollision);
  EXPECT_EQ(outcomes[1], TxOutcome::kCollision);
  EXPECT_EQ(medium.counters().collisions, 2u);
}

TEST(MediumTest, BackToBackTransmissionsDoNotCollide) {
  sim::Simulator sim;
  Medium medium{sim, {1.0}, 3};
  std::vector<TxOutcome> outcomes;
  sim.schedule_in(Duration{}, [&] {
    medium.start_transmission(0, Duration::microseconds(100), PacketKind::kData,
                              [&](TxOutcome o) {
                                outcomes.push_back(o);
                                // Chain the next packet with zero gap.
                                medium.start_transmission(
                                    0, Duration::microseconds(100), PacketKind::kData,
                                    [&](TxOutcome o2) { outcomes.push_back(o2); });
                              });
  });
  sim.run();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0], TxOutcome::kDelivered);
  EXPECT_EQ(outcomes[1], TxOutcome::kDelivered);
}

TEST(MediumTest, AdjacentTransmissionsDoNotCollide) {
  // A tx ending at t and another starting exactly at t must not overlap.
  sim::Simulator sim;
  Medium medium{sim, {1.0, 1.0}, 3};
  std::vector<TxOutcome> outcomes;
  sim.schedule_in(Duration{}, [&] {
    medium.start_transmission(0, Duration::microseconds(100), PacketKind::kData,
                              [&](TxOutcome o) { outcomes.push_back(o); });
  });
  sim.schedule_in(Duration::microseconds(100), [&] {
    medium.start_transmission(1, Duration::microseconds(100), PacketKind::kData,
                              [&](TxOutcome o) { outcomes.push_back(o); });
  });
  sim.run();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0], TxOutcome::kDelivered);
  EXPECT_EQ(outcomes[1], TxOutcome::kDelivered);
}

TEST(MediumTest, ListenersSeeBusyIdleTransitions) {
  sim::Simulator sim;
  Medium medium{sim, {1.0}, 3};
  RecordingListener listener;
  medium.add_listener(&listener);
  sim.schedule_in(Duration::microseconds(10), [&] {
    medium.start_transmission(0, Duration::microseconds(100), PacketKind::kData, nullptr);
  });
  sim.run();
  ASSERT_EQ(listener.events.size(), 2u);
  EXPECT_EQ(listener.events[0], std::make_pair('B', std::int64_t{10'000}));
  EXPECT_EQ(listener.events[1], std::make_pair('I', std::int64_t{110'000}));
}

TEST(MediumTest, NoDuplicateBusyOnBackToBackChain) {
  sim::Simulator sim;
  Medium medium{sim, {1.0}, 3};
  RecordingListener listener;
  medium.add_listener(&listener);
  sim.schedule_in(Duration{}, [&] {
    medium.start_transmission(0, Duration::microseconds(50), PacketKind::kData,
                              [&](TxOutcome) {
                                medium.start_transmission(0, Duration::microseconds(50),
                                                          PacketKind::kData, nullptr);
                              });
  });
  sim.run();
  // One continuous busy period: exactly one B and one I.
  ASSERT_EQ(listener.events.size(), 2u);
  EXPECT_EQ(listener.events[0].first, 'B');
  EXPECT_EQ(listener.events[1].first, 'I');
  EXPECT_EQ(listener.events[1].second, 100'000);
}

TEST(MediumTest, EmptyPacketsAreNotSubjectToPayloadLoss) {
  sim::Simulator sim;
  Medium medium{sim, {0.01}, 5};  // nearly-dead channel
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    sim.schedule_in(Duration::microseconds(100 * i), [&] {
      medium.start_transmission(0, Duration::microseconds(70), PacketKind::kEmpty,
                                [&](TxOutcome o) {
                                  if (o == TxOutcome::kDelivered) ++delivered;
                                });
    });
  }
  sim.run();
  EXPECT_EQ(delivered, 200);  // clean empty packets always "succeed"
  EXPECT_EQ(medium.counters().empty_tx, 200u);
  EXPECT_EQ(medium.counters().data_tx, 0u);
}

TEST(MediumTest, CountersTrackBusyAndCollidedTime) {
  sim::Simulator sim;
  Medium medium{sim, {1.0, 1.0}, 3};
  sim.schedule_in(Duration{}, [&] {
    medium.start_transmission(0, Duration::microseconds(100), PacketKind::kData, nullptr);
  });
  sim.schedule_in(Duration::microseconds(10), [&] {
    medium.start_transmission(1, Duration::microseconds(100), PacketKind::kData, nullptr);
  });
  sim.run();
  EXPECT_EQ(medium.counters().busy_time, Duration::microseconds(200));
  EXPECT_EQ(medium.counters().collided_time, Duration::microseconds(200));
}

TEST(MediumTest, PerLinkCountersTrackAttribution) {
  sim::Simulator sim;
  Medium medium{sim, {1.0, 1.0}, 3};
  // Link 0 transmits twice (data), link 1 once (empty); no overlap.
  sim.schedule_in(Duration{}, [&] {
    medium.start_transmission(0, Duration::microseconds(100), PacketKind::kData, nullptr);
  });
  sim.schedule_in(Duration::microseconds(200), [&] {
    medium.start_transmission(0, Duration::microseconds(100), PacketKind::kData, nullptr);
  });
  sim.schedule_in(Duration::microseconds(400), [&] {
    medium.start_transmission(1, Duration::microseconds(70), PacketKind::kEmpty, nullptr);
  });
  sim.run();
  EXPECT_EQ(medium.link_counters(0).data_tx, 2u);
  EXPECT_EQ(medium.link_counters(0).delivered, 2u);
  EXPECT_EQ(medium.link_counters(0).airtime, Duration::microseconds(200));
  EXPECT_EQ(medium.link_counters(0).empty_tx, 0u);
  EXPECT_EQ(medium.link_counters(1).empty_tx, 1u);
  EXPECT_EQ(medium.link_counters(1).data_tx, 0u);
  EXPECT_EQ(medium.link_counters(1).airtime, Duration::microseconds(70));
}

TEST(MediumTest, PerLinkCollisionCounters) {
  sim::Simulator sim;
  Medium medium{sim, {1.0, 1.0}, 3};
  sim.schedule_in(Duration{}, [&] {
    medium.start_transmission(0, Duration::microseconds(100), PacketKind::kData, nullptr);
  });
  sim.schedule_in(Duration::microseconds(10), [&] {
    medium.start_transmission(1, Duration::microseconds(100), PacketKind::kData, nullptr);
  });
  sim.run();
  EXPECT_EQ(medium.link_counters(0).collisions, 1u);
  EXPECT_EQ(medium.link_counters(1).collisions, 1u);
  EXPECT_EQ(medium.link_counters(0).delivered, 0u);
}

TEST(MediumTest, ThreeWayCollision) {
  sim::Simulator sim;
  Medium medium{sim, {1.0, 1.0, 1.0}, 3};
  int collisions = 0;
  for (LinkId n = 0; n < 3; ++n) {
    sim.schedule_in(Duration::microseconds(n), [&, n] {
      medium.start_transmission(n, Duration::microseconds(50), PacketKind::kData,
                                [&](TxOutcome o) {
                                  if (o == TxOutcome::kCollision) ++collisions;
                                });
    });
  }
  sim.run();
  EXPECT_EQ(collisions, 3);
}

// ---- Interference topology --------------------------------------------------

/// 3 links where only 0 and 1 conflict (and sense each other); link 2 is
/// spatially independent of both.
InterferenceGraph pair_plus_independent() {
  return InterferenceGraph::from_lists(3, {{1}, {0}, {}}, {{1}, {0}, {}});
}

/// 2 links that conflict but cannot hear each other.
InterferenceGraph hidden_pair() {
  return InterferenceGraph::from_lists(2, {{1}, {0}}, {{}, {}});
}

TEST(MediumTopologyTest, OnlyConflictingLinksCollide) {
  sim::Simulator sim;
  Medium medium{sim, {1.0, 1.0, 1.0}, pair_plus_independent(), 3};
  std::vector<TxOutcome> outcomes(3, TxOutcome::kDelivered);
  for (LinkId n = 0; n < 3; ++n) {
    sim.schedule_in(Duration::microseconds(n), [&, n] {
      medium.start_transmission(n, Duration::microseconds(50), PacketKind::kData,
                                [&, n](TxOutcome o) { outcomes[n] = o; });
    });
  }
  sim.run();
  // 0 and 1 overlap and conflict; 2 overlaps both but conflicts with neither.
  EXPECT_EQ(outcomes[0], TxOutcome::kCollision);
  EXPECT_EQ(outcomes[1], TxOutcome::kCollision);
  EXPECT_EQ(outcomes[2], TxOutcome::kDelivered);
  EXPECT_EQ(medium.counters().collisions, 2u);
}

TEST(MediumTopologyTest, HiddenTerminalsCollideDespiteNotSensing) {
  sim::Simulator sim;
  Medium medium{sim, {1.0, 1.0}, hidden_pair(), 3};
  std::vector<TxOutcome> outcomes;
  sim.schedule_in(Duration{}, [&] {
    medium.start_transmission(0, Duration::microseconds(100), PacketKind::kData,
                              [&](TxOutcome o) { outcomes.push_back(o); });
  });
  sim.schedule_in(Duration::microseconds(50), [&] {
    // Node 1 cannot hear link 0's ongoing transmission...
    EXPECT_FALSE(medium.sense_busy(1));
    // ...but the global view can.
    EXPECT_TRUE(medium.busy());
    medium.start_transmission(1, Duration::microseconds(100), PacketKind::kData,
                              [&](TxOutcome o) { outcomes.push_back(o); });
  });
  sim.run();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0], TxOutcome::kCollision);
  EXPECT_EQ(outcomes[1], TxOutcome::kCollision);
}

TEST(MediumTopologyTest, AdjacentTransmissionsDoNotConflictOnPartialTopology) {
  // The half-open interval rule must hold on every topology: a packet
  // ending at t does not conflict with one starting at t, even between
  // hidden terminals that cannot defer to each other.
  sim::Simulator sim;
  Medium medium{sim, {1.0, 1.0}, hidden_pair(), 3};
  std::vector<TxOutcome> outcomes;
  sim.schedule_in(Duration{}, [&] {
    medium.start_transmission(0, Duration::microseconds(100), PacketKind::kData,
                              [&](TxOutcome o) { outcomes.push_back(o); });
  });
  sim.schedule_in(Duration::microseconds(100), [&] {
    medium.start_transmission(1, Duration::microseconds(100), PacketKind::kData,
                              [&](TxOutcome o) { outcomes.push_back(o); });
  });
  sim.run();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0], TxOutcome::kDelivered);
  EXPECT_EQ(outcomes[1], TxOutcome::kDelivered);
  EXPECT_EQ(medium.counters().collisions, 0u);
}

TEST(MediumTopologyTest, PerNodeListenersOnlyHearSensedLinks) {
  sim::Simulator sim;
  Medium medium{sim, {1.0, 1.0, 1.0}, pair_plus_independent(), 3};
  RecordingListener node0;
  RecordingListener node2;
  RecordingListener global;
  medium.add_listener(&node0, 0);
  medium.add_listener(&node2, 2);
  medium.add_listener(&global);
  sim.schedule_in(Duration::microseconds(10), [&] {
    medium.start_transmission(1, Duration::microseconds(100), PacketKind::kData, nullptr);
  });
  sim.run();
  // Node 0 senses link 1; node 2 does not; the global view always does.
  ASSERT_EQ(node0.events.size(), 2u);
  EXPECT_EQ(node0.events[0], std::make_pair('B', std::int64_t{10'000}));
  EXPECT_EQ(node0.events[1], std::make_pair('I', std::int64_t{110'000}));
  EXPECT_TRUE(node2.events.empty());
  ASSERT_EQ(global.events.size(), 2u);
}

TEST(MediumTopologyTest, SenseViewBusyPeriodsMergeAcrossSensedLinks) {
  // Links 0 and 1 transmit with a partial overlap: a node sensing both sees
  // one continuous busy period; a node sensing only link 1 sees a shorter
  // one.
  sim::Simulator sim;
  const auto graph = InterferenceGraph::from_lists(3, {{}, {}, {}}, {{1}, {}, {}});
  Medium medium{sim, {1.0, 1.0, 1.0}, graph, 3};
  RecordingListener node0;   // senses links 0 and 1
  RecordingListener node1;   // senses only link 1
  medium.add_listener(&node0, 0);
  medium.add_listener(&node1, 1);
  sim.schedule_in(Duration{}, [&] {
    medium.start_transmission(0, Duration::microseconds(100), PacketKind::kData, nullptr);
  });
  sim.schedule_in(Duration::microseconds(50), [&] {
    medium.start_transmission(1, Duration::microseconds(100), PacketKind::kData, nullptr);
  });
  sim.run();
  ASSERT_EQ(node0.events.size(), 2u);
  EXPECT_EQ(node0.events[0], std::make_pair('B', std::int64_t{0}));
  EXPECT_EQ(node0.events[1], std::make_pair('I', std::int64_t{150'000}));
  ASSERT_EQ(node1.events.size(), 2u);
  EXPECT_EQ(node1.events[0], std::make_pair('B', std::int64_t{50'000}));
  EXPECT_EQ(node1.events[1], std::make_pair('I', std::int64_t{150'000}));
  EXPECT_EQ(medium.sense_busy_time(0), Duration::microseconds(150));
  EXPECT_EQ(medium.sense_busy_time(1), Duration::microseconds(100));
  EXPECT_EQ(medium.sense_busy_time(Medium::kAllNodes), Duration::microseconds(150));
}

TEST(MediumTopologyTest, CollisionPairCountsTrackPartners) {
  sim::Simulator sim;
  Medium medium{sim, {1.0, 1.0, 1.0}, InterferenceGraph::complete(3), 3};
  // Two separate collision events: (0,1) then (0,2).
  sim.schedule_in(Duration{}, [&] {
    medium.start_transmission(0, Duration::microseconds(50), PacketKind::kData, nullptr);
  });
  sim.schedule_in(Duration::microseconds(10), [&] {
    medium.start_transmission(1, Duration::microseconds(40), PacketKind::kData, nullptr);
  });
  sim.schedule_in(Duration::microseconds(100), [&] {
    medium.start_transmission(0, Duration::microseconds(50), PacketKind::kData, nullptr);
  });
  sim.schedule_in(Duration::microseconds(110), [&] {
    medium.start_transmission(2, Duration::microseconds(40), PacketKind::kData, nullptr);
  });
  sim.run();
  EXPECT_EQ(medium.collision_pair_count(0, 1), 1u);
  EXPECT_EQ(medium.collision_pair_count(1, 0), 1u);
  EXPECT_EQ(medium.collision_pair_count(0, 2), 1u);
  EXPECT_EQ(medium.collision_pair_count(1, 2), 0u);
  EXPECT_EQ(medium.collision_pair_count(0, 0), 0u);
}

TEST(MediumTopologyTest, CompleteTopologyCtorMatchesDefault) {
  // The explicit complete graph must behave exactly like the default ctor.
  sim::Simulator sim;
  Medium medium{sim, {1.0, 1.0}, InterferenceGraph::complete(2), 3};
  EXPECT_TRUE(medium.topology().is_complete());
  std::vector<TxOutcome> outcomes;
  sim.schedule_in(Duration{}, [&] {
    medium.start_transmission(0, Duration::microseconds(100), PacketKind::kData,
                              [&](TxOutcome o) { outcomes.push_back(o); });
  });
  sim.schedule_in(Duration::microseconds(50), [&] {
    EXPECT_TRUE(medium.sense_busy(1));
    medium.start_transmission(1, Duration::microseconds(100), PacketKind::kData,
                              [&](TxOutcome o) { outcomes.push_back(o); });
  });
  sim.run();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0], TxOutcome::kCollision);
  EXPECT_EQ(outcomes[1], TxOutcome::kCollision);
}

// ---- Listener re-entrancy enforcement ---------------------------------------

class TransmitOnBusyListener final : public MediumListener {
 public:
  explicit TransmitOnBusyListener(Medium& medium) : medium_{medium} {}
  void on_medium_busy(TimePoint) override {
    medium_.start_transmission(1, Duration::microseconds(10), PacketKind::kData, nullptr);
  }
  void on_medium_idle(TimePoint) override {}

 private:
  Medium& medium_;
};

void transmit_synchronously_from_listener() {
  sim::Simulator sim;
  Medium medium{sim, {1.0, 1.0}, 1};
  TransmitOnBusyListener bad{medium};
  medium.add_listener(&bad);
  sim.schedule_in(Duration{}, [&] {
    medium.start_transmission(0, Duration::microseconds(100), PacketKind::kData, nullptr);
  });
  sim.run();
}

TEST(MediumDeathTest, SynchronousTransmitFromListenerAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(transmit_synchronously_from_listener(),
               "called synchronously from a MediumListener callback");
}

}  // namespace
}  // namespace rtmac::phy
