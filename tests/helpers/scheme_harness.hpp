// Test harness for driving a MacScheme directly, with full control over
// debts and arrivals (bypassing net::Network's sampling).
#pragma once

#include <cassert>
#include <memory>
#include <vector>

#include "core/debt.hpp"
#include "mac/link_mac.hpp"
#include "phy/medium.hpp"
#include "phy/phy_params.hpp"
#include "sim/simulator.hpp"

namespace rtmac::test {

/// Owns a Simulator + Medium + DebtTracker and exposes a SchemeContext.
/// Drive with run_interval(); mutate debts() freely between intervals.
class SchemeHarness {
 public:
  SchemeHarness(ProbabilityVector p, phy::PhyParams phy, Duration interval_length,
                RateVector q, std::uint64_t seed = 42)
      : phy_{phy},
        interval_length_{interval_length},
        success_prob_{std::move(p)},
        medium_{sim_, success_prob_, seed},
        debts_{std::move(q)},
        seed_{seed} {}

  [[nodiscard]] mac::SchemeContext context() {
    return mac::SchemeContext{sim_,         medium_, phy_,   interval_length_,
                              success_prob_.size(),  success_prob_, debts_, seed_};
  }

  /// Runs one full interval: arrivals in, deliveries out. Does NOT update
  /// debts (tests control the ledger explicitly via debts()). Keeps the
  /// vector-in/vector-out convenience shape; the scheme itself only sees
  /// the span interface.
  std::vector<int> run_interval(mac::MacScheme& scheme, const std::vector<int>& arrivals) {
    const TimePoint start = sim_.now();
    const TimePoint end = start + interval_length_;
    scheme.begin_interval(next_k_++, arrivals, end);
    sim_.run_until(end);
    assert(!medium_.busy());
    std::vector<int> delivered(success_prob_.size(), 0);
    scheme.end_interval(delivered);
    return delivered;
  }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] phy::Medium& medium() { return medium_; }
  [[nodiscard]] core::DebtTracker& debts() { return debts_; }

 private:
  phy::PhyParams phy_;
  Duration interval_length_;
  ProbabilityVector success_prob_;
  sim::Simulator sim_;
  phy::Medium medium_;
  core::DebtTracker debts_;
  std::uint64_t seed_;
  IntervalIndex next_k_ = 0;
};

}  // namespace rtmac::test
