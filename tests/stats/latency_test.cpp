#include "stats/latency.hpp"

#include <gtest/gtest.h>

#include "expfw/scenarios.hpp"
#include "net/network.hpp"
#include "traffic/arrival_process.hpp"

namespace rtmac::stats {
namespace {

TEST(LatencySampleTest, MeanMaxQuantiles) {
  LatencySample s;
  for (int us : {10, 20, 30, 40}) s.add(Duration::microseconds(us));
  EXPECT_EQ(s.count(), 4u);
  EXPECT_EQ(s.mean(), Duration::microseconds(25));
  EXPECT_EQ(s.max(), Duration::microseconds(40));
  EXPECT_EQ(s.quantile(0.0), Duration::microseconds(10));
  EXPECT_EQ(s.quantile(0.5), Duration::microseconds(20));
  EXPECT_EQ(s.quantile(0.75), Duration::microseconds(30));
  EXPECT_EQ(s.quantile(1.0), Duration::microseconds(40));
}

TEST(LatencySampleTest, EmptySampleSafeAccessors) {
  const LatencySample s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), Duration{});
  EXPECT_EQ(s.max(), Duration{});
}

TEST(DeliveryLatencyTest, SingleLinkBackToBack) {
  // p = 1, one link, 2 packets per interval: deliveries complete at 330us
  // and 660us into every interval.
  auto cfg = net::symmetric_network(1, Duration::milliseconds(20),
                                    phy::PhyParams::video_80211a(), 1.0,
                                    traffic::ConstantArrivals{2}, 0.9, 71);
  net::Network net{std::move(cfg), expfw::ldf_factory()};
  sim::Tracer tracer;
  net.attach_tracer(&tracer);
  net.run(5);
  const auto latencies = delivery_latencies(tracer, Duration::milliseconds(20));
  ASSERT_EQ(latencies.count(), 10u);
  EXPECT_EQ(latencies.quantile(0.0), Duration::microseconds(330));
  EXPECT_EQ(latencies.max(), Duration::microseconds(660));
}

TEST(DeliveryLatencyTest, AllWithinDeadline) {
  // Hard invariant of the model: every delivered packet's latency is <= T.
  for (const auto& factory :
       {expfw::dbdp_factory(), expfw::ldf_factory(), expfw::fcsma_factory()}) {
    auto cfg = expfw::video_symmetric(0.5, 0.9, 72);
    net::Network net{std::move(cfg), factory};
    sim::Tracer tracer{1 << 20};
    net.attach_tracer(&tracer);
    net.run(50);
    const auto latencies = delivery_latencies(tracer, Duration::milliseconds(20));
    ASSERT_GT(latencies.count(), 0u);
    EXPECT_LE(latencies.max(), Duration::milliseconds(20)) << net.scheme().name();
  }
}

TEST(DeliveryLatencyTest, EmptyPacketsExcluded) {
  // Candidates with no traffic send claims; those must not count as
  // deliveries.
  auto cfg = net::symmetric_network(2, Duration::milliseconds(20),
                                    phy::PhyParams::video_80211a(), 1.0,
                                    traffic::ConstantArrivals{0}, 0.0, 73);
  net::Network net{std::move(cfg), expfw::dbdp_factory()};
  sim::Tracer tracer;
  net.attach_tracer(&tracer);
  net.run(20);
  EXPECT_GT(tracer.count(sim::TraceKind::kTxEnd), 0u);  // claims happened
  EXPECT_EQ(delivery_latencies(tracer, Duration::milliseconds(20)).count(), 0u);
}

TEST(DeliveryLatencyTest, CentralizedFasterThanContention) {
  // LDF starts serving at t = 0 with no backoff: its median latency must
  // beat FCSMA's under identical load.
  auto median_latency = [](const mac::SchemeFactory& f) {
    auto cfg = expfw::video_symmetric(0.5, 0.9, 74);
    net::Network net{std::move(cfg), f};
    sim::Tracer tracer{1 << 20};
    net.attach_tracer(&tracer);
    net.run(100);
    return delivery_latencies(tracer, Duration::milliseconds(20)).quantile(0.5);
  };
  EXPECT_LT(median_latency(expfw::ldf_factory()), median_latency(expfw::fcsma_factory()));
}

}  // namespace
}  // namespace rtmac::stats
