#include "stats/fairness.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rtmac::stats {
namespace {

TEST(JainIndexTest, PerfectlyFairIsOne) {
  const std::vector<double> xs{2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(jain_index(xs), 1.0);
}

TEST(JainIndexTest, SingleWinnerIsOneOverN) {
  const std::vector<double> xs{4.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(xs), 0.25);
}

TEST(JainIndexTest, KnownIntermediateValue) {
  const std::vector<double> xs{1.0, 3.0};
  // (4)^2 / (2 * 10) = 0.8.
  EXPECT_DOUBLE_EQ(jain_index(xs), 0.8);
}

TEST(JainIndexTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{5.0}), 1.0);
}

TEST(JainIndexTest, ScaleInvariance) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(jain_index(a), jain_index(b));
}

TEST(MinMaxRatioTest, Basics) {
  EXPECT_DOUBLE_EQ(min_max_ratio(std::vector<double>{1.0, 4.0}), 0.25);
  EXPECT_DOUBLE_EQ(min_max_ratio(std::vector<double>{3.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(min_max_ratio(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(min_max_ratio(std::vector<double>{0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(min_max_ratio(std::vector<double>{0.0, 2.0}), 0.0);
}

}  // namespace
}  // namespace rtmac::stats
